"""Property tests for the dynamic idle-reclaim quota arithmetic.

The regression these lock down: ``TierQuotas.active_tenants`` used to
fall back to "everyone is active" when no tenant was active (all idle or
all finished).  Under that fallback every tenant simultaneously donated
its static share to the idle pool *and* received a cut of it, so the
effective budgets summed to roughly twice the tier's capacity — a tenant
draining exactly at the ``idle_window`` boundary could legally hold
frames far past its share.  The fixed rule: an empty active set means
everyone keeps exactly the static base, and only truly active tenants
receive a pool cut.

The hypothesis suite drives a random operation sequence (activity notes,
stream finishes, clock advances) and checks the capacity bound after
every step.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.serve.quota import QuotaConfig, TierQuotas


def make_quotas(tenants, tier1=64, tier2=128, idle_window=50):
    return TierQuotas(
        QuotaConfig(mode="dynamic", idle_window=idle_window),
        tier1,
        tier2,
        weights=[1.0] * tenants,
    )


def check_invariants(quotas, tier1=64, tier2=128):
    """The budget identities that must hold after ANY op sequence."""
    tenants = quotas.tenants
    active = set(quotas.active_tenants())
    for capacity, budget_of, static_of in (
        (tier1, quotas.tier1_budget, quotas.static_tier1_budget),
        (tier2, quotas.tier2_budget, quotas.static_tier2_budget),
    ):
        budgets = [budget_of(t) for t in range(tenants)]
        statics = [static_of(t) for t in range(tenants)]
        # 1. Idle tenants (and everyone when none is active) keep exactly
        #    their static base.
        for t in range(tenants):
            if t not in active:
                assert budgets[t] == statics[t]
            else:
                assert budgets[t] >= statics[t]
        # 2. The donated pool never mints frames: the recipients'
        #    (active tenants') budgets sum within the tier's capacity.
        #    Idle donors keep their static share only as an eviction cap
        #    — over-budget donors are the preferred victims — so the
        #    active set is the one that must not overcommit the tier.
        #    The pre-fix "everyone is active" fallback made the whole
        #    fleet recipients of its own statics: sum == 2x capacity.
        total = sum(budgets[t] for t in active)
        assert total <= capacity, (
            f"budgets {budgets} (active {sorted(active)}) sum past "
            f"capacity {capacity}"
        )
        # 3. Statics always partition within capacity (split_frames).
        assert sum(statics) <= capacity


class Op:
    """Tagged op for the sequence strategy (readable failure output)."""

    def __init__(self, kind, tenant=None, delta=0):
        self.kind = kind
        self.tenant = tenant
        self.delta = delta

    def __repr__(self):
        if self.kind == "advance":
            return f"advance(+{self.delta})"
        return f"{self.kind}(t{self.tenant})"


def ops_strategy(tenants):
    return st.lists(
        st.one_of(
            st.builds(
                Op,
                st.just("active"),
                tenant=st.integers(0, tenants - 1),
            ),
            st.builds(
                Op,
                st.just("finish"),
                tenant=st.integers(0, tenants - 1),
            ),
            st.builds(
                Op,
                st.just("advance"),
                delta=st.integers(1, 120),
            ),
        ),
        min_size=1,
        max_size=60,
    )


@settings(max_examples=200, deadline=None)
@given(tenants=st.integers(1, 6), data=st.data())
def test_budget_capacity_bound_under_op_sequences(tenants, data):
    ops = data.draw(ops_strategy(tenants))
    quotas = make_quotas(tenants)
    position = 0
    for op in ops:
        if op.kind == "active":
            quotas.note_active(op.tenant, position)
        elif op.kind == "finish":
            quotas.note_finished(op.tenant)
        else:
            position += op.delta
            # The clock only moves via note_active in production; model
            # that with a zero-cost activity poke from tenant 0 unless it
            # already finished (then idle time just accrues silently).
            quotas._now = max(quotas._now, position)
        check_invariants(quotas)


def test_all_finished_keeps_static_base():
    """The exact pre-fix failure: every stream drained -> every budget
    must equal the static share, not static + pool."""
    quotas = make_quotas(4)
    for t in range(4):
        quotas.note_finished(t)
    assert quotas.active_tenants() == []
    for t in range(4):
        assert quotas.tier1_budget(t) == quotas.static_tier1_budget(t)
        assert quotas.tier2_budget(t) == quotas.static_tier2_budget(t)
    total = sum(quotas.tier1_budget(t) for t in range(4))
    assert total <= 64  # pre-fix: 64 (statics) + 64 (pool) == 2x capacity


def test_idle_window_boundary_no_double_count():
    """A tenant exactly at the idle boundary is either donor or
    recipient, never both."""
    quotas = make_quotas(2, idle_window=50)
    quotas.note_active(0, 0)
    quotas.note_active(1, 100)  # moves the clock: tenant 0 is 100 idle
    assert quotas.active_tenants() == [1]
    # tenant 0 donates, keeps static; tenant 1 receives the whole pool
    assert quotas.tier1_budget(0) == quotas.static_tier1_budget(0)
    assert (
        quotas.tier1_budget(1)
        == quotas.static_tier1_budget(1) + quotas.static_tier1_budget(0)
    )
    total = quotas.tier1_budget(0) + quotas.tier1_budget(1)
    assert total <= 64 + quotas.static_tier1_budget(0)


def test_lone_active_tenant_gets_whole_tier():
    """Idle reclaim still works: the surviving tenant's budget grows to
    (nearly) the full capacity."""
    quotas = make_quotas(4)
    for t in (1, 2, 3):
        quotas.note_finished(t)
    quotas.note_active(0, 10)
    assert quotas.active_tenants() == [0]
    assert quotas.tier1_budget(0) == 64  # 16 static + 48 pooled
    assert quotas.tier2_budget(0) == 128
