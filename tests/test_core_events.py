"""Unit tests for runtime event tracing (paper Figure 2's lifetime)."""

import pytest

from repro.core.config import GMTConfig
from repro.core.events import EventKind, RuntimeEventLog, format_events
from repro.core.runtime import GMTRuntime


def make_runtime(**kwargs):
    cfg = GMTConfig(
        tier1_frames=kwargs.pop("tier1", 2),
        tier2_frames=kwargs.pop("tier2", 4),
        policy=kwargs.pop("policy", "tier-order"),
        sample_target=50,
        sample_batch=10,
        **kwargs,
    )
    return GMTRuntime(cfg)


class TestRuntimeEventLog:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RuntimeEventLog(capacity=0)

    def test_bounded_capacity(self):
        log = RuntimeEventLog(capacity=2)
        for i in range(5):
            log.emit(EventKind.MISS, i, i)
        assert len(log) == 2
        assert [e.page for e in log] == [3, 4]

    def test_filters(self):
        log = RuntimeEventLog()
        log.emit(EventKind.MISS, 1, 1)
        log.emit(EventKind.T1_HIT, 1, 2)
        log.emit(EventKind.MISS, 2, 3)
        assert len(log.events(kind=EventKind.MISS)) == 2
        assert len(log.events(page=1)) == 2
        assert len(log.events(kind=EventKind.MISS, page=2)) == 1

    def test_summary_after_wraparound_counts_retained_only(self):
        """After the capacity bound drops old events, summary() reflects
        the retained window, not lifetime totals."""
        log = RuntimeEventLog(capacity=3)
        for _ in range(4):
            log.emit(EventKind.MISS, 1, 0)
        log.emit(EventKind.T1_HIT, 1, 0)
        summary = log.summary()
        assert summary["miss"] == 2  # two of the four misses survived
        assert summary["t1-hit"] == 1
        assert sum(summary.values()) == 3

    def test_clear(self):
        log = RuntimeEventLog()
        log.emit(EventKind.MISS, 1, 1)
        log.clear()
        assert len(log) == 0

    def test_format(self):
        log = RuntimeEventLog()
        log.emit(EventKind.MISS, 7, 3)
        assert "miss" in format_events(log)
        assert "page=7" in format_events(log)


class TestRuntimeInstrumentation:
    def test_detached_by_default(self):
        rt = make_runtime()
        rt.access(1)
        assert rt._events is None  # no recording, no cost

    def test_cold_miss_lifetime(self):
        rt = make_runtime()
        log = rt.attach_event_log()
        rt.access(1)
        assert log.kinds_for_page(1) == [
            EventKind.MISS,
            EventKind.T2_LOOKUP,
            EventKind.SSD_READ,
            EventKind.T1_FILL,
        ]

    def test_hit_lifetime(self):
        rt = make_runtime()
        log = rt.attach_event_log()
        rt.access(1)
        rt.access(1)
        assert log.kinds_for_page(1)[-1] is EventKind.T1_HIT

    def test_figure2_full_lifetime(self):
        """Cold fill -> eviction to Tier-2 -> Tier-2 hit -> back in Tier-1."""
        rt = make_runtime(tier1=2, tier2=4)
        log = rt.attach_event_log()
        rt.access(1)
        rt.access(2)
        rt.access(3)  # evicts 1 into Tier-2 (tier-order)
        rt.access(1)  # Tier-2 hit
        kinds = log.kinds_for_page(1)
        assert kinds == [
            EventKind.MISS,
            EventKind.T2_LOOKUP,
            EventKind.SSD_READ,
            EventKind.T1_FILL,
            EventKind.EVICT_T1,
            EventKind.PLACE_T2,
            EventKind.MISS,
            EventKind.T2_LOOKUP,
            EventKind.T2_HIT,
            EventKind.T1_FILL,
        ]

    def test_dirty_bypass_emits_writeback(self):
        rt = make_runtime(tier1=1, tier2=0)
        log = rt.attach_event_log()
        rt.access(1, write=True)
        rt.access(2)
        kinds = log.kinds_for_page(1)
        assert EventKind.BYPASS_T3 in kinds
        assert EventKind.WRITEBACK in kinds
        assert EventKind.DISCARD not in kinds

    def test_clean_bypass_emits_discard(self):
        rt = make_runtime(tier1=1, tier2=0)
        log = rt.attach_event_log()
        rt.access(1)
        rt.access(2)
        assert EventKind.DISCARD in log.kinds_for_page(1)

    def test_t2_eviction_traced(self):
        rt = make_runtime(tier1=1, tier2=1)
        log = rt.attach_event_log()
        for p in range(1, 5):
            rt.access(p)
        assert log.events(kind=EventKind.T2_EVICT)

    def test_prefetch_traced(self):
        rt = make_runtime(tier1=4, tier2=4, prefetch_degree=1)
        log = rt.attach_event_log()
        rt.access(10)
        assert log.events(kind=EventKind.PREFETCH, page=11)

    def test_summary_counts(self):
        rt = make_runtime()
        log = rt.attach_event_log()
        rt.access(1)
        rt.access(1)
        summary = log.summary()
        assert summary["miss"] == 1
        assert summary["t1-hit"] == 1

    def test_detach_stops_recording(self):
        rt = make_runtime()
        log = rt.attach_event_log()
        rt.access(1)
        size = len(log)
        rt.detach_event_log()
        rt.access(2)
        assert len(log) == size
