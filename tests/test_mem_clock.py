"""Unit tests for the clock (second-chance) replacement algorithm."""

import pytest

from repro.errors import CapacityError, PageStateError
from repro.mem.clock_replacement import ClockReplacement


class TestClockBasics:
    def test_insert_and_len(self):
        c = ClockReplacement(4)
        c.insert(1)
        c.insert(2)
        assert len(c) == 2
        assert 1 in c and 2 in c

    def test_full(self):
        c = ClockReplacement(2)
        c.insert(1)
        assert not c.full
        c.insert(2)
        assert c.full

    def test_insert_when_full_raises(self):
        c = ClockReplacement(1)
        c.insert(1)
        with pytest.raises(CapacityError):
            c.insert(2)

    def test_duplicate_insert_raises(self):
        c = ClockReplacement(2)
        c.insert(1)
        with pytest.raises(PageStateError):
            c.insert(1)

    def test_touch_unknown_raises(self):
        with pytest.raises(PageStateError):
            ClockReplacement(2).touch(9)

    def test_remove(self):
        c = ClockReplacement(2)
        c.insert(1)
        c.remove(1)
        assert 1 not in c
        c.insert(1)  # frame reusable

    def test_remove_unknown_raises(self):
        with pytest.raises(PageStateError):
            ClockReplacement(2).remove(3)

    def test_evict_empty_raises(self):
        with pytest.raises(PageStateError):
            ClockReplacement(2).select_victim()


class TestClockSecondChance:
    def test_untouched_pages_evict_in_insertion_order(self):
        c = ClockReplacement(3)
        for p in (1, 2, 3):
            c.insert(p, referenced=False)
        assert c.select_victim() == 1
        assert c.select_victim() == 2
        assert c.select_victim() == 3

    def test_referenced_page_gets_second_chance(self):
        c = ClockReplacement(3)
        for p in (1, 2, 3):
            c.insert(p, referenced=False)
        c.touch(1)
        # 1's bit is set: the hand clears it and moves on, evicting 2.
        assert c.select_victim() == 2

    def test_insertion_sets_reference_bit_by_default(self):
        c = ClockReplacement(2)
        c.insert(1)
        c.insert(2)
        # Both referenced: hand strips both bits, then evicts 1 (oldest).
        assert c.select_victim() == 1

    def test_victim_removed_after_eviction(self):
        c = ClockReplacement(2)
        c.insert(1, referenced=False)
        c.insert(2, referenced=False)
        v = c.select_victim()
        assert v not in c
        assert len(c) == 1

    def test_repeatedly_touched_page_survives(self):
        c = ClockReplacement(2)
        c.insert(1, referenced=False)
        c.insert(2, referenced=False)
        survivors = []
        for p in range(3, 10):
            c.touch(1)
            victim = c.select_victim()
            survivors.append(victim)
            c.insert(p, referenced=False)
        assert 1 not in survivors

    def test_peek_victim_leaves_page_resident(self):
        c = ClockReplacement(2)
        c.insert(1, referenced=False)
        c.insert(2, referenced=False)
        v = c.peek_victim()
        assert v == 1
        assert v in c
        assert len(c) == 2

    def test_give_second_chance_defers_eviction(self):
        c = ClockReplacement(2)
        c.insert(1, referenced=False)
        c.insert(2, referenced=False)
        c.give_second_chance(1)
        assert c.select_victim() == 2

    def test_pages_snapshot(self):
        c = ClockReplacement(3)
        c.insert(1)
        c.insert(2)
        assert sorted(c.pages()) == [1, 2]

    def test_hand_wraps_around(self):
        c = ClockReplacement(2)
        c.insert(1, referenced=False)
        c.insert(2, referenced=False)
        c.select_victim()
        c.insert(3, referenced=False)
        # Sequence of evictions remains well-defined after wrap.
        assert c.select_victim() in (2, 3)


class TestSelectVictimWhere:
    """Filtered victim selection (quota-restricted eviction)."""

    def _refbit(self, c, page):
        return c._refbits[c._frame_of[page]]

    def test_no_match_returns_none(self):
        c = ClockReplacement(4)
        c.insert(1, referenced=False)
        c.insert(2, referenced=False)
        assert c.select_victim_where(lambda p: p > 100) is None
        assert len(c) == 2

    def test_empty_returns_none(self):
        assert ClockReplacement(2).select_victim_where(lambda p: True) is None

    def test_picks_only_matching_page(self):
        c = ClockReplacement(4)
        for page in (10, 21, 30):
            c.insert(page, referenced=False)
        victim = c.select_victim_where(lambda p: p % 2 == 1)
        assert victim == 21
        assert 21 not in c
        assert 10 in c and 30 in c

    def test_preserves_refbits_of_non_matching_pages(self):
        c = ClockReplacement(4)
        c.insert(10, referenced=True)
        c.insert(21, referenced=False)
        c.insert(30, referenced=True)
        assert c.select_victim_where(lambda p: p % 2 == 1) == 21
        # A plain sweep would have consumed 10's and 30's second chances;
        # the filtered sweep must not touch them.
        assert self._refbit(c, 10)
        assert self._refbit(c, 30)

    def test_matching_pages_keep_second_chance_semantics(self):
        c = ClockReplacement(4)
        c.insert(11, referenced=True)
        c.insert(21, referenced=False)
        # 11 is referenced: the sweep clears its bit and takes 21 first.
        assert c.select_victim_where(lambda p: p % 2 == 1) == 21
        assert not self._refbit(c, 11)
        assert c.select_victim_where(lambda p: p % 2 == 1) == 11

    def test_single_referenced_match_evicted_after_wrap(self):
        c = ClockReplacement(4)
        c.insert(10, referenced=True)
        c.insert(21, referenced=True)
        # Only 21 matches; first visit clears its bit, wrap evicts it.
        assert c.select_victim_where(lambda p: p % 2 == 1) == 21
        assert self._refbit(c, 10)
