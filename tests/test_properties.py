"""Property-based tests (hypothesis) on the core data structures."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from repro.mem.clock_replacement import ClockReplacement
from repro.mem.fifo import FifoQueue
from repro.reuse.classifier import ReuseClass, RRDClassifier
from repro.reuse.distance import ReuseDistanceTracker
from repro.reuse.markov import MarkovTierPredictor
from repro.reuse.regression import IncrementalOLS, fit_ols
from repro.sim.gpu import WarpAccess

pages_strategy = st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300)


class TestReuseDistanceProperties:
    @given(pages_strategy)
    def test_matches_naive(self, pages):
        from tests.test_reuse_distance import naive_reuse_distances
        from repro.reuse.distance import reuse_distances

        assert reuse_distances(pages) == naive_reuse_distances(pages)

    @given(pages_strategy)
    def test_rd_bounded_by_distinct_pages(self, pages):
        tracker = ReuseDistanceTracker()
        for page in pages:
            rd = tracker.record(page)
            if rd is not None:
                assert 0 <= rd < tracker.distinct_pages

    @given(pages_strategy)
    def test_first_access_none_exactly_once_per_page(self, pages):
        tracker = ReuseDistanceTracker()
        nones = sum(1 for p in pages if tracker.record(p) is None)
        assert nones == len(set(pages))


class TestClockProperties:
    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=200),
           st.integers(min_value=1, max_value=8))
    def test_never_exceeds_capacity_and_victims_valid(self, accesses, capacity):
        clock = ClockReplacement(capacity)
        resident = set()
        for page in accesses:
            if page in clock:
                clock.touch(page)
                continue
            if clock.full:
                victim = clock.select_victim()
                assert victim in resident
                resident.remove(victim)
            clock.insert(page)
            resident.add(page)
            assert len(clock) <= capacity
        assert set(clock.pages()) == resident

    @given(st.integers(min_value=2, max_value=10))
    def test_eviction_order_without_touches_is_fifo(self, capacity):
        clock = ClockReplacement(capacity)
        for p in range(capacity):
            clock.insert(p, referenced=False)
        assert [clock.select_victim() for _ in range(capacity)] == list(range(capacity))


class TestFifoProperties:
    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=100))
    def test_matches_reference_model(self, ops):
        fifo = FifoQueue()
        model: list[int] = []
        for op in ops:
            if op in model:
                fifo.remove(op)
                model.remove(op)
            else:
                fifo.push(op)
                model.append(op)
        assert fifo.pages() == model
        while model:
            assert fifo.pop_oldest() == model.pop(0)


class TestOlsProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6).map(lambda v: round(v, 3)),
                st.floats(min_value=0, max_value=1e6).map(lambda v: round(v, 3)),
            ),
            min_size=2,
            max_size=100,
        )
    )
    def test_incremental_equals_batch(self, points):
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        inc = IncrementalOLS()
        for x, y in points:
            inc.add(x, y)
        if not inc.ready:
            return
        split = len(points) // 2
        inc2 = IncrementalOLS()
        inc2.update(xs[:split], ys[:split])
        inc2.update(xs[split:], ys[split:])
        a, b = inc.model(), inc2.model()
        assert abs(a.m - b.m) < 1e-6 * max(1.0, abs(a.m))
        assert abs(a.b - b.b) < 1e-6 * max(1.0, abs(a.b))

    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-1000, max_value=1000),
    )
    def test_recovers_exact_line(self, m, b):
        xs = [1.0, 2.0, 5.0, 9.0]
        ys = [m * x + b for x in xs]
        model = fit_ols(xs, ys)
        assert abs(model.m - m) < 1e-6 + 1e-6 * abs(m)
        assert abs(model.b - b) < 1e-4 + 1e-6 * abs(b)


class TestClassifierProperties:
    @given(
        st.integers(min_value=1, max_value=1000),
        st.integers(min_value=0, max_value=4000),
        st.floats(min_value=0, max_value=1e7),
    )
    def test_classification_is_monotone_partition(self, t1, t2, rrd):
        clf = RRDClassifier(t1, t2)
        cls = clf.classify(rrd)
        if rrd < t1:
            assert cls is ReuseClass.SHORT
        elif rrd < t1 + t2:
            assert cls is ReuseClass.MEDIUM
        else:
            assert cls is ReuseClass.LONG


class TestMarkovProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(ReuseClass)), st.sampled_from(list(ReuseClass))
            ),
            max_size=100,
        )
    )
    def test_prediction_maximizes_row_weight(self, transitions):
        predictor = MarkovTierPredictor()
        for src, dst in transitions:
            predictor.record_transition(src, dst)
        for state in ReuseClass:
            predicted = predictor.predict(state)
            row_max = max(predictor.weight(state, d) for d in ReuseClass)
            if predicted is None:
                assert row_max == 0
            else:
                assert predictor.weight(state, predicted) == row_max > 0


class TestQueueingProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.booleans()),  # (t2_hit, writeback)
            min_size=1,
            max_size=80,
        ),
        st.integers(min_value=1, max_value=16),
    )
    def test_makespan_monotone_and_floored(self, misses, concurrency):
        from repro.sim.latency import PlatformModel
        from repro.sim.queueing import QueueingModel
        from repro.units import PAGE_SIZE

        platform = PlatformModel()
        qm = QueueingModel(
            platform=platform, page_size=PAGE_SIZE, fault_concurrency=concurrency
        )
        prev = 0.0
        for t2_hit, writeback in misses:
            done = qm.on_miss(
                tier2_lookup=True, tier2_hit=t2_hit, writeback=writeback
            )
            assert done >= 0.0
            assert qm.makespan_ns >= prev  # never goes backwards
            prev = qm.makespan_ns
        # Fault-latency floor: one miss can never finish before its own
        # unqueued service time.
        min_service = platform.tier2_lookup_ns
        assert qm.makespan_ns >= min_service

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=1, max_value=8))
    def test_more_concurrency_never_slower(self, n_misses, concurrency):
        from repro.sim.latency import PlatformModel
        from repro.sim.queueing import QueueingModel
        from repro.units import PAGE_SIZE

        def makespan(slots):
            qm = QueueingModel(
                platform=PlatformModel(), page_size=PAGE_SIZE, fault_concurrency=slots
            )
            for _ in range(n_misses):
                qm.on_miss(tier2_lookup=False, tier2_hit=False)
            return qm.makespan_ns

        assert makespan(concurrency * 2) <= makespan(concurrency) + 1e-6


class TestJitterProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=120),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_jitter_preserves_multiset(self, n_warps, window, seed):
        from repro.sim.gpu import warp_of
        from repro.workloads.trace import JitteredWorkload, Workload

        class _List(Workload):
            name = "list"

            def __init__(self):
                super().__init__(max(n_warps, 1), seed)

            def generate(self):
                return iter([warp_of([p]) for p in range(n_warps)])

        out = list(JitteredWorkload(_List(), window=window))
        assert sorted(w.pages[0] for w in out) == list(range(n_warps))


class TestRuntimeProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.sampled_from(["tier-order", "random", "reuse"]),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=24),
    )
    def test_invariants_hold_on_random_traces(self, seed, policy, t1, t2):
        rng = random.Random(seed)
        cfg = GMTConfig(
            tier1_frames=t1,
            tier2_frames=t2,
            policy=policy,
            sample_target=50,
            sample_batch=10,
            tier3_bias_window=8,
            seed=seed & 0xFFFF,
        )
        rt = GMTRuntime(cfg)
        footprint = (t1 + t2 + 1) * 3
        for _ in range(300):
            lanes = tuple(rng.randrange(footprint) for _ in range(rng.randint(1, 3)))
            rt.access_warp(WarpAccess(pages=lanes, write=rng.random() < 0.4))
        rt.check_invariants()
        s = rt.stats
        # Conservation: every miss is served by Tier-2 or the SSD.
        assert s.t1_misses == s.t2_hits + s.ssd_page_reads
        # Lookups split into hits and wasteful ones.
        assert s.t2_lookups == s.t2_hits + s.t2_wasteful_lookups
        assert s.t2_fetches == s.t2_hits
        # Fig 10(b) accounting: fetches can never exceed placements.
        assert s.t2_fetches <= s.t2_placements
        # PCIe byte accounting matches the counters.
        page = cfg.page_size
        assert rt.pcie.h2d_bytes == s.t2_fetches * page
        assert rt.pcie.d2h_bytes == s.t2_placements * page
        assert rt.ssd.reads == s.ssd_page_reads
        assert rt.ssd.writes == s.ssd_page_writes

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_deterministic_given_seed(self, seed):
        def run():
            rng = random.Random(seed)
            cfg = GMTConfig(
                tier1_frames=4,
                tier2_frames=16,
                policy="reuse",
                sample_target=50,
                sample_batch=10,
                seed=7,
            )
            rt = GMTRuntime(cfg)
            for _ in range(200):
                rt.access(rng.randrange(60), write=rng.random() < 0.3)
            return rt.result()

        a, b = run(), run()
        assert a.elapsed_ns == b.elapsed_ns
        assert a.stats.as_dict() == b.stats.as_dict()
