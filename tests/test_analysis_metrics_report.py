"""Unit tests for metrics helpers and table rendering."""

import pytest

from repro.analysis.metrics import (
    arithmetic_mean,
    geometric_mean,
    io_reduction_percent,
    percent_change,
    speedup,
)
from repro.analysis.report import render_histogram, render_table


class TestMetrics:
    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0

    def test_arithmetic_mean_empty(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_below_arithmetic(self):
        values = [1.0, 2.0, 9.0]
        assert geometric_mean(values) < arithmetic_mean(values)

    def test_percent_change(self):
        assert percent_change(0.5, 1.0) == -50.0
        assert percent_change(3.0, 2.0) == 50.0

    def test_percent_change_zero_baseline(self):
        with pytest.raises(ValueError):
            percent_change(1.0, 0.0)

    def test_io_reduction(self):
        assert io_reduction_percent(27, 100) == pytest.approx(73.0)
        assert io_reduction_percent(0, 0) == 0.0

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestRenderTable:
    def test_basic_shape(self):
        text = render_table(
            ["app", "speedup"],
            [["LavaMD", 1.234], ["Srad", 2.5]],
            title="Figure X",
        )
        lines = text.splitlines()
        assert lines[0] == "Figure X"
        assert "app" in lines[1] and "speedup" in lines[1]
        assert set(lines[2].replace(" ", "")) == {"-"}
        assert "LavaMD" in lines[3]
        assert "1.234" in lines[3]

    def test_column_alignment(self):
        text = render_table(["a", "b"], [["x", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2])

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        text = render_table(["v"], [[0.123456], [12.3456], [12345.6], [0]])
        assert "0.123" in text
        assert "12.3" in text
        assert "12,346" in text

    def test_no_title(self):
        text = render_table(["a"], [["x"]])
        assert text.splitlines()[0].startswith("a")


class TestRenderHistogram:
    def test_basic_shape(self):
        text = render_histogram(["a", "b"], [1.0, 2.0], title="T", width=10)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_zero_values(self):
        text = render_histogram(["a"], [0.0])
        assert "#" not in text

    def test_alignment(self):
        text = render_histogram(["x", "longer"], [1, 1])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_validation(self):
        with pytest.raises(ValueError):
            render_histogram(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            render_histogram(["a"], [-1.0])
        with pytest.raises(ValueError):
            render_histogram(["a"], [1.0], width=0)
