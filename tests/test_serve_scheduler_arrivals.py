"""Arrival-semantics tests shared across every interleaving discipline.

Two of these are regression tests for real scheduler bugs fixed in the
open-loop serving PR — both fail on the pre-fix code:

- ``FifoScheduler.schedule`` silently ignored ``TenantStream.arrival``
  (it claimed FIFO-by-arrival but admitted everyone at time zero).  The
  scheduler now gates admission on emitted-warp count like the other
  disciplines and logs every admission — forced idle-time admissions
  included — in ``scheduler.admissions``.
- ``WeightedFairScheduler`` seeded a late arrival's virtual time from
  ``heap[0][0]``, which restarts at 0.0 whenever the heap is empty at
  admission time; the newcomer then monopolises the machine until its
  virtual time catches up with tenants that had already been charged for
  their service.  The scheduler now tracks a monotonic global virtual
  clock and seeds arrivals at ``max(clock, heap-min)``.
"""

import pytest

from repro.errors import ConfigError
from repro.serve.scheduler import (
    SCHEDULER_NAMES,
    WeightedFairScheduler,
    make_scheduler,
    merge_streams,
)
from repro.sim.gpu import WarpAccess

PAGE = 65536


class FakeStream:
    """Minimal stand-in exposing what the disciplines read."""

    def __init__(self, index, warps, weight=1.0, arrival=0):
        self.index = index
        self.weight = weight
        self.arrival = arrival
        self._warps = warps

    def __iter__(self):
        return iter(self._warps)


def warps(n, pages_per_warp=1):
    return [
        WarpAccess(pages=tuple(range(i, i + pages_per_warp)), write=False)
        for i in range(n)
    ]


def max_consecutive(order, tenant):
    best = run = 0
    for t in order:
        run = run + 1 if t == tenant else 0
        best = max(best, run)
    return best


def max_interior_run(order, tenant):
    """Longest consecutive run of ``tenant`` excluding the trailing run
    (holding an otherwise-empty machine is legitimate, not monopoly)."""
    end = len(order)
    while end and order[end - 1] == tenant:
        end -= 1
    return max_consecutive(order[:end], tenant)


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
class TestArrivalSemanticsAllDisciplines:
    """Every discipline honours the arrival gate the same way."""

    def test_no_tenant_emits_before_its_arrival(self, name):
        """Unless force-admitted on an idle machine, a tenant's first
        warp comes at or after ``arrival`` warps have been emitted."""
        streams = [
            FakeStream(0, warps(6), arrival=0),
            FakeStream(1, warps(6), arrival=4),
            FakeStream(2, warps(6), arrival=9),
        ]
        scheduler = make_scheduler(name)
        order = [t for t, _ in scheduler.schedule(streams, PAGE)]
        forced = {a.tenant for a in scheduler.admissions if a.forced}
        for stream in streams:
            if stream.index in forced:
                continue
            assert order.index(stream.index) >= stream.arrival, (
                f"{name}: tenant {stream.index} started before its arrival"
            )

    def test_admission_log_matches_arrivals(self, name):
        """Each tenant is admitted exactly once, never before its
        arrival (except explicit idle-machine force admissions)."""
        streams = [
            FakeStream(0, warps(3), arrival=0),
            FakeStream(1, warps(3), arrival=2),
            FakeStream(2, warps(3), arrival=50),  # after everyone drains
        ]
        scheduler = make_scheduler(name)
        list(scheduler.schedule(streams, PAGE))
        admitted = [a.tenant for a in scheduler.admissions]
        assert sorted(admitted) == [0, 1, 2]
        for admission in scheduler.admissions:
            if admission.forced:
                continue
            arrival = streams[admission.tenant].arrival
            assert admission.emitted >= arrival

    def test_idle_machine_force_admits(self, name):
        """A gap between drain and the next arrival force-admits the
        earliest waiter instead of deadlocking — and says so."""
        streams = [
            FakeStream(0, warps(2), arrival=0),
            FakeStream(1, warps(2), arrival=40),
        ]
        scheduler = make_scheduler(name)
        emitted = list(scheduler.schedule(streams, PAGE))
        assert len(emitted) == 4  # nothing lost to the idle gap
        forced = [a for a in scheduler.admissions if a.forced]
        assert [a.tenant for a in forced] == [1]
        assert forced[0].emitted == 2  # machine went idle after 2 warps

    def test_all_warps_emitted_exactly_once(self, name):
        streams = [
            FakeStream(0, warps(5), arrival=0),
            FakeStream(1, warps(7), arrival=3),
            FakeStream(2, warps(2), arrival=6),
        ]
        emitted = list(make_scheduler(name).schedule(streams, PAGE))
        counts = {}
        for t, _ in emitted:
            counts[t] = counts.get(t, 0) + 1
        assert counts == {0: 5, 1: 7, 2: 2}

    def test_epoch_validation(self, name):
        with pytest.raises(ConfigError):
            make_scheduler(name, epoch=0)

    def test_epoch_one_matches_default(self, name):
        streams = lambda: [  # noqa: E731 - fresh iterators per run
            FakeStream(0, warps(6), weight=2.0, arrival=0),
            FakeStream(1, warps(6), weight=1.0, arrival=4),
        ]
        default = list(make_scheduler(name).schedule(streams(), PAGE))
        explicit = list(make_scheduler(name, epoch=1).schedule(streams(), PAGE))
        assert default == explicit


class TestFifoArrivalRegression:
    """Pre-fix ``FifoScheduler`` ignored arrivals entirely: it had no
    admission bookkeeping at all (no ``admissions`` log), and admitted
    every tenant at time zero."""

    def test_late_arrival_is_gated_not_preadmitted(self):
        streams = [
            FakeStream(0, warps(4), arrival=0),
            FakeStream(1, warps(4), arrival=3),
        ]
        scheduler = make_scheduler("fifo")
        list(scheduler.schedule(streams, PAGE))
        # The pre-fix scheduler exposes no admissions log; the fixed one
        # records tenant 1's admission at >= its arrival stamp.
        late = [a for a in scheduler.admissions if a.tenant == 1]
        assert len(late) == 1
        assert not late[0].forced
        assert late[0].emitted >= 3


class TestWfqMonopolisationRegression:
    """The pre-fix heap-seeded virtual time lets a late arrival run
    unboundedly long.  Scenario (1-page warps, equal weights, epoch=4):
    tenant A has 20 warps; tenant B arrives after 10 emissions, when A's
    accrued virtual time is ~10 pages.  Old code seeds B at heap-min —
    but with A mid-batch the heap is empty, so B restarts at vt=0.0 and
    emits ~10 consecutive warps before A gets the machine back.  Fixed
    code seeds B at the global clock, so B alternates with A and can
    never hold the machine for more than one epoch."""

    def test_late_arrival_cannot_monopolise(self):
        streams = [
            FakeStream(0, warps(20), arrival=0),
            FakeStream(1, warps(20), arrival=10),
        ]
        scheduler = WeightedFairScheduler(epoch=4)
        order = [t for t, _ in scheduler.schedule(streams, PAGE)]
        assert max_interior_run(order, 1) <= scheduler.epoch, (
            f"late arrival monopolised the machine: {order}"
        )

    def test_late_arrival_not_starved_either(self):
        """The fix must not overshoot: the newcomer still gets its fair
        alternating share once admitted."""
        streams = [
            FakeStream(0, warps(20), arrival=0),
            FakeStream(1, warps(20), arrival=10),
        ]
        order = [
            t for t, _ in WeightedFairScheduler(epoch=4).schedule(streams, PAGE)
        ]
        first = order.index(1)
        window = order[first : first + 16]
        assert window.count(1) >= 4

    def test_post_idle_admissions_stay_fair(self):
        """A force-admitted tenant (heap empty, clock seeding) and a
        due-admitted one (heap-min seeding) an instant later must
        alternate — neither seeding path hands out an advantage."""
        streams = [
            FakeStream(0, warps(4), arrival=0),
            FakeStream(1, warps(8), arrival=5),  # force-admitted at 4
            FakeStream(2, warps(8), arrival=5),  # due-admitted at 5
        ]
        order = [
            t for t, _ in WeightedFairScheduler(epoch=1).schedule(streams, PAGE)
        ]
        assert max_interior_run(order, 1) <= 2
        assert max_interior_run(order, 2) <= 2


class TestEpochBatching:
    def test_round_robin_epoch_groups_warps_in_runs(self):
        order = [
            t
            for t, _ in make_scheduler("round-robin", epoch=4).schedule(
                [
                    FakeStream(0, warps(8), arrival=0),
                    FakeStream(1, warps(8), arrival=0),
                ],
                PAGE,
            )
        ]
        assert order == [0] * 4 + [1] * 4 + [0] * 4 + [1] * 4

    def test_weighted_fair_epoch_is_bounded_by_fairness(self):
        """WFQ's epoch is a *cap*, not a grant: a batch ends as soon as
        another tenant's virtual time falls behind, so equal-weight
        co-resident tenants still interleave tightly."""
        order = [
            t
            for t, _ in make_scheduler("weighted-fair", epoch=4).schedule(
                [
                    FakeStream(0, warps(8), arrival=0),
                    FakeStream(1, warps(8), arrival=0),
                ],
                PAGE,
            )
        ]
        assert max_interior_run(order, 0) <= 4
        assert max_interior_run(order, 1) <= 4
        # still fair: both tenants' warps fully emitted
        assert order.count(0) == order.count(1) == 8

    def test_merge_streams_epoch_passthrough(self):
        streams = [
            FakeStream(0, warps(6), arrival=0),
            FakeStream(1, warps(6), arrival=0),
        ]
        merged = list(merge_streams(streams, "round-robin", PAGE, epoch=3))
        order = [t for t, _ in merged]
        assert order[:6] == [0, 0, 0, 1, 1, 1]
