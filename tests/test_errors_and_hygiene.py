"""Error-hierarchy contract and package hygiene checks."""

import importlib
import pkgutil

import pytest

import repro
from repro.errors import (
    CapacityError,
    ConfigError,
    GMTError,
    PageStateError,
    SimulationError,
    TraceError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [CapacityError, ConfigError, PageStateError, SimulationError, TraceError],
    )
    def test_all_derive_from_gmt_error(self, exc):
        assert issubclass(exc, GMTError)
        with pytest.raises(GMTError):
            raise exc("boom")

    def test_one_except_clause_catches_everything(self):
        """The embedding contract: ``except GMTError`` is sufficient."""
        from repro.core.config import GMTConfig

        caught = None
        try:
            GMTConfig(tier1_frames=0, tier2_frames=0)
        except GMTError as err:
            caught = err
        assert isinstance(caught, ConfigError)


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        yield info.name


class TestPackageHygiene:
    def test_every_module_imports(self):
        for name in _walk_modules():
            importlib.import_module(name)

    def test_every_module_has_a_docstring(self):
        missing = []
        for name in _walk_modules():
            module = importlib.import_module(name)
            if not (module.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_api_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)
