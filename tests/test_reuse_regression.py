"""Unit tests for the incremental OLS regression (Eq. 2/3)."""

import pytest

from repro.reuse.regression import IncrementalOLS, LinearModel, fit_ols


class TestLinearModel:
    def test_predict(self):
        m = LinearModel(m=2.0, b=3.0)
        assert m.predict(4.0) == 11.0

    def test_frozen(self):
        with pytest.raises(Exception):
            LinearModel(m=1.0, b=0.0).m = 2.0


class TestFitOls:
    def test_perfect_line(self):
        model = fit_ols([1, 2, 3, 4], [3, 5, 7, 9])  # y = 2x + 1
        assert model.m == pytest.approx(2.0)
        assert model.b == pytest.approx(1.0)

    def test_noisy_line_close(self):
        xs = list(range(100))
        ys = [0.5 * x + 10 + (-1) ** x * 0.1 for x in xs]
        model = fit_ols(xs, ys)
        assert model.m == pytest.approx(0.5, abs=0.01)
        assert model.b == pytest.approx(10.0, abs=0.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_ols([1, 2], [1])

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            fit_ols([1], [1])

    def test_matches_numpy_polyfit(self):
        import numpy as np

        rng = np.random.default_rng(3)
        xs = rng.uniform(0, 1000, 200)
        ys = 1.7 * xs + 42 + rng.normal(0, 5, 200)
        model = fit_ols(list(xs), list(ys))
        m_np, b_np = np.polyfit(xs, ys, 1)
        assert model.m == pytest.approx(m_np, rel=1e-9)
        assert model.b == pytest.approx(b_np, rel=1e-9)


class TestIncrementalOLS:
    def test_not_ready_initially(self):
        assert not IncrementalOLS().ready

    def test_batched_equals_oneshot(self):
        xs = [1.0, 2.0, 5.0, 7.0, 11.0, 13.0]
        ys = [2.0, 3.0, 9.0, 15.0, 20.0, 27.0]
        one = fit_ols(xs, ys)
        inc = IncrementalOLS()
        inc.update(xs[:3], ys[:3])
        inc.update(xs[3:], ys[3:])
        batched = inc.model()
        assert batched.m == pytest.approx(one.m)
        assert batched.b == pytest.approx(one.b)

    def test_count(self):
        inc = IncrementalOLS()
        inc.update([1, 2], [1, 2])
        inc.add(3, 3)
        assert inc.count == 3

    def test_constant_x_falls_back_to_ratio(self):
        # Perfectly periodic workloads have constant VTD; the degenerate
        # fit is the proportional line through the origin.
        inc = IncrementalOLS()
        inc.update([10.0, 10.0, 10.0], [5.0, 6.0, 7.0])
        assert inc.ready
        model = inc.model()
        assert model.b == 0.0
        assert model.m == pytest.approx(0.6)  # mean(y)/mean(x)

    def test_constant_zero_x_rejected(self):
        inc = IncrementalOLS()
        inc.update([0.0, 0.0], [1.0, 2.0])
        assert not inc.ready
        with pytest.raises(ValueError):
            inc.model()

    def test_update_length_mismatch(self):
        with pytest.raises(ValueError):
            IncrementalOLS().update([1, 2], [1])
