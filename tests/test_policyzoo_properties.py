"""Property-based tests for the eviction-policy zoo.

Mirrors ``test_check_properties.py``: the serving layer's quota
enforcement relies on ``select_victim_where`` leaving non-matching pages
completely untouched, and the conformance audit relies on each policy's
``check_integrity`` invariants actually holding under arbitrary
workloads.  Hypothesis drives random op sequences against a naive model
and probes the structural invariants the unit tests assert by example:
the S3-FIFO ghost bound and queue disjointness, and the generational
clock's monotone generation ids.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policyzoo import ZOO_POLICY_NAMES, make_eviction_policy
from repro.policyzoo.mglru import GenClockReplacement
from repro.policyzoo.s3fifo import S3FifoReplacement

CAPACITY = 8

# Op sequences over a small page universe.  insert/touch/remove/evict;
# each op is applied only when legal, so every generated sequence is a
# valid workload for every policy.
ops_st = st.lists(
    st.tuples(
        st.sampled_from(["insert", "touch", "remove", "evict"]),
        st.integers(min_value=0, max_value=20),
    ),
    max_size=60,
)
pages_st = st.lists(
    st.integers(min_value=0, max_value=40), min_size=1, max_size=CAPACITY, unique=True
)
subset_st = st.sets(st.integers(min_value=0, max_value=40))


def apply_ops(policy, ops):
    """Drive the policy with the legal subset of ``ops``; returns the
    model resident set."""
    resident = set()
    for op, page in ops:
        if op == "insert" and page not in resident and len(resident) < CAPACITY:
            policy.insert(page, referenced=bool(page % 2))
            resident.add(page)
        elif op == "touch" and page in resident:
            policy.touch(page)
        elif op == "remove" and page in resident:
            policy.remove(page)
            resident.discard(page)
        elif op == "evict" and resident:
            resident.discard(policy.select_victim())
    return resident


class TestZooContract:
    @settings(max_examples=60)
    @given(ops=ops_st, name=st.sampled_from(ZOO_POLICY_NAMES))
    def test_tracks_the_model_resident_set(self, ops, name):
        policy = make_eviction_policy(name, CAPACITY)
        resident = apply_ops(policy, ops)
        assert sorted(policy.pages()) == sorted(resident)
        assert len(policy) == len(resident)
        policy.check_integrity()

    @settings(max_examples=60)
    @given(
        pages=pages_st, matching=subset_st, name=st.sampled_from(ZOO_POLICY_NAMES)
    )
    def test_filtered_sweep_leaves_non_matching_resident(
        self, pages, matching, name
    ):
        policy = make_eviction_policy(name, CAPACITY)
        for page in pages:
            policy.insert(page, referenced=bool(page % 2))

        victim = policy.select_victim_where(lambda p: p in matching)

        if not (set(pages) & matching):
            assert victim is None
            assert sorted(policy.pages()) == sorted(pages)
        else:
            assert victim in matching
            assert victim not in policy
            assert sorted(policy.pages()) == sorted(set(pages) - {victim})
        policy.check_integrity()

    @settings(max_examples=40)
    @given(ops=ops_st, matching=subset_st, name=st.sampled_from(ZOO_POLICY_NAMES))
    def test_sweeps_compose_with_arbitrary_histories(self, ops, matching, name):
        policy = make_eviction_policy(name, CAPACITY)
        resident = apply_ops(policy, ops)
        victim = policy.select_victim_where(lambda p: p in matching)
        if victim is not None:
            resident.discard(victim)
        assert sorted(policy.pages()) == sorted(resident)
        policy.check_integrity()


class TestS3FifoInvariants:
    @settings(max_examples=60)
    @given(ops=ops_st)
    def test_small_and_main_are_disjoint(self, ops):
        policy = S3FifoReplacement(CAPACITY)
        apply_ops(policy, ops)
        assert not set(policy._small) & set(policy._main)

    @settings(max_examples=60)
    @given(ops=ops_st)
    def test_ghost_is_bounded_and_non_resident(self, ops):
        policy = S3FifoReplacement(CAPACITY)
        resident = apply_ops(policy, ops)
        ghosts = set(policy.ghost_pages())
        assert len(ghosts) <= policy.ghost_bound
        assert not ghosts & resident


class TestGenClockInvariants:
    @settings(max_examples=60)
    @given(ops=ops_st)
    def test_generations_are_monotone_and_bounded_by_youngest(self, ops):
        policy = GenClockReplacement(CAPACITY, max_gens=4)
        youngest_seen = 0
        resident = set()
        for op, page in ops:
            if op == "insert" and page not in resident and len(resident) < CAPACITY:
                policy.insert(page)
                resident.add(page)
            elif op == "touch" and page in resident:
                policy.touch(page)
            elif op == "remove" and page in resident:
                policy.remove(page)
                resident.discard(page)
            elif op == "evict" and resident:
                resident.discard(policy.select_victim())
            assert policy.youngest_generation >= youngest_seen
            youngest_seen = policy.youngest_generation
            for p in resident:
                assert policy.generation_of(p) <= youngest_seen

    @settings(max_examples=60)
    @given(pages=pages_st, matching=subset_st)
    def test_filtered_sweep_preserves_non_matching_generations(
        self, pages, matching
    ):
        policy = GenClockReplacement(CAPACITY, max_gens=4)
        for page in pages:
            policy.insert(page)
        before = {p: policy.generation_of(p) for p in pages}

        victim = policy.select_victim_where(lambda p: p in matching)

        for page in pages:
            if page == victim:
                continue
            assert policy.generation_of(page) == before[page]
