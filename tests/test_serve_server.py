"""End-to-end tests for the multi-tenant serving layer (repro.serve)."""

import pytest

from repro.core.runtime import GMTRuntime
from repro.core.stats import RuntimeStats
from repro.errors import ConfigError, SimulationError
from repro.experiments.harness import default_config, get_workload
from repro.serve import (
    QuotaConfig,
    SplitStats,
    TenantServer,
    TenantSpec,
    build_tenants,
    namespace_base,
    owner_of_page,
    split_frames,
)

SCALE = 8192  # tiny geometry: Tier-1 = 32 frames, Tier-2 = 128


@pytest.fixture(scope="module")
def config():
    return default_config(SCALE)


def make_server(config, names, **kwargs):
    streams = build_tenants(list(names), config)
    return TenantServer(config, streams, **kwargs)


class TestNamespacing:
    def test_tenant_zero_is_identity(self):
        assert namespace_base(0) == 0

    def test_owner_roundtrip(self):
        for tenant in (0, 1, 7, 400):
            page = namespace_base(tenant) + 12345
            assert owner_of_page(page) == tenant

    def test_streams_never_alias(self, config):
        streams = build_tenants(["bfs", "bfs"], config)
        pages0 = {p for w in streams[0] for p in w.pages}
        pages1 = {p for w in streams[1] for p in w.pages}
        assert not pages0 & pages1


class TestBuildTenants:
    def test_duplicate_names_disambiguated(self, config):
        streams = build_tenants(["bfs", "bfs", "bfs"], config)
        assert [s.name for s in streams] == ["bfs", "bfs-2", "bfs-3"]

    def test_working_set_is_shared(self, config):
        solo = build_tenants(["bfs"], config)
        pair = build_tenants(["bfs", "pagerank"], config)
        assert pair[0].footprint_pages == solo[0].footprint_pages // 2

    def test_empty_rejected(self, config):
        with pytest.raises(ConfigError):
            build_tenants([], config)

    def test_specs_pass_through(self, config):
        streams = build_tenants(
            [TenantSpec(name="hot", workload="hotspot", weight=2.0, arrival=5)],
            config,
        )
        assert streams[0].weight == 2.0
        assert streams[0].arrival == 5


class TestSoloReproduction:
    """Acceptance: a 1-tenant serve run reproduces the single-stream
    RunResult exactly."""

    def test_matches_single_stream_run(self, config):
        workload = get_workload("bfs", config)
        solo = GMTRuntime(config).run(workload)
        outcome = make_server(config, ["bfs"]).run(solo_baselines=False)
        served = outcome.result
        assert served.elapsed_ns == solo.elapsed_ns
        for field in RuntimeStats.counter_names():
            assert getattr(served.stats, field) == getattr(solo.stats, field), field

    def test_solo_slowdown_is_one(self, config):
        outcome = make_server(config, ["bfs"]).run()
        assert outcome.tenants[0].slowdown == pytest.approx(1.0)
        assert outcome.fairness()["jain_index"] == pytest.approx(1.0)


class TestSharedRun:
    @pytest.fixture(scope="class")
    def outcome(self, config):
        server = make_server(config, ["bfs", "pagerank"])
        result = server.run()
        return server, result

    def test_tenant_slices_sum_to_aggregate(self, outcome):
        server, result = outcome
        aggregate = result.result.stats
        assert isinstance(aggregate, SplitStats)
        for field in RuntimeStats.counter_names():
            total = sum(getattr(t.stats, field) for t in result.tenants)
            assert total == getattr(aggregate, field), field

    def test_every_tenant_issued_work(self, outcome):
        _, result = outcome
        for t in result.tenants:
            assert t.issued_warps > 0
            assert t.issued_bytes > 0

    def test_finish_within_makespan(self, outcome):
        _, result = outcome
        for t in result.tenants:
            assert 0 < t.finish_ns <= result.elapsed_ns + 1e-6

    def test_slowdowns_and_fairness_reported(self, outcome):
        _, result = outcome
        fairness = result.fairness()
        assert fairness["min_slowdown"] > 0
        assert fairness["max_slowdown"] >= fairness["min_slowdown"]
        assert 0 < fairness["jain_index"] <= 1.0

    def test_table_renders(self, outcome):
        _, result = outcome
        text = result.to_table()
        assert "bfs" in text and "pagerank" in text
        assert "Jain" in text

    def test_invariants_hold_after_run(self, outcome):
        server, _ = outcome
        server.runtime.check_invariants()


class TestStaticQuotas:
    """Acceptance: with static quotas no tenant's residency ever exceeds
    its frame budget."""

    @pytest.fixture(scope="class")
    def served(self, config):
        server = make_server(
            config,
            ["bfs", "pagerank"],
            quota=QuotaConfig(mode="static"),
        )
        result = server.run(solo_baselines=False)
        return server, result

    def test_tier1_peaks_within_budget(self, served):
        server, result = served
        quotas = server.runtime.quotas
        for t in result.tenants:
            idx = result.tenants.index(t)
            assert t.peak_tier1 <= quotas.static_tier1_budget(idx)
            assert t.peak_tier1 == server.runtime.tier1.peak_owner_count(idx)

    def test_tier2_peaks_within_budget(self, served):
        server, result = served
        quotas = server.runtime.quotas
        for idx, t in enumerate(result.tenants):
            assert t.peak_tier2 <= quotas.static_tier2_budget(idx)

    def test_quota_machinery_engaged(self, served):
        server, _ = served
        stats = server.runtime.stats
        assert stats.quota_evictions > 0 or stats.t2_quota_denials > 0

    def test_budgets_partition_capacity(self, config, served):
        server, _ = served
        quotas = server.runtime.quotas
        n = len(server.streams)
        assert (
            sum(quotas.static_tier1_budget(i) for i in range(n))
            <= config.tier1_frames
        )
        assert (
            sum(quotas.static_tier2_budget(i) for i in range(n))
            <= config.tier2_frames
        )


class TestDynamicQuotas:
    def test_fifo_lets_lone_tenant_exceed_static_share(self, config):
        # Under FIFO the second tenant runs alone after the first drains;
        # dynamic reclaim should let it grow past its static share.
        server = make_server(
            config,
            ["bfs", "pagerank"],
            discipline="fifo",
            quota=QuotaConfig(mode="dynamic", idle_window=50),
        )
        result = server.run(solo_baselines=False)
        quotas = server.runtime.quotas
        grew = any(
            t.peak_tier1 > quotas.static_tier1_budget(i)
            for i, t in enumerate(result.tenants)
        )
        assert grew
        # Physical capacity is still respected.
        assert sum(server.runtime.tier1.owner_counts().values()) <= config.tier1_frames


class TestValidation:
    def test_unknown_discipline(self, config):
        streams = build_tenants(["bfs"], config)
        with pytest.raises(ConfigError):
            TenantServer(config, streams, discipline="lottery")

    def test_streams_must_be_indexed_in_order(self, config):
        streams = build_tenants(["bfs", "pagerank"], config)
        with pytest.raises(ConfigError):
            TenantServer(config, list(reversed(streams)))

    def test_no_streams(self, config):
        with pytest.raises(ConfigError):
            TenantServer(config, [])

    def test_bad_quota_mode(self):
        with pytest.raises(ConfigError):
            QuotaConfig(mode="strict")

    def test_zero_solo_baseline_raises(self, config):
        outcome = make_server(config, ["bfs"]).run(solo_ns={0: 0.0})
        with pytest.raises(SimulationError):
            outcome.tenants[0].slowdown


class TestSplitFrames:
    def test_even_split(self):
        assert split_frames(8, [1.0, 1.0]) == [4, 4]

    def test_weighted_split_sums_to_capacity(self):
        budgets = split_frames(10, [2.0, 1.0, 1.0])
        assert sum(budgets) == 10
        assert budgets[0] == 5

    def test_everyone_gets_a_frame(self):
        budgets = split_frames(4, [100.0, 1.0, 1.0])
        assert min(budgets) >= 1
        assert sum(budgets) <= 4

    def test_too_few_frames_rejected(self):
        with pytest.raises(ConfigError):
            split_frames(2, [1.0, 1.0, 1.0])

    def test_zero_capacity(self):
        assert split_frames(0, [1.0, 1.0]) == [0, 0]


class TestTenantRegistries:
    def test_one_registry_per_tenant_with_label(self, config):
        server = make_server(config, ["bfs", "pagerank"])
        server.run(solo_baselines=False)
        registries = server.tenant_registries()
        assert len(registries) == 2
        labels = [r.const_labels["tenant"] for r in registries]
        assert labels == ["bfs", "pagerank"]
