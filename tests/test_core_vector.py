"""Vector replay engine: byte-identity with the scalar runtime.

The contract under test (docs/performance.md): ``engine="vector"`` is a
pure speed choice — every counter, the elapsed time, the confusion
matrix, and the final page-table state must match the scalar runtime
bit for bit, on any trace, under any policy.  The property tests drive
randomized warp streams through both engines; the unit tests pin the
factory surface, the clock port, the float-accumulation identity, the
instrument fallback, and the dense-page-id capacity guard.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ENGINE_NAMES, GMTConfig, make_runtime, resolve_engine
from repro.core.runtime import GMTRuntime
from repro.core.vector import (
    VectorClock,
    VectorEngineMixin,
    VectorPageStore,
    VectorReplayEngine,
    clear_trace_cache,
    materialize_trace,
    vector_variant,
)
from repro.errors import ConfigError, SimulationError
from repro.experiments.harness import build_runtime, default_config
from repro.mem.clock_replacement import ClockReplacement
from repro.sim.cost import sequential_float_sum
from repro.sim.gpu import WarpAccess

N_PAGES = 48  # footprint; tier1=8 frames forces heavy eviction traffic


def small_config(**overrides):
    return GMTConfig(tier1_frames=8, tier2_frames=16, **overrides)


def make_trace(warps):
    """[(pages_tuple, write), ...] -> re-iterable WarpAccess list."""
    return [WarpAccess(pages=tuple(pages), write=write) for pages, write in warps]


def run_pair(config, trace):
    scalar = make_runtime(config, engine="scalar")
    vector = make_runtime(config, engine="vector")
    return scalar, scalar.run(trace), vector, vector.run(trace)


def assert_results_identical(r_s, r_v):
    for counter in type(r_s.stats).counter_names():
        lhs = getattr(r_s.stats, counter)
        rhs = getattr(r_v.stats, counter)
        assert lhs == rhs, f"{counter}: scalar={lhs} vector={rhs}"
    assert r_s.elapsed_ns == r_v.elapsed_ns
    assert r_s.stats.confusion == r_v.stats.confusion


def page_table_snapshot(runtime, n_pages):
    rows = []
    for page in range(n_pages):
        state = runtime.page_table.peek(page)
        if state is None:
            rows.append(None)
            continue
        rows.append(
            (
                state.location,
                state.dirty,
                state.prefetched,
                state.last_access_ts,
                state.last_eviction_ts,
                state.access_count,
                state.eviction_count,
            )
        )
    return rows


def assert_engines_agree(config, trace):
    scalar, r_s, vector, r_v = run_pair(config, trace)
    assert_results_identical(r_s, r_v)
    assert page_table_snapshot(scalar, N_PAGES) == page_table_snapshot(
        vector, N_PAGES
    )


# ----------------------------------------------------------------------
# property: random traces, both engines, identical everything
# ----------------------------------------------------------------------
warp_st = st.tuples(
    st.lists(st.integers(0, N_PAGES - 1), min_size=1, max_size=4),
    st.booleans(),
)
trace_st = st.lists(warp_st, min_size=0, max_size=150)


class TestEngineParityProperties:
    @settings(max_examples=25, deadline=None)
    @given(warps=trace_st, policy=st.sampled_from(["reuse", "tier-order", "random"]))
    def test_random_traces_are_byte_identical(self, warps, policy):
        config = small_config(policy=policy)
        assert_engines_agree(config, make_trace(warps))

    @settings(max_examples=15, deadline=None)
    @given(warps=trace_st, degree=st.sampled_from([1, 4]))
    def test_prefetch_traces_are_byte_identical(self, warps, degree):
        config = small_config(prefetch_degree=degree)
        assert_engines_agree(config, make_trace(warps))

    @settings(max_examples=10, deadline=None)
    @given(warps=trace_st)
    def test_zoo_policy_falls_back_but_stays_identical(self, warps):
        # No vector twin for s3fifo: the vector runtime must silently
        # replay scalar and still match.
        config = small_config(tier1_eviction="s3fifo")
        assert_engines_agree(config, make_trace(warps))

    @settings(max_examples=10, deadline=None)
    @given(warps=trace_st)
    def test_hit_heavy_traces_are_byte_identical(self, warps):
        # Footprint fits Tier-1: after compulsory misses everything is a
        # hit, exercising the batch-retire path almost exclusively.
        config = GMTConfig(tier1_frames=64, tier2_frames=64)
        trace = [
            WarpAccess(pages=tuple(p % 16 for p in pages), write=write)
            for pages, write in [(w[0], w[1]) for w in warps]
        ]
        assert_engines_agree(config, trace)


# ----------------------------------------------------------------------
# property: the VectorClock is a literal ClockReplacement port
# ----------------------------------------------------------------------
clock_ops_st = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 15)), max_size=200
)


class TestVectorClockParity:
    @settings(max_examples=50, deadline=None)
    @given(ops=clock_ops_st)
    def test_op_sequences_match_scalar_clock(self, ops):
        store = VectorPageStore()
        vec = VectorClock(4, store)
        ref = ClockReplacement(4)
        for code, page in ops:
            if code == 0:
                if page not in ref and not ref.full:
                    ref.insert(page)
                    vec.insert(page)
            elif code == 1:
                if page in ref:
                    ref.touch(page)
                    vec.touch(page)
            elif code == 2:
                if page in ref:
                    ref.give_second_chance(page)
                    vec.give_second_chance(page)
            elif len(ref):
                assert ref.peek_victim() == vec.peek_victim()
                assert ref.select_victim() == vec.select_victim()
            assert len(ref) == len(vec)
            assert ref.full == vec.full
            assert ref.pages() == vec.pages()

    def test_touch_many_matches_repeated_touch(self):
        store = VectorPageStore()
        vec = VectorClock(8, store)
        ref = ClockReplacement(8)
        for page in range(8):
            vec.insert(page, referenced=False)
            ref.insert(page, referenced=False)
        batch = np.array([1, 3, 3, 5], dtype=np.int64)
        vec.touch_many(batch)
        for page in batch:
            ref.touch(int(page))
        victims = [ref.select_victim() for _ in range(8)]
        assert victims == [vec.select_victim() for _ in range(8)]


# ----------------------------------------------------------------------
# property: sequential float accumulation identity
# ----------------------------------------------------------------------
class TestSequentialFloatSum:
    @settings(max_examples=100, deadline=None)
    @given(
        base=st.floats(0, 1e12, allow_nan=False),
        step=st.floats(0, 1e6, allow_nan=False),
        count=st.integers(0, 500),
    )
    def test_matches_python_loop_bit_for_bit(self, base, step, count):
        expected = base
        for _ in range(count):
            expected += step
        assert sequential_float_sum(base, step, count) == expected


# ----------------------------------------------------------------------
# factory / engine-selection surface
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_engine_names(self):
        assert set(ENGINE_NAMES) == {"scalar", "vector", "auto"}

    def test_bad_engine_rejected(self):
        with pytest.raises(ConfigError):
            resolve_engine("simd", small_config())
        with pytest.raises(ConfigError):
            small_config(engine="simd")

    def test_explicit_engine_wins(self):
        config = small_config(engine="scalar")
        assert resolve_engine("vector", config) == "vector"
        assert resolve_engine(None, config) == "scalar"

    def test_auto_picks_vector_when_uninstrumented(self):
        assert resolve_engine("auto", small_config()) == "vector"

    def test_auto_demotes_on_instruments_and_zoo_policies(self):
        config = small_config()
        assert resolve_engine("auto", config, recorder=True) == "scalar"
        assert resolve_engine("auto", config, checks=True) == "scalar"
        zoo = small_config(tier1_eviction="mglru")
        assert resolve_engine("auto", zoo) == "scalar"

    def test_make_runtime_engine_classes(self):
        scalar = make_runtime(small_config(), engine="scalar")
        vector = make_runtime(small_config(), engine="vector")
        assert type(scalar) is GMTRuntime
        assert scalar.engine_name == "scalar"
        assert isinstance(vector, VectorReplayEngine)
        assert vector.engine_name == "vector"

    def test_vector_variant_is_memoized(self):
        from repro.baselines.bam import BamRuntime

        assert vector_variant(GMTRuntime) is VectorReplayEngine
        assert vector_variant(VectorReplayEngine) is VectorReplayEngine
        variant = vector_variant(BamRuntime)
        assert variant is vector_variant(BamRuntime)
        assert issubclass(variant, VectorEngineMixin)
        assert issubclass(variant, BamRuntime)

    def test_harness_build_runtime_routes_engine(self):
        config = default_config(scale=8192)
        runtime = build_runtime("reuse", config, engine="vector")
        assert runtime.engine_name == "vector"


# ----------------------------------------------------------------------
# instrument fallback, trace cache, capacity guard
# ----------------------------------------------------------------------
class TestFallbacksAndGuards:
    def test_instrumented_vector_runtime_replays_scalar_and_matches(self):
        trace = make_trace([((p % N_PAGES, (p * 7) % N_PAGES), p % 3 == 0)
                            for p in range(300)])
        config = small_config()
        r_s = make_runtime(config, engine="scalar").run(trace)
        vector = make_runtime(config, engine="vector")
        vector.enable_periodic_checks(every=100)
        assert not vector._vector_ready()
        r_v = vector.run(trace)
        assert_results_identical(r_s, r_v)

    def test_trace_cache_materializes_once(self):
        from repro.workloads import make_workload

        clear_trace_cache()
        workload = make_workload("hotspot", default_config(scale=8192))
        arrays = materialize_trace(workload)
        assert materialize_trace(workload) is arrays
        assert arrays.n_warps > 0
        assert arrays.pages.dtype == np.int64
        clear_trace_cache()

    def test_dense_capacity_guard(self):
        store = VectorPageStore()
        with pytest.raises(SimulationError):
            store.ensure(VectorPageStore.MAX_PAGES + 1)

    def test_vector_desync_injection_is_detected(self):
        from repro.check.differential import run_conformance

        report = run_conformance(
            "hotspot",
            scale=8192,
            inject="vector-desync",
            engine="vector",
            metamorphic=False,
            serve=False,
        )
        assert not report.ok
        assert report.violations

    def test_vector_desync_injection_needs_vector_engine(self):
        from repro.check.differential import run_conformance

        with pytest.raises(ConfigError):
            run_conformance(
                "hotspot",
                scale=8192,
                inject="vector-desync",
                engine="scalar",
                metamorphic=False,
                serve=False,
            )
