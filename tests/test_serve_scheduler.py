"""Unit tests for the serving-layer interleaving disciplines."""

import pytest

from repro.errors import ConfigError
from repro.serve.scheduler import (
    SCHEDULER_NAMES,
    FifoScheduler,
    RoundRobinScheduler,
    WeightedFairScheduler,
    make_scheduler,
    merge_streams,
    warp_bytes,
)
from repro.sim.gpu import WarpAccess

PAGE = 65536


class FakeStream:
    """Minimal stand-in exposing what the disciplines read."""

    def __init__(self, index, warps, weight=1.0, arrival=0):
        self.index = index
        self.weight = weight
        self.arrival = arrival
        self._warps = warps

    def __iter__(self):
        return iter(self._warps)


def warps(n, pages_per_warp=1):
    return [
        WarpAccess(pages=tuple(range(i, i + pages_per_warp)), write=False)
        for i in range(n)
    ]


class TestWarpBytes:
    def test_unique_pages_times_page_size(self):
        warp = WarpAccess(pages=(1, 2, 2, 3), write=False)
        assert warp_bytes(warp, PAGE) == 3 * PAGE


class TestRoundRobin:
    def test_one_warp_per_live_tenant_per_cycle(self):
        streams = [FakeStream(0, warps(3)), FakeStream(1, warps(2))]
        order = [t for t, _ in RoundRobinScheduler().schedule(streams, PAGE)]
        assert order == [0, 1, 0, 1, 0]

    def test_drained_stream_leaves_rotation(self):
        streams = [FakeStream(0, warps(1)), FakeStream(1, warps(3))]
        order = [t for t, _ in RoundRobinScheduler().schedule(streams, PAGE)]
        assert order == [0, 1, 1, 1]

    def test_emits_every_warp_exactly_once(self):
        streams = [FakeStream(0, warps(4)), FakeStream(1, warps(7))]
        emitted = list(RoundRobinScheduler().schedule(streams, PAGE))
        assert sum(1 for t, _ in emitted if t == 0) == 4
        assert sum(1 for t, _ in emitted if t == 1) == 7

    def test_arrival_offset_delays_admission(self):
        streams = [FakeStream(0, warps(4)), FakeStream(1, warps(2), arrival=3)]
        order = [t for t, _ in RoundRobinScheduler().schedule(streams, PAGE)]
        # Tenant 1 is admitted only once 3 warps have been emitted.
        assert order[:3] == [0, 0, 0]
        assert set(order[3:]) == {0, 1}

    def test_all_pending_does_not_stall(self):
        # Nothing runnable at t=0: the earliest arrival is admitted early.
        streams = [FakeStream(0, warps(2), arrival=100)]
        order = [t for t, _ in RoundRobinScheduler().schedule(streams, PAGE)]
        assert order == [0, 0]


class TestWeightedFair:
    def test_equal_weights_alternate(self):
        streams = [FakeStream(0, warps(3)), FakeStream(1, warps(3))]
        order = [t for t, _ in WeightedFairScheduler().schedule(streams, PAGE)]
        assert sorted(order[:2]) == [0, 1]
        assert sorted(order[2:4]) == [0, 1]

    def test_weight_two_gets_double_share(self):
        streams = [
            FakeStream(0, warps(20), weight=2.0),
            FakeStream(1, warps(20), weight=1.0),
        ]
        order = [t for t, _ in WeightedFairScheduler().schedule(streams, PAGE)]
        head = order[:12]
        # Over any window the weight-2 tenant issues ~2x the warps
        # (every warp here touches the same number of bytes).
        assert head.count(0) == 2 * head.count(1)

    def test_byte_based_not_warp_based(self):
        # Tenant 0's warps touch 4 pages each, tenant 1's only 1: equal
        # weights should equalise *bytes*, so tenant 1 issues ~4 warps
        # per warp of tenant 0.
        streams = [
            FakeStream(0, warps(4, pages_per_warp=4)),
            FakeStream(1, warps(16, pages_per_warp=1)),
        ]
        order = [t for t, _ in WeightedFairScheduler().schedule(streams, PAGE)]
        head = order[:10]
        assert head.count(1) >= 3 * head.count(0) - 1

    def test_emits_every_warp(self):
        streams = [
            FakeStream(0, warps(5), weight=3.0),
            FakeStream(1, warps(2), weight=0.5),
        ]
        emitted = list(WeightedFairScheduler().schedule(streams, PAGE))
        assert len(emitted) == 7

    def test_late_arrival_does_not_catch_up(self):
        streams = [
            FakeStream(0, warps(10)),
            FakeStream(1, warps(10), arrival=6),
        ]
        order = [t for t, _ in WeightedFairScheduler().schedule(streams, PAGE)]
        # After admission the late tenant shares fairly rather than
        # bursting to equalise cumulative bytes.
        window = order[6:12]
        assert 2 <= window.count(1) <= 4


class TestFifo:
    def test_arrival_order_full_drain(self):
        streams = [
            FakeStream(0, warps(2), arrival=5),
            FakeStream(1, warps(3), arrival=0),
        ]
        order = [t for t, _ in FifoScheduler().schedule(streams, PAGE)]
        assert order == [1, 1, 1, 0, 0]

    def test_ties_break_by_index(self):
        streams = [FakeStream(1, warps(1)), FakeStream(0, warps(1))]
        order = [t for t, _ in FifoScheduler().schedule(list(streams), PAGE)]
        assert order == [0, 1]


class TestFactory:
    def test_all_names_construct(self):
        for name in SCHEDULER_NAMES:
            assert make_scheduler(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            make_scheduler("lottery")

    def test_merge_streams_convenience(self):
        streams = [FakeStream(0, warps(1)), FakeStream(1, warps(1))]
        assert len(list(merge_streams(streams))) == 2
