"""Unit tests for the eviction-policy zoo (repro.policyzoo).

Every policy implements the same strategy interface
(:class:`~repro.policyzoo.base.EvictionPolicy`); the shared contract is
exercised parametrically across the whole registry, then each member's
defining behaviour gets its own targeted class.
"""

import pytest

from repro.errors import CapacityError, ConfigError, PageStateError, SimulationError
from repro.mem.clock_replacement import ClockReplacement
from repro.mem.tier2_order import Tier2Clock, Tier2Fifo
from repro.policyzoo import (
    EVICTION_POLICY_NAMES,
    GenClockReplacement,
    GovernorConfig,
    LfuReplacement,
    LhdReplacement,
    MigrationGovernor,
    MruReplacement,
    PartitionedPolicy,
    S3FifoReplacement,
    ZOO_POLICY_NAMES,
    make_eviction_policy,
    policy_summary,
)
from repro.policyzoo.registry import validate_policy_name

CAPACITY = 8


def make(name, capacity=CAPACITY):
    return make_eviction_policy(name, capacity, tier=1)


class TestRegistry:
    def test_zoo_is_subset_of_full_registry(self):
        assert set(ZOO_POLICY_NAMES) < set(EVICTION_POLICY_NAMES)
        assert "clock" in EVICTION_POLICY_NAMES
        assert "fifo" in EVICTION_POLICY_NAMES

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            validate_policy_name("lru-3000")
        with pytest.raises(ConfigError):
            make_eviction_policy("lru-3000", 8)

    def test_tier1_clock_builds_the_historical_structure(self):
        assert isinstance(make_eviction_policy("clock", 8, tier=1), ClockReplacement)

    def test_tier2_clock_and_fifo_build_tier2_orders(self):
        assert isinstance(make_eviction_policy("clock", 8, tier=2), Tier2Clock)
        assert isinstance(make_eviction_policy("fifo", 8, tier=2), Tier2Fifo)

    def test_every_zoo_name_builds(self):
        kinds = {
            "s3fifo": S3FifoReplacement,
            "mglru": GenClockReplacement,
            "lfu": LfuReplacement,
            "mru": MruReplacement,
            "lhd": LhdReplacement,
        }
        for name in ZOO_POLICY_NAMES:
            assert isinstance(make(name), kinds[name])

    def test_summary_covers_every_name(self):
        assert [name for name, _ in policy_summary()] == list(EVICTION_POLICY_NAMES)


@pytest.mark.parametrize("name", ZOO_POLICY_NAMES)
class TestSharedContract:
    """The EvictionPolicy contract, identically across the zoo."""

    def test_insert_contains_len_remove(self, name):
        policy = make(name)
        policy.insert(3)
        policy.insert(5, referenced=False)
        assert 3 in policy and 5 in policy and 7 not in policy
        assert len(policy) == 2
        assert sorted(policy.pages()) == [3, 5]
        policy.remove(3)
        assert 3 not in policy and len(policy) == 1

    def test_duplicate_insert_rejected(self, name):
        policy = make(name)
        policy.insert(1)
        with pytest.raises(PageStateError):
            policy.insert(1)

    def test_insert_beyond_capacity_rejected(self, name):
        policy = make(name)
        for page in range(CAPACITY):
            policy.insert(page)
        with pytest.raises(CapacityError):
            policy.insert(CAPACITY)

    def test_touch_and_remove_unknown_page_rejected(self, name):
        policy = make(name)
        with pytest.raises(PageStateError):
            policy.touch(9)
        with pytest.raises(PageStateError):
            policy.remove(9)

    def test_victim_is_resident_and_removed(self, name):
        policy = make(name)
        for page in range(CAPACITY):
            policy.insert(page)
        victim = policy.select_victim()
        assert victim in range(CAPACITY)
        assert victim not in policy
        assert len(policy) == CAPACITY - 1

    def test_filtered_sweep_respects_predicate(self, name):
        policy = make(name)
        for page in range(CAPACITY):
            policy.insert(page)
        matching = {2, 5}
        victim = policy.select_victim_where(lambda p: p in matching)
        assert victim in matching
        assert victim not in policy

    def test_filtered_sweep_without_match_returns_none(self, name):
        policy = make(name)
        for page in range(4):
            policy.insert(page)
        assert policy.select_victim_where(lambda p: p > 100) is None
        assert len(policy) == 4

    def test_drain_to_empty_is_deterministic(self, name):
        def drain():
            policy = make(name)
            for page in range(CAPACITY):
                policy.insert(page, referenced=(page % 2 == 0))
            for page in (0, 3, 6):
                policy.touch(page)
            order = []
            while len(policy):
                order.append(policy.select_victim())
            return order

        assert drain() == drain()

    def test_check_integrity_passes_after_churn(self, name):
        policy = make(name)
        for page in range(CAPACITY):
            policy.insert(page)
        policy.touch(2)
        policy.select_victim()
        policy.remove(next(iter(policy.pages())))
        policy.insert(20)
        policy.check_integrity()


class TestS3Fifo:
    def test_small_queue_absorbs_one_hit_wonders(self):
        policy = S3FifoReplacement(10)
        for page in range(10):
            policy.insert(page)
        victim = policy.select_victim()
        # One-hit wonders leave through the small queue and are ghosted.
        assert victim == 0
        assert 0 in policy.ghost_pages()

    def test_ghost_hit_inserts_into_main(self):
        policy = S3FifoReplacement(10)
        for page in range(10):
            policy.insert(page)
        victim = policy.select_victim()
        policy.insert(victim)  # ghost hit: back from the dead
        assert victim in policy._main
        assert victim not in policy.ghost_pages()

    def test_touched_small_page_promotes_to_main_not_ghost(self):
        policy = S3FifoReplacement(10)
        policy.insert(0)
        policy.touch(0)
        for page in range(1, 10):
            policy.insert(page)
        policy.select_victim()
        assert 0 in policy  # survived: promoted to main
        assert 0 not in policy.ghost_pages()

    def test_ghost_is_bounded(self):
        policy = S3FifoReplacement(4)
        for round_ in range(6):
            for page in range(4):
                policy.insert(100 * round_ + page)
            while len(policy):
                policy.select_victim()
        assert len(policy.ghost_pages()) <= policy.ghost_bound

    def test_integrity_catches_seeded_ghost_leak(self):
        policy = S3FifoReplacement(4)
        policy.insert(1)
        policy._ghost[1] = True  # corrupt: resident page in the ghost
        with pytest.raises(SimulationError):
            policy.check_integrity()


class TestGenClock:
    def test_generations_only_grow(self):
        policy = GenClockReplacement(8, max_gens=4)
        seen = []
        for page in range(16):
            if len(policy) == 8:
                policy.select_victim()
            policy.insert(page)
            seen.append(policy.youngest_generation)
        assert seen == sorted(seen)

    def test_touch_promotes_to_youngest(self):
        policy = GenClockReplacement(8, max_gens=4)
        for page in range(8):  # spans several generations
            policy.insert(page)
        assert policy.generation_of(0) < policy.youngest_generation
        policy.touch(0)
        assert policy.generation_of(0) == policy.youngest_generation

    def test_victim_comes_from_oldest_generation(self):
        policy = GenClockReplacement(8, max_gens=4)
        for page in range(8):
            policy.insert(page)
        oldest = min(policy.generation_of(p) for p in policy.pages())
        victim = policy.select_victim()
        assert policy.generation_of is not None
        assert victim in {p for p in range(8)}
        # The victim belonged to the oldest generation.
        assert all(
            policy.generation_of(p) >= oldest for p in policy.pages()
        )


class TestFrequencyPolicies:
    def test_lfu_evicts_least_frequent(self):
        policy = LfuReplacement(4)
        for page in range(4):
            policy.insert(page)
        for _ in range(3):
            policy.touch(1)
        policy.touch(2)
        policy.touch(3)
        assert policy.select_victim() == 0

    def test_lfu_ties_break_oldest_first(self):
        policy = LfuReplacement(4)
        for page in (7, 3, 9):
            policy.insert(page)
        assert policy.select_victim() == 7

    def test_mru_evicts_most_recent(self):
        policy = MruReplacement(4)
        for page in range(4):
            policy.insert(page)
        policy.touch(1)
        assert policy.select_victim() == 1

    def test_lhd_prefers_low_hit_density(self):
        policy = LhdReplacement(4)
        for page in range(4):
            policy.insert(page)
        for _ in range(5):
            policy.touch(3)
        victim = policy.select_victim()
        assert victim != 3  # the dense page survives


class TestPartitionedPolicy:
    def owner(self, page):
        return page >> 8

    def build(self):
        subs = [LfuReplacement(8), MruReplacement(8)]
        return PartitionedPolicy(subs, self.owner, names=("lfu", "mru"))

    def test_routes_by_owner(self):
        policy = self.build()
        policy.insert(0x001)
        policy.insert(0x102)
        assert len(policy.policies[0]) == 1
        assert len(policy.policies[1]) == 1
        assert 0x001 in policy and 0x102 in policy
        assert len(policy) == 2

    def test_out_of_range_owner_rejected(self):
        policy = self.build()
        with pytest.raises(PageStateError):
            policy.insert(0x205)

    def test_unfiltered_victim_from_largest_partition(self):
        policy = self.build()
        policy.insert(0x001)
        for page in (0x101, 0x102, 0x103):
            policy.insert(page)
        victim = policy.select_victim()
        assert self.owner(victim) == 1

    def test_filtered_sweep_delegates_in_tenant_order(self):
        policy = self.build()
        policy.insert(0x001)
        policy.insert(0x101)
        victim = policy.select_victim_where(lambda p: True)
        assert self.owner(victim) == 0

    def test_integrity_catches_cross_partition_page(self):
        policy = self.build()
        policy.policies[0].insert(0x150)  # belongs to tenant 1
        with pytest.raises(SimulationError):
            policy.check_integrity()


class TestGovernor:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            GovernorConfig(tokens_per_1k_accesses=0.0)
        with pytest.raises(ConfigError):
            GovernorConfig(burst=0.0)
        with pytest.raises(ConfigError):
            GovernorConfig(promotion_stall_ns=-1.0)

    def test_starts_with_a_full_burst(self):
        governor = MigrationGovernor(GovernorConfig(burst=4.0), tenants=2)
        for _ in range(4):
            assert governor.try_take(0, now=0)
        assert not governor.try_take(0, now=0)
        # Tenant 1's bucket is independent.
        assert governor.try_take(1, now=0)

    def test_refill_is_proportional_to_elapsed_accesses(self):
        config = GovernorConfig(tokens_per_1k_accesses=100.0, burst=4.0)
        governor = MigrationGovernor(config, tenants=1)
        for _ in range(4):
            governor.try_take(0, now=0)
        assert not governor.try_take(0, now=0)
        # 10 accesses at 100 tokens/1k = 1 token.
        assert governor.try_take(0, now=10)
        assert not governor.try_take(0, now=10)

    def test_refill_caps_at_burst(self):
        config = GovernorConfig(tokens_per_1k_accesses=100.0, burst=2.0)
        governor = MigrationGovernor(config, tenants=1)
        assert governor.tokens(0, now=1_000_000) == pytest.approx(2.0)

    def test_counters_track_grants_and_denials(self):
        governor = MigrationGovernor(GovernorConfig(burst=1.0), tenants=1)
        assert governor.try_take(0, now=0)
        assert not governor.try_take(0, now=0)
        assert governor.granted[0] == 1
        assert governor.denied[0] == 1
