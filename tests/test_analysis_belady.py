"""Tests for the Belady MIN reference implementation."""

import random

import pytest

from repro.analysis.belady import belady_min_misses, clock_misses, clock_vs_min
from repro.errors import TraceError


def naive_belady(pages, capacity):
    """Straightforward O(N^2) MIN for cross-checking."""
    resident = set()
    misses = 0
    for i, page in enumerate(pages):
        if page in resident:
            continue
        misses += 1
        if len(resident) >= capacity:
            # Evict the resident page used furthest in the future.
            def next_use(q):
                for j in range(i + 1, len(pages)):
                    if pages[j] == q:
                        return j
                return float("inf")

            victim = max(resident, key=next_use)
            resident.remove(victim)
        resident.add(page)
    return misses


class TestBeladyMin:
    def test_textbook_example(self):
        # Classic FIFO-anomaly trace.
        pages = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        assert belady_min_misses(pages, capacity=3) == 7

    def test_all_unique_all_miss(self):
        assert belady_min_misses(list(range(10)), capacity=4) == 10

    def test_fits_entirely(self):
        pages = [1, 2, 3] * 5
        assert belady_min_misses(pages, capacity=3) == 3

    def test_matches_naive_on_random_traces(self):
        rng = random.Random(13)
        for trial in range(10):
            pages = [rng.randrange(12) for _ in range(200)]
            capacity = rng.randint(1, 8)
            assert belady_min_misses(pages, capacity) == naive_belady(
                pages, capacity
            ), (trial, capacity)

    def test_capacity_validation(self):
        with pytest.raises(TraceError):
            belady_min_misses([1], capacity=0)


class TestClockVsMin:
    def test_min_never_worse_than_clock(self):
        rng = random.Random(7)
        for _ in range(5):
            pages = [rng.randrange(20) for _ in range(400)]
            report = clock_vs_min(pages, capacity=6)
            assert report["min_misses"] <= report["clock_misses"]
            assert 0 < report["efficiency"] <= 1.0

    def test_clock_optimal_on_sequential_fit(self):
        pages = [1, 2, 3, 1, 2, 3]
        report = clock_vs_min(pages, capacity=3)
        assert report["efficiency"] == 1.0

    def test_clock_misses_counts_cold(self):
        assert clock_misses(list(range(5)), capacity=2) == 5

    def test_min_beats_clock_on_looping_trace(self):
        # A loop one page larger than capacity: LRU/clock thrash (miss
        # everything), MIN keeps most of the loop resident.
        pages = list(range(7)) * 10
        report = clock_vs_min(pages, capacity=6)
        assert report["clock_misses"] == 70  # classic LRU worst case
        assert report["min_misses"] < 25

    def test_workload_integration(self):
        from repro.workloads import make_workload

        workload = make_workload("srad", 160, jitter_warps=0)
        pages = list(workload.coalesced_pages())
        report = clock_vs_min(pages, capacity=16)
        assert report["min_misses"] <= report["clock_misses"]
