"""Property-based tests backing the conformance harness's assumptions.

The serving layer's quota enforcement relies on ``select_victim_where``
leaving *non-matching* pages completely untouched: their queue positions
(FIFO) and reference bits (clock) must survive any number of filtered
sweeps, or one tenant's eviction pressure would erode another tenant's
recency state.  The reuse predictor relies on ``IncrementalOLS.ready``
and ``model()`` agreeing about degenerate fits near the variance
threshold.  Both are exactly the kind of boundary hypothesis is good at
probing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.clock_replacement import ClockReplacement
from repro.mem.tier2_order import Tier2Fifo
from repro.reuse.regression import IncrementalOLS

# A small universe of page ids; predicate = membership in a random subset.
pages_st = st.lists(
    st.integers(min_value=0, max_value=40), min_size=1, max_size=24, unique=True
)
refbits_st = st.lists(st.booleans(), min_size=24, max_size=24)
subset_st = st.sets(st.integers(min_value=0, max_value=40))


class TestClockFilteredSweep:
    @given(pages=pages_st, refbits=refbits_st, matching=subset_st)
    def test_non_matching_pages_keep_frames_and_refbits(
        self, pages, refbits, matching
    ):
        clock = ClockReplacement(len(pages))
        for page, ref in zip(pages, refbits):
            clock.insert(page, referenced=ref)
        before_frames = dict(clock._frame_of)
        before_bits = {p: clock._refbits[f] for p, f in before_frames.items()}

        victim = clock.select_victim_where(lambda p: p in matching)

        for page in pages:
            if page == victim or page in matching:
                continue
            # Untouched: same frame, same reference bit.
            assert clock._frame_of[page] == before_frames[page]
            assert clock._refbits[clock._frame_of[page]] == before_bits[page]

    @given(pages=pages_st, refbits=refbits_st, matching=subset_st)
    def test_victim_matches_predicate_and_is_removed(
        self, pages, refbits, matching
    ):
        clock = ClockReplacement(len(pages))
        for page, ref in zip(pages, refbits):
            clock.insert(page, referenced=ref)

        victim = clock.select_victim_where(lambda p: p in matching)

        if not (set(pages) & matching):
            assert victim is None
            assert len(clock) == len(pages)
        else:
            assert victim in matching and victim in pages
            assert victim not in clock
            assert len(clock) == len(pages) - 1

    @given(pages=pages_st, refbits=refbits_st, matching=subset_st)
    @settings(max_examples=50)
    def test_repeated_filtered_sweeps_drain_only_the_match_set(
        self, pages, refbits, matching
    ):
        clock = ClockReplacement(len(pages))
        for page, ref in zip(pages, refbits):
            clock.insert(page, referenced=ref)
        evicted = []
        while (victim := clock.select_victim_where(lambda p: p in matching)) is not None:
            evicted.append(victim)
        assert sorted(evicted) == sorted(set(pages) & matching)
        assert sorted(clock.pages()) == sorted(set(pages) - matching)


class TestFifoFilteredSweep:
    @given(pages=pages_st, matching=subset_st)
    def test_non_matching_pages_keep_positions(self, pages, matching):
        fifo = Tier2Fifo()
        for page in pages:
            fifo.insert(page)

        victim = fifo.select_victim_where(lambda p: p in matching)

        expected = [p for p in pages if p != victim]
        assert fifo.pages() == expected

    @given(pages=pages_st, matching=subset_st)
    def test_victim_is_oldest_match(self, pages, matching):
        fifo = Tier2Fifo()
        for page in pages:
            fifo.insert(page)

        victim = fifo.select_victim_where(lambda p: p in matching)

        matches = [p for p in pages if p in matching]
        assert victim == (matches[0] if matches else None)


# Sample coordinates resembling VTD/RD pairs: non-negative, modest range,
# plus near-constant xs to sit right at the degenerate-fit threshold.
coord_st = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
samples_st = st.lists(st.tuples(coord_st, coord_st), min_size=0, max_size=30)


class TestIncrementalOLSDegeneracy:
    @given(samples=samples_st)
    def test_ready_iff_model_fits(self, samples):
        ols = IncrementalOLS()
        for x, y in samples:
            ols.add(x, y)
        if ols.ready:
            model = ols.model()
            assert model.m == model.m and model.b == model.b  # not NaN
        else:
            try:
                ols.model()
            except ValueError:
                pass
            else:
                raise AssertionError("model() fitted while ready is False")

    @given(
        x=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        jitter=st.floats(min_value=0.0, max_value=1e-12, allow_nan=False),
        n=st.integers(min_value=2, max_value=20),
    )
    def test_near_constant_xs_never_disagree(self, x, jitter, n):
        # xs constant up to ~1e-12 jitter: squarely inside the degenerate
        # threshold's grey zone.  ready and model() must still agree.
        ols = IncrementalOLS()
        for i in range(n):
            ols.add(x + (jitter if i % 2 else 0.0), float(i))
        if ols.ready:
            ols.model()
        else:
            try:
                ols.model()
            except ValueError:
                pass
            else:
                raise AssertionError("model() fitted while ready is False")

    def test_constant_zero_xs_not_ready(self):
        ols = IncrementalOLS()
        ols.update([0.0, 0.0, 0.0], [1.0, 2.0, 3.0])
        assert not ols.ready

    def test_constant_positive_xs_degenerate_ratio(self):
        ols = IncrementalOLS()
        ols.update([4.0, 4.0, 4.0], [8.0, 8.0, 8.0])
        assert ols.ready
        model = ols.model()
        assert model.m == 2.0 and model.b == 0.0
