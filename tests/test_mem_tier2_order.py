"""Unit tests for the public Tier-2 eviction orders (repro.mem.tier2_order)."""

import pytest

from repro.errors import PageStateError
from repro.mem import Tier2Clock, Tier2Fifo


class TestTier2Fifo:
    def test_insert_len_contains(self):
        order = Tier2Fifo()
        order.insert(1)
        order.insert(2)
        assert len(order) == 2
        assert 1 in order and 2 in order and 3 not in order

    def test_fifo_victim_order(self):
        order = Tier2Fifo()
        for page in (10, 20, 30):
            order.insert(page)
        assert order.select_victim() == 10
        assert order.select_victim() == 20
        assert order.select_victim() == 30

    def test_touch_ignores_recency(self):
        order = Tier2Fifo()
        order.insert(1)
        order.insert(2)
        order.touch(1)  # FIFO: does not move 1 to the back
        assert order.select_victim() == 1

    def test_remove(self):
        order = Tier2Fifo()
        order.insert(1)
        order.insert(2)
        order.remove(1)
        assert 1 not in order
        assert order.select_victim() == 2

    def test_pages_snapshot_oldest_first(self):
        order = Tier2Fifo()
        for page in (3, 1, 2):
            order.insert(page)
        assert order.pages() == [3, 1, 2]

    def test_select_victim_where_oldest_match(self):
        order = Tier2Fifo()
        for page in (10, 21, 30, 41):
            order.insert(page)
        victim = order.select_victim_where(lambda p: p % 2 == 1)
        assert victim == 21
        assert 21 not in order
        # Non-matching pages kept their queue positions.
        assert order.pages() == [10, 30, 41]
        assert order.select_victim() == 10

    def test_select_victim_where_no_match(self):
        order = Tier2Fifo()
        order.insert(2)
        assert order.select_victim_where(lambda p: p > 100) is None
        assert len(order) == 1


class TestTier2Clock:
    def test_insert_len_contains(self):
        order = Tier2Clock(capacity=4)
        order.insert(1)
        order.insert(2)
        assert len(order) == 2
        assert 1 in order and 3 not in order

    def test_inserted_without_reference_bit(self):
        # Tier-2 entries start unreferenced: the first sweep evicts the
        # first inserted page without a second-chance pass.
        order = Tier2Clock(capacity=4)
        order.insert(1)
        order.insert(2)
        assert order.select_victim() == 1

    def test_touch_grants_second_chance(self):
        order = Tier2Clock(capacity=4)
        order.insert(1)
        order.insert(2)
        order.touch(1)
        assert order.select_victim() == 2

    def test_remove(self):
        order = Tier2Clock(capacity=2)
        order.insert(1)
        order.remove(1)
        assert 1 not in order
        order.insert(1)  # frame reusable

    def test_select_victim_where(self):
        order = Tier2Clock(capacity=4)
        for page in (10, 21, 30):
            order.insert(page)
        assert order.select_victim_where(lambda p: p % 2 == 1) == 21
        assert 21 not in order
        assert order.select_victim_where(lambda p: p % 2 == 1) is None
        assert len(order) == 2

    def test_select_victim_empty_raises(self):
        with pytest.raises(PageStateError):
            Tier2Fifo().select_victim()


class TestRuntimeUsesPublicOrders:
    def test_runtime_imports_the_public_classes(self):
        # The orders used by the eviction pipeline ARE the public classes
        # (they were private to core.runtime before the serving layer).
        from repro.core import runtime as core_runtime

        assert core_runtime.Tier2Fifo is Tier2Fifo
        assert core_runtime.Tier2Clock is Tier2Clock
