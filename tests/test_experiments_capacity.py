"""The capacity experiment: registration, curve shape, conservation,
determinism, and engine-cache reproducibility."""

import pytest

from repro.experiments.capacity import SPEC, TENANT_COUNTS, capacity_cell
from repro.experiments.engine import Engine, ResultCache
from repro.experiments.harness import default_config
from repro.experiments.runner import EXPERIMENTS, get_spec, run_experiment

#: Small scale keeps the fleet sweep under a few seconds while still
#: crossing the shedding knee at the >= 1k-tenant points.
SCALE = 256


@pytest.fixture(scope="module")
def results():
    return run_experiment("capacity", scale=SCALE)


class TestRegistration:
    def test_registered(self):
        assert "capacity" in EXPERIMENTS
        assert get_spec("capacity") is SPEC

    def test_sweeps_past_one_thousand_tenants(self):
        assert max(TENANT_COUNTS) >= 1024


class TestTable:
    def test_one_row_per_fleet_size(self, results):
        (result,) = results
        assert [row[0] for row in result.rows] == list(TENANT_COUNTS)

    def test_renders(self, results):
        (result,) = results
        text = result.to_text()
        assert "shed rate" in text
        assert "p99" in text


class TestPoints:
    def test_admission_conservation_every_point(self, results):
        (result,) = results
        for point in result.extras["points"]:
            assert point["admitted"] + point["shed"] == point["arrived"]
            assert point["completed"] <= point["admitted"]
            assert point["arrived"] == 4 * point["tenants"]

    def test_contention_grows_with_fleet_size(self, results):
        """The headline curve: p99 is monotone non-decreasing in fleet
        size, and shedding has set in by the largest fleet."""
        (result,) = results
        points = result.extras["points"]
        p99s = [p["p99_ns"] for p in points]
        assert all(a <= b for a, b in zip(p99s, p99s[1:])), p99s
        assert points[0]["shed"] == 0  # small fleet: nothing shed
        assert points[-1]["shed_rate"] > 0.05  # big fleet: shedding

    def test_cell_deterministic(self):
        config = default_config(SCALE)
        a = capacity_cell(config, 64, 0)
        b = capacity_cell(config, 64, 0)
        assert a == b


class TestCacheReproducibility:
    def test_warm_rerun_is_fully_cache_served_and_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = Engine(cache=cache, memo={})
        first = run_experiment("capacity", scale=SCALE, engine=cold)
        assert cold.stats.executed > 0

        warm = Engine(cache=cache, memo={})  # fresh memo = "new process"
        second = run_experiment("capacity", scale=SCALE, engine=warm)
        assert warm.stats.executed == 0

        for a, b in zip(first, second):
            assert a.rows == b.rows
            assert a.extras["points"] == b.extras["points"]
