"""Unit tests for the GMT runtime's access and eviction pipelines."""

import pytest

from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from repro.mem.page import PageLocation
from repro.sim.gpu import WarpAccess, warp_of
from tests.conftest import random_trace, sweep_trace


def make_runtime(policy="tier-order", tier1=4, tier2=8, **kwargs) -> GMTRuntime:
    cfg = GMTConfig(
        tier1_frames=tier1,
        tier2_frames=tier2,
        policy=policy,
        sample_target=50,
        sample_batch=10,
        tier3_bias_window=8,
        **kwargs,
    )
    return GMTRuntime(cfg)


class TestHitPath:
    def test_cold_miss_then_hit(self):
        rt = make_runtime()
        rt.access(1)
        assert rt.stats.t1_misses == 1
        rt.access(1)
        assert rt.stats.t1_hits == 1
        assert rt.page_table.lookup(1).location is PageLocation.TIER1

    def test_cold_miss_reads_ssd(self):
        rt = make_runtime()
        rt.access(1)
        assert rt.stats.ssd_page_reads == 1
        assert rt.ssd.reads == 1

    def test_write_dirties_page(self):
        rt = make_runtime()
        rt.access(1, write=True)
        assert rt.page_table.lookup(1).dirty

    def test_hit_does_not_touch_ssd(self):
        rt = make_runtime()
        rt.access(1)
        reads = rt.ssd.reads
        rt.access(1)
        assert rt.ssd.reads == reads


class TestEvictionPipeline:
    def test_tier1_never_exceeds_capacity(self):
        rt = make_runtime(tier1=4)
        for p in range(20):
            rt.access(p)
        assert len(rt.tier1) <= 4
        rt.check_invariants()

    def test_tier_order_places_evictions_in_tier2(self):
        rt = make_runtime("tier-order", tier1=2, tier2=8)
        for p in range(5):
            rt.access(p)
        assert rt.stats.t1_evictions == 3
        assert rt.stats.t2_placements == 3
        assert len(rt.tier2) == 3

    def test_tier2_hit_promotes_and_frees_slot(self):
        rt = make_runtime("tier-order", tier1=2, tier2=8)
        for p in range(4):
            rt.access(p)
        # Page 0 was evicted into Tier-2; touch it again.
        assert 0 in rt.tier2
        rt.access(0)
        assert 0 in rt.tier1
        assert 0 not in rt.tier2
        assert rt.stats.t2_hits == 1
        assert rt.stats.t2_fetches == 1
        rt.check_invariants()

    def test_wasteful_lookup_counted(self):
        rt = make_runtime("tier-order", tier1=2, tier2=8)
        rt.access(1)
        assert rt.stats.t2_lookups == 1
        assert rt.stats.t2_wasteful_lookups == 1

    def test_tier2_full_triggers_fifo_eviction(self):
        rt = make_runtime("random", tier1=2, tier2=2, seed=1)
        # Force many placements; Tier-2 of 2 frames must evict eventually.
        for p in range(30):
            rt.access(p)
        assert len(rt.tier2) <= 2
        rt.check_invariants()

    def test_dirty_eviction_writes_back(self):
        rt = make_runtime("tier-order", tier1=1, tier2=0)
        rt.access(1, write=True)
        rt.access(2)  # evicts dirty page 1 -> SSD write
        assert rt.stats.ssd_page_writes == 1
        assert not rt.page_table.lookup(1).dirty

    def test_clean_eviction_discards_for_free(self):
        rt = make_runtime("tier-order", tier1=1, tier2=0)
        rt.access(1)
        rt.access(2)
        assert rt.stats.ssd_page_writes == 0
        assert rt.stats.clean_discards == 1

    def test_no_duplication_across_tiers(self):
        rt = make_runtime("tier-order", tier1=3, tier2=6)
        for warp in random_trace(300, footprint=20, seed=3):
            rt.access_warp(warp)
        rt.check_invariants()

    def test_dirty_bit_survives_tier2_round_trip(self):
        rt = make_runtime("tier-order", tier1=1, tier2=4)
        rt.access(1, write=True)
        rt.access(2)  # 1 -> Tier-2, still dirty
        assert rt.page_table.lookup(1).dirty
        rt.access(1)  # back to Tier-1
        assert rt.page_table.lookup(1).dirty
        assert rt.stats.ssd_page_writes == 0

    def test_refetch_from_ssd_is_clean(self):
        rt = make_runtime("tier-order", tier1=1, tier2=0)
        rt.access(1, write=True)
        rt.access(2)  # writeback of 1
        rt.access(1)  # fetched fresh from SSD
        assert not rt.page_table.lookup(1).dirty


class TestBamDegeneration:
    def test_zero_tier2_skips_lookups(self):
        rt = make_runtime("tier-order", tier1=2, tier2=0)
        for p in range(10):
            rt.access(p)
        assert rt.stats.t2_lookups == 0
        assert rt.stats.t2_placements == 0


class TestWarpPath:
    def test_warp_coalescing(self):
        rt = make_runtime()
        rt.access_warp(WarpAccess(pages=(1, 1, 2)))
        assert rt.stats.coalesced_accesses == 2
        assert rt.stats.warp_instructions == 1

    def test_run_returns_result(self):
        rt = make_runtime()
        result = rt.run([warp_of([1, 2]), warp_of([1])])
        assert result.stats.coalesced_accesses == 3
        assert result.elapsed_ns > 0
        assert result.runtime_name.startswith("GMT-")


class TestRetention:
    def test_short_reuse_retention_bounded(self):
        # With a reuse policy whose predictions are all SHORT, the runtime
        # must still make progress via the retry bound.
        rt = make_runtime("reuse", tier1=2, tier2=4, max_clock_retries=2)
        for warp in sweep_trace(4, repeats=30):
            rt.access_warp(warp)
        rt.check_invariants()
        assert rt.stats.t1_evictions > 0

    def test_elapsed_time_monotonic_in_accesses(self):
        rt = make_runtime()
        rt.access(1)
        t1 = rt.result().elapsed_ns
        for p in range(2, 12):
            rt.access(p)
        assert rt.result().elapsed_ns > t1


class TestVirtualTime:
    def test_vts_counts_coalesced_accesses(self):
        rt = make_runtime()
        rt.access_warp(WarpAccess(pages=(1, 1, 2)))
        assert rt.vts.now == 2

    def test_timestamps_recorded(self):
        rt = make_runtime()
        rt.access(5)
        assert rt.page_table.lookup(5).last_access_ts == 1


class TestSpeedupGuards:
    def test_speedup_over_zero_baseline_raises(self):
        from repro.errors import SimulationError

        rt = make_runtime()
        rt.access(1)
        result = rt.result()
        empty = make_runtime().result()  # no accesses: zero elapsed time
        assert empty.elapsed_ns == 0
        with pytest.raises(SimulationError, match="baseline"):
            result.speedup_over(empty)

    def test_speedup_with_zero_self_raises(self):
        from repro.errors import SimulationError

        rt = make_runtime()
        rt.access(1)
        result = rt.result()
        empty = make_runtime().result()
        with pytest.raises(SimulationError):
            empty.speedup_over(result)
