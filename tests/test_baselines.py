"""Unit tests for the BaM and HMM baseline runtimes."""

import pytest

from repro.baselines.bam import BamRuntime
from repro.baselines.hmm import HmmRuntime, optimistic_hmm_breakdown
from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from tests.conftest import random_trace, sweep_trace


@pytest.fixture
def config():
    return GMTConfig(
        tier1_frames=16, tier2_frames=64, sample_target=200, sample_batch=50
    )


class TestBamRuntime:
    def test_has_no_tier2(self, config):
        bam = BamRuntime(config)
        assert bam.tier2.capacity == 0
        assert bam.name == "BaM"

    def test_never_touches_tier2(self, config):
        bam = BamRuntime(config)
        for warp in random_trace(500, footprint=100, seed=2):
            bam.access_warp(warp)
        assert bam.stats.t2_lookups == 0
        assert bam.stats.t2_placements == 0
        assert bam.pcie.total_bytes == 0
        bam.check_invariants()

    def test_all_misses_hit_ssd(self, config):
        bam = BamRuntime(config)
        for warp in sweep_trace(100):
            bam.access_warp(warp)
        assert bam.stats.ssd_page_reads == 100

    def test_matches_gmt_with_zero_tier2(self, config):
        """BaM is definitionally GMT minus Tier-2."""
        from dataclasses import replace

        trace = random_trace(800, footprint=120, seed=5)
        bam = BamRuntime(config)
        gmt = GMTRuntime(replace(config, tier2_frames=0, policy="tier-order"))
        r_bam = bam.run(trace)
        r_gmt = gmt.run(trace)
        assert r_bam.stats.ssd_page_reads == r_gmt.stats.ssd_page_reads
        assert r_bam.stats.ssd_page_writes == r_gmt.stats.ssd_page_writes
        assert r_bam.elapsed_ns == pytest.approx(r_gmt.elapsed_ns)


class TestHmmRuntime:
    def test_host_orchestration_constants(self, config):
        hmm = HmmRuntime(config)
        platform = config.platform
        assert hmm.cost.fault_concurrency == platform.host_fault_concurrency
        assert hmm._extra_fault_ns == platform.host_fault_overhead_ns
        assert hmm.ssd.read_bandwidth == platform.host_pagecache_ssd_bandwidth
        assert hmm.name == "HMM"

    def test_uses_tier2(self, config):
        hmm = HmmRuntime(config)
        for warp in random_trace(500, footprint=100, seed=2):
            hmm.access_warp(warp)
        assert hmm.stats.t2_placements > 0
        hmm.check_invariants()

    def test_slower_than_bam_on_low_reuse(self, config):
        """Section 3.6: BaM outperforms HMM despite HMM's Tier-2."""
        trace = random_trace(1500, footprint=300, seed=4)
        bam = BamRuntime(config).run(trace)
        hmm = HmmRuntime(config).run(trace)
        assert hmm.elapsed_ns > bam.elapsed_ns

    def test_gmt_reuse_beats_hmm(self, config):
        trace = sweep_trace(config.total_memory_frames, repeats=6, write=True)
        hmm = HmmRuntime(config).run(trace)
        gmt = GMTRuntime(config).run(trace)
        assert gmt.elapsed_ns < hmm.elapsed_ns


class TestOptimisticHmm:
    def test_slower_than_gmt_reuse(self, config):
        """Section 3.6's point: orchestration alone keeps GMT ahead."""
        trace = sweep_trace(100, repeats=4)
        gmt = GMTRuntime(config).run(trace)
        optimistic = optimistic_hmm_breakdown(gmt, config)
        assert optimistic.elapsed_ns > gmt.elapsed_ns

    def test_faster_than_plain_hmm(self, config):
        """Granting GMT-Reuse's hit rates must help HMM."""
        trace = sweep_trace(120, repeats=5, write=True)
        hmm = HmmRuntime(config).run(trace)
        gmt = GMTRuntime(config).run(trace)
        optimistic = optimistic_hmm_breakdown(gmt, config)
        assert optimistic.elapsed_ns <= hmm.elapsed_ns * 1.05
