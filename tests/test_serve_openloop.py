"""Tests for the open-loop service simulator (repro.serve.openloop)."""

import pytest

from repro.check.identities import assert_conformant, audit_split, audit_stats
from repro.core.config import GMTConfig
from repro.errors import ConfigError
from repro.serve import (
    OpenLoopConfig,
    OpenLoopServer,
    TenantPopulation,
)


def tiny_config(**overrides):
    return GMTConfig(tier1_frames=16, tier2_frames=32, **overrides)


def run_server(tenants=32, seed=1, **loop_kwargs):
    loop_kwargs.setdefault("requests", 200)
    loop_kwargs.setdefault("arrival_rate_per_s", 4000.0)
    server = OpenLoopServer(
        tiny_config(),
        TenantPopulation(tenants, seed=seed, min_footprint=4, max_footprint=16),
        OpenLoopConfig(seed=seed, **loop_kwargs),
    )
    return server, server.run()


class TestPopulation:
    def test_specs_deterministic(self):
        a = TenantPopulation(100, seed=3)
        b = TenantPopulation(100, seed=3)
        assert a.specs() == b.specs()
        assert a.footprints() == b.footprints()
        assert a.arrival_weights() == b.arrival_weights()

    def test_seed_changes_population(self):
        a = TenantPopulation(100, seed=3)
        b = TenantPopulation(100, seed=4)
        assert a.footprints() != b.footprints()

    def test_zipf_skew_shapes_arrival_mass(self):
        pop = TenantPopulation(200, seed=0, skew=1.2)
        weights = pop.arrival_weights()
        top = sorted(weights, reverse=True)
        # zipf: the heaviest tenant carries a disproportionate share
        assert top[0] / sum(weights) > 3.0 / 200
        assert min(weights) > 0

    def test_footprints_bounded(self):
        pop = TenantPopulation(64, seed=5, min_footprint=8, max_footprint=32)
        assert all(8 <= f <= 32 for f in pop.footprints())

    def test_build_namespaces_streams(self):
        streams = TenantPopulation(8, seed=1, min_footprint=4, max_footprint=8).build()
        assert [s.index for s in streams] == list(range(8))
        assert len({s.name for s in streams}) == 8

    def test_scale_to_thousands(self):
        """Population metadata at service scale stays cheap (no workload
        generation happens until build())."""
        pop = TenantPopulation(10_000, seed=0)
        assert len(pop.specs()) == 10_000

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigError):
            TenantPopulation(0)
        with pytest.raises(ConfigError):
            TenantPopulation(1 << 20)


class TestOpenLoopConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            OpenLoopConfig(requests=0)
        with pytest.raises(ConfigError):
            OpenLoopConfig(arrival_rate_per_s=0.0)
        with pytest.raises(ConfigError):
            OpenLoopConfig(epoch=0)
        with pytest.raises(ConfigError):
            OpenLoopConfig(arrival_process="uniform")
        with pytest.raises(ConfigError):
            OpenLoopConfig(max_backlog=0)


class TestOpenLoopServer:
    def test_admission_conservation(self):
        server, outcome = run_server(max_backlog=16)
        assert outcome.arrived == 200
        assert outcome.admitted + outcome.shed == outcome.arrived
        assert outcome.completed == outcome.admitted
        stats = server.runtime.stats
        assert stats.requests_arrived == outcome.arrived
        assert stats.requests_admitted == outcome.admitted
        assert stats.requests_shed == outcome.shed
        # the identity catalogue agrees
        assert not audit_stats(stats)

    def test_deterministic(self):
        _, a = run_server(seed=7)
        _, b = run_server(seed=7)
        assert a.arrived == b.arrived
        assert a.admitted == b.admitted
        assert a.shed == b.shed
        assert a.makespan_ns == b.makespan_ns
        assert a.p99_ns == b.p99_ns
        assert a.tenant_completed == b.tenant_completed

    def test_full_conformance_audit(self):
        server, _ = run_server()
        assert_conformant(server.runtime)
        assert not audit_split(server.runtime.stats, server.runtime.tenant_stats)

    def test_backlog_cap_sheds(self):
        """A tight backlog cap under a hot arrival burst sheds load."""
        _, unbounded = run_server(arrival_rate_per_s=500_000.0)
        _, capped = run_server(arrival_rate_per_s=500_000.0, max_backlog=8)
        assert unbounded.shed == 0
        assert capped.shed > 0
        assert capped.admitted + capped.shed == capped.arrived

    def test_anomaly_pressure_sheds(self):
        """Sustained tier-thrash pressure trips the anomaly detector and
        the admission controller sheds for a cooldown window (streaming
        tenants, oversubscribed hierarchy, arrivals slow enough that the
        backlog survives past the first pressure window)."""
        config = GMTConfig(tier1_frames=32, tier2_frames=64)
        population = TenantPopulation(
            32,
            seed=2,
            workload="streaming",
            min_footprint=64,
            max_footprint=128,
        )
        loop = OpenLoopConfig(
            requests=400,
            arrival_rate_per_s=2000.0,
            epoch=8,
            seed=2,
            pressure_window=256,
            shed_cooldown_ns=5_000_000.0,
        )
        server = OpenLoopServer(config, population, loop)
        outcome = server.run()
        assert outcome.pressure_findings > 0
        assert outcome.shed > 0  # no backlog cap: every shed is pressure
        assert outcome.admitted + outcome.shed == outcome.arrived
        assert_conformant(server.runtime)

    def test_latency_percentiles_populated(self):
        _, outcome = run_server()
        assert outcome.completed > 0
        assert outcome.p99_ns is not None
        assert outcome.p99_ns >= (outcome.p50_ns or 0.0)

    def test_slo_violation_count(self):
        server = OpenLoopServer(
            tiny_config(),
            TenantPopulation(
                # a 0.001 ns p99 target is unsatisfiable: every tenant
                # that completes a request violates it
                16, seed=1, min_footprint=4, max_footprint=16, slo_p99_ns=1e-3
            ),
            OpenLoopConfig(requests=100, arrival_rate_per_s=4000.0, seed=1),
        )
        outcome = server.run()
        # impossible SLO: every tenant that completed a request violates
        assert outcome.slo_violating_tenants() == sum(
            1 for c in outcome.tenant_completed if c > 0
        )

    def test_to_table_renders(self):
        _, outcome = run_server()
        table = outcome.to_table()
        assert "open-loop serve" in table
        assert "admitted" in table

    def test_closed_loop_counters_stay_zero(self):
        """The new counters exist only on the open-loop path: a plain
        closed-loop serve run leaves them at zero."""
        from repro.serve import TenantServer, build_tenants

        config = tiny_config()
        streams = build_tenants(["hotspot", "bfs"], config, seed=3)
        server = TenantServer(config, streams)
        server.run(solo_baselines=False)
        stats = server.runtime.stats
        assert stats.requests_arrived == 0
        assert stats.requests_admitted == 0
        assert stats.requests_shed == 0
        assert stats.requests_completed == 0
        assert stats.shed_rate == 0.0
