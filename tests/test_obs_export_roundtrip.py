"""Exporter round-trips: Prometheus line-format re-parse, trace invariants."""

import json
import math

from repro.obs.export import chrome_trace_events, prometheus_text
from repro.obs.lifecycle import LifecycleKind, LifecycleRecorder, lifecycle_trace_events
from repro.obs.metrics import MetricsRegistry, linear_buckets
from repro.obs.tracing import SpanTracer


# ----------------------------------------------------------------------
# A minimal Prometheus text-exposition parser.  Deliberately independent
# of the exporter's string-building: it re-derives structure from the
# bytes so formatting bugs (escaping, ordering, suffixes) surface as
# parse or content failures.
# ----------------------------------------------------------------------
def parse_prometheus(text):
    metrics = {}  # name -> {"type": ..., "help": ..., "samples": [(labels, value)]}
    current = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            entry = metrics.setdefault(name, {"help": None, "type": None, "samples": []})
            assert entry["help"] is None, f"duplicate HELP for {name}"
            entry["help"] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            entry = metrics.setdefault(name, {"help": None, "type": None, "samples": []})
            assert entry["type"] is None, f"duplicate TYPE for {name}"
            entry["type"] = kind
            current = name
        elif line.startswith("#"):
            continue
        else:
            sample, _, value = line.rpartition(" ")
            sample_name, _, labelstr = sample.partition("{")
            labels = {}
            if labelstr:
                assert labelstr.endswith("}"), line
                for pair in _split_labels(labelstr[:-1]):
                    key, _, raw = pair.partition("=")
                    assert raw.startswith('"') and raw.endswith('"'), line
                    labels[key] = _unescape(raw[1:-1])
            base = current
            assert base is not None and sample_name.startswith(
                base.rsplit("_", 1)[0].split("{")[0][:1]
            )
            metrics[base]["samples"].append((sample_name, labels, float(value)))
    return metrics


def _split_labels(inner):
    parts, depth, start = [], False, 0
    for i, ch in enumerate(inner):
        if ch == '"' and (i == 0 or inner[i - 1] != "\\"):
            depth = not depth
        elif ch == "," and not depth:
            parts.append(inner[start:i])
            start = i + 1
    parts.append(inner[start:])
    return [p for p in parts if p]


def _unescape(value):
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


class TestPrometheusRoundTrip:
    def test_counters_gauges_histograms_reparse(self):
        reg = MetricsRegistry(const_labels={"app": "bfs"})
        counter = reg.counter("gmt_reads", help="SSD reads")
        counter.inc(7)
        reg.gauge("gmt_occupancy", help="Resident pages", fn=lambda: 42)
        hist = reg.histogram(
            "gmt_lat_ns", help="latency", buckets=linear_buckets(10.0, 10.0, 3)
        )
        for v in (5.0, 15.0, 500.0):
            hist.observe(v)
        parsed = parse_prometheus(prometheus_text(reg))

        assert parsed["gmt_reads_total"]["type"] == "counter"
        ((name, labels, value),) = parsed["gmt_reads_total"]["samples"]
        assert name == "gmt_reads_total"
        assert labels == {"app": "bfs"}
        assert value == 7.0

        ((_, _, occupancy),) = parsed["gmt_occupancy"]["samples"]
        assert occupancy == 42.0

        hist_samples = parsed["gmt_lat_ns"]["samples"]
        buckets = [(l["le"], v) for n, l, v in hist_samples if n == "gmt_lat_ns_bucket"]
        assert buckets[-1][0] == "+Inf" and buckets[-1][1] == 3.0
        # Cumulative monotonicity.
        values = [v for _, v in buckets]
        assert values == sorted(values)
        (count,) = [v for n, _, v in hist_samples if n == "gmt_lat_ns_count"]
        (total,) = [v for n, _, v in hist_samples if n == "gmt_lat_ns_sum"]
        assert count == 3.0 and total == 520.0

    def test_help_escaping_newline_and_backslash(self):
        reg = MetricsRegistry()
        reg.counter("gmt_x", help="line one\nline two with C:\\path")
        text = prometheus_text(reg)
        help_line = next(l for l in text.splitlines() if l.startswith("# HELP"))
        # The rendered HELP stays on one physical line...
        assert help_line == "# HELP gmt_x_total line one\\nline two with C:\\\\path"
        parsed = parse_prometheus(text)
        # ...and the whole exposition still parses sample-for-sample.
        assert parsed["gmt_x_total"]["samples"][0][2] == 0.0

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry(const_labels={"desc": 'quote " slash \\ nl \n end'})
        reg.counter("gmt_y")
        parsed = parse_prometheus(prometheus_text(reg))
        ((_, labels, _),) = parsed["gmt_y_total"]["samples"]
        assert labels["desc"] == 'quote " slash \\ nl \n end'

    def test_shared_header_across_registries(self):
        regs = []
        for app in ("bfs", "pagerank"):
            reg = MetricsRegistry(const_labels={"app": app})
            reg.counter("gmt_z", help="shared").inc()
            regs.append(reg)
        text = prometheus_text(regs)
        assert text.count("# TYPE gmt_z_total counter") == 1
        parsed = parse_prometheus(text)
        apps = {l["app"] for _, l, _ in parsed["gmt_z_total"]["samples"]}
        assert apps == {"bfs", "pagerank"}


class TestChromeTraceInvariants:
    def make_tracer(self):
        tracer = SpanTracer()
        tracer.record("miss", "access", 3000.0, 500.0, page=1)
        tracer.record("evict", "tiering", 1000.0, 200.0)  # argless, earlier
        tracer.instant("marker", "debug", 2000.0)
        return tracer

    def test_metadata_leads_and_events_sorted_by_ts(self):
        events = chrome_trace_events({"run": self.make_tracer()})
        kinds = [e["ph"] for e in events]
        first_timed = kinds.index(next(k for k in kinds if k != "M"))
        assert all(k == "M" for k in kinds[:first_timed])
        timed = [e for e in events if e["ph"] != "M"]
        assert [e["ts"] for e in timed] == sorted(e["ts"] for e in timed)

    def test_argless_events_omit_args_key_entirely(self):
        events = chrome_trace_events({"run": self.make_tracer()})
        evict = next(e for e in events if e["ph"] != "M" and e["name"] == "evict")
        assert "args" not in evict
        miss = next(e for e in events if e["ph"] != "M" and e["name"] == "miss")
        assert miss["args"] == {"page": 1}

    def test_json_serialisable_and_no_nulls(self):
        events = chrome_trace_events({"run": self.make_tracer()})
        payload = json.loads(json.dumps(events))
        for event in payload:
            assert None not in event.values()

    def test_track_metadata_matches_events(self):
        events = chrome_trace_events({"run": self.make_tracer()})
        tracks = {
            (m["pid"], m["tid"]): m["args"]["name"]
            for m in events
            if m["ph"] == "M" and m["name"] == "thread_name"
        }
        for event in events:
            if event["ph"] == "M":
                continue
            assert (event["pid"], event["tid"]) in tracks
            assert tracks[(event["pid"], event["tid"])].startswith(event["name"])

    def test_tenant_spans_split_into_suffixed_lanes(self):
        tracer = SpanTracer()
        tracer.record("miss", "access", 0.0, 10.0, tenant="bfs", page=3)
        tracer.record("miss", "access", 20.0, 10.0, tenant="pagerank", page=4)
        tracer.record("miss", "access", 40.0, 10.0, page=5)  # solo lane
        events = chrome_trace_events({"serve": tracer})
        lanes = {
            m["args"]["name"]: m["tid"]
            for m in events
            if m["ph"] == "M" and m["name"] == "thread_name"
        }
        assert set(lanes) == {"miss", "miss [bfs]", "miss [pagerank]"}
        by_page = {
            e["args"]["page"]: e["tid"] for e in events if e["ph"] == "X"
        }
        assert by_page[3] == lanes["miss [bfs]"]
        assert by_page[4] == lanes["miss [pagerank]"]
        assert by_page[5] == lanes["miss"]

    def test_instants_carry_scope(self):
        events = chrome_trace_events({"run": self.make_tracer()})
        marker = next(e for e in events if e["ph"] == "i")
        assert marker["s"] == "t"
        assert "dur" not in marker

    def test_lifecycle_events_merge_onto_same_axis(self):
        rec = LifecycleRecorder()
        clock = {"ns": 0.0}
        rec.clock = lambda: clock["ns"]
        clock["ns"] = 1500.0
        rec.emit(LifecycleKind.ADMIT, 9, access=1, cause="demand-miss")
        merged = chrome_trace_events({"run": self.make_tracer()}) + lifecycle_trace_events(
            rec.events(), pid=1
        )
        payload = json.loads(json.dumps({"traceEvents": merged}))
        admits = [
            e
            for e in payload["traceEvents"]
            if e.get("cat") == "lifecycle" and e["name"] == "admit"
        ]
        assert len(admits) == 1
        assert admits[0]["ts"] == 1.5  # ns -> us, same unit as the span lanes
        assert math.isclose(
            admits[0]["ts"] * 1000.0, 1500.0
        )


class TestCounterTracks:
    def make_windows(self):
        return [
            {
                "window": 0,
                "position": 1000,
                "span": 1000,
                "gmt_virtual_time_ns": 2_000_000.0,
                "gmt_tier1_occupancy": 12.0,
                "gmt_tier2_occupancy": 40.0,
                "gmt_t1_evictions": 100.0,
                "gmt_t2_placements": 25.0,
            },
            {
                "window": 1,
                "position": 2000,
                "span": 1000,
                "gmt_virtual_time_ns": 5_000_000.0,
                "gmt_tier1_occupancy": 16.0,
                "gmt_tier2_occupancy": 64.0,
                "gmt_t1_evictions": 0.0,
                "gmt_t2_placements": 0.0,
            },
        ]

    def tracer(self):
        tracer = SpanTracer()
        tracer.record("miss", "access", 3_000_000.0, 500.0, page=1)
        return tracer

    def test_counter_events_emitted(self):
        events = chrome_trace_events(
            {"run": self.tracer()}, windows={"run": self.make_windows()}
        )
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 4  # occupancy + bypass per window
        occupancy = [e for e in counters if e["name"] == "tier occupancy (pages)"]
        assert occupancy[0]["args"] == {"tier1": 12.0, "tier2": 40.0}
        assert occupancy[1]["args"] == {"tier1": 16.0, "tier2": 64.0}
        bypass = [e for e in counters if e["name"] == "tier2 bypass rate"]
        assert bypass[0]["args"]["bypass"] == 0.75
        assert bypass[1]["args"]["bypass"] == 0.0  # no evictions: rate 0

    def test_counters_interleave_sorted_by_ts(self):
        # Spans at 3 ms, counters at 2 ms and 5 ms: the merged stream
        # must still be globally ts-sorted (Perfetto never re-sorts).
        events = chrome_trace_events(
            {"run": self.tracer()}, windows={"run": self.make_windows()}
        )
        timed = [e for e in events if e["ph"] != "M"]
        assert [e["ts"] for e in timed] == sorted(e["ts"] for e in timed)
        assert {e["ph"] for e in timed} == {"X", "C"}

    def test_counters_json_safe_and_no_nulls(self):
        events = chrome_trace_events(
            {"run": self.tracer()}, windows={"run": self.make_windows()}
        )
        payload = json.loads(json.dumps(events))
        for event in payload:
            assert None not in event.values()
            if event["ph"] == "C":
                assert event["args"]  # counter events always carry args
                assert None not in event["args"].values()

    def test_unmatched_process_names_ignored(self):
        events = chrome_trace_events(
            {"run": self.tracer()}, windows={"other": self.make_windows()}
        )
        assert [e for e in events if e["ph"] == "C"] == []

    def test_windows_without_gauges_emit_nothing(self):
        events = chrome_trace_events(
            {"run": self.tracer()},
            windows={"run": [{"window": 0, "position": 10, "span": 10}]},
        )
        assert [e for e in events if e["ph"] == "C"] == []

    def test_live_run_exports_counter_tracks(self, tmp_path):
        from repro.experiments.harness import build_runtime, default_config, get_workload
        from repro.obs import Telemetry
        from repro.obs.export import write_chrome_trace

        config = default_config(16384)
        runtime = build_runtime("reuse", config)
        telemetry = runtime.attach_telemetry(Telemetry(window=500))
        runtime.run(get_workload("hotspot", config, seed=0))
        path = str(tmp_path / "trace.json")
        write_chrome_trace(
            path,
            {telemetry.name: telemetry.tracer},
            windows={telemetry.name: telemetry.windows()},
        )
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert {e["name"] for e in counters} == {
            "tier occupancy (pages)",
            "tier2 bypass rate",
        }
