"""Batch-aware telemetry: byte-identity of instrumented runs across engines.

The contract under test (docs/observability.md): windowed snapshots,
latency-digest state, Perfetto counter tracks, anomaly findings and the
*sampled* lifecycle stream are byte-identical between the scalar
reference loop and the vector engine — on any trace, under any policy,
with batches deliberately straddling window boundaries (small prime
intervals).  The unit tests pin the negotiation surface: batch
capability, the window batch observer's boundary cap, bulk digest
observation, sampled-lifecycle admission, engine resolution reasons and
the ``window-desync`` self-test.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import GMTConfig
from repro.core.factory import make_runtime, resolve_engine_reason
from repro.errors import ConfigError
from repro.obs import Telemetry
from repro.obs.anomaly import AnomalyDetector
from repro.obs.batch import (
    BatchObserverChain,
    SampledLifecycleRecorder,
    WindowBatchObserver,
    is_batch_capable,
)
from repro.obs.digest import LatencyDigest
from repro.obs.export import counter_track_events
from repro.obs.lifecycle import LifecycleRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshots import WindowedSnapshotter
from repro.sim.gpu import WarpAccess

N_PAGES = 48  # footprint; tier1=8 frames forces heavy eviction traffic


def small_config(**overrides):
    return GMTConfig(tier1_frames=8, tier2_frames=16, **overrides)


def make_trace(warps):
    return [WarpAccess(pages=tuple(pages), write=write) for pages, write in warps]


def instrumented_run(config, trace, engine, window, sample_rate=None):
    runtime = make_runtime(config, engine=engine, telemetry=True)
    telemetry = Telemetry(window=window, lifecycle_sample_rate=sample_rate)
    runtime.attach_telemetry(telemetry)
    result = runtime.run(trace)
    return result, telemetry


def telemetry_surfaces(telemetry):
    """Every surface the parity contract covers, as comparable values."""
    windows = telemetry.windows()
    return {
        "windows": windows,
        "digest": telemetry.latency_digest.to_dict(),
        "counter-tracks": counter_track_events(0, windows),
        "anomalies": [str(a) for a in AnomalyDetector().scan(windows)],
    }


warp_lists = st.lists(
    st.tuples(
        st.lists(
            st.integers(min_value=0, max_value=N_PAGES - 1),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        st.booleans(),
    ),
    min_size=1,
    max_size=120,
)


class TestEngineTelemetryParity:
    @settings(max_examples=20, deadline=None)
    @given(
        warps=warp_lists,
        policy=st.sampled_from(["tier-order", "random", "reuse"]),
        window=st.sampled_from([3, 7, 13]),  # primes: batches straddle cuts
        prefetch=st.sampled_from([0, 2]),
    )
    def test_all_surfaces_byte_identical(self, warps, policy, window, prefetch):
        trace = make_trace(warps)
        config = small_config(
            prefetch_degree=prefetch, footprint_pages=N_PAGES
        ).with_policy(policy)
        r_s, t_s = instrumented_run(config, trace, "scalar", window)
        r_v, t_v = instrumented_run(config, trace, "vector", window)
        assert r_s.elapsed_ns == r_v.elapsed_ns
        for counter in type(r_s.stats).counter_names():
            assert getattr(r_s.stats, counter) == getattr(r_v.stats, counter), counter
        s_surfaces, v_surfaces = telemetry_surfaces(t_s), telemetry_surfaces(t_v)
        for surface in s_surfaces:
            assert s_surfaces[surface] == v_surfaces[surface], surface

    @settings(max_examples=10, deadline=None)
    @given(warps=warp_lists, window=st.sampled_from([5, 11]))
    def test_sampled_lifecycle_stream_engine_independent(self, warps, window):
        trace = make_trace(warps)
        config = small_config()
        _, t_s = instrumented_run(config, trace, "scalar", window, sample_rate=0.5)
        _, t_v = instrumented_run(config, trace, "vector", window, sample_rate=0.5)
        assert list(t_s.lifecycle.events()) == list(t_v.lifecycle.events())

    def test_vector_flushes_final_partial_window(self):
        # 25 coalesced accesses at interval 10: windows at 10 and 20 plus
        # the flushed tail at 25, identically under both engines.
        trace = make_trace([((i % N_PAGES,), False) for i in range(25)])
        _, t_s = instrumented_run(small_config(), trace, "scalar", 10)
        _, t_v = instrumented_run(small_config(), trace, "vector", 10)
        assert [w["position"] for w in t_v.windows()] == [10, 20, 25]
        assert t_s.windows() == t_v.windows()


class TestBatchPrimitives:
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
            max_size=200,
        )
    )
    def test_observe_many_matches_observe_loop(self, values):
        looped, bulk = LatencyDigest(), LatencyDigest()
        for value in values:
            looped.observe(value)
        bulk.observe_many(values)
        assert looped.to_dict() == bulk.to_dict()

    def test_add_batch_cuts_one_window_per_boundary_crossed(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", help="")
        snap = WindowedSnapshotter(registry, interval=10)
        counter.inc(5)
        cut = snap.add_batch(35)
        assert [w["position"] for w in cut] == [10, 20, 30]
        assert snap._last_position == 30
        assert snap.add_batch(39) == []  # below the next boundary: no cut

    def test_window_batch_observer_caps_before_boundary(self):
        snap = WindowedSnapshotter(MetricsRegistry(), interval=10)
        observer = WindowBatchObserver(snap)
        # From position 0 a batch may retire 9 accesses; the 10th is the
        # boundary access and must replay scalar.
        assert observer.limit(0) == 9
        assert observer.limit(9) == 0
        observer.on_hits(9, 9)
        assert snap.windows() == []  # capped batches never cut
        snap.snapshot(10)
        assert observer.limit(10) == 9  # clock restarts past the boundary

    def test_chain_takes_most_restrictive_limit_and_fans_out(self):
        class Fixed:
            def __init__(self, limit):
                self._limit = limit
                self.seen = []

            def limit(self, position):
                return self._limit

            def on_hits(self, count, position):
                self.seen.append((count, position))

        near, far = Fixed(3), Fixed(100)
        chain = BatchObserverChain([near, None, far])
        assert chain.limit(0) == 3
        chain.on_hits(2, 5)
        assert near.seen == far.seen == [(2, 5)]


class TestCapabilityNegotiation:
    def test_duck_typed_attribute(self):
        assert not is_batch_capable(LifecycleRecorder())
        assert not is_batch_capable(object())
        assert is_batch_capable(SampledLifecycleRecorder(0.5))
        assert is_batch_capable(WindowBatchObserver(
            WindowedSnapshotter(MetricsRegistry(), interval=10)
        ))

    def test_telemetry_negotiates_on_lifecycle_kind(self):
        assert Telemetry().batch_capable
        assert Telemetry(lifecycle_sample_rate=0.25).batch_capable
        assert not Telemetry(lifecycle=True).batch_capable

    def test_sample_rate_validated(self):
        for rate in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigError):
                SampledLifecycleRecorder(rate)

    def test_sampling_is_deterministic_and_page_complete(self):
        a, b = SampledLifecycleRecorder(0.5), SampledLifecycleRecorder(0.5)
        decisions = [a.sampled(page) for page in range(512)]
        assert decisions == [b.sampled(page) for page in range(512)]
        assert any(decisions) and not all(decisions)
        # A different seed draws a different subset.
        other = SampledLifecycleRecorder(0.5, seed=1)
        assert decisions != [other.sampled(page) for page in range(512)]


class TestEngineResolution:
    def test_reasons(self):
        config = small_config()
        assert resolve_engine_reason("scalar", config) == (
            "scalar", "engine='scalar' requested explicitly"
        )
        assert resolve_engine_reason(None, config) == (
            "vector", "auto: no per-access consumers"
        )
        assert resolve_engine_reason(None, config, telemetry=True) == (
            "vector", "auto: telemetry is batch-capable"
        )
        engine, reason = resolve_engine_reason(None, config, recorder=True)
        assert engine == "scalar" and "per-access recorder" in reason
        engine, reason = resolve_engine_reason(
            None, config, checks=True, telemetry=True
        )
        assert engine == "scalar" and "conformance" in reason
        zoo = small_config(tier1_eviction="s3fifo")
        engine, reason = resolve_engine_reason(None, zoo, telemetry=True)
        assert engine == "scalar" and "s3fifo" in reason

    def test_runtime_reports_live_resolution(self):
        trace = make_trace([((i % N_PAGES,), False) for i in range(40)])
        runtime = make_runtime(small_config(), engine="vector", telemetry=True)
        runtime.attach_telemetry(Telemetry(window=10))
        runtime.run(trace)
        engine, reason = runtime.engine_resolution()
        assert engine == "vector"
        assert "batch-capable" in reason
        demoted = make_runtime(small_config(), engine="vector")
        demoted.attach_telemetry(Telemetry(window=10, lifecycle=True))
        demoted.run(trace)
        engine, reason = demoted.engine_resolution()
        assert engine == "scalar"
        assert "flight recorder" in reason


class TestWindowDesyncSelfTest:
    def test_injection_is_caught_and_clean_runs_pass(self):
        from repro.check.differential import (
            _inject_window_desync,
            check_telemetry_parity,
        )

        trace = make_trace(
            [((i % N_PAGES, (i * 7) % N_PAGES), i % 3 == 0) for i in range(90)]
        )
        config = small_config()
        clean, note = check_telemetry_parity("tier-order", config, trace, window=13)
        assert clean == [] and note is None
        violations, note = check_telemetry_parity(
            "tier-order", config, trace, window=13, corrupt=_inject_window_desync
        )
        assert violations
        assert note is not None and "shifted" in note
        assert all(v.identity == "telemetry-parity" for v in violations)
