"""The isolation experiment: adversarial pairs, shared vs per-tenant
policies, governor on/off — registration, fairness acceptance, and
engine-cache reproducibility."""

import pytest

from repro.experiments.engine import Engine, ResultCache
from repro.experiments.isolation import GOVERNORS, MODES, PAIRS, SPEC
from repro.experiments.runner import EXPERIMENTS, get_spec, run_experiment

#: The full-size run (the documented default for this experiment) is
#: where both pairs show their effect; the module-scoped fixture keeps
#: it to one execution.
SCALE = 4096


@pytest.fixture(scope="module")
def results():
    return run_experiment("isolation", scale=SCALE)


class TestRegistration:
    def test_registered(self):
        assert "isolation" in EXPERIMENTS
        assert get_spec("isolation") is SPEC

    def test_every_pair_has_a_governor_setting(self):
        assert set(GOVERNORS) == set(PAIRS)


class TestTables:
    def test_one_table_per_pair(self, results):
        assert [r.extras["pair"] for r in results] == list(PAIRS)

    def test_rows_cover_every_mode(self, results):
        for result in results:
            assert [row[0] for row in result.rows] == list(MODES)
            assert len(result.headers) == 2 + len(PAIRS[result.extras["pair"]]) + 2

    def test_renders(self, results):
        for result in results:
            assert result.extras["pair"] in result.to_text()


class TestFairnessAcceptance:
    """The headline claim: per-tenant policies + the governor improve
    Jain fairness over the shared-structure baseline on both
    adversarial pairs."""

    def jain(self, result, mode):
        return result.extras["fairness"][mode]["jain_index"]

    def test_split_plus_governor_beats_shared(self, results):
        for result in results:
            shared = self.jain(result, "shared")
            governed = self.jain(result, "split+quota+governor")
            assert governed > shared, (result.extras["pair"], shared, governed)

    def test_thrash_pair_actually_throttles(self, results):
        by_pair = {r.extras["pair"]: r for r in results}
        outcome = by_pair["thrash-vs-steady"].extras["outcomes"][
            "split+quota+governor"
        ]
        assert sum(t.stats.migration_throttled for t in outcome.tenants) > 0

    def test_quotas_fix_the_thrash_monopoly(self, results):
        by_pair = {r.extras["pair"]: r for r in results}
        result = by_pair["thrash-vs-steady"]
        assert self.jain(result, "shared+quota") > self.jain(result, "shared")

    def test_split_policies_fix_the_policy_mismatch(self, results):
        by_pair = {r.extras["pair"]: r for r in results}
        result = by_pair["scan-vs-zipf"]
        assert self.jain(result, "split+quota") > self.jain(result, "shared")


class TestCacheReproducibility:
    def test_warm_rerun_is_fully_cache_served_and_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = Engine(cache=cache, memo={})
        first = run_experiment("isolation", scale=SCALE, engine=cold)
        assert cold.stats.executed > 0

        warm = Engine(cache=cache, memo={})  # fresh memo = "new process"
        second = run_experiment("isolation", scale=SCALE, engine=warm)
        assert warm.stats.executed == 0

        for a, b in zip(first, second):
            assert a.rows == b.rows
            assert a.extras["fairness"] == b.extras["fairness"]
