"""Unit tests for the three placement policies."""

import random

import pytest

from repro.core.config import GMTConfig
from repro.core.placement import PlacementDecision
from repro.core.policies import (
    RandomPolicy,
    ReusePolicy,
    TierOrderPolicy,
    make_policy,
)
from repro.core.stats import RuntimeStats
from repro.errors import ConfigError
from repro.mem.page import PageState
from repro.reuse.classifier import ReuseClass
from repro.reuse.vtd import VirtualTimestampClock


@pytest.fixture
def config():
    return GMTConfig(
        tier1_frames=8,
        tier2_frames=32,
        sample_target=40,
        sample_batch=10,
        tier3_bias_window=8,
    )


def build_reuse(config):
    stats = RuntimeStats()
    vts = VirtualTimestampClock()
    policy = ReusePolicy(config, stats, vts, random.Random(0))
    return policy, stats, vts


class TestMakePolicy:
    def test_each_kind(self, config):
        stats, vts, rng = RuntimeStats(), VirtualTimestampClock(), random.Random(0)
        assert isinstance(
            make_policy(config.with_policy("tier-order"), stats, vts, rng),
            TierOrderPolicy,
        )
        assert isinstance(
            make_policy(config.with_policy("random"), stats, vts, rng), RandomPolicy
        )
        assert isinstance(make_policy(config, stats, vts, rng), ReusePolicy)


class TestTierOrderPolicy:
    def test_always_places_tier2(self, config):
        policy = TierOrderPolicy(config, RuntimeStats())
        plan = policy.choose(PageState(page=1))
        assert plan.decision is PlacementDecision.PLACE_TIER2
        assert policy.tier2_uses_clock
        assert policy.tier2_evicts_on_full


class TestRandomPolicy:
    def test_mixes_tier2_and_tier3(self, config):
        policy = RandomPolicy(config, RuntimeStats(), random.Random(1))
        decisions = {policy.choose(PageState(page=p)).decision for p in range(50)}
        assert decisions == {
            PlacementDecision.PLACE_TIER2,
            PlacementDecision.BYPASS_TIER3,
        }

    def test_probability_extremes(self, config):
        always = RandomPolicy(config, RuntimeStats(), random.Random(1), 1.0)
        never = RandomPolicy(config, RuntimeStats(), random.Random(1), 0.0)
        for p in range(20):
            assert always.choose(PageState(page=p)).decision is PlacementDecision.PLACE_TIER2
            assert never.choose(PageState(page=p)).decision is PlacementDecision.BYPASS_TIER3

    def test_invalid_probability(self, config):
        with pytest.raises(ConfigError):
            RandomPolicy(config, RuntimeStats(), random.Random(0), 1.5)

    def test_deterministic_under_seed(self, config):
        a = RandomPolicy(config, RuntimeStats(), random.Random(7))
        b = RandomPolicy(config, RuntimeStats(), random.Random(7))
        for p in range(30):
            assert a.choose(PageState(page=p)).decision == b.choose(PageState(page=p)).decision


class TestReusePolicyColdPath:
    def test_no_history_falls_back_to_tier2(self, config):
        policy, stats, _ = build_reuse(config)
        plan = policy.choose(PageState(page=1))
        assert plan.from_fallback
        assert plan.decision is PlacementDecision.PLACE_TIER2
        assert stats.fallback_placements == 1

    def test_cold_fill_resolves_nothing(self, config):
        policy, stats, vts = build_reuse(config)
        state = PageState(page=1)
        vts.observe_access(state)
        policy.on_tier1_fill(state)  # no prior eviction
        assert stats.resolved_predictions == 0


class TestReusePolicyLearning:
    def _train(self, policy, vts, state, gap, rounds=6):
        """Simulate eviction -> (gap ticks) -> return cycles."""
        for _ in range(rounds):
            plan = policy.choose(state)
            policy.on_evicted(state, plan)
            for _ in range(gap):
                vts.tick()
            vts.observe_access(state)
            policy.on_tier1_fill(state)
        return policy.choose(state)

    def _prime_sampler(self, policy, footprint=20, repeats=4):
        """Give the sampler a ~identity VTD->RD relation."""
        now = 0
        last = {}
        for _ in range(repeats):
            for page in range(1000, 1000 + footprint):
                now += 1
                vtd = now - last.get(page, now)
                vtd = vtd if page in last else None
                last[page] = now
                policy.sampler.observe(page, vtd)

    def test_learns_medium_class(self, config):
        policy, stats, vts = build_reuse(config)
        self._prime_sampler(policy)
        assert policy.sampler.model is not None
        state = PageState(page=1)
        vts.observe_access(state)
        # Gap of 16 ticks -> RRD ~16, between tier1 (8) and tier1+2 (40).
        plan = self._train(policy, vts, state, gap=16)
        assert plan.predicted_class is ReuseClass.MEDIUM
        assert plan.decision is PlacementDecision.PLACE_TIER2

    def test_learns_short_class_retains(self, config):
        policy, stats, vts = build_reuse(config)
        self._prime_sampler(policy)
        state = PageState(page=2)
        vts.observe_access(state)
        plan = self._train(policy, vts, state, gap=2)  # RRD ~2 < 8
        assert plan.predicted_class is ReuseClass.SHORT
        assert plan.decision is PlacementDecision.RETAIN_TIER1

    def test_learns_long_class_bypasses(self, config):
        policy, stats, vts = build_reuse(config)
        self._prime_sampler(policy, footprint=60)
        state = PageState(page=3)
        vts.observe_access(state)
        plan = self._train(policy, vts, state, gap=100)  # RRD >= 40
        assert plan.predicted_class is ReuseClass.LONG
        assert plan.decision is PlacementDecision.BYPASS_TIER3

    def test_accuracy_bookkeeping(self, config):
        policy, stats, vts = build_reuse(config)
        self._prime_sampler(policy)
        state = PageState(page=4)
        vts.observe_access(state)
        self._train(policy, vts, state, gap=16, rounds=8)
        assert stats.resolved_predictions > 0
        assert stats.prediction_accuracy > 0.5

    def test_heuristic_forces_tier2_under_long_bias(self, config):
        policy, stats, vts = build_reuse(config)
        self._prime_sampler(policy, footprint=60)
        # Build LONG history on one page, then saturate the window.
        state = PageState(page=5)
        vts.observe_access(state)
        plan = None
        for _ in range(config.tier3_bias_window + 8):
            plan = self._train(policy, vts, state, gap=100, rounds=1)
        assert plan.forced_tier2
        assert plan.decision is PlacementDecision.PLACE_TIER2
