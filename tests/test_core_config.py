"""Unit tests for GMTConfig."""

import pytest

from repro.core.config import (
    DEFAULT_SCALE,
    GMTConfig,
    PAPER_OVERSUBSCRIPTION,
    PAPER_TIER2_RATIO,
)
from repro.errors import ConfigError
from repro.units import PAGE_SIZE


class TestGMTConfig:
    def test_minimal(self):
        cfg = GMTConfig(tier1_frames=10, tier2_frames=40)
        assert cfg.total_memory_frames == 50
        assert cfg.page_size == PAGE_SIZE
        assert cfg.policy == "reuse"

    def test_working_set_frames(self):
        cfg = GMTConfig(tier1_frames=10, tier2_frames=40)
        assert cfg.working_set_frames() == 100  # oversub 2
        assert cfg.working_set_frames(4) == 200

    def test_working_set_invalid_oversub(self):
        with pytest.raises(ConfigError):
            GMTConfig(tier1_frames=1, tier2_frames=0).working_set_frames(0)

    def test_with_policy(self):
        cfg = GMTConfig(tier1_frames=10, tier2_frames=40)
        other = cfg.with_policy("random")
        assert other.policy == "random"
        assert other.tier1_frames == cfg.tier1_frames
        assert cfg.policy == "reuse"  # original untouched

    def test_zero_tier2_allowed(self):
        GMTConfig(tier1_frames=10, tier2_frames=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tier1_frames": 0, "tier2_frames": 4},
            {"tier1_frames": 4, "tier2_frames": -1},
            {"tier1_frames": 4, "tier2_frames": 4, "policy": "belady"},
            {"tier1_frames": 4, "tier2_frames": 4, "page_size": 0},
            {"tier1_frames": 4, "tier2_frames": 4, "transfer_batch_pages": 0},
            {"tier1_frames": 4, "tier2_frames": 4, "tier3_bias_threshold": 0.0},
            {"tier1_frames": 4, "tier2_frames": 4, "tier3_bias_threshold": 1.5},
            {"tier1_frames": 4, "tier2_frames": 4, "tier3_bias_window": 0},
            {"tier1_frames": 4, "tier2_frames": 4, "max_clock_retries": -1},
            {"tier1_frames": 4, "tier2_frames": 4, "sample_target": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            GMTConfig(**kwargs)

    def test_hashable_for_caching(self):
        a = GMTConfig(tier1_frames=4, tier2_frames=16)
        b = GMTConfig(tier1_frames=4, tier2_frames=16)
        assert hash(a) == hash(b)
        assert a == b


class TestPaperDefault:
    def test_default_scale_geometry(self):
        cfg = GMTConfig.paper_default()
        # 16 GiB / (64 KiB * 256) = 1024 frames; Tier-2 = 4x.
        assert cfg.tier1_frames == 1024
        assert cfg.tier2_frames == 4096

    def test_full_scale_matches_paper_bytes(self):
        cfg = GMTConfig.paper_default(scale=1)
        assert cfg.tier1_frames == 262_144  # 16 GiB of 64 KiB pages
        assert cfg.tier2_frames == 262_144 * PAPER_TIER2_RATIO

    def test_custom_ratio(self):
        cfg = GMTConfig.paper_default(tier2_ratio=8)
        assert cfg.tier2_frames == 8 * cfg.tier1_frames

    def test_overrides_forwarded(self):
        cfg = GMTConfig.paper_default(policy="random", seed=9)
        assert cfg.policy == "random"
        assert cfg.seed == 9

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            GMTConfig.paper_default(scale=0)

    def test_paper_constants(self):
        assert DEFAULT_SCALE == 256
        assert PAPER_OVERSUBSCRIPTION == 2.0
