"""End-to-end tests of every experiment module at a tiny scale.

These check that each table/figure regenerates with the right structure
and the headline *shape* properties the paper reports.  Scale 4096 keeps
Tier-1 at 64 frames so the full matrix runs in seconds.
"""

import pytest

from repro.experiments import fig4, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14, table2
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.spec import run_spec
from repro.workloads.registry import WORKLOAD_NAMES

SCALE = 4096


@pytest.fixture(scope="module")
def fig8_results():
    return run_spec(fig8.SPEC, scale=SCALE)


class TestFig8:
    def test_two_panels(self, fig8_results):
        assert [r.name for r in fig8_results] == ["fig8a", "fig8b"]

    def test_all_apps_plus_average(self, fig8_results):
        rows = fig8_results[0].rows
        assert len(rows) == len(WORKLOAD_NAMES) + 1
        assert rows[-1][0] == "Average"

    def test_reuse_beats_bam_on_average(self, fig8_results):
        means = fig8_results[0].extras["means"]
        assert means["reuse"] > 1.1

    def test_reuse_is_best_policy(self, fig8_results):
        means = fig8_results[0].extras["means"]
        assert means["reuse"] >= means["tier-order"]
        assert means["reuse"] >= means["random"]

    def test_io_reduced_vs_bam(self, fig8_results):
        ratios = fig8_results[1].extras["io_ratios"]
        from repro.analysis.metrics import arithmetic_mean

        assert arithmetic_mean(ratios["reuse"]) < 1.0


class TestFig9:
    def test_rows_and_accuracy_range(self):
        (result,) = run_spec(fig9.SPEC, scale=SCALE)
        assert len(result.rows) == len(WORKLOAD_NAMES)
        for acc in result.extras["accuracies"].values():
            assert 0.0 <= acc <= 1.0

    def test_high_reuse_apps_have_history(self):
        (result,) = run_spec(fig9.SPEC, scale=SCALE)
        accs = result.extras["accuracies"]
        assert accs["hotspot"] > 0.5


class TestFig10:
    def test_panels(self):
        a, b = run_spec(fig10.SPEC, scale=SCALE)
        assert a.name == "fig10a" and b.name == "fig10b"
        assert len(a.rows) == len(WORKLOAD_NAMES)

    def test_wasteful_fractions_are_percentages(self):
        a, _ = run_spec(fig10.SPEC, scale=SCALE)
        for row in a.rows:
            for value in row[1:]:
                assert 0.0 <= value <= 100.0


class TestFig11:
    def test_speedups_shrink_vs_fig8(self, fig8_results):
        (result,) = run_spec(fig11.SPEC, scale=SCALE)
        fig8_mean = fig8_results[0].extras["means"]["reuse"]
        fig11_mean = result.extras["means"]["reuse"]
        assert fig11_mean < fig8_mean
        assert fig11_mean > 0.9  # still roughly at-or-above BaM


class TestFig12:
    def test_speedup_grows_with_ratio(self):
        (result,) = run_spec(fig12.SPEC, scale=SCALE)
        series = result.extras["series"]
        from repro.analysis.metrics import arithmetic_mean

        means = [arithmetic_mean(series[r]) for r in (2, 4, 8)]
        assert means[0] < means[1] < means[2]


class TestFig13:
    def test_non_graph_apps_only(self):
        (result,) = run_spec(fig13.SPEC, scale=SCALE)
        apps = [row[0] for row in result.rows[:-1]]
        assert "PageRank" not in apps
        assert "LavaMD" in apps

    def test_reuse_still_ahead(self):
        (result,) = run_spec(fig13.SPEC, scale=SCALE)
        means = result.extras["means"]
        assert means["reuse"] > 1.0


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        (res,) = run_spec(fig14.SPEC, scale=SCALE)
        return res

    def test_bam_beats_hmm(self, result):
        assert result.extras["means"]["hmm_over_bam"] < 1.0

    def test_reuse_beats_hmm_strongly(self, result):
        assert result.extras["means"]["reuse_over_hmm"] > 1.5

    def test_reuse_beats_optimistic_hmm(self, result):
        assert result.extras["means"]["reuse_over_optimistic_hmm"] > 1.0


class TestTable2:
    def test_rows(self):
        (result,) = run_spec(table2.SPEC, scale=SCALE)
        assert len(result.rows) == 9

    def test_reuse_spectrum(self):
        (result,) = run_spec(table2.SPEC, scale=SCALE)
        measured = result.extras["measured"]
        assert measured["lavamd"]["reuse_percent"] < 10
        assert measured["backprop"]["reuse_percent"] > 80


class TestFig7:
    def test_fractions_sum(self):
        (result,) = run_spec(fig7.SPEC, scale=SCALE)
        for row in result.rows:
            acc = row[2] + row[3] + row[4]
            assert acc == pytest.approx(100.0, abs=0.5)


class TestFig4:
    def test_linear_correlation(self):
        a, bc = run_spec(fig4.SPEC, scale=SCALE)
        for r in a.extras["correlations"].values():
            assert r > 0.9

    def test_patterns(self):
        _, bc = run_spec(fig4.SPEC, scale=SCALE)
        fr = bc.extras["series_fractions"]
        assert fr["multivectoradd"]["constant"] > 0.3
        assert fr["pagerank"]["alternating"] > 0.3


class TestFig6:
    def test_crossover_near_eight(self):
        a, b = run_spec(fig6.SPEC, scale=SCALE)
        assert 6 <= a.extras["crossover"] <= 10

    def test_hybrid32_close_to_best(self):
        _, b = run_spec(fig6.SPEC, scale=SCALE)
        series = b.extras["series"]
        best = [
            max(series[name][i] for name in series)
            for i in range(len(next(iter(series.values()))))
        ]
        for h32, top in zip(series["Hybrid-32T"], best):
            assert h32 >= 0.55 * top


class TestRunner:
    def test_experiment_list_complete(self):
        assert set(EXPERIMENTS) == {
            "table2",
            "fig4",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "extensions",
            "serve_mix",
            "isolation",
            "capacity",
        }

    def test_serve_mix_sweep(self):
        (result,) = run_experiment("serve_mix", scale=SCALE)
        assert result.name == "serve_mix"
        # 3 disciplines x 3 quota modes.
        assert len(result.rows) == 9
        outcomes = result.extras["outcomes"]
        for outcome in outcomes.values():
            assert len(outcome.tenants) == 3
            assert all(t.slowdown is not None for t in outcome.tenants)

    def test_run_experiment_dispatch(self):
        results = run_experiment("fig6", scale=SCALE)
        assert results and results[0].name == "fig6a"

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            run_experiment("fig99", scale=SCALE)
