"""Tests for the extra (non-Table-2) workloads and the zipf generator."""

import pytest

from repro.analysis.characterize import characterize_workload
from repro.errors import TraceError
from repro.workloads.registry import (
    EXTRA_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    make_workload,
)
from repro.workloads.synthetic import (
    KeyValueWorkload,
    StreamingWorkload,
    ZipfAccessGenerator,
    zipf_weights,
)


class TestRegistry:
    def test_extras_not_in_paper_suite(self):
        assert "streaming" in EXTRA_WORKLOAD_NAMES
        assert "keyvalue" in EXTRA_WORKLOAD_NAMES
        assert not set(EXTRA_WORKLOAD_NAMES) & set(WORKLOAD_NAMES)

    def test_make_workload_accepts_extras(self):
        w = make_workload("streaming", 100, jitter_warps=0)
        assert isinstance(w, StreamingWorkload)


class TestStreamingWorkload:
    def test_zero_reuse(self):
        w = StreamingWorkload(footprint_pages=200)
        ch = characterize_workload(w)
        assert ch.reuse_percent == 0.0
        assert ch.distinct_pages == 200

    def test_write_fraction(self):
        all_writes = StreamingWorkload(100, write_fraction=1.0)
        no_writes = StreamingWorkload(100, write_fraction=0.0)
        assert all(w.write for w in all_writes)
        assert not any(w.write for w in no_writes)

    def test_validation(self):
        with pytest.raises(TraceError):
            StreamingWorkload(100, write_fraction=1.5)

    def test_no_policy_can_help(self):
        """Control property: with zero reuse, GMT-Reuse's SSD read count
        equals BaM's."""
        from repro.baselines.bam import BamRuntime
        from repro.core.config import GMTConfig
        from repro.core.runtime import GMTRuntime

        w = StreamingWorkload(300, write_fraction=0.0)
        cfg = GMTConfig(
            tier1_frames=16, tier2_frames=64, sample_target=100, sample_batch=20
        )
        bam = BamRuntime(cfg).run(w)
        gmt = GMTRuntime(cfg).run(w)
        assert gmt.stats.ssd_page_reads == bam.stats.ssd_page_reads


class TestKeyValueWorkload:
    def test_hot_set_reuse(self):
        w = KeyValueWorkload(footprint_pages=500, seed=1, compaction_every=500)
        ch = characterize_workload(w)
        assert ch.reuse_percent > 50  # compaction touches everything twice+
        assert ch.distinct_pages == 500

    def test_compaction_cadence(self):
        w = KeyValueWorkload(footprint_pages=100, lookups=100, compaction_every=50)
        warps = list(w)
        # 100 lookups + 2 compactions of 50 warps each.
        assert len(warps) == 100 + 2 * 50

    def test_deterministic(self):
        a = KeyValueWorkload(200, seed=5)
        b = KeyValueWorkload(200, seed=5)
        assert [w.pages for w in a][:100] == [w.pages for w in b][:100]

    def test_validation(self):
        with pytest.raises(TraceError):
            KeyValueWorkload(100, skew=-1)
        with pytest.raises(TraceError):
            KeyValueWorkload(100, compaction_every=0)
        with pytest.raises(TraceError):
            KeyValueWorkload(100, lookups=0)


class TestZipfGenerator:
    def test_weights_normalised(self):
        w = zipf_weights(100, 0.8)
        assert w.sum() == pytest.approx(1.0)
        assert w[0] > w[-1]

    def test_zero_skew_uniform(self):
        w = zipf_weights(50, 0.0)
        assert w[0] == pytest.approx(w[-1])

    def test_higher_skew_fewer_distinct(self):
        def distinct(skew):
            gen = ZipfAccessGenerator(1000, num_warps=200, skew=skew, seed=3)
            return len({p for warp in gen for p in warp.pages})

        assert distinct(1.2) < distinct(0.0)

    def test_write_fraction(self):
        gen = ZipfAccessGenerator(100, 100, 0.5, write_fraction=1.0, seed=1)
        assert all(w.write for w in gen)

    def test_validation(self):
        with pytest.raises(TraceError):
            ZipfAccessGenerator(100, 0, 0.5)
        with pytest.raises(TraceError):
            ZipfAccessGenerator(100, 10, 0.5, lanes=0)
        with pytest.raises(TraceError):
            ZipfAccessGenerator(100, 10, 0.5, write_fraction=2.0)
        with pytest.raises(TraceError):
            zipf_weights(0, 1.0)
        with pytest.raises(TraceError):
            zipf_weights(10, -0.5)
