"""Unit tests for runtime statistics and the 80% Tier-3-bias heuristic."""

import pytest

from repro.core.placement import PlacementDecision, Tier3BiasHeuristic
from repro.core.stats import RuntimeStats
from repro.errors import ConfigError
from repro.reuse.classifier import ReuseClass
from repro.units import PAGE_SIZE


class TestRuntimeStats:
    def test_hit_rates_empty(self):
        s = RuntimeStats()
        assert s.t1_hit_rate == 0.0
        assert s.t2_hit_rate == 0.0
        assert s.wasteful_lookup_fraction == 0.0
        assert s.prediction_accuracy == 0.0

    def test_t1_hit_rate(self):
        s = RuntimeStats(t1_hits=3, t1_misses=1)
        assert s.t1_hit_rate == 0.75

    def test_wasteful_fraction(self):
        s = RuntimeStats(t1_misses=10, t2_wasteful_lookups=4)
        assert s.wasteful_lookup_fraction == 0.4

    def test_prediction_outcomes(self):
        s = RuntimeStats()
        s.record_prediction_outcome("MEDIUM", "MEDIUM")
        s.record_prediction_outcome("MEDIUM", "LONG")
        assert s.resolved_predictions == 2
        assert s.correct_predictions == 1
        assert s.prediction_accuracy == 0.5
        assert s.confusion[("MEDIUM", "LONG")] == 1

    def test_io_bytes(self):
        s = RuntimeStats(ssd_page_reads=3, ssd_page_writes=2)
        assert s.ssd_page_ios == 5
        assert s.io_bytes(PAGE_SIZE) == 5 * PAGE_SIZE

    def test_as_dict_roundtrip(self):
        s = RuntimeStats(t1_hits=1, t2_hits=2, ssd_page_reads=3)
        d = s.as_dict()
        assert d["t1_hits"] == 1
        assert d["t2_hits"] == 2
        assert d["ssd_page_reads"] == 3
        assert "prediction_accuracy" in d

    def test_as_dict_covers_every_field_and_property(self):
        """Regression: as_dict() is derived from the dataclass fields plus
        the declared property list, so adding a counter cannot silently
        fall out of the export again."""
        from dataclasses import fields

        s = RuntimeStats()
        d = s.as_dict()
        expected = {
            f.name for f in fields(RuntimeStats)
            if f.name not in RuntimeStats.NON_SCALAR_FIELDS
        } | set(RuntimeStats.EXPORTED_PROPERTIES)
        assert set(d) == expected
        # The five keys the hand-maintained dict used to omit:
        for name in (
            "retention_overrides",
            "resolved_predictions",
            "correct_predictions",
            "ssd_page_ios",
            "prefetch_accuracy",
        ):
            assert name in d, name

    def test_as_dict_matches_bound_registry(self):
        """The registry export and the dict export expose the same counters."""
        s = RuntimeStats(t1_hits=4, t1_misses=2, ssd_page_writes=1)
        reg = s.bind_registry(None)
        d = s.as_dict()
        for name, value in d.items():
            assert reg.get(f"gmt_{name}").value == value


class TestPlacementDecision:
    def test_maps_from_reuse_class(self):
        assert PlacementDecision.for_class(ReuseClass.SHORT) is PlacementDecision.RETAIN_TIER1
        assert PlacementDecision.for_class(ReuseClass.MEDIUM) is PlacementDecision.PLACE_TIER2
        assert PlacementDecision.for_class(ReuseClass.LONG) is PlacementDecision.BYPASS_TIER3


class TestTier3BiasHeuristic:
    def test_inactive_until_window_full(self):
        h = Tier3BiasHeuristic(threshold=0.8, window=5)
        for _ in range(4):
            h.record(ReuseClass.LONG)
        assert not h.should_force_tier2()

    def test_fires_when_long_dominates(self):
        h = Tier3BiasHeuristic(threshold=0.8, window=5)
        for _ in range(5):
            h.record(ReuseClass.LONG)
        assert h.should_force_tier2()
        assert h.long_fraction == 1.0

    def test_exact_threshold_does_not_fire(self):
        # "greater than 80%", strictly.
        h = Tier3BiasHeuristic(threshold=0.8, window=5)
        for cls in [ReuseClass.LONG] * 4 + [ReuseClass.MEDIUM]:
            h.record(cls)
        assert h.long_fraction == 0.8
        assert not h.should_force_tier2()

    def test_window_slides(self):
        h = Tier3BiasHeuristic(threshold=0.8, window=4)
        for _ in range(4):
            h.record(ReuseClass.LONG)
        assert h.should_force_tier2()
        for _ in range(2):
            h.record(ReuseClass.MEDIUM)
        assert not h.should_force_tier2()

    def test_long_fraction_empty(self):
        assert Tier3BiasHeuristic().long_fraction == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            Tier3BiasHeuristic(threshold=0.0)
        with pytest.raises(ConfigError):
            Tier3BiasHeuristic(threshold=1.1)
        with pytest.raises(ConfigError):
            Tier3BiasHeuristic(window=0)
