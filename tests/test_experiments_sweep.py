"""Tests for the generic configuration sweep helper."""

import pytest

from repro.errors import ConfigError
from repro.experiments.harness import default_config
from repro.experiments.sweep import apply_override, sweep_config

SCALE = 8192


class TestApplyOverride:
    def test_config_field(self):
        cfg = default_config(SCALE)
        out = apply_override(cfg, "tier2_frames", 99)
        assert out.tier2_frames == 99
        assert cfg.tier2_frames != 99  # frozen original untouched

    def test_platform_field(self):
        cfg = default_config(SCALE)
        out = apply_override(cfg, "platform.ssd_read_latency_ns", 99_000.0)
        assert out.platform.ssd_read_latency_ns == 99_000.0

    def test_unknown_config_field(self):
        with pytest.raises(ConfigError):
            apply_override(default_config(SCALE), "tier9_frames", 1)

    def test_unknown_platform_field(self):
        with pytest.raises(ConfigError):
            apply_override(default_config(SCALE), "platform.flux", 1)


class TestSweepConfig:
    def test_tier2_sweep_monotone(self):
        result = sweep_config(
            "tier2_frames",
            [32, 128, 256],
            apps=("srad",),
            scale=SCALE,
        )
        means = result.extras["means"]
        assert means[32] <= means[128] <= means[256] * 1.02

    def test_platform_sweep(self):
        # Slower SSDs make Tier-2 relief more valuable.
        result = sweep_config(
            "platform.ssd_read_bandwidth",
            [2.0 * 2**30, 8.0 * 2**30],
            apps=("srad",),
            scale=SCALE,
        )
        means = result.extras["means"]
        assert means[2.0 * 2**30] >= means[8.0 * 2**30] * 0.95

    def test_rows_shape(self):
        result = sweep_config("tier2_frames", [64, 128], apps=("srad", "hotspot"), scale=SCALE)
        assert len(result.rows) == 2
        assert len(result.rows[0]) == 1 + 2 + 1  # value + apps + mean
        assert result.headers[-1] == "mean"

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigError):
            sweep_config("tier2_frames", [], scale=SCALE)

    def test_policy_only_knob_with_fixed_baseline(self):
        result = sweep_config(
            "tier3_bias_enabled",
            [True, False],
            apps=("hotspot",),
            scale=SCALE,
            vary_baseline=False,
        )
        means = result.extras["means"]
        assert means[True] >= means[False]
