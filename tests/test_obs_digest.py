"""LatencyDigest: accuracy guarantees, bounded memory, merge, round-trip."""

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.obs.digest import DEFAULT_RELATIVE_ERROR, LatencyDigest


def true_quantile(values, q):
    """Interpolation-free reference: the order statistic at rank
    floor(q*(n-1)), matching the digest's rank convention."""
    ordered = sorted(values)
    rank = q * (len(ordered) - 1)
    return ordered[math.floor(rank)]


class TestBasics:
    def test_empty_digest_is_zero(self):
        d = LatencyDigest()
        assert d.count == 0
        assert len(d) == 0
        assert d.p50 == 0.0
        assert d.p99 == 0.0
        assert d.mean == 0.0

    def test_single_observation(self):
        d = LatencyDigest()
        d.observe(1234.5)
        assert d.count == 1
        for q in (0.0, 0.5, 0.99, 1.0):
            assert d.quantile(q) == pytest.approx(1234.5, rel=0.01)
        assert d.min == 1234.5
        assert d.max == 1234.5

    def test_negative_observation_rejected(self):
        d = LatencyDigest()
        with pytest.raises(ConfigError):
            d.observe(-1.0)

    def test_zero_observations_counted(self):
        d = LatencyDigest()
        for _ in range(99):
            d.observe(0.0)
        d.observe(1000.0)
        assert d.count == 100
        assert d.p50 == 0.0
        assert d.quantile(1.0) == pytest.approx(1000.0, rel=0.01)

    def test_invalid_quantile_rejected(self):
        d = LatencyDigest()
        d.observe(1.0)
        with pytest.raises(ConfigError):
            d.quantile(1.5)
        with pytest.raises(ConfigError):
            d.quantile(-0.1)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            LatencyDigest(relative_error=0.0)
        with pytest.raises(ConfigError):
            LatencyDigest(relative_error=1.0)
        with pytest.raises(ConfigError):
            LatencyDigest(max_bins=4)

    def test_mean_sum_exact(self):
        d = LatencyDigest()
        values = [10.0, 20.0, 30.0, 40.0]
        for v in values:
            d.observe(v)
        assert d.sum == pytest.approx(sum(values))
        assert d.mean == pytest.approx(sum(values) / len(values))


class TestAccuracy:
    """The issue's bar: p50/p90/p99 within 1% relative error."""

    def check_quantiles(self, values, digest):
        for q in (0.50, 0.90, 0.99):
            truth = true_quantile(values, q)
            estimate = digest.quantile(q)
            assert estimate == pytest.approx(truth, rel=0.01), (
                f"q={q}: estimate {estimate} vs true {truth}"
            )

    def test_lognormal_latencies(self):
        rng = random.Random(42)
        d = LatencyDigest()
        values = [rng.lognormvariate(10.0, 2.0) for _ in range(20_000)]
        for v in values:
            d.observe(v)
        self.check_quantiles(values, d)

    def test_bimodal_hit_miss_mixture(self):
        # Shaped like the simulator's output: a fast mode (Tier-2 hits)
        # and a slow mode (SSD faults) three decades apart.
        rng = random.Random(7)
        d = LatencyDigest()
        values = []
        for _ in range(10_000):
            v = rng.gauss(3_000.0, 300.0) if rng.random() < 0.8 else rng.gauss(
                3_000_000.0, 200_000.0
            )
            v = max(v, 1.0)
            values.append(v)
            d.observe(v)
        self.check_quantiles(values, d)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=1e12, allow_nan=False),
            min_size=10,
            max_size=500,
        )
    )
    def test_relative_error_bound_hypothesis(self, values):
        d = LatencyDigest()
        for v in values:
            d.observe(v)
        self.check_quantiles(values, d)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(min_value=1e-3, max_value=1e9), min_size=1, max_size=200),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quantile_always_within_observed_range(self, values, q):
        d = LatencyDigest()
        for v in values:
            d.observe(v)
        estimate = d.quantile(q)
        assert min(values) <= estimate <= max(values)

    def test_monotone_in_q(self):
        rng = random.Random(3)
        d = LatencyDigest()
        for _ in range(5_000):
            d.observe(rng.expovariate(1e-6))
        qs = [i / 100 for i in range(101)]
        estimates = [d.quantile(q) for q in qs]
        assert estimates == sorted(estimates)


class TestBoundedMemory:
    def test_bins_never_exceed_cap(self):
        d = LatencyDigest(max_bins=32)
        rng = random.Random(0)
        # 12 decades of dynamic range would need far more than 32 bins.
        for _ in range(10_000):
            d.observe(10 ** rng.uniform(-2, 10))
        assert len(d._bins) <= 32
        assert d.collapsed > 0
        assert d.count == 10_000

    def test_collapse_preserves_tail_accuracy(self):
        d = LatencyDigest(max_bins=64)
        rng = random.Random(1)
        values = [10 ** rng.uniform(0, 9) for _ in range(20_000)]
        for v in values:
            d.observe(v)
        # The lowest buckets were sacrificed; the SLO-relevant tail holds.
        truth = true_quantile(values, 0.99)
        assert d.quantile(0.99) == pytest.approx(truth, rel=0.01)


class TestMergeAndSerialise:
    def test_merge_equals_combined_stream(self):
        rng = random.Random(11)
        a, b, combined = LatencyDigest(), LatencyDigest(), LatencyDigest()
        for _ in range(5_000):
            v = rng.lognormvariate(8.0, 1.5)
            (a if rng.random() < 0.5 else b).observe(v)
            combined.observe(v)
        a.merge(b)
        assert a.count == combined.count
        assert a.sum == pytest.approx(combined.sum)
        for q in (0.5, 0.9, 0.99):
            assert a.quantile(q) == pytest.approx(combined.quantile(q), rel=1e-9)

    def test_merge_mismatched_accuracy_rejected(self):
        a = LatencyDigest(relative_error=0.005)
        b = LatencyDigest(relative_error=0.01)
        with pytest.raises(ConfigError):
            a.merge(b)

    def test_dict_roundtrip(self):
        d = LatencyDigest()
        rng = random.Random(5)
        for _ in range(2_000):
            d.observe(rng.expovariate(1e-5))
        d.observe(0.0)
        doc = json.loads(json.dumps(d.to_dict()))
        back = LatencyDigest.from_dict(doc)
        assert back.count == d.count
        assert back.sum == pytest.approx(d.sum)
        assert back.min == d.min and back.max == d.max
        for q in (0.5, 0.9, 0.99):
            assert back.quantile(q) == d.quantile(q)

    def test_empty_roundtrip(self):
        back = LatencyDigest.from_dict(LatencyDigest().to_dict())
        assert back.count == 0
        assert back.p99 == 0.0
        assert math.isinf(back.min)

    def test_default_relative_error_inside_one_percent(self):
        # The constant the whole suite leans on: worst-case bucket error
        # is exactly `relative_error`, which must sit under the 1% bar.
        assert DEFAULT_RELATIVE_ERROR < 0.01


class TestRuntimeWiring:
    def test_telemetry_digest_fed_on_misses(self, tmp_path):
        from repro.core.runtime import GMTRuntime
        from repro.experiments.harness import default_config, get_workload

        config = default_config(scale=64)
        runtime = GMTRuntime(config)
        telemetry = runtime.attach_telemetry()
        workload = get_workload("bfs", config, oversubscription=2.0, seed=0)
        runtime.run(workload)
        digest = telemetry.latency_digest
        assert digest.count > 0
        # Fed in lockstep with the always-on latency histogram.
        assert digest.count == telemetry.fault_latency.count
        snap = telemetry.snapshot()
        assert snap["gmt_fault_latency_p50_ns"] == pytest.approx(digest.p50)
        assert snap["gmt_fault_latency_p99_ns"] == pytest.approx(digest.p99)
