"""Phase profiler: attribution exactness, attach/detach hygiene, zero
cost when disabled, sampled-mode statistics, and the gmt-prof CLI."""

import json
import random
import tracemalloc

import pytest

import repro.prof
from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from repro.errors import ConfigError, SimulationError
from repro.prof import (
    PHASES,
    PhaseProfiler,
    ThroughputMeter,
    collapsed_lines,
    diff_profiles,
    format_top,
    load_profile,
    main,
    profile,
    profile_replay,
)


class FakeClock:
    """Settable clock for deterministic exact-mode attribution."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def make_config(**kwargs):
    return GMTConfig(
        tier1_frames=kwargs.pop("tier1", 16),
        tier2_frames=kwargs.pop("tier2", 64),
        policy=kwargs.pop("policy", "reuse"),
        sample_target=200,
        sample_batch=40,
        **kwargs,
    )


def random_pages(n=2000, universe=512, seed=11):
    rng = random.Random(seed)
    return [rng.randrange(universe) for _ in range(n)]


class TestThroughputMeter:
    def test_overall_rate(self):
        clk = FakeClock()
        meter = ThroughputMeter(interval=10, clock=clk)
        meter.start(0)
        clk.t = 2.0
        meter.tick(100)
        assert meter.overall() == pytest.approx(50.0)

    def test_recent_rate_uses_tail_samples(self):
        clk = FakeClock()
        meter = ThroughputMeter(interval=10, clock=clk)
        meter.start(0)
        clk.t = 1.0
        meter.tick(10)  # 10/s
        clk.t = 1.1
        meter.tick(30)  # then 200/s
        assert meter.rate(window=1) == pytest.approx(200.0, rel=1e-6)

    def test_sub_interval_ticks_are_coalesced(self):
        meter = ThroughputMeter(interval=100, clock=FakeClock())
        meter.start(0)
        for position in range(0, 90, 10):
            meter.tick(position)
        assert len(meter.samples) == 1

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigError):
            ThroughputMeter(interval=0)


class TestExactAttribution:
    def test_exclusive_times_are_exact_with_fake_clock(self):
        clk = FakeClock()
        prof = PhaseProfiler(mode="exact", clock=clk)
        prof.enter("access")  # t=0
        clk.t = 1.0
        prof.enter("page-table")
        clk.t = 3.0
        prof.exit()
        clk.t = 6.0
        prof.exit()
        doc = prof.report()
        assert doc["phases"]["access"]["self_s"] == pytest.approx(4.0)
        assert doc["phases"]["page-table"]["self_s"] == pytest.approx(2.0)
        assert doc["stacks"] == pytest.approx(
            {"access": 4.0, "access;page-table": 2.0}
        )

    def test_reentry_accumulates(self):
        clk = FakeClock()
        prof = PhaseProfiler(mode="exact", clock=clk)
        for start in (0.0, 10.0):
            clk.t = start
            prof.enter("eviction")
            clk.t = start + 2.0
            prof.exit()
        doc = prof.report()
        assert doc["phases"]["eviction"]["self_s"] == pytest.approx(4.0)
        assert doc["phases"]["eviction"]["calls"] == 2

    def test_gap_between_phases_is_unattributed(self):
        clk = FakeClock()
        prof = PhaseProfiler(mode="exact", clock=clk)
        prof.enter("access")
        clk.t = 1.0
        prof.exit()
        clk.t = 5.0  # 4s outside any phase
        prof.enter("access")
        clk.t = 6.0
        prof.exit()
        prof.wall_s = 6.0
        assert prof.attributed_s == pytest.approx(2.0)
        assert prof.coverage == pytest.approx(2.0 / 6.0)

    def test_drain_cap_bounds_event_buffer(self):
        clk = FakeClock()
        prof = PhaseProfiler(mode="exact", clock=clk)
        prof._drain_at = 64
        for i in range(1000):
            clk.t = float(i)
            prof.enter("access")
            clk.t = float(i) + 0.5
            prof.exit()
        assert len(prof._events) < 64
        assert prof.report()["phases"]["access"]["calls"] == 1000


class TestAttachDetach:
    def test_exact_detach_restores_methods(self):
        runtime = GMTRuntime(make_config())
        baseline_access = runtime.access_warp
        prof = PhaseProfiler(mode="exact")
        prof.attach(runtime)
        assert "access_warp" in vars(runtime)
        assert runtime._prof is prof
        prof.detach()
        assert "access_warp" not in vars(runtime)
        assert runtime.access_warp == baseline_access
        assert runtime._prof is None

    def test_sampled_attach_never_touches_methods(self):
        runtime = GMTRuntime(make_config())
        prof = PhaseProfiler()
        prof.attach(runtime)
        try:
            assert "access_warp" not in vars(runtime)
            assert "lookup" not in vars(runtime.page_table)
            assert runtime._prof is prof
        finally:
            prof.detach()
        assert runtime._prof is None
        assert prof._sampler is None

    def test_double_attach_rejected_both_sides(self):
        runtime = GMTRuntime(make_config())
        prof = PhaseProfiler()
        prof.attach(runtime)
        try:
            with pytest.raises(ConfigError):
                prof.attach(GMTRuntime(make_config()))
            with pytest.raises(ConfigError):
                PhaseProfiler().attach(runtime)
        finally:
            prof.detach()

    def test_runtime_attach_profiler_helper(self):
        runtime = GMTRuntime(make_config())
        prof = runtime.attach_profiler()
        assert isinstance(prof, PhaseProfiler)
        assert runtime._prof is prof
        runtime.detach_profiler()
        assert runtime._prof is None
        runtime.detach_profiler()  # idempotent

    @pytest.mark.parametrize("mode", ["exact", "sampled"])
    def test_profiling_does_not_change_results(self, mode):
        pages = random_pages()
        bare = GMTRuntime(make_config())
        for page in pages:
            bare.access(page)
        profiled = GMTRuntime(make_config())
        prof = PhaseProfiler(mode=mode)
        prof.attach(profiled)
        try:
            for page in pages:
                profiled.access(page)
        finally:
            prof.detach()
        assert profiled.stats.t1_hits == bare.stats.t1_hits
        assert profiled.stats.t1_evictions == bare.stats.t1_evictions
        assert profiled.result().elapsed_ns == bare.result().elapsed_ns

    def test_bad_mode_and_interval_rejected(self):
        with pytest.raises(ConfigError):
            PhaseProfiler(mode="statistical")
        with pytest.raises(ConfigError):
            PhaseProfiler(interval=0.0)


class TestReplayProfiling:
    def _workload(self, n=3000):
        pages = random_pages(n=n)
        from repro.sim.gpu import WarpAccess

        def gen():
            for page in pages:
                yield WarpAccess(pages=(page,), write=False)

        return gen()

    def test_exact_replay_attributes_most_of_wall(self):
        runtime = GMTRuntime(make_config())
        prof = PhaseProfiler(mode="exact")
        prof, result = profile_replay(runtime, self._workload(), profiler=prof)
        assert prof.accesses == 3000
        assert prof.wall_s > 0
        assert prof.coverage > 0.9
        assert result.stats.coalesced_accesses == 3000
        assert set(prof.report()["phases"]) <= set(PHASES)

    def test_sampled_replay_produces_samples(self):
        runtime = GMTRuntime(make_config())
        prof = PhaseProfiler(interval=1e-4)
        prof, _result = profile_replay(runtime, self._workload(8000), profiler=prof)
        doc = prof.report()
        assert doc["mode"] == "sampled"
        assert prof.accesses == 8000
        # Statistical: every matched sample charges its interval, so on a
        # replay this long attribution should dominate the wall.
        assert doc["phases"], "sampler never landed in a known phase"
        assert set(doc["phases"]) <= set(PHASES)
        assert prof.attributed_s <= prof.wall_s * 1.1

    def test_profile_context_manager(self):
        runtime = GMTRuntime(make_config())
        with profile(runtime) as prof:
            for page in random_pages(n=500):
                runtime.access(page)
        assert runtime._prof is None
        assert prof.wall_s > 0
        assert prof.accesses == 500


class TestZeroCostWhenDisabled:
    def test_disabled_runtime_allocates_nothing_in_prof_module(self):
        runtime = GMTRuntime(make_config())
        pages = random_pages(n=1500)
        for page in pages[:200]:  # warm up steady state
            runtime.access(page)
        tracemalloc.start()
        try:
            for page in pages[200:]:
                runtime.access(page)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        snapshot = snapshot.filter_traces(
            [tracemalloc.Filter(True, repro.prof.__file__)]
        )
        assert snapshot.statistics("filename") == []


class TestReporting:
    def _doc(self, **phases):
        total = sum(phases.values())
        return {
            "version": 1,
            "mode": "exact",
            "wall_s": total,
            "accesses": 1000,
            "accesses_per_sec": 1000 / total if total else 0.0,
            "attributed_s": total,
            "coverage": 1.0,
            "phases": {
                name: {"self_s": s, "calls": 10} for name, s in phases.items()
            },
            "stacks": {name: s for name, s in phases.items()},
        }

    def test_format_top_orders_by_self_time(self):
        text = format_top(self._doc(access=0.1, eviction=0.5))
        eviction_at = text.index("eviction")
        access_at = text.index("access", text.index("% wall"))
        assert eviction_at < access_at
        assert "100.0% attributed" in text

    def test_collapsed_lines_integer_microseconds(self):
        lines = collapsed_lines({"stacks": {"dispatch;access": 0.001234}})
        assert lines == ["dispatch;access 1234"]

    def test_collapsed_drops_zero_rows(self):
        assert collapsed_lines({"stacks": {"dispatch": 1e-9}}) == []

    def test_diff_reports_throughput_and_deltas(self):
        before = self._doc(access=0.4, eviction=0.4)
        after = self._doc(access=0.1, eviction=0.4)
        after["accesses_per_sec"] = 2000.0
        text = diff_profiles(before, after)
        assert "accesses/s" in text
        assert "access" in text and "eviction" in text

    def test_load_profile_rejects_non_profile(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(SimulationError):
            load_profile(str(path))


class TestCLI:
    def test_replay_writes_profile_and_collapsed(self, tmp_path, capsys):
        out = tmp_path / "prof.json"
        folded = tmp_path / "prof.folded"
        rc = main(
            [
                "hotspot",
                "--runtime",
                "reuse",
                "--scale",
                "256",
                "--exact",
                "--json-out",
                str(out),
                "--collapsed-out",
                str(folded),
                "--min-coverage",
                "0.8",
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["mode"] == "exact"
        assert doc["coverage"] > 0.8
        assert folded.read_text().strip()
        assert "phase profile" in capsys.readouterr().out

    def test_min_coverage_failure_exits_nonzero(self, tmp_path, capsys):
        rc = main(["hotspot", "--scale", "256", "--min-coverage", "1.0"])
        captured = capsys.readouterr()
        if rc == 0:  # a fully-attributed run can legitimately pass
            assert "attributed" in captured.out
        else:
            assert "below required" in captured.err

    def test_compare_mode(self, tmp_path, capsys):
        docs = []
        for seed in (0, 1):
            out = tmp_path / f"p{seed}.json"
            assert (
                main(
                    [
                        "hotspot",
                        "--scale",
                        "256",
                        "--exact",
                        "--seed",
                        str(seed),
                        "--json-out",
                        str(out),
                    ]
                )
                == 0
            )
            docs.append(out)
        capsys.readouterr()
        rc = main(["--compare", str(docs[0]), str(docs[1])])
        assert rc == 0
        assert "profile diff" in capsys.readouterr().out

    def test_workload_required_without_compare(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_runtime_rejected(self):
        with pytest.raises(SystemExit):
            main(["hotspot", "--runtime", "nope"])
