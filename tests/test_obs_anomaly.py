"""Anomaly detection over windowed snapshots: rules, annotation, e2e."""

import random

import pytest

from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from repro.errors import ConfigError
from repro.obs import AnomalyDetector, Telemetry
from repro.obs.tracing import SpanTracer


def window(
    index,
    span=1000,
    evictions=0.0,
    placements=0.0,
    fault_sum=0.0,
    fault_count=0.0,
    ts_ns=0.0,
):
    return {
        "window": index,
        "position": (index + 1) * span,
        "span": span,
        "gmt_virtual_time_ns": ts_ns,
        "gmt_t1_evictions": evictions,
        "gmt_t2_placements": placements,
        "gmt_fault_latency_ns_sum": fault_sum,
        "gmt_fault_latency_ns_count": fault_count,
    }


class TestRules:
    def test_quiet_stream_is_clean(self):
        windows = [window(i, evictions=10.0, placements=10.0) for i in range(5)]
        assert AnomalyDetector().scan(windows) == []

    def test_thrash_flagged(self):
        windows = [
            window(0, evictions=100.0, placements=100.0),
            window(1, evictions=800.0, placements=800.0),
        ]
        anomalies = AnomalyDetector().scan(windows)
        assert [a.rule for a in anomalies] == ["thrash"]
        assert anomalies[0].window == 1
        assert anomalies[0].value == pytest.approx(0.8)

    def test_bypass_storm_flagged(self):
        windows = [window(0, evictions=100.0, placements=10.0)]
        anomalies = AnomalyDetector().scan(windows)
        assert [a.rule for a in anomalies] == ["bypass-storm"]
        assert anomalies[0].value == pytest.approx(0.9)

    def test_latency_spike_needs_trailing_history(self):
        # First window can never spike: there is no trailing mean yet.
        windows = [window(0, fault_sum=9e6, fault_count=100.0)]
        assert AnomalyDetector().scan(windows) == []

    def test_latency_spike_flagged_against_trailing_mean(self):
        windows = [
            window(0, fault_sum=100 * 1000.0, fault_count=100.0),
            window(1, fault_sum=100 * 1100.0, fault_count=100.0),
            window(2, fault_sum=100 * 9000.0, fault_count=100.0, ts_ns=5e6),
        ]
        anomalies = AnomalyDetector().scan(windows)
        assert [a.rule for a in anomalies] == ["latency-spike"]
        spike = anomalies[0]
        assert spike.window == 2
        assert spike.ts_ns == 5e6
        assert spike.value == pytest.approx(9000.0)

    def test_injected_slowdown_detected_in_synthetic_stream(self):
        # An artificial 10x latency degradation halfway through the run.
        windows = [
            window(i, fault_sum=50 * 2000.0, fault_count=50.0) for i in range(4)
        ] + [
            window(4 + i, fault_sum=50 * 20000.0, fault_count=50.0)
            for i in range(2)
        ]
        rules = [a.rule for a in AnomalyDetector().scan(windows)]
        assert "latency-spike" in rules

    def test_quiet_windows_below_min_counts_ignored(self):
        detector = AnomalyDetector(min_evictions=16, min_faults=16)
        windows = [
            window(0, evictions=10.0, placements=0.0, fault_sum=1e9, fault_count=5.0),
            window(1, evictions=10.0, placements=0.0, fault_sum=10.0, fault_count=5.0),
        ]
        assert detector.scan(windows) == []

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ConfigError):
            AnomalyDetector(thrash_evictions_per_access=0.0)
        with pytest.raises(ConfigError):
            AnomalyDetector(bypass_fraction=1.5)
        with pytest.raises(ConfigError):
            AnomalyDetector(latency_spike_factor=1.0)


class TestAnnotate:
    def test_annotate_stamps_instants_at_window_time(self):
        windows = [window(0, evictions=900.0, placements=900.0, ts_ns=1234.0)]
        detector = AnomalyDetector()
        anomalies = detector.scan(windows)
        tracer = SpanTracer()
        assert detector.annotate(tracer, anomalies) == 1
        (span,) = tracer.spans()
        assert span.name == "anomaly:thrash"
        assert span.cat == "anomaly"
        assert span.ts_ns == 1234.0
        assert span.args["window"] == 0

    def test_scan_and_annotate_live_telemetry(self):
        config = GMTConfig(
            tier1_frames=16, tier2_frames=32, policy="reuse",
            sample_target=200, sample_batch=40,
        )
        runtime = GMTRuntime(config)
        telemetry = Telemetry(window=500)
        runtime.attach_telemetry(telemetry)
        rng = random.Random(5)
        for _ in range(4000):
            runtime.access(rng.randrange(512))  # heavy oversubscription
        telemetry.finish()
        detector = AnomalyDetector()
        anomalies = detector.scan_and_annotate(telemetry)
        # Uniform random over 32x oversubscription must thrash Tier-1.
        assert any(a.rule == "thrash" for a in anomalies)
        stamped = telemetry.tracer.spans(name="anomaly:thrash")
        assert len(stamped) == sum(1 for a in anomalies if a.rule == "thrash")
        # Window stamps carry the virtual-time axis for the trace join.
        assert all(a.ts_ns > 0 for a in anomalies)
