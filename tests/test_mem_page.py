"""Unit tests for repro.mem.page and repro.mem.page_table."""

import pytest

from repro.errors import PageStateError
from repro.mem.page import PageLocation, PageState
from repro.mem.page_table import PageTable


class TestPageState:
    def test_defaults(self):
        s = PageState(page=7)
        assert s.location is PageLocation.TIER3
        assert not s.dirty
        assert s.last_access_ts is None
        assert s.last_eviction_ts is None
        assert s.access_count == 0
        assert s.eviction_count == 0

    def test_resident(self):
        s = PageState(page=1, location=PageLocation.TIER1)
        assert s.resident
        s.location = PageLocation.TIER2
        assert s.resident
        s.location = PageLocation.TIER3
        assert not s.resident

    def test_mark_dirty_requires_residency(self):
        s = PageState(page=1)
        with pytest.raises(PageStateError):
            s.mark_dirty()

    def test_mark_dirty_and_writeback(self):
        s = PageState(page=1, location=PageLocation.TIER1)
        s.mark_dirty()
        assert s.dirty
        s.writeback()
        assert not s.dirty

    def test_policy_state_is_per_instance(self):
        a, b = PageState(page=1), PageState(page=2)
        a.policy_state["x"] = 1
        assert "x" not in b.policy_state


class TestPageTable:
    def test_lookup_creates_entry(self):
        pt = PageTable()
        assert 3 not in pt
        state = pt.lookup(3)
        assert state.page == 3
        assert 3 in pt
        assert len(pt) == 1

    def test_lookup_is_idempotent(self):
        pt = PageTable()
        assert pt.lookup(5) is pt.lookup(5)

    def test_peek_does_not_create(self):
        pt = PageTable()
        assert pt.peek(9) is None
        assert 9 not in pt

    def test_negative_page_rejected(self):
        with pytest.raises(ValueError):
            PageTable().lookup(-1)

    def test_resident_in(self):
        pt = PageTable()
        pt.lookup(1).location = PageLocation.TIER1
        pt.lookup(2).location = PageLocation.TIER2
        pt.lookup(3)
        assert pt.resident_in(PageLocation.TIER1) == [1]
        assert pt.resident_in(PageLocation.TIER2) == [2]
        assert pt.count_in(PageLocation.TIER3) == 1

    def test_iteration(self):
        pt = PageTable()
        for p in range(4):
            pt.lookup(p)
        assert sorted(s.page for s in pt) == [0, 1, 2, 3]
