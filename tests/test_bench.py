"""gmt-bench: baseline record/check, injected regressions must fail."""

import copy
import json

import pytest

import repro.bench as bench


CELLS = (("bfs", "reuse"),)  # one small cell keeps these tests quick


@pytest.fixture
def baseline():
    return bench.run_bench(cells=CELLS, scale=4096, seed=0)


class TestRecord:
    def test_cells_and_metrics_present(self, baseline):
        assert set(baseline["cells"]) == {"bfs/reuse"}
        record = baseline["cells"]["bfs/reuse"]
        for metric in bench.SIM_METRICS:
            assert metric in record
        assert record["wall_s"] > 0
        assert record["elapsed_ns"] > 0

    def test_simulated_metrics_deterministic(self, baseline):
        again = bench.run_bench(cells=CELLS, scale=4096, seed=0)
        for metric in bench.SIM_METRICS:
            assert again["cells"]["bfs/reuse"][metric] == (
                baseline["cells"]["bfs/reuse"][metric]
            )


class TestCompare:
    def test_identical_run_passes(self, baseline):
        current = bench.run_bench(cells=CELLS, scale=4096, seed=0)
        assert bench.compare(baseline, current) == []

    def test_metric_drift_fails(self, baseline):
        current = copy.deepcopy(baseline)
        current["cells"]["bfs/reuse"]["ssd_page_reads"] *= 1.10
        problems = bench.compare(baseline, current)
        assert len(problems) == 1
        assert "ssd_page_reads" in problems[0]

    def test_small_drift_within_tolerance_passes(self, baseline):
        current = copy.deepcopy(baseline)
        current["cells"]["bfs/reuse"]["elapsed_ns"] *= 1.005
        assert bench.compare(baseline, current, tolerance=0.01) == []

    def test_wall_clock_regression_fails(self, baseline):
        current = copy.deepcopy(baseline)
        current["cells"]["bfs/reuse"]["wall_s"] = (
            baseline["cells"]["bfs/reuse"]["wall_s"] * 20 + 1.0
        )
        problems = bench.compare(baseline, current, wall_tolerance=5.0)
        assert any("wall_s" in p for p in problems)

    def test_wall_clock_improvement_never_fails(self, baseline):
        current = copy.deepcopy(baseline)
        current["cells"]["bfs/reuse"]["wall_s"] = 0.0
        assert bench.compare(baseline, current) == []

    def test_missing_cell_reported(self, baseline):
        current = copy.deepcopy(baseline)
        del current["cells"]["bfs/reuse"]
        problems = bench.compare(baseline, current)
        assert problems == ["bfs/reuse: missing from current run"]

    def test_geometry_mismatch_short_circuits(self, baseline):
        current = copy.deepcopy(baseline)
        current["scale"] = 1024
        problems = bench.compare(baseline, current)
        assert len(problems) == 1 and "geometry mismatch" in problems[0]


class TestInformationalCells:
    """Policy-zoo cells ride the baseline without gating its budgets."""

    @pytest.fixture(scope="class")
    def zoo_doc(self):
        return bench.run_bench(
            cells=(), scale=4096, seed=0, zoo=(("bfs", "reuse", "s3fifo"),)
        )

    def test_zoo_matrix_covers_every_policy(self):
        from repro.policyzoo import ZOO_POLICY_NAMES

        assert [pol for _, _, pol in bench.ZOO_CELLS] == list(ZOO_POLICY_NAMES)

    def test_cell_id_and_marker(self, zoo_doc):
        record = zoo_doc["cells"]["bfs/reuse+s3fifo"]
        assert record["informational"] is True
        for metric in bench.SIM_METRICS:
            assert metric in record

    def test_metric_drift_is_not_gated(self, zoo_doc):
        current = copy.deepcopy(zoo_doc)
        current["cells"]["bfs/reuse+s3fifo"]["elapsed_ns"] *= 3.0
        assert bench.compare(zoo_doc, current) == []

    def test_missing_informational_cell_still_reported(self, zoo_doc):
        current = copy.deepcopy(zoo_doc)
        del current["cells"]["bfs/reuse+s3fifo"]
        problems = bench.compare(zoo_doc, current)
        assert problems == ["bfs/reuse+s3fifo: missing from current run"]


class TestOpenLoopCell:
    """The 1k-tenant open-loop serve cell rides the baseline as an
    informational cell with serving-side metrics attached."""

    @pytest.fixture(scope="class")
    def doc(self):
        spec = dict(bench.OPENLOOP_CELL, tenants=64, requests=256,
                    arrival_rate_per_s=4096.0)
        return bench.run_bench(cells=(), scale=4096, seed=0,
                               openloop_cells=(spec,))

    def test_default_spec_is_service_scale(self):
        assert bench.OPENLOOP_CELL["tenants"] >= 1024

    def test_cell_id_marker_and_metrics(self, doc):
        record = doc["cells"]["serve/openloop-1k"]
        assert record["informational"] is True
        for metric in bench.SIM_METRICS:
            assert metric in record
        assert record["requests_arrived"] == 256.0
        assert "shed_rate" in record

    def test_metric_drift_is_not_gated(self, doc):
        current = copy.deepcopy(doc)
        current["cells"]["serve/openloop-1k"]["elapsed_ns"] *= 3.0
        assert bench.compare(doc, current) == []


class TestCLI:
    def test_record_then_check_passes(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(bench, "DEFAULT_CELLS", CELLS)
        monkeypatch.setattr(bench, "ZOO_CELLS", ())
        path = tmp_path / "BENCH_baseline.json"
        assert bench.main(["--out", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert "bfs/reuse" in doc["cells"]
        assert bench.main(["--check", "--baseline", str(path)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_slowdown_fails_the_gate(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(bench, "DEFAULT_CELLS", CELLS)
        monkeypatch.setattr(bench, "ZOO_CELLS", ())
        path = tmp_path / "BENCH_baseline.json"
        assert bench.main(["--out", str(path)]) == 0

        # Inject an artificial 100x wall-clock slowdown through the
        # module clock hook: each _clock() call advances a fake timer.
        fake = {"now": 0.0}

        def slow_clock():
            fake["now"] += 60.0  # one minute per sample => huge wall_s
            return fake["now"]

        monkeypatch.setattr(bench, "_clock", slow_clock)
        rc = bench.main(
            ["--check", "--baseline", str(path), "--wall-tolerance", "5"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "wall_s" in out

    def test_injected_behaviour_change_fails_the_gate(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(bench, "DEFAULT_CELLS", CELLS)
        monkeypatch.setattr(bench, "ZOO_CELLS", ())
        path = tmp_path / "BENCH_baseline.json"
        assert bench.main(["--out", str(path)]) == 0
        doc = json.loads(path.read_text())
        doc["cells"]["bfs/reuse"]["ssd_page_reads"] += 100
        path.write_text(json.dumps(doc))
        rc = bench.main(["--check", "--baseline", str(path)])
        assert rc == 1
        assert "ssd_page_reads" in capsys.readouterr().out

    def test_missing_baseline_is_a_distinct_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(bench, "DEFAULT_CELLS", CELLS)
        monkeypatch.setattr(bench, "ZOO_CELLS", ())
        rc = bench.main(["--check", "--baseline", str(tmp_path / "nope.json")])
        assert rc == 2

    def test_committed_baseline_matches_current_behaviour(self, capsys):
        # The repo's committed baseline must stay in sync with the
        # simulator: this is the same check CI's bench-gate runs (with a
        # wide wall budget; the simulated metrics are the real gate).
        rc = bench.main(
            [
                "--check",
                "--baseline",
                "benchmarks/BENCH_baseline.json",
                "--wall-tolerance",
                "50",
            ]
        )
        assert rc == 0, capsys.readouterr().out
