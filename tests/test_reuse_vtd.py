"""Unit tests for the virtual-timestamp clock (VTD tracking)."""

import pytest

from repro.mem.page import PageState
from repro.reuse.vtd import VirtualTimestampClock


class TestVirtualTimestampClock:
    def test_starts_at_zero(self):
        assert VirtualTimestampClock().now == 0

    def test_tick_advances(self):
        c = VirtualTimestampClock()
        assert c.tick() == 1
        assert c.tick() == 2
        assert c.now == 2

    def test_first_access_has_no_vtd(self):
        c = VirtualTimestampClock()
        s = PageState(page=1)
        assert c.observe_access(s) is None
        assert s.last_access_ts == 1
        assert s.access_count == 1

    def test_vtd_counts_intervening_accesses(self):
        c = VirtualTimestampClock()
        a, b = PageState(page=1), PageState(page=2)
        c.observe_access(a)  # t=1
        c.observe_access(b)  # t=2
        c.observe_access(b)  # t=3
        vtd = c.observe_access(a)  # t=4
        assert vtd == 3  # non-unique distance: b counted twice

    def test_back_to_back_vtd_is_one(self):
        c = VirtualTimestampClock()
        s = PageState(page=1)
        c.observe_access(s)
        assert c.observe_access(s) == 1

    def test_remaining_vtd_since(self):
        c = VirtualTimestampClock()
        s = PageState(page=1)
        c.observe_access(s)
        stamp = c.now
        for _ in range(5):
            c.tick()
        assert c.remaining_vtd_since(stamp) == 5

    def test_remaining_vtd_future_timestamp_rejected(self):
        c = VirtualTimestampClock()
        with pytest.raises(ValueError):
            c.remaining_vtd_since(10)

    def test_vtd_vs_rd_relation(self):
        # VTD (non-unique) is always >= RD (unique) + ... for the same
        # access; here: a b b a -> VTD 3, RD would be 1.
        c = VirtualTimestampClock()
        a, b = PageState(page=1), PageState(page=2)
        c.observe_access(a)
        c.observe_access(b)
        c.observe_access(b)
        assert c.observe_access(a) == 3
