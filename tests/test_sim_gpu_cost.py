"""Unit tests for the SIMT front end and the cost model."""

import pytest

from repro.errors import SimulationError, TraceError
from repro.sim.cost import CostBreakdown, CostModel
from repro.sim.gpu import WarpAccess, coalesce, warp_of


class TestWarpAccess:
    def test_valid(self):
        w = WarpAccess(pages=(1, 2, 3), write=True)
        assert w.lanes == 3
        assert w.write

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            WarpAccess(pages=())

    def test_too_many_lanes_rejected(self):
        with pytest.raises(TraceError):
            WarpAccess(pages=tuple(range(33)))

    def test_negative_page_rejected(self):
        with pytest.raises(TraceError):
            WarpAccess(pages=(1, -2))

    def test_warp_of_helper(self):
        assert warp_of([4, 5]).pages == (4, 5)


class TestCoalesce:
    def test_unique_preserved(self):
        assert coalesce(warp_of([1, 2, 3])) == [1, 2, 3]

    def test_duplicates_merged(self):
        assert coalesce(warp_of([7] * 32)) == [7]

    def test_first_occurrence_order(self):
        assert coalesce(warp_of([3, 1, 3, 2, 1])) == [3, 1, 2]


class TestCostModel:
    def test_accumulates(self):
        c = CostModel(fault_concurrency=4)
        c.add_compute(100.0)
        c.add_compute(50.0)
        c.add_fault_latency(1000.0)
        assert c.compute_ns == 150.0
        assert c.fault_latency_ns == 1000.0

    def test_fault_term_divided_by_concurrency(self):
        c = CostModel(fault_concurrency=10)
        c.add_fault_latency(1000.0)
        assert c.breakdown().fault_ns == pytest.approx(100.0)

    def test_elapsed_is_max_of_terms(self):
        b = CostBreakdown(compute_ns=10, fault_ns=40, pcie_ns=20, ssd_ns=30)
        assert b.elapsed_ns == 40
        assert b.bottleneck == "fault-latency"

    def test_bottleneck_names(self):
        assert CostBreakdown(1, 0, 0, 0).bottleneck == "compute"
        assert CostBreakdown(0, 0, 5, 0).bottleneck == "pcie"
        assert CostBreakdown(0, 0, 0, 5).bottleneck == "ssd"

    def test_breakdown_includes_device_floors(self):
        c = CostModel(fault_concurrency=1)
        b = c.breakdown(pcie_busy_ns=7.0, ssd_busy_ns=9.0)
        assert b.pcie_ns == 7.0
        assert b.ssd_ns == 9.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            CostModel(fault_concurrency=0)
        c = CostModel(fault_concurrency=1)
        with pytest.raises(SimulationError):
            c.add_compute(-1)
        with pytest.raises(SimulationError):
            c.add_fault_latency(-1)
        with pytest.raises(SimulationError):
            c.breakdown(pcie_busy_ns=-1)

    def test_gpu_vs_host_orchestration_gap(self):
        """The same fault latencies hurt a CPU-orchestrated system far
        more — the crux of section 3.6."""
        gpu = CostModel(fault_concurrency=128)
        host = CostModel(fault_concurrency=6)
        for c in (gpu, host):
            c.add_fault_latency(1_000_000.0)
        assert host.breakdown().fault_ns > 20 * gpu.breakdown().fault_ns
