"""Unit tests for repro.mem.tier."""

import pytest

from repro.errors import CapacityError, PageStateError
from repro.mem.tier import Tier


class TestTier:
    def test_empty(self):
        t = Tier("Tier-1", 4)
        assert len(t) == 0
        assert not t.full
        assert t.free_frames == 4

    def test_insert_and_contains(self):
        t = Tier("Tier-1", 2)
        t.insert(10)
        assert 10 in t
        assert 11 not in t
        assert len(t) == 1

    def test_insert_to_capacity(self):
        t = Tier("Tier-1", 2)
        t.insert(1)
        t.insert(2)
        assert t.full
        assert t.free_frames == 0

    def test_insert_beyond_capacity_raises(self):
        t = Tier("Tier-1", 1)
        t.insert(1)
        with pytest.raises(CapacityError):
            t.insert(2)

    def test_duplicate_insert_raises(self):
        t = Tier("Tier-1", 2)
        t.insert(1)
        with pytest.raises(PageStateError):
            t.insert(1)

    def test_remove(self):
        t = Tier("Tier-1", 2)
        t.insert(1)
        t.remove(1)
        assert 1 not in t
        assert t.free_frames == 2

    def test_remove_absent_raises(self):
        with pytest.raises(PageStateError):
            Tier("Tier-1", 2).remove(5)

    def test_zero_capacity_models_missing_tier(self):
        t = Tier("Tier-2", 0)
        assert t.full  # BaM's absent Tier-2 is always "full"
        with pytest.raises(CapacityError):
            t.insert(1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(CapacityError):
            Tier("bad", -1)

    def test_iteration(self):
        t = Tier("Tier-1", 3)
        for p in (5, 6):
            t.insert(p)
        assert sorted(t) == [5, 6]

    def test_reinsert_after_remove(self):
        t = Tier("Tier-1", 1)
        t.insert(1)
        t.remove(1)
        t.insert(1)
        assert 1 in t
