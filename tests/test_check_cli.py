"""Tests for the ``gmt-check`` command-line interface."""

import pytest

from repro.check.cli import main
from repro.check.identities import CATALOG

SCALE = "8192"
FAST = ["--no-metamorphic", "--no-serve"]


class TestExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["hotspot", "--scale", SCALE, *FAST]) == 0
        out = capsys.readouterr().out
        assert "OK" in out or "ok" in out

    def test_full_matrix_exits_zero(self):
        assert main(["hotspot", "--scale", SCALE]) == 0

    def test_injected_corruption_exits_one(self, capsys):
        rc = main(["hotspot", "--scale", SCALE, "--inject", "stats-drift", *FAST])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_inapplicable_injection_exits_two(self, capsys):
        rc = main(
            ["hotspot", "--scale", SCALE, "--runtimes", "bam",
             "--inject", "dup-resident", *FAST]
        )
        assert rc == 2
        assert "gmt-check:" in capsys.readouterr().err


class TestFlags:
    def test_list_prints_catalogue(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name, _ in CATALOG:
            assert name in out

    def test_workload_required_without_list(self):
        with pytest.raises(SystemExit):
            main([])

    def test_check_every_validated(self):
        with pytest.raises(SystemExit):
            main(["hotspot", "--check-every", "0"])

    def test_check_every_runs(self):
        assert main(["hotspot", "--scale", SCALE, "--check-every", "250", *FAST]) == 0

    def test_prefetch_and_queueing_run(self):
        assert main(
            ["bfs", "--scale", SCALE, "--prefetch-degree", "2",
             "--time-model", "queueing", *FAST]
        ) == 0

    def test_runtime_subset(self):
        assert main(
            ["hotspot", "--scale", SCALE, "--runtimes", "reuse", "bam", *FAST]
        ) == 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-workload"])
