"""Unit tests for the open-loop arrival processes (repro.serve.arrivals)."""

import pytest

from repro.errors import ConfigError
from repro.serve.arrivals import (
    ARRIVAL_PROCESS_NAMES,
    BurstyArrivals,
    PoissonArrivals,
    make_arrival_process,
)

SECOND_NS = 1_000_000_000


class TestPoisson:
    def test_same_seed_same_times(self):
        a = PoissonArrivals(2000.0, seed=7).times(500)
        b = PoissonArrivals(2000.0, seed=7).times(500)
        assert a == b

    def test_times_reentrant(self):
        """times() restarts its RNG: two calls on one instance agree."""
        proc = PoissonArrivals(2000.0, seed=3)
        assert proc.times(200) == proc.times(200)

    def test_prefix_stability(self):
        """The first k arrivals do not depend on how many are asked for."""
        proc = PoissonArrivals(1000.0, seed=5)
        assert proc.times(300)[:100] == proc.times(100)

    def test_different_seeds_differ(self):
        assert PoissonArrivals(2000.0, seed=0).times(100) != (
            PoissonArrivals(2000.0, seed=1).times(100)
        )

    def test_sorted_and_nonnegative(self):
        times = PoissonArrivals(5000.0, seed=2).times(1000)
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_mean_rate_roughly_honoured(self):
        rate = 4000.0
        times = PoissonArrivals(rate, seed=11).times(4000)
        span_s = times[-1] / SECOND_NS
        observed = len(times) / span_s
        assert observed == pytest.approx(rate, rel=0.1)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(0.0)
        with pytest.raises(ConfigError):
            PoissonArrivals(-5.0)


class TestBursty:
    def test_same_seed_same_times(self):
        a = BurstyArrivals(2000.0, seed=9).times(500)
        b = BurstyArrivals(2000.0, seed=9).times(500)
        assert a == b

    def test_sorted_and_nonnegative(self):
        times = BurstyArrivals(2000.0, seed=4).times(1000)
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_burstier_than_poisson(self):
        """The MMPP's squared coefficient of variation of inter-arrival
        gaps exceeds the Poisson process's (which is ~1)."""

        def scv(times):
            gaps = [b - a for a, b in zip(times, times[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / (mean * mean)

        poisson = PoissonArrivals(2000.0, seed=6).times(3000)
        bursty = BurstyArrivals(2000.0, seed=6, burst_factor=16.0).times(3000)
        assert scv(bursty) > scv(poisson)


class TestFactory:
    def test_registry_names(self):
        assert set(ARRIVAL_PROCESS_NAMES) == {"poisson", "bursty"}
        for name in ARRIVAL_PROCESS_NAMES:
            proc = make_arrival_process(name, 1000.0, seed=1)
            assert proc.times(10) == proc.times(10)

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_arrival_process("uniform", 1000.0)
