"""Regression tests for the three accounting bugs the conformance
harness flushed out.  Each test fails on the pre-fix code:

1. dirty writebacks (and Tier-2 placements) caused by *prefetch-triggered*
   evictions never reached the queueing time model — the write link's
   busy time undercounted real SSD traffic;
2. the eviction-cause scratch (``_fx_cause`` & friends) was only stamped
   with the flight recorder attached and only reset on the demand path,
   so stale values could leak into later consumers;
3. the sequential prefetcher read past the workload footprint,
   fabricating page-table entries and phantom SSD reads for pages that
   do not exist.
"""

import pytest

from repro.check.identities import audit_runtime
from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from repro.errors import ConfigError
from repro.obs.lifecycle import LifecycleKind
from repro.units import SEC


def make_config(**overrides):
    base = dict(
        tier1_frames=8,
        tier2_frames=16,
        policy="tier-order",
        sample_target=50,
        sample_batch=10,
    )
    base.update(overrides)
    return GMTConfig(**base)


class TestPrefetchEvictionQueueing:
    """Bug 1: prefetch-triggered eviction side effects and the time model."""

    def drive(self, runtime):
        """Dirty strided writes: prefetch fills keep evicting dirty pages."""
        for page in range(0, 120, 3):
            runtime.access(page, write=True)

    def instrument(self, runtime):
        """Count writebacks that happen *inside* the prefetch path."""
        original = runtime._prefetch_after
        seen = {"writes": 0, "t2_places": 0}

        def wrapped(page):
            writes = runtime.stats.ssd_page_writes
            places = runtime.stats.t2_placements
            original(page)
            seen["writes"] += runtime.stats.ssd_page_writes - writes
            seen["t2_places"] += runtime.stats.t2_placements - places

        runtime._prefetch_after = wrapped
        return seen

    def test_prefetch_writebacks_reach_the_write_link(self):
        config = make_config(
            tier2_frames=0, prefetch_degree=2, time_model="queueing"
        )
        runtime = GMTRuntime(config)
        seen = self.instrument(runtime)
        self.drive(runtime)

        # The scenario must actually exercise the bug: dirty pages were
        # written back while filling frames for prefetched pages.
        assert seen["writes"] > 0

        model = runtime._queueing
        wire = config.page_size / model._ssd_write.bandwidth * SEC
        expected = runtime.stats.ssd_page_writes * wire
        assert model.ssd_write_busy_ns == pytest.approx(expected, rel=1e-9)

    def test_prefetch_t2_placements_reach_the_pcie_link(self):
        config = make_config(
            tier1_frames=4, tier2_frames=32, policy="tier-order",
            prefetch_degree=2, time_model="queueing",
        )
        runtime = GMTRuntime(config)
        seen = self.instrument(runtime)
        self.drive(runtime)
        assert seen["t2_places"] > 0

        model = runtime._queueing
        wire = config.page_size / model._pcie.bandwidth * SEC
        expected = (
            runtime.stats.t2_hits + runtime.stats.t2_placements
        ) * wire
        assert model.pcie_busy_ns == pytest.approx(expected, rel=1e-9)

    def test_full_audit_clean_under_prefetch_and_queueing(self):
        config = make_config(prefetch_degree=2, time_model="queueing")
        runtime = GMTRuntime(config)
        self.drive(runtime)
        assert runtime.stats.prefetches_issued > 0
        assert audit_runtime(runtime) == []


class TestEvictionScratchReset:
    """Bug 2: the per-eviction scratch must never carry stale state."""

    POISON = dict(
        _fx_cause="stale-poison",
        _fx_predicted="stale",
        _fx_writeback=True,
        _fx_t2_place=True,
        _fx_t2_evict=True,
    )

    def poison(self, runtime):
        for name, value in self.POISON.items():
            setattr(runtime, name, value)

    def assert_clean(self, runtime):
        assert runtime._fx_cause == ""
        assert runtime._fx_predicted is None
        assert runtime._fx_writeback is False
        assert runtime._fx_t2_place is False
        assert runtime._fx_t2_evict is False

    def test_no_eviction_miss_clears_scratch(self):
        runtime = GMTRuntime(make_config())
        self.poison(runtime)
        runtime.access(0)  # Tier-1 has free frames: no eviction at all
        self.assert_clean(runtime)

    def test_ensure_tier1_frame_resets_even_on_early_return(self):
        runtime = GMTRuntime(make_config())
        self.poison(runtime)
        assert runtime._ensure_tier1_frame() == 0.0  # tier not full
        self.assert_clean(runtime)

    def test_prefetch_evictions_stamp_fresh_causes(self):
        # Behavioral: with the flight recorder attached, every DEMOTE /
        # WRITEBACK event must carry a cause stamped by *its own*
        # eviction — never the poison, never a previous decision.
        runtime = GMTRuntime(make_config(tier1_frames=4, prefetch_degree=2))
        recorder = runtime.attach_flight_recorder()
        self.poison(runtime)
        for page in range(0, 60, 3):
            runtime.access(page, write=True)
        demotions = recorder.events(kind=LifecycleKind.DEMOTE)
        assert demotions
        for event in demotions:
            assert event.cause != "stale-poison"
            assert event.cause != ""

    def test_scratch_stamped_without_flight_recorder(self):
        # The conformance auditor may consult the scratch after a run, so
        # stamping must not depend on observability being attached.
        runtime = GMTRuntime(make_config(tier1_frames=4))
        for page in range(12):
            runtime.access(page, write=True)
        assert runtime.stats.t1_evictions > 0
        assert runtime._fx_cause != ""


class TestPrefetchFootprintClamp:
    """Bug 3: the prefetch window must never cross the footprint."""

    def test_window_clamped_at_the_boundary(self):
        runtime = GMTRuntime(
            make_config(prefetch_degree=4, footprint_pages=12)
        )
        runtime.access(10)  # window 11..14 must clamp to {11}
        assert runtime.stats.prefetches_issued == 1
        assert runtime.stats.ssd_page_reads == 2  # demand + one prefetch

    def test_last_page_prefetches_nothing(self):
        runtime = GMTRuntime(
            make_config(prefetch_degree=4, footprint_pages=12)
        )
        runtime.access(11)
        assert runtime.stats.prefetches_issued == 0

    def test_no_page_past_the_bound_enters_the_page_table(self):
        runtime = GMTRuntime(
            make_config(prefetch_degree=4, footprint_pages=12)
        )
        for page in range(12):
            runtime.access(page)
        pages = [state.page for state in runtime.page_table]
        assert pages and max(pages) < 12
        assert audit_runtime(runtime) == []

    def test_unbounded_config_keeps_old_behaviour(self):
        runtime = GMTRuntime(make_config(prefetch_degree=4))
        runtime.access(10)
        assert runtime.stats.prefetches_issued == 4

    def test_footprint_validation(self):
        with pytest.raises(ConfigError):
            make_config(footprint_pages=0)
        with pytest.raises(ConfigError):
            make_config(footprint_pages=-3)

    def test_harness_threads_footprint_through(self):
        from repro.experiments.harness import (
            _with_footprint_bound,
            default_config,
            get_workload,
        )

        config = default_config(8192, prefetch_degree=2)
        workload = get_workload("hotspot", config, seed=0)
        bounded = _with_footprint_bound(config, workload)
        assert bounded.footprint_pages == workload.footprint_pages

        plain = default_config(8192)
        assert _with_footprint_bound(plain, workload) is plain
