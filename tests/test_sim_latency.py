"""Unit tests for the platform constant sheet."""

import pytest

from repro.errors import ConfigError
from repro.sim.latency import PlatformModel
from repro.units import GiB, USEC


class TestPlatformModel:
    def test_paper_defaults(self):
        p = PlatformModel()
        # Section 3.4's measured latencies.
        assert p.ssd_read_latency_ns == pytest.approx(130 * USEC)
        assert p.host_fetch_latency_ns == pytest.approx(50 * USEC)
        assert p.tier2_lookup_ns == pytest.approx(50.0)

    def test_gpu_beats_host_on_fault_parallelism(self):
        p = PlatformModel()
        assert p.gpu_fault_concurrency > 10 * p.host_fault_concurrency

    def test_host_pagecache_below_raw_ssd(self):
        p = PlatformModel()
        assert p.host_pagecache_ssd_bandwidth < p.ssd_read_bandwidth

    def test_frozen(self):
        with pytest.raises(Exception):
            PlatformModel().pcie_bandwidth = 1.0

    def test_custom_platform(self):
        p = PlatformModel(pcie_bandwidth=8 * GiB, gpu_fault_concurrency=64)
        assert p.pcie_bandwidth == 8 * GiB
        assert p.gpu_fault_concurrency == 64

    @pytest.mark.parametrize(
        "field",
        [
            "ssd_read_latency_ns",
            "pcie_bandwidth",
            "ssd_read_bandwidth",
            "gpu_fault_concurrency",
            "host_fault_concurrency",
        ],
    )
    def test_positive_fields_validated(self, field):
        with pytest.raises(ConfigError):
            PlatformModel(**{field: 0})

    @pytest.mark.parametrize(
        "field", ["tier2_lookup_ns", "tier2_eviction_ns", "host_fault_overhead_ns"]
    )
    def test_non_negative_fields_validated(self, field):
        with pytest.raises(ConfigError):
            PlatformModel(**{field: -1.0})
        PlatformModel(**{field: 0.0})  # zero is legal
