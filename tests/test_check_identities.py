"""Tests for the stats-identity auditor (repro.check.identities)."""

import pytest

from repro.check.identities import (
    CATALOG,
    CATALOG_NAMES,
    Violation,
    assert_conformant,
    audit_runtime,
    audit_split,
    audit_stats,
)
from repro.core.stats import RuntimeStats
from repro.errors import ConformanceError, SimulationError
from repro.experiments.harness import build_runtime, default_config, get_workload

SCALE = 8192


def replay(app="hotspot", kind="reuse", **overrides):
    config = default_config(SCALE, **overrides)
    workload = get_workload(app, config, seed=0)
    runtime = build_runtime(kind, config)
    runtime.run(workload)
    return runtime


class TestCatalog:
    def test_names_unique(self):
        assert len(CATALOG_NAMES) == len(set(CATALOG_NAMES))

    def test_every_entry_described(self):
        for name, description in CATALOG:
            assert name and description

    def test_violation_rejects_unknown_identity(self):
        with pytest.raises(SimulationError):
            Violation("not-an-identity", "whatever")

    def test_violation_str_carries_identity(self):
        v = Violation("access-conservation", "1 != 2")
        assert str(v) == "access-conservation: 1 != 2"


class TestCleanRuns:
    @pytest.mark.parametrize("kind", ["bam", "tier-order", "random", "reuse", "hmm"])
    def test_every_runtime_audits_clean(self, kind):
        assert audit_runtime(replay(kind=kind)) == []

    @pytest.mark.parametrize("app", ["hotspot", "bfs"])
    def test_both_apps_audit_clean(self, app):
        assert audit_runtime(replay(app=app)) == []

    def test_prefetch_run_audits_clean(self):
        runtime = replay(prefetch_degree=2)
        assert runtime.stats.prefetches_issued > 0
        assert audit_runtime(runtime) == []

    def test_queueing_run_audits_clean(self):
        runtime = replay(time_model="queueing")
        assert runtime._queueing is not None
        assert audit_runtime(runtime) == []

    def test_queueing_prefetch_run_audits_clean(self):
        runtime = replay(prefetch_degree=2, time_model="queueing")
        assert audit_runtime(runtime) == []

    def test_assert_conformant_silent_on_clean_run(self):
        assert_conformant(replay())


class TestBrokenStats:
    def violated(self, stats):
        return {v.identity for v in audit_stats(stats)}

    def test_hit_drift_breaks_access_conservation(self):
        stats = replay().stats
        stats.t1_hits += 1
        assert "access-conservation" in self.violated(stats)

    def test_lost_writeback_breaks_conservation(self):
        stats = replay(app="bfs").stats
        assert stats.ssd_page_writes > 0
        stats.ssd_page_writes -= 1
        assert "writeback-conservation" in self.violated(stats)

    def test_phantom_t2_lookup_detected(self):
        stats = replay().stats
        stats.t2_lookups += 1
        assert "t2-lookup-partition" in self.violated(stats)

    def test_negative_counter_detected(self):
        stats = RuntimeStats()
        stats.t1_evictions = -1
        assert "counter-positivity" in self.violated(stats)

    def test_confusion_matrix_mismatch_detected(self):
        stats = RuntimeStats()
        stats.resolved_predictions = 3
        assert "prediction-accounting" in self.violated(stats)


class TestBrokenRuntime:
    def test_dup_residency_caught_structurally(self):
        runtime = replay(kind="tier-order")
        t2_page = next(iter(runtime.tier2))
        t1_page = next(iter(runtime.tier1))
        runtime.tier1.remove(t1_page)
        runtime.tier1.insert(t2_page)
        violated = {v.identity for v in audit_runtime(runtime)}
        assert "structural" in violated

    def test_device_counter_drift_caught(self):
        runtime = replay()
        runtime.ssd.reads += 1
        violated = {v.identity for v in audit_runtime(runtime)}
        assert "ssd-parity" in violated

    def test_assert_conformant_raises_with_violations(self):
        runtime = replay()
        runtime.stats.t1_hits += 1
        with pytest.raises(ConformanceError) as exc_info:
            assert_conformant(runtime)
        assert exc_info.value.violations
        assert "access-conservation" in str(exc_info.value)


class TestAuditSplit:
    def test_clean_serve_slices_conserve(self):
        from repro.serve import TenantServer, build_tenants

        config = default_config(SCALE)
        streams = build_tenants(["bfs", "pagerank"], config)
        server = TenantServer(config, streams)
        server.run(solo_baselines=False)
        assert audit_split(server.runtime.stats, server.runtime.tenant_stats) == []

    def test_tampered_slice_detected(self):
        aggregate = RuntimeStats()
        aggregate.t1_hits = 10
        piece = RuntimeStats()
        piece.t1_hits = 9
        violations = audit_split(aggregate, [piece])
        assert {v.identity for v in violations} == {"tenant-split-conservation"}


class TestPeriodicChecks:
    def test_periodic_check_passes_on_healthy_run(self):
        config = default_config(SCALE)
        workload = get_workload("hotspot", config, seed=0)
        runtime = build_runtime("reuse", config)
        runtime.enable_periodic_checks(100)
        runtime.run(workload)
        assert audit_runtime(runtime) == []

    def test_interval_validated(self):
        runtime = build_runtime("reuse", default_config(SCALE))
        with pytest.raises(SimulationError):
            runtime.enable_periodic_checks(0)

    def test_none_disables(self):
        runtime = build_runtime("reuse", default_config(SCALE))
        runtime.enable_periodic_checks(1)
        runtime.enable_periodic_checks(None)
        assert runtime._check_every is None
