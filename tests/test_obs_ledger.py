"""Run ledger: append/read round-trip, drift detection, gmt-bench --trend."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs import ledger as ledger_mod
from repro.obs.ledger import (
    Drift,
    append_entry,
    config_hash,
    detect_drift,
    format_trend,
    ledger_path,
    make_entry,
    read_ledger,
    record_run,
    scan_trend,
)


class TestEntries:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        entry = record_run(
            "gmt-bench",
            wall_s=1.5,
            params={"scale": 4096},
            accesses_per_sec=12_345.0,
            metrics={"elapsed_ns": 1e9},
            anomalies=2,
            path=path,
        )
        assert entry["tool"] == "gmt-bench"
        assert entry["config_hash"] == config_hash({"scale": 4096})
        assert len(entry["code_salt"]) == 16
        back = read_ledger(path)
        assert back == [entry]

    def test_append_only(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        for i in range(3):
            record_run("gmt-serve", wall_s=float(i), path=path)
        walls = [e["wall_s"] for e in read_ledger(path)]
        assert walls == [0.0, 1.0, 2.0]

    def test_tool_and_config_filters(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        record_run("gmt-bench", wall_s=1.0, params={"scale": 1}, path=path)
        record_run("gmt-serve", wall_s=2.0, params={"scale": 1}, path=path)
        record_run("gmt-bench", wall_s=3.0, params={"scale": 2}, path=path)
        assert len(read_ledger(path)) == 3
        assert len(read_ledger(path, tool="gmt-bench")) == 2
        only = read_ledger(path, tool="gmt-bench", config=config_hash({"scale": 2}))
        assert [e["wall_s"] for e in only] == [3.0]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_ledger(str(tmp_path / "absent.jsonl")) == []

    def test_malformed_lines_skipped(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        append_entry(make_entry("gmt-bench", wall_s=1.0), path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{truncated by a crash\n")
            fh.write('"a bare string"\n')
            fh.write("\n")
        append_entry(make_entry("gmt-bench", wall_s=2.0), path)
        assert [e["wall_s"] for e in read_ledger(path)] == [1.0, 2.0]

    def test_env_var_resolution(self, tmp_path, monkeypatch):
        target = str(tmp_path / "env.jsonl")
        monkeypatch.setenv(ledger_mod.LEDGER_ENV_VAR, target)
        assert ledger_path() == target
        record_run("gmt-bench", wall_s=1.0)
        assert len(read_ledger()) == 1
        # Explicit path still wins over the env var.
        assert ledger_path("/x/y.jsonl") == "/x/y.jsonl"

    def test_tool_required(self):
        with pytest.raises(ConfigError):
            make_entry("", wall_s=1.0)

    def test_entry_is_json_serialisable(self):
        json.dumps(make_entry("gmt-bench", wall_s=0.5, params={"k": (1, 2)}))


class TestDriftDetection:
    def test_steady_series(self):
        assert detect_drift([1.0] * 10) is None

    def test_insufficient_data(self):
        assert detect_drift([]) is None
        assert detect_drift([1.0]) is None
        assert detect_drift([1.0, 2.0]) is None  # baseline would be empty

    def test_sustained_regression_detected(self):
        values = [1.0] * 8 + [1.5, 1.6]
        hit = detect_drift(values, threshold=0.25, sustain=2)
        assert hit is not None
        median, latest = hit
        assert median == 1.0
        assert latest == 1.6

    def test_sustained_improvement_also_flagged(self):
        # A silent speedup is still an unexplained change.
        assert detect_drift([1.0] * 8 + [0.5, 0.4]) is not None

    def test_single_spike_not_flagged(self):
        # One bad run (noisy CI box) must never trip the gate.
        assert detect_drift([1.0] * 9 + [3.0]) is None

    def test_mixed_directions_not_flagged(self):
        assert detect_drift([1.0] * 8 + [2.0, 0.2]) is None

    def test_rolling_window_forgets_ancient_history(self):
        # Regressed long ago and stabilised: the rolling median has
        # caught up, so it is the new normal, not drift.
        values = [1.0] * 5 + [2.0] * 12
        assert detect_drift(values, window=8) is None

    def test_threshold_respected(self):
        values = [1.0] * 8 + [1.1, 1.1]
        assert detect_drift(values, threshold=0.25) is None
        assert detect_drift(values, threshold=0.05) is not None

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            detect_drift([1.0], window=0)
        with pytest.raises(ConfigError):
            detect_drift([1.0], threshold=0.0)
        with pytest.raises(ConfigError):
            detect_drift([1.0], sustain=0)


class TestTrendReport:
    def entries(self, walls, tool="gmt-bench"):
        return [
            make_entry(tool, wall_s=w, accesses_per_sec=1000.0 / w, salt="s")
            for w in walls
        ]

    def test_scan_trend_names_the_metric(self):
        drifts = scan_trend(self.entries([1.0] * 8 + [2.0, 2.1]))
        assert {d.metric for d in drifts} == {"wall_s", "accesses_per_sec"}
        wall = next(d for d in drifts if d.metric == "wall_s")
        assert isinstance(wall, Drift)
        assert wall.rel_delta > 0.25

    def test_format_trend_steady(self):
        report, drifts = format_trend(self.entries([1.0] * 6))
        assert drifts == []
        assert "steady" in report
        assert "6 run(s)" in report

    def test_format_trend_drifting(self):
        report, drifts = format_trend(self.entries([1.0] * 8 + [2.0, 2.1]))
        assert drifts
        assert "DRIFT" in report

    def test_format_trend_empty(self):
        report, drifts = format_trend([])
        assert drifts == []
        assert "empty" in report


class TestBenchTrendCLI:
    def bench_params(self, scale=4096, seed=0):
        from repro.bench import DEFAULT_CELLS, ENGINE_CELLS, OPENLOOP_CELL, ZOO_CELLS

        return {
            "cells": sorted(
                [f"{app}/{kind}" for app, kind in DEFAULT_CELLS]
                + [f"{app}/{kind}+{pol}" for app, kind, pol in ZOO_CELLS]
                + [
                    f"{spec['id']}@{eng}"
                    for spec in ENGINE_CELLS
                    for eng in ("scalar", "vector")
                ]
                + [OPENLOOP_CELL["id"]]
            ),
            "scale": scale,
            "seed": seed,
        }

    def seed_ledger(self, walls, scale=4096):
        params = self.bench_params(scale=scale)
        for w in walls:
            entry = make_entry(
                "gmt-bench", wall_s=w, params=params,
                accesses_per_sec=1000.0 / w, salt="s",
            )
            append_entry(entry)

    def test_trend_passes_on_steady_ledger(self, capsys):
        from repro.bench import main

        self.seed_ledger([1.0, 1.01, 0.99, 1.0])
        assert main(["--trend"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "4 run(s)" in out

    def test_trend_fails_on_sustained_drift(self, capsys):
        from repro.bench import main

        self.seed_ledger([1.0] * 8 + [2.0, 2.1])
        assert main(["--trend"]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_trend_on_empty_ledger(self, capsys):
        from repro.bench import main

        assert main(["--trend"]) == 2
        assert "empty" in capsys.readouterr().out

    def test_trend_ignores_other_configs(self, capsys):
        from repro.bench import main

        self.seed_ledger([1.0] * 8, scale=4096)
        self.seed_ledger([9.0, 9.1], scale=128)  # different config hash
        assert main(["--trend"]) == 0
        assert "8 run(s)" in capsys.readouterr().out

    def test_bench_records_ledger_entry(self):
        from repro import bench

        assert bench.main(["--scale", "32768"]) == 0
        entries = read_ledger(tool="gmt-bench")
        assert len(entries) == 1
        assert entries[0]["accesses_per_sec"] > 0
        assert entries[0]["metrics"]["elapsed_ns"] > 0
        # Back-to-back identical runs then --trend: the CI recipe.
        assert bench.main(["--scale", "32768"]) == 0
        assert bench.main(["--scale", "32768", "--trend"]) == 0

    def test_no_ledger_opt_out(self):
        from repro import bench

        assert bench.main(["--scale", "32768", "--no-ledger"]) == 0
        assert read_ledger() == []


class TestServeLedger:
    def test_serve_records_entry_with_anomalies(self):
        from repro.cli import main_serve

        assert (
            main_serve(
                [
                    "--tenants", "bfs",
                    "--scale", "16384",
                    "--no-solo",
                    "--anomaly-scan",
                    "--slo-p99", "1",  # 1 ns: guaranteed violation
                ]
            )
            == 0
        )
        entries = read_ledger(tool="gmt-serve")
        assert len(entries) == 1
        entry = entries[0]
        assert entry["metrics"]["tenants"] == 1.0
        assert entry["metrics"]["slo_violations"] >= 1.0
        assert entry["accesses_per_sec"] > 0
        assert entry["anomalies"] >= 0
