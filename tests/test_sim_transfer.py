"""Unit tests for the Tier-1<->Tier-2 transfer engines (Fig. 6 mechanics)."""

import pytest

from repro.errors import SimulationError
from repro.sim.transfer import (
    WARP_SIZE,
    DmaEngine,
    HybridEngine,
    ZeroCopyEngine,
    make_engine,
)
from repro.units import PAGE_SIZE


class TestDmaEngine:
    def test_linear_in_pages(self):
        dma = DmaEngine()
        t1 = dma.transfer_time_ns(1)
        assert dma.transfer_time_ns(4) == pytest.approx(4 * t1)

    def test_zero_pages_free(self):
        assert DmaEngine().transfer_time_ns(0) == 0.0

    def test_threads_do_not_matter(self):
        dma = DmaEngine()
        assert dma.transfer_time_ns(4, 1) == dma.transfer_time_ns(4, 32)

    def test_mechanism(self):
        assert DmaEngine().mechanism(100) == "dma"

    def test_efficiency_is_constant(self):
        dma = DmaEngine()
        assert dma.efficiency(1) == pytest.approx(dma.efficiency(16))

    def test_invalid_constants(self):
        with pytest.raises(SimulationError):
            DmaEngine(call_overhead_ns=-1)
        with pytest.raises(SimulationError):
            DmaEngine(bandwidth=0)


class TestZeroCopyEngine:
    def test_pin_overhead_dominates_small_batches(self):
        zc = ZeroCopyEngine()
        assert zc.transfer_time_ns(1) > DmaEngine().transfer_time_ns(1)

    def test_amortizes_for_large_batches(self):
        zc, dma = ZeroCopyEngine(), DmaEngine()
        assert zc.transfer_time_ns(64) < dma.transfer_time_ns(64)

    def test_bandwidth_scales_with_threads(self):
        zc = ZeroCopyEngine()
        assert zc.copy_bandwidth(16) == pytest.approx(zc.copy_bandwidth(32) / 2)

    def test_fewer_threads_slower(self):
        zc = ZeroCopyEngine()
        assert zc.transfer_time_ns(16, 8) > zc.transfer_time_ns(16, 32)

    def test_zero_pages_free(self):
        assert ZeroCopyEngine().transfer_time_ns(0) == 0.0

    def test_invalid_thread_count(self):
        with pytest.raises(SimulationError):
            ZeroCopyEngine().transfer_time_ns(4, 0)
        with pytest.raises(SimulationError):
            ZeroCopyEngine().transfer_time_ns(4, WARP_SIZE + 1)


class TestCrossover:
    def test_crossover_near_eight_pages(self):
        """Figure 6(a): zero-copy overtakes DMA at ~8 non-contiguous pages."""
        dma, zc = DmaEngine(), ZeroCopyEngine()
        crossover = next(
            n for n in range(1, 100) if zc.transfer_time_ns(n) < dma.transfer_time_ns(n)
        )
        assert 6 <= crossover <= 10


class TestHybridEngine:
    def test_small_batch_uses_dma(self):
        h = HybridEngine(min_threads=32)
        assert h.mechanism(4, 32) == "dma"

    def test_large_batch_full_warp_uses_zero_copy(self):
        h = HybridEngine(min_threads=32)
        assert h.mechanism(16, 32) == "zero-copy"

    def test_insufficient_threads_fall_back_to_dma(self):
        h = HybridEngine(min_threads=32)
        assert h.mechanism(16, 16) == "dma"
        assert HybridEngine(min_threads=16).mechanism(16, 16) == "zero-copy"

    def test_times_match_chosen_mechanism(self):
        h = HybridEngine(min_threads=32)
        assert h.transfer_time_ns(4, 32) == h.dma.transfer_time_ns(4, 32)
        assert h.transfer_time_ns(16, 32) == h.zero_copy.transfer_time_ns(16, 32)

    def test_name(self):
        assert HybridEngine(min_threads=32).name == "Hybrid-32T"

    def test_threshold_validation(self):
        with pytest.raises(SimulationError):
            HybridEngine(min_threads=0)
        with pytest.raises(SimulationError):
            HybridEngine(page_threshold=0)

    def test_hybrid_never_much_worse_than_best(self):
        """The Hybrid-32T property the paper selects it for."""
        h = HybridEngine(min_threads=32)
        dma, zc = DmaEngine(), ZeroCopyEngine()
        for n in (1, 2, 4, 8, 16, 32, 64):
            best = min(dma.transfer_time_ns(n), zc.transfer_time_ns(n))
            assert h.transfer_time_ns(n, 32) <= best * 1.05


class TestMakeEngine:
    def test_known_specs(self):
        assert isinstance(make_engine("dma"), DmaEngine)
        assert isinstance(make_engine("zero-copy"), ZeroCopyEngine)
        hybrid = make_engine("hybrid-16t")
        assert isinstance(hybrid, HybridEngine)
        assert hybrid.min_threads == 16

    def test_case_insensitive(self):
        assert isinstance(make_engine("Hybrid-32T"), HybridEngine)
        assert isinstance(make_engine("cudaMemcpyAsync"), DmaEngine)

    def test_unknown_spec(self):
        with pytest.raises(SimulationError):
            make_engine("teleport")
        with pytest.raises(SimulationError):
            make_engine("hybrid-xt")

    def test_efficiency_units(self):
        # 64 KB in 1 us -> 64 GB/s-ish sanity check of the unit math.
        dma = DmaEngine(call_overhead_ns=0, bandwidth=PAGE_SIZE * 1_000_000)
        assert dma.efficiency(1) == pytest.approx(PAGE_SIZE * 1_000_000)
