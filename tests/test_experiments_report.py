"""Tests for the one-shot report generator."""

from repro.experiments.report_all import generate_report, main


class TestGenerateReport:
    def test_subset_report(self, tmp_path):
        out = tmp_path / "report.md"
        text = generate_report(scale=8192, path=out, experiments=("fig6",))
        assert out.exists()
        assert out.read_text() == text
        assert "# GMT reproduction report" in text
        assert "Figure 6(a)" in text
        assert "byte scale: 1/8192" in text

    def test_header_geometry(self):
        text = generate_report(scale=8192, experiments=())
        assert "Tier-1: 32 frames" in text
        assert "Tier-2: 128 frames" in text

    def test_cli_main(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        rc = main(["--scale", "8192", "--experiments", "fig6", "-o", str(out)])
        assert rc == 0
        assert out.exists()
        assert "report written" in capsys.readouterr().out

    def test_cli_stdout(self, capsys):
        rc = main(["--scale", "8192", "--experiments", "fig6"])
        assert rc == 0
        assert "Figure 6(a)" in capsys.readouterr().out
