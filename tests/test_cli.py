"""Tests for the command-line tools and result exports."""

import json

import pytest

from repro.cli import main_characterize, main_sim, main_why
from repro.experiments.harness import ExperimentResult
from repro.experiments.runner import main as main_experiments


class TestGmtSim:
    def test_default_runtimes(self, capsys):
        rc = main_sim(["lavamd", "--scale", "8192"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "BaM" in out
        assert "GMT-Reuse" in out
        assert "speedup" in out

    def test_runtime_selection(self, capsys):
        rc = main_sim(["pathfinder", "--scale", "8192", "--runtimes", "bam", "hmm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "HMM" in out
        assert "GMT-Reuse" not in out

    def test_oversubscription_flag(self, capsys):
        rc = main_sim(["lavamd", "--scale", "8192", "--oversubscription", "4"])
        assert rc == 0
        assert "footprint" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main_sim(["doom"])

    def test_unknown_runtime_rejected(self):
        with pytest.raises(SystemExit):
            main_sim(["lavamd", "--runtimes", "belady"])


class TestGmtCharacterize:
    def test_report_fields(self, capsys):
        rc = main_characterize(["srad", "--scale", "8192"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "page reuse" in out
        assert "Eq. 1 class mix" in out
        assert "Miss-ratio curve" in out

    def test_mrc_points_flag(self, capsys):
        rc = main_characterize(["hotspot", "--scale", "8192", "--mrc-points", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "LRU miss ratio" in out


class TestGmtExperiments:
    def test_single_experiment(self, capsys):
        rc = main_experiments(["fig6", "--scale", "8192"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 6(a)" in out
        assert "completed in" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main_experiments(["fig99"])


class TestExperimentResultExport:
    @pytest.fixture
    def result(self):
        return ExperimentResult(
            name="x",
            title="Title",
            headers=["app", "value"],
            rows=[["a", 1.5], ["b", 2.0]],
            notes=["n1"],
        )

    def test_to_csv(self, result):
        csv_text = result.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "app,value"
        assert lines[1] == "a,1.5"

    def test_to_json_roundtrip(self, result):
        data = json.loads(result.to_json())
        assert data["name"] == "x"
        assert data["headers"] == ["app", "value"]
        assert data["rows"][1] == ["b", 2.0]
        assert data["notes"] == ["n1"]


class TestGmtServe:
    def test_two_tenant_mix(self, capsys):
        from repro.cli import main_serve

        rc = main_serve(["--tenants", "bfs,pagerank", "--policy", "reuse",
                         "--scale", "8192"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving 2 tenants" in out
        assert "bfs" in out and "pagerank" in out
        assert "slowdown" in out
        assert "Jain's index" in out

    def test_weights_discipline_and_quotas(self, capsys):
        from repro.cli import main_serve

        rc = main_serve(["--tenants", "bfs:2,hotspot", "--scale", "8192",
                         "--discipline", "weighted-fair", "--quotas", "static",
                         "--no-solo"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "quotas=static" in out
        # --no-solo: no fairness footer.
        assert "Jain's index" not in out

    def test_exports(self, capsys, tmp_path):
        import json

        from repro.cli import main_serve

        trace = tmp_path / "serve.trace.json"
        prom = tmp_path / "serve.prom"
        rc = main_serve(["--tenants", "hotspot,pathfinder", "--scale", "8192",
                         "--no-solo", "--trace-out", str(trace),
                         "--metrics-out", str(prom)])
        assert rc == 0
        events = json.loads(trace.read_text())["traceEvents"]
        lanes = {e["args"]["name"] for e in events if e["name"] == "thread_name"}
        assert any("[hotspot]" in name for name in lanes)
        text = prom.read_text()
        assert 'tenant="hotspot"' in text and 'tenant="pathfinder"' in text

    def test_bad_tenant_weight_rejected(self):
        from repro.cli import main_serve
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main_serve(["--tenants", "bfs:fast", "--scale", "8192"])

    def test_unknown_discipline_rejected(self):
        from repro.cli import main_serve

        with pytest.raises(SystemExit):
            main_serve(["--tenants", "bfs", "--discipline", "lottery"])

    def test_epoch_flag(self, capsys):
        from repro.cli import main_serve

        rc = main_serve(["--tenants", "bfs,hotspot", "--scale", "8192",
                         "--epoch", "4", "--no-solo"])
        assert rc == 0
        assert "serving 2 tenants" in capsys.readouterr().out

    def test_epoch_validation(self):
        from repro.cli import main_serve
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main_serve(["--tenants", "bfs", "--scale", "8192", "--epoch", "0"])

    def test_open_loop_run(self, capsys):
        from repro.cli import main_serve

        rc = main_serve(["--open-loop", "64", "--requests", "256",
                         "--arrival-rate", "8192", "--max-backlog", "64",
                         "--scale", "8192", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "open-loop serve: 64 tenants, 256 arrivals" in out
        assert "admitted" in out and "shed" in out

    def test_open_loop_bursty_process(self, capsys):
        from repro.cli import main_serve

        rc = main_serve(["--open-loop", "32", "--requests", "128",
                         "--arrival-process", "bursty",
                         "--arrival-rate", "4096", "--scale", "8192"])
        assert rc == 0
        assert "bursty" in capsys.readouterr().out

    def test_tenants_or_open_loop_required(self):
        from repro.cli import main_serve

        with pytest.raises(SystemExit):
            main_serve(["--scale", "8192"])


class TestGmtWhy:
    SCALE = ["--scale", "8192"]

    def recorded_events(self, tmp_path):
        """One replay exported to JSONL; reused by --from tests."""
        from repro.obs.lifecycle import load_lifecycle_jsonl

        out = tmp_path / "lifecycle.jsonl"
        rc = main_why(
            ["hotspot", *self.SCALE, "residency", "--record-out", str(out)]
        )
        assert rc == 0
        return out, load_lifecycle_jsonl(str(out))

    def test_page_journey_reconstructed_with_causes(self, capsys):
        # Deterministic replay: find a real faulted page first, then ask
        # the CLI to explain it.
        from repro.obs.lifecycle import FILL_KINDS, load_lifecycle_jsonl

        rc = main_why(["hotspot", *self.SCALE, "top"])
        assert rc == 0
        capsys.readouterr()

        from repro.experiments.harness import build_runtime, default_config, get_workload
        from repro.obs import Telemetry

        config = default_config(8192)
        runtime = build_runtime("reuse", config)
        telemetry = Telemetry(lifecycle=True)
        runtime.attach_telemetry(telemetry)
        runtime.run(get_workload("hotspot", config, seed=0))
        fill = next(e for e in telemetry.lifecycle if e.kind in FILL_KINDS)

        rc = main_why(["hotspot", *self.SCALE, "page", str(fill.page)])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"page {fill.page}:" in out
        assert "admit" in out
        assert "cause=" in out

    def test_miss_explained_with_cause(self, capsys):
        from repro.experiments.harness import build_runtime, default_config, get_workload
        from repro.obs import Telemetry
        from repro.obs.lifecycle import FILL_KINDS

        config = default_config(8192)
        runtime = build_runtime("reuse", config)
        telemetry = Telemetry(lifecycle=True)
        runtime.attach_telemetry(telemetry)
        runtime.run(get_workload("hotspot", config, seed=0))
        fill = next(e for e in telemetry.lifecycle if e.kind in FILL_KINDS)

        rc = main_why(["hotspot", *self.SCALE, "miss", str(fill.access)])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"access {fill.access}:" in out
        assert f"page {fill.page}" in out
        assert "cause" in out or "verdict" in out

    def test_miss_on_a_hit_says_so(self, capsys):
        rc = main_why(["hotspot", *self.SCALE, "miss", "0"])
        assert rc == 0
        assert "no recorded Tier-1 fill" in capsys.readouterr().out

    def test_top_residency_outcomes_render_tables(self, capsys):
        for query, marker in (
            ("top", "SSD I/O"),
            ("residency", "tier"),
            ("outcomes", "outcome"),
        ):
            rc = main_why(["hotspot", *self.SCALE, query])
            assert rc == 0
            assert marker in capsys.readouterr().out

    def test_anomalies_query_runs(self, capsys):
        rc = main_why(["hotspot", *self.SCALE, "anomalies", "--window", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "anomalies" in out or "thrash" in out or "bypass" in out or "latency" in out

    def test_record_out_then_from_round_trip(self, capsys, tmp_path):
        out, events = self.recorded_events(tmp_path)
        assert events  # the export captured the replay
        capsys.readouterr()
        rc = main_why(["hotspot", *self.SCALE, "page", str(events[0].page),
                       "--from", str(out)])
        assert rc == 0
        assert f"page {events[0].page}:" in capsys.readouterr().out

    def test_anomalies_rejected_with_from(self, tmp_path):
        out, _ = self.recorded_events(tmp_path)
        with pytest.raises(SystemExit):
            main_why(["hotspot", *self.SCALE, "anomalies", "--from", str(out)])

    def test_page_query_requires_argument(self):
        with pytest.raises(SystemExit):
            main_why(["hotspot", *self.SCALE, "page"])

    def test_ring_capacity_note_printed_when_dropping(self, capsys):
        rc = main_why(["hotspot", *self.SCALE, "residency", "--capacity", "64"])
        assert rc == 0
        assert "dropped" in capsys.readouterr().out


class TestGmtSimLifecycleOut:
    def test_lifecycle_export(self, capsys, tmp_path):
        path = tmp_path / "lc.jsonl"
        rc = main_sim(["lavamd", "--scale", "8192", "--runtimes", "reuse",
                       "--lifecycle-out", str(path)])
        assert rc == 0
        assert "lifecycle events" in capsys.readouterr().out
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines
        assert all(l["runtime"] == "reuse" for l in lines)
        assert {"kind", "page", "access", "cause"} <= set(lines[0])
