"""Tests for the command-line tools and result exports."""

import json

import pytest

from repro.cli import main_characterize, main_sim
from repro.experiments.harness import ExperimentResult
from repro.experiments.runner import main as main_experiments


class TestGmtSim:
    def test_default_runtimes(self, capsys):
        rc = main_sim(["lavamd", "--scale", "8192"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "BaM" in out
        assert "GMT-Reuse" in out
        assert "speedup" in out

    def test_runtime_selection(self, capsys):
        rc = main_sim(["pathfinder", "--scale", "8192", "--runtimes", "bam", "hmm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "HMM" in out
        assert "GMT-Reuse" not in out

    def test_oversubscription_flag(self, capsys):
        rc = main_sim(["lavamd", "--scale", "8192", "--oversubscription", "4"])
        assert rc == 0
        assert "footprint" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main_sim(["doom"])

    def test_unknown_runtime_rejected(self):
        with pytest.raises(SystemExit):
            main_sim(["lavamd", "--runtimes", "belady"])


class TestGmtCharacterize:
    def test_report_fields(self, capsys):
        rc = main_characterize(["srad", "--scale", "8192"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "page reuse" in out
        assert "Eq. 1 class mix" in out
        assert "Miss-ratio curve" in out

    def test_mrc_points_flag(self, capsys):
        rc = main_characterize(["hotspot", "--scale", "8192", "--mrc-points", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "LRU miss ratio" in out


class TestGmtExperiments:
    def test_single_experiment(self, capsys):
        rc = main_experiments(["fig6", "--scale", "8192"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 6(a)" in out
        assert "completed in" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main_experiments(["fig99"])


class TestExperimentResultExport:
    @pytest.fixture
    def result(self):
        return ExperimentResult(
            name="x",
            title="Title",
            headers=["app", "value"],
            rows=[["a", 1.5], ["b", 2.0]],
            notes=["n1"],
        )

    def test_to_csv(self, result):
        csv_text = result.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "app,value"
        assert lines[1] == "a,1.5"

    def test_to_json_roundtrip(self, result):
        data = json.loads(result.to_json())
        assert data["name"] == "x"
        assert data["headers"] == ["app", "value"]
        assert data["rows"][1] == ["b", 2.0]
        assert data["notes"] == ["n1"]


class TestGmtServe:
    def test_two_tenant_mix(self, capsys):
        from repro.cli import main_serve

        rc = main_serve(["--tenants", "bfs,pagerank", "--policy", "reuse",
                         "--scale", "8192"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving 2 tenants" in out
        assert "bfs" in out and "pagerank" in out
        assert "slowdown" in out
        assert "Jain's index" in out

    def test_weights_discipline_and_quotas(self, capsys):
        from repro.cli import main_serve

        rc = main_serve(["--tenants", "bfs:2,hotspot", "--scale", "8192",
                         "--discipline", "weighted-fair", "--quotas", "static",
                         "--no-solo"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "quotas=static" in out
        # --no-solo: no fairness footer.
        assert "Jain's index" not in out

    def test_exports(self, capsys, tmp_path):
        import json

        from repro.cli import main_serve

        trace = tmp_path / "serve.trace.json"
        prom = tmp_path / "serve.prom"
        rc = main_serve(["--tenants", "hotspot,pathfinder", "--scale", "8192",
                         "--no-solo", "--trace-out", str(trace),
                         "--metrics-out", str(prom)])
        assert rc == 0
        events = json.loads(trace.read_text())["traceEvents"]
        lanes = {e["args"]["name"] for e in events if e["name"] == "thread_name"}
        assert any("[hotspot]" in name for name in lanes)
        text = prom.read_text()
        assert 'tenant="hotspot"' in text and 'tenant="pathfinder"' in text

    def test_bad_tenant_weight_rejected(self):
        from repro.cli import main_serve
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main_serve(["--tenants", "bfs:fast", "--scale", "8192"])

    def test_unknown_discipline_rejected(self):
        from repro.cli import main_serve

        with pytest.raises(SystemExit):
            main_serve(["--tenants", "bfs", "--discipline", "lottery"])
