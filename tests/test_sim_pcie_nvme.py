"""Unit tests for the PCIe link and NVMe SSD models."""

import pytest

from repro.errors import SimulationError
from repro.sim.nvme import NvmeSSD
from repro.sim.pcie import PCIeLink
from repro.units import GiB, PAGE_SIZE, SEC, USEC


class TestPCIeLink:
    def test_traffic_accounting(self):
        link = PCIeLink(bandwidth=12 * GiB)
        link.record_h2d(PAGE_SIZE)
        link.record_h2d(PAGE_SIZE)
        link.record_d2h(PAGE_SIZE)
        assert link.h2d_bytes == 2 * PAGE_SIZE
        assert link.d2h_bytes == PAGE_SIZE
        assert link.total_transfers == 3

    def test_wire_time(self):
        link = PCIeLink(bandwidth=1 * GiB)
        assert link.wire_time_ns(GiB) == pytest.approx(SEC)

    def test_busy_time_covers_both_directions(self):
        link = PCIeLink(bandwidth=1 * GiB)
        link.record_h2d(GiB // 2)
        link.record_d2h(GiB // 2)
        assert link.busy_time_ns() == pytest.approx(SEC)

    def test_reset(self):
        link = PCIeLink(bandwidth=GiB)
        link.record_h2d(10)
        link.reset()
        assert link.total_bytes == 0

    def test_invalid_bandwidth(self):
        with pytest.raises(SimulationError):
            PCIeLink(bandwidth=0)

    def test_negative_transfer_rejected(self):
        link = PCIeLink(bandwidth=GiB)
        with pytest.raises(SimulationError):
            link.record_h2d(-1)


class TestNvmeSSD:
    def make(self, queue_depth=4, bandwidth=100 * GiB):
        # Bandwidth is set high by default so latency terms dominate the
        # batch tests; bandwidth-floor tests pass an explicit value.
        return NvmeSSD(
            read_latency_ns=100 * USEC,
            write_latency_ns=30 * USEC,
            read_bandwidth=bandwidth,
            write_bandwidth=bandwidth,
            queue_depth=queue_depth,
        )

    def test_counters(self):
        ssd = self.make()
        ssd.record_read(PAGE_SIZE)
        ssd.record_write(PAGE_SIZE)
        ssd.record_write(PAGE_SIZE)
        assert ssd.reads == 1 and ssd.writes == 2
        assert ssd.total_bytes == 3 * PAGE_SIZE

    def test_single_command_costs_one_latency(self):
        ssd = self.make()
        assert ssd.batch_time_ns(1, PAGE_SIZE) == pytest.approx(100 * USEC)

    def test_batch_within_queue_depth_overlaps(self):
        ssd = self.make(queue_depth=4)
        assert ssd.batch_time_ns(4, PAGE_SIZE) == pytest.approx(100 * USEC)

    def test_batch_beyond_queue_depth_takes_waves(self):
        ssd = self.make(queue_depth=4)
        assert ssd.batch_time_ns(8, PAGE_SIZE) == pytest.approx(200 * USEC)

    def test_bandwidth_floor_dominates_large_batches(self):
        ssd = self.make(queue_depth=1_000_000, bandwidth=1 * GiB)
        t = ssd.batch_time_ns(16_384, PAGE_SIZE)  # 1 GiB at 1 GiB/s
        assert t == pytest.approx(SEC)

    def test_write_batches_use_write_latency(self):
        ssd = self.make()
        assert ssd.batch_time_ns(1, PAGE_SIZE, write=True) == pytest.approx(30 * USEC)

    def test_empty_batch_is_free(self):
        assert self.make().batch_time_ns(0, PAGE_SIZE) == 0.0

    def test_busy_time(self):
        ssd = self.make(bandwidth=1 * GiB)
        ssd.record_read(GiB)
        assert ssd.busy_time_ns() == pytest.approx(SEC)

    def test_reset(self):
        ssd = self.make()
        ssd.record_read(10)
        ssd.reset()
        assert ssd.total_commands == 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            self.make(queue_depth=0)
        with pytest.raises(SimulationError):
            self.make().batch_time_ns(-1, PAGE_SIZE)
        with pytest.raises(SimulationError):
            self.make().record_read(-1)
