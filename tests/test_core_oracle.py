"""Unit tests for the Belady-style oracle policy."""

import pytest

from repro.core.config import GMTConfig
from repro.core.oracle import (
    FutureReuseIndex,
    fit_global_vtd_model,
    run_with_oracle,
)
from repro.errors import TraceError
from repro.sim.gpu import WarpAccess
from repro.workloads.trace import Workload


class _PagesWorkload(Workload):
    name = "pages"

    def __init__(self, pages):
        super().__init__(max(pages) + 1, 0)
        self._pages = pages

    def generate(self):
        for p in self._pages:
            yield WarpAccess(pages=(p,))


@pytest.fixture
def config():
    return GMTConfig(
        tier1_frames=4, tier2_frames=16, sample_target=50, sample_batch=10
    )


class TestFutureReuseIndex:
    def test_next_access(self):
        idx = FutureReuseIndex(_PagesWorkload([1, 2, 1, 3, 1]))
        assert idx.next_access_after(1, 0) == 1
        assert idx.next_access_after(1, 1) == 3
        assert idx.next_access_after(1, 3) == 5
        assert idx.next_access_after(1, 5) is None

    def test_unknown_page(self):
        idx = FutureReuseIndex(_PagesWorkload([1, 2]))
        assert idx.next_access_after(99, 0) is None

    def test_trace_length(self):
        idx = FutureReuseIndex(_PagesWorkload([1, 2, 1]))
        assert idx.trace_length == 3

    def test_empty_trace_rejected(self):
        class Empty(Workload):
            name = "empty"

            def generate(self):
                return iter(())

        with pytest.raises(TraceError):
            FutureReuseIndex(Empty(footprint_pages=1))


class TestGlobalVtdModel:
    def test_sweep_gives_identity_like_line(self):
        model = fit_global_vtd_model(_PagesWorkload(list(range(20)) * 3))
        assert model is not None
        assert model.predict(20) == pytest.approx(19, abs=1.0)

    def test_no_reuse_gives_none(self):
        assert fit_global_vtd_model(_PagesWorkload(list(range(10)))) is None


class TestRunWithOracle:
    def test_runs_and_labels(self, config):
        result = run_with_oracle(config, _PagesWorkload(list(range(30)) * 3))
        assert result.runtime_name == "GMT-oracle"
        assert result.stats.coalesced_accesses == 90

    def test_oracle_counts_every_eviction_as_prediction(self, config):
        result = run_with_oracle(config, _PagesWorkload(list(range(30)) * 3))
        assert result.stats.predictions_made == result.stats.t1_evictions
        assert result.stats.fallback_placements == 0

    def test_oracle_not_worse_than_reuse_on_medium_pattern(self, config):
        """On a pattern whose reuse fits Tier-1+2, perfect knowledge must
        at least match the online predictor."""
        from repro.core.runtime import GMTRuntime

        # Footprint 12 < tier1+tier2 (20): everything is medium/short.
        workload = _PagesWorkload(list(range(12)) * 8)
        oracle = run_with_oracle(config, workload)
        online = GMTRuntime(config).run(workload)
        assert oracle.elapsed_ns <= online.elapsed_ns * 1.05

    def test_oracle_bypasses_single_use_pages(self, config):
        """Pages never reused are classified LONG and skip Tier-2."""
        workload = _PagesWorkload(list(range(100)))
        result = run_with_oracle(config, workload)
        # With no reuse at all, the model is None -> everything LONG; the
        # heuristic may still force some pages into Tier-2 (free slots
        # only), but no plain medium placements occur, so every successful
        # placement stems from a forced attempt.
        assert result.stats.forced_t2_placements > 0
        assert result.stats.t2_placements <= result.stats.forced_t2_placements
