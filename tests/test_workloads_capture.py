"""Unit tests for trace capture/replay."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads.capture import RecordedWorkload, load_trace, save_trace
from repro.workloads.registry import make_workload


@pytest.fixture
def small_workload():
    return make_workload("pathfinder", 200, jitter_warps=16)


class TestSaveTrace:
    def test_summary(self, small_workload, tmp_path):
        path = tmp_path / "trace.npz"
        summary = save_trace(small_workload, path)
        assert summary["warps"] == sum(1 for _ in small_workload)
        assert summary["bytes"] > 0
        assert path.exists()

    def test_empty_trace_rejected(self, tmp_path):
        from repro.workloads.trace import Workload

        class Empty(Workload):
            name = "empty"

            def generate(self):
                return iter(())

        with pytest.raises(TraceError):
            save_trace(Empty(footprint_pages=1), tmp_path / "x.npz")


class TestLoadTrace:
    def test_roundtrip_exact(self, small_workload, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(small_workload, path)
        replay = load_trace(path)
        original = [(w.pages, w.write) for w in small_workload]
        recorded = [(w.pages, w.write) for w in replay]
        assert original == recorded

    def test_metadata_preserved(self, small_workload, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(small_workload, path)
        replay = load_trace(path)
        assert replay.name == small_workload.name
        assert replay.footprint_pages == small_workload.footprint_pages

    def test_replay_is_reiterable(self, small_workload, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(small_workload, path)
        replay = load_trace(path)
        assert list(replay.coalesced_pages()) == list(replay.coalesced_pages())

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, pages=np.array([1, 2]))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_runtime_results_identical(self, small_workload, tmp_path):
        from repro.core.config import GMTConfig
        from repro.core.runtime import GMTRuntime

        path = tmp_path / "trace.npz"
        save_trace(small_workload, path)
        replay = load_trace(path)
        cfg = GMTConfig(
            tier1_frames=16, tier2_frames=64, sample_target=100, sample_batch=20
        )
        a = GMTRuntime(cfg).run(small_workload)
        b = GMTRuntime(cfg).run(replay)
        assert a.elapsed_ns == b.elapsed_ns
        assert a.stats.as_dict() == b.stats.as_dict()


class TestRecordedWorkload:
    def test_corrupt_lengths_detected(self):
        with pytest.raises(TraceError):
            RecordedWorkload(
                pages=np.array([1, 2, 3], dtype=np.int64),
                lengths=np.array([2, 2], dtype=np.int32),
                writes=np.array([False, True]),
                meta={"name": "x", "footprint_pages": 4},
            )

    def test_num_warps(self, small_workload, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(small_workload, path)
        replay = load_trace(path)
        assert replay.num_warps == sum(1 for _ in small_workload)
