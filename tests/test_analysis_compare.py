"""Tests for run-result comparison utilities."""

import pytest

from repro.analysis.compare import comparison_rows, comparison_table, io_breakdown
from repro.baselines.bam import BamRuntime
from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from repro.errors import SimulationError
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def results():
    cfg = GMTConfig(
        tier1_frames=16, tier2_frames=64, sample_target=200, sample_batch=50
    )
    workload = make_workload("srad", 160, jitter_warps=16)
    return {
        "BaM": BamRuntime(cfg).run(workload),
        "GMT-Reuse": GMTRuntime(cfg).run(workload),
    }


class TestComparisonRows:
    def test_baseline_defaults_to_first(self, results):
        rows = comparison_rows(results)
        assert rows[0][0] == "BaM"
        assert rows[0][1] == 1.0

    def test_explicit_baseline(self, results):
        rows = comparison_rows(results, baseline="GMT-Reuse")
        by_label = {r[0]: r for r in rows}
        assert by_label["GMT-Reuse"][1] == 1.0
        assert by_label["BaM"][1] <= 1.0

    def test_unknown_baseline(self, results):
        with pytest.raises(SimulationError):
            comparison_rows(results, baseline="HMM")

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            comparison_rows({})

    def test_mismatched_traces_rejected(self, results):
        cfg = GMTConfig(
            tier1_frames=16, tier2_frames=64, sample_target=200, sample_batch=50
        )
        other = BamRuntime(cfg).run(make_workload("lavamd", 160, jitter_warps=0))
        mixed = dict(results)
        mixed["other"] = other
        with pytest.raises(SimulationError):
            comparison_rows(mixed)


class TestComparisonTable:
    def test_renders(self, results):
        text = comparison_table(results, title="cmp")
        assert text.startswith("cmp")
        assert "BaM" in text
        assert "bottleneck" in text


class TestIoBreakdown:
    def test_ledger_keys(self, results):
        ledger = io_breakdown(results["GMT-Reuse"])
        assert set(ledger) == {
            "ssd_reads",
            "ssd_writes",
            "tier2_fetches",
            "tier2_placements",
            "clean_discards",
        }
        assert all(v >= 0 for v in ledger.values())

    def test_bam_has_no_tier2_traffic(self, results):
        ledger = io_breakdown(results["BaM"])
        assert ledger["tier2_fetches"] == 0
        assert ledger["tier2_placements"] == 0
