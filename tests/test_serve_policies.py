"""Serving-layer integration of the policy zoo: per-tenant eviction
policies, the partitioned structures, and the migration governor."""

import pytest

from repro.check.identities import audit_runtime, audit_stats
from repro.core.runtime import GMTRuntime
from repro.core.stats import RuntimeStats
from repro.errors import ConfigError
from repro.experiments.harness import default_config, get_workload
from repro.mem.clock_replacement import ClockReplacement
from repro.policyzoo import PartitionedPolicy, ZOO_POLICY_NAMES
from repro.serve import (
    GovernorConfig,
    QuotaConfig,
    TenantServer,
    TenantSpec,
    build_tenants,
)

SCALE = 8192  # tiny geometry: Tier-1 = 32 frames, Tier-2 = 128

#: A deliberately tight bucket so small test runs actually throttle.
TIGHT_GOVERNOR = GovernorConfig(
    tokens_per_1k_accesses=5.0, burst=2.0, promotion_stall_ns=10_000.0
)


@pytest.fixture(scope="module")
def config():
    return default_config(SCALE)


def make_server(config, names, **kwargs):
    streams = build_tenants(list(names), config)
    return TenantServer(config, streams, **kwargs)


class TestDefaultModeUnchanged:
    """Acceptance lock: with no zoo policy assigned, serving still runs
    on the single shared structures and a 1-tenant serve reproduces the
    solo replay byte-for-byte."""

    def test_shared_mode_keeps_the_historical_structures(self, config):
        server = make_server(config, ["bfs", "hotspot"])
        assert isinstance(server.runtime.t1_clock, ClockReplacement)
        assert not isinstance(server.runtime.t1_clock, PartitionedPolicy)
        assert server.runtime.governor is None
        assert server.runtime.tier1_policy_names == ("clock", "clock")

    def test_single_tenant_serve_is_byte_identical_to_solo(self, config):
        workload = get_workload("bfs", config)
        solo = GMTRuntime(config).run(workload)
        outcome = make_server(config, ["bfs"]).run(solo_baselines=False)
        served = outcome.result
        assert served.elapsed_ns == solo.elapsed_ns
        assert served.ssd_io_bytes == solo.ssd_io_bytes
        for field in RuntimeStats.counter_names():
            assert getattr(served.stats, field) == getattr(solo.stats, field), field


@pytest.mark.parametrize("name", ZOO_POLICY_NAMES)
class TestZooPoliciesServe:
    def test_two_tenants_serve_and_audit_clean(self, config, name):
        server = make_server(
            config,
            ["bfs", "hotspot"],
            tier1_policy=name,
            tier2_policy=name,
            quota=QuotaConfig(mode="static"),
        )
        assert isinstance(server.runtime.t1_clock, PartitionedPolicy)
        assert server.runtime.tier1_policy_names == (name, name)
        outcome = server.run(solo_baselines=False)
        assert outcome.elapsed_ns > 0
        assert audit_runtime(server.runtime) == []
        assert audit_stats(server.runtime.stats) == []


class TestPerTenantSpecs:
    def test_specs_can_mix_policies(self, config):
        specs = [
            TenantSpec(name="a", workload="bfs", tier1_policy="mru"),
            TenantSpec(name="b", workload="hotspot", tier1_policy="lfu"),
        ]
        streams = build_tenants(specs, config)
        server = TenantServer(config, streams)
        assert server.runtime.tier1_policy_names == ("mru", "lfu")
        outcome = server.run(solo_baselines=False)
        assert audit_runtime(server.runtime) == []

    def test_spec_default_falls_back_to_server_default(self, config):
        specs = [
            TenantSpec(name="a", workload="bfs", tier1_policy="mru"),
            TenantSpec(name="b", workload="hotspot"),
        ]
        streams = build_tenants(specs, config)
        server = TenantServer(config, streams, tier1_policy="s3fifo")
        assert server.runtime.tier1_policy_names == ("mru", "s3fifo")

    def test_bad_policy_name_rejected_in_spec(self):
        with pytest.raises(ConfigError):
            TenantSpec(name="a", workload="bfs", tier1_policy="arc")

    def test_bad_policy_name_rejected_in_server(self, config):
        with pytest.raises(ConfigError):
            make_server(config, ["bfs"], tier1_policy="arc")


class TestGovernor:
    @pytest.fixture(scope="class")
    def served(self, config):
        server = make_server(
            config,
            ["bfs", "hotspot"],
            governor=TIGHT_GOVERNOR,
        )
        outcome = server.run(solo_baselines=False)
        return server, outcome

    def test_throttling_engages_and_is_counted(self, served):
        server, outcome = served
        stats = server.runtime.stats
        assert stats.migration_throttled > 0
        assert stats.migration_throttled == (
            stats.promotions_throttled + stats.demotions_throttled
        )

    def test_throttling_attributed_to_tenants(self, served):
        server, outcome = served
        per_tenant = sum(t.stats.migration_throttled for t in outcome.tenants)
        assert per_tenant == server.runtime.stats.migration_throttled

    def test_metric_exported(self, served):
        server, _ = served
        assert "migration_throttled" in RuntimeStats.EXPORTED_PROPERTIES
        assert "migration_throttled" in RuntimeStats.METRIC_HELP

    def test_throttled_run_still_audits_clean(self, served):
        server, _ = served
        assert audit_runtime(server.runtime) == []
        assert audit_stats(server.runtime.stats) == []

    def test_governed_run_is_deterministic(self, config):
        def run():
            server = make_server(
                config, ["bfs", "hotspot"], governor=TIGHT_GOVERNOR
            )
            outcome = server.run(solo_baselines=False)
            return (
                outcome.elapsed_ns,
                server.runtime.stats.migration_throttled,
            )

        assert run() == run()

    def test_no_governor_means_no_throttling(self, config):
        server = make_server(config, ["bfs", "hotspot"])
        server.run(solo_baselines=False)
        assert server.runtime.stats.migration_throttled == 0
