"""Tests for the windowed statistics timeline."""

import pytest

from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from repro.core.timeline import StatsTimeline
from repro.errors import ConfigError
from repro.workloads import make_workload


def make_runtime(policy="reuse"):
    cfg = GMTConfig(
        tier1_frames=16,
        tier2_frames=64,
        policy=policy,
        sample_target=300,
        sample_batch=50,
    )
    return GMTRuntime(cfg)


class TestStatsTimeline:
    def test_window_validation(self):
        with pytest.raises(ConfigError):
            StatsTimeline(make_runtime(), window=0)

    def test_no_snapshot_before_window_fills(self):
        rt = make_runtime()
        tl = StatsTimeline(rt, window=100)
        rt.access(1)
        assert tl.maybe_snapshot() is None
        assert tl.windows() == []

    def test_snapshot_after_window(self):
        rt = make_runtime()
        tl = StatsTimeline(rt, window=10)
        for p in range(10):
            rt.access(p)
        window = tl.maybe_snapshot()
        assert window is not None
        assert window.accesses == 10
        assert window.index == 0

    def test_windows_report_deltas(self):
        rt = make_runtime()
        tl = StatsTimeline(rt, window=5)
        for p in range(5):
            rt.access(p)  # all cold misses
        w0 = tl.maybe_snapshot()
        for p in range(5):
            rt.access(p)  # all Tier-1 hits (fit in 16 frames)
        w1 = tl.maybe_snapshot()
        assert w0.t1_misses == 5 and w0.t1_hits == 0
        assert w1.t1_hits == 5 and w1.t1_misses == 0
        assert w1.t1_hit_rate == 1.0

    def test_run_convenience_covers_whole_trace(self):
        rt = make_runtime()
        tl = StatsTimeline(rt, window=50)
        workload = make_workload("srad", 160, jitter_warps=0)
        tl.run(workload)
        assert sum(w.accesses for w in tl.windows()) == rt.stats.coalesced_accesses

    def test_series(self):
        rt = make_runtime()
        tl = StatsTimeline(rt, window=50)
        tl.run(make_workload("srad", 160, jitter_warps=0))
        series = tl.series("t2_hit_rate")
        assert len(series) == len(tl.windows())
        assert all(0.0 <= v <= 1.0 for v in series)

    def test_unknown_metric(self):
        rt = make_runtime()
        tl = StatsTimeline(rt, window=50)
        tl.run(make_workload("srad", 160, jitter_warps=0))
        with pytest.raises(ConfigError):
            tl.series("tea_temperature")

    def test_registry_windows_share_timeline_boundaries(self):
        """A telemetry-backed timeline cuts a registry delta window at
        every StatsWindow boundary, with matching counter deltas."""
        from repro.obs import Telemetry

        rt = make_runtime()
        tel = rt.attach_telemetry(Telemetry(window=10_000_000))
        tl = StatsTimeline(rt, window=50, telemetry=tel)
        tl.run(make_workload("srad", 160, jitter_warps=0))
        registry_windows = tel.windows()
        timeline_windows = tl.windows()
        assert len(registry_windows) == len(timeline_windows)
        for rw, tw in zip(registry_windows, timeline_windows):
            assert rw["gmt_t1_hits"] == tw.t1_hits
            assert rw["gmt_ssd_page_reads"] == tw.ssd_reads

    def test_warmup_visible_on_iterative_workload(self):
        """The point of the tool: prediction coverage must grow from the
        cold window to the last window on an iterative app."""
        rt = make_runtime()
        tl = StatsTimeline(rt, window=500)
        tl.run(make_workload("backprop", 160, jitter_warps=0, epochs=10))
        coverage = tl.series("prediction_coverage")
        assert len(coverage) >= 3
        assert coverage[0] < coverage[-1]
        assert coverage[-1] > 0.3
