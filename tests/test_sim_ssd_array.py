"""Unit tests for the SSD-array platform helper."""

import pytest

from repro.errors import ConfigError
from repro.sim.latency import PlatformModel


class TestWithSsdArray:
    def test_scales_bandwidth_and_queue_depth(self):
        base = PlatformModel()
        quad = base.with_ssd_array(4)
        assert quad.ssd_read_bandwidth == 4 * base.ssd_read_bandwidth
        assert quad.ssd_write_bandwidth == 4 * base.ssd_write_bandwidth
        assert quad.nvme_queue_depth == 4 * base.nvme_queue_depth

    def test_latency_unchanged(self):
        base = PlatformModel()
        quad = base.with_ssd_array(4)
        assert quad.ssd_read_latency_ns == base.ssd_read_latency_ns
        assert quad.ssd_write_latency_ns == base.ssd_write_latency_ns

    def test_other_fields_unchanged(self):
        base = PlatformModel()
        quad = base.with_ssd_array(2)
        assert quad.pcie_bandwidth == base.pcie_bandwidth
        assert quad.gpu_fault_concurrency == base.gpu_fault_concurrency

    def test_identity(self):
        base = PlatformModel()
        assert base.with_ssd_array(1) == base

    def test_invalid_count(self):
        with pytest.raises(ConfigError):
            PlatformModel().with_ssd_array(0)

    def test_original_not_mutated(self):
        base = PlatformModel()
        read_bw = base.ssd_read_bandwidth
        base.with_ssd_array(8)
        assert base.ssd_read_bandwidth == read_bw
