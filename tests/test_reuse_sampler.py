"""Unit tests for the VTD sampler (pipelined sampling -> OLS)."""

import pytest

from repro.reuse.sampler import VTDSampler


def feed_sweep(sampler: VTDSampler, footprint: int, repeats: int) -> None:
    """Feed repeated sweeps; VTD == footprint for every reuse."""
    now = 0
    last = {}
    for _ in range(repeats):
        for page in range(footprint):
            now += 1
            vtd = now - last[page] if page in last else None
            last[page] = now
            sampler.observe(page, vtd)


class TestVTDSampler:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            VTDSampler(sample_target=0)
        with pytest.raises(ValueError):
            VTDSampler(batch_size=0)

    def test_no_model_before_first_flush(self):
        s = VTDSampler(sample_target=100, batch_size=50)
        feed_sweep(s, footprint=10, repeats=2)  # only 10 pairs
        assert s.collected == 10
        assert s.model is None
        assert s.predict_rrd(5) is None

    def test_model_after_flush(self):
        s = VTDSampler(sample_target=100, batch_size=10)
        feed_sweep(s, footprint=10, repeats=5)
        assert s.model is not None

    def test_sampling_stops_at_target(self):
        s = VTDSampler(sample_target=20, batch_size=10)
        feed_sweep(s, footprint=10, repeats=10)
        assert s.collected == 20
        assert s.sampling_done

    def test_observe_after_done_is_noop(self):
        s = VTDSampler(sample_target=10, batch_size=5)
        feed_sweep(s, footprint=10, repeats=3)
        collected = s.collected
        s.observe(1, 5)
        assert s.collected == collected

    def test_prediction_clamped_at_zero(self):
        s = VTDSampler(sample_target=100, batch_size=10)
        # Line with positive slope and negative offset possible; clamp check
        # via a tiny rvtd after learning on big ones.
        feed_sweep(s, footprint=50, repeats=3)
        assert s.predict_rrd(0) >= 0.0

    def test_sweep_learns_identity_like_relation(self):
        # On a pure sweep, RD = footprint - 1 and VTD = footprint for every
        # reuse, so the fitted line maps VTD=footprint -> ~footprint-1.
        s = VTDSampler(sample_target=500, batch_size=50)
        feed_sweep(s, footprint=100, repeats=4)
        predicted = s.predict_rrd(100)
        assert predicted == pytest.approx(99, abs=1.5)

    def test_cold_accesses_not_sampled(self):
        s = VTDSampler(sample_target=10, batch_size=5)
        for page in range(20):
            s.observe(page, None)
        assert s.collected == 0
