"""Integration tests: full workloads through full runtimes.

These replay real (small-scale) Table 2 workloads through every runtime
and check the paper's cross-cutting claims end to end.
"""

import pytest

from repro.baselines.bam import BamRuntime
from repro.baselines.hmm import HmmRuntime
from repro.core.runtime import GMTRuntime
from repro.experiments.harness import default_config, get_workload

SCALE = 4096  # Tier-1 = 64 frames; each run takes well under a second.


@pytest.fixture(scope="module")
def config():
    return default_config(scale=SCALE)


def run(kind_cls, config, workload):
    runtime = kind_cls(config)
    result = runtime.run(workload)
    runtime.check_invariants()
    return result


class TestEndToEnd:
    @pytest.mark.parametrize("app", ["hotspot", "srad", "pagerank", "lavamd"])
    def test_all_runtimes_complete(self, config, app):
        workload = get_workload(app, config)
        for cls in (BamRuntime, HmmRuntime, GMTRuntime):
            result = run(cls, config, workload)
            assert result.elapsed_ns > 0
            assert result.stats.coalesced_accesses > 0

    def test_same_workload_same_accesses_across_runtimes(self, config):
        workload = get_workload("srad", config)
        counts = {
            cls.__name__: run(cls, config, workload).stats.coalesced_accesses
            for cls in (BamRuntime, HmmRuntime, GMTRuntime)
        }
        assert len(set(counts.values())) == 1

    def test_gmt_reuse_reduces_ssd_io_on_high_reuse_apps(self, config):
        for app in ("srad", "backprop", "hotspot"):
            workload = get_workload(app, config)
            bam = run(BamRuntime, config, workload)
            gmt = run(GMTRuntime, config, workload)
            assert gmt.stats.ssd_page_ios < bam.stats.ssd_page_ios, app

    def test_gmt_reuse_faster_than_bam_on_high_reuse_apps(self, config):
        for app in ("srad", "backprop", "hotspot"):
            workload = get_workload(app, config)
            bam = run(BamRuntime, config, workload)
            gmt = run(GMTRuntime, config, workload)
            assert gmt.speedup_over(bam) > 1.05, app

    def test_bam_faster_than_hmm(self, config):
        workload = get_workload("pagerank", config)
        bam = run(BamRuntime, config, workload)
        hmm = run(HmmRuntime, config, workload)
        assert bam.elapsed_ns < hmm.elapsed_ns

    def test_lavamd_roughly_flat(self, config):
        """Low-reuse apps gain little from Tier-2 (section 3.3)."""
        workload = get_workload("lavamd", config)
        bam = run(BamRuntime, config, workload)
        gmt = run(GMTRuntime, config, workload)
        assert 0.7 < gmt.speedup_over(bam) < 2.0

    def test_hotspot_heuristic_engages(self, config):
        """Section 2.2's 80% rule must fire on the all-Tier-3 app."""
        workload = get_workload("hotspot", config)
        gmt = GMTRuntime(config)
        gmt.run(workload)
        assert gmt.stats.forced_t2_placements > 0
        assert gmt.stats.t2_hits > 0

    def test_prediction_machinery_engages_on_iterative_apps(self, config):
        workload = get_workload("backprop", config)
        gmt = GMTRuntime(config)
        gmt.run(workload)
        assert gmt.stats.predictions_made > 0
        assert gmt.stats.resolved_predictions > 0

    def test_hmm_uses_host_fault_concurrency(self, config):
        workload = get_workload("lavamd", config)
        hmm = HmmRuntime(config)
        result = hmm.run(workload)
        expected = result.stats and hmm.cost.fault_concurrency
        assert expected == config.platform.host_fault_concurrency

    def test_runtime_results_stable_across_replays(self, config):
        """Re-running the same workload object gives identical traces."""
        workload = get_workload("sssp", config)
        a = run(GMTRuntime, config, workload)
        b = run(GMTRuntime, config, workload)
        assert a.elapsed_ns == b.elapsed_ns
        assert a.stats.as_dict() == b.stats.as_dict()


class TestCapacitySweeps:
    def test_bigger_tier2_never_hurts_much(self, config):
        from dataclasses import replace

        workload = get_workload("srad", config)
        elapsed = []
        for ratio in (1, 4, 8):
            cfg = replace(config, tier2_frames=config.tier1_frames * ratio)
            elapsed.append(GMTRuntime(cfg).run(workload).elapsed_ns)
        assert elapsed[2] < elapsed[0]

    def test_zero_tier2_equals_bam_behaviour(self, config):
        from dataclasses import replace

        workload = get_workload("pathfinder", config)
        cfg = replace(config, tier2_frames=0, policy="tier-order")
        gmt = GMTRuntime(cfg).run(workload)
        bam = BamRuntime(config).run(workload)
        assert gmt.stats.ssd_page_ios == bam.stats.ssd_page_ios
