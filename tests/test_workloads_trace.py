"""Unit tests for the workload trace framework."""

import pytest

from repro.errors import TraceError
from repro.sim.gpu import WarpAccess, warp_of
from repro.workloads.trace import (
    JitteredWorkload,
    Workload,
    interleave_warps,
    stream_warps,
)


class _ListWorkload(Workload):
    name = "list"

    def __init__(self, warps, footprint_pages=10, seed=0):
        super().__init__(footprint_pages, seed)
        self._warps = warps

    def generate(self):
        return iter(self._warps)


class TestStreamWarps:
    def test_groups_pages(self):
        warps = list(stream_warps(range(5), pages_per_warp=2))
        assert [w.pages for w in warps] == [(0, 1), (2, 3), (4,)]

    def test_write_flag_propagates(self):
        warps = list(stream_warps(range(4), write=True, pages_per_warp=2))
        assert all(w.write for w in warps)

    def test_invalid_group_size(self):
        with pytest.raises(TraceError):
            list(stream_warps(range(4), pages_per_warp=0))
        with pytest.raises(TraceError):
            list(stream_warps(range(4), pages_per_warp=64))

    def test_empty_input(self):
        assert list(stream_warps([])) == []


class TestWorkloadBase:
    def test_reiterable(self):
        w = _ListWorkload([warp_of([1]), warp_of([2])])
        assert list(w) == list(w)

    def test_coalesced_pages(self):
        w = _ListWorkload([WarpAccess(pages=(1, 1, 2)), warp_of([3])])
        assert list(w.coalesced_pages()) == [1, 2, 3]

    def test_invalid_footprint(self):
        with pytest.raises(TraceError):
            _ListWorkload([], footprint_pages=0)


class TestJitteredWorkload:
    def test_preserves_multiset_of_warps(self):
        warps = [warp_of([p]) for p in range(100)]
        jittered = JitteredWorkload(_ListWorkload(warps), window=8)
        out = list(jittered)
        assert sorted(w.pages for w in out) == sorted(w.pages for w in warps)

    def test_early_emission_bounded_by_window(self):
        # A warp cannot be emitted before (window - 1) of its predecessors
        # are buffered; late emission has a geometric tail (like a real
        # scheduler), so only the forward bound is strict.
        warps = [warp_of([p]) for p in range(200)]
        jittered = JitteredWorkload(_ListWorkload(warps), window=10)
        for pos, warp in enumerate(jittered):
            assert warp.pages[0] <= pos + 10

    def test_reordering_actually_happens(self):
        warps = [warp_of([p]) for p in range(200)]
        out = list(JitteredWorkload(_ListWorkload(warps), window=10))
        assert [w.pages[0] for w in out] != list(range(200))

    def test_deterministic(self):
        warps = [warp_of([p]) for p in range(50)]
        a = list(JitteredWorkload(_ListWorkload(warps), window=5))
        b = list(JitteredWorkload(_ListWorkload(warps), window=5))
        assert a == b

    def test_window_one_changes_little(self):
        warps = [warp_of([p]) for p in range(20)]
        out = list(JitteredWorkload(_ListWorkload(warps), window=1))
        assert len(out) == 20

    def test_delegates_metadata(self):
        inner = _ListWorkload([warp_of([1])], footprint_pages=42)
        jittered = JitteredWorkload(inner, window=4)
        assert jittered.footprint_pages == 42
        assert jittered.name == "list"

    def test_invalid_window(self):
        with pytest.raises(TraceError):
            JitteredWorkload(_ListWorkload([]), window=0)


class TestInterleaveWarps:
    def test_round_robin(self):
        a = [warp_of([1]), warp_of([2])]
        b = [warp_of([10]), warp_of([20]), warp_of([30])]
        merged = list(interleave_warps([iter(a), iter(b)]))
        assert [w.pages[0] for w in merged] == [1, 10, 2, 20, 30]

    def test_empty_streams(self):
        assert list(interleave_warps([])) == []
        assert list(interleave_warps([iter([])])) == []
