"""Small-scale tests of the extension studies."""

import pytest

from repro.experiments import extensions

SCALE = 4096


class TestOracleGap:
    @pytest.fixture(scope="class")
    def result(self):
        return extensions.run_oracle_gap(scale=SCALE)

    def test_structure(self, result):
        assert result.name == "ext-oracle"
        assert len(result.rows) == len(extensions.ORACLE_APPS) + 1

    def test_gaps_reasonable(self, result):
        for app, gap in result.extras["gaps"].items():
            assert 0.5 < gap < 2.5, app


class TestSsdScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return extensions.run_ssd_scaling(scale=SCALE)

    def test_monotone_decline(self, result):
        means = result.extras["means"]
        counts = sorted(means)
        for a, b in zip(counts, counts[1:]):
            assert means[b] <= means[a] * 1.05

    def test_single_ssd_benefits(self, result):
        assert result.extras["means"][1] > 1.1


class TestPrefetchStudy:
    def test_prefetch_never_helps_bandwidth_bound(self):
        result = extensions.run_prefetch_study(scale=SCALE)
        for app, ratio in result.extras["time_ratios"].items():
            assert ratio >= 0.9, app


class TestModelValidation:
    def test_models_agree_on_bandwidth_bound_platform(self):
        result = extensions.run_model_validation(scale=SCALE)
        for app, ratio in result.extras["ratios"].items():
            assert 0.8 <= ratio <= 1.25, app


class TestRunAll:
    def test_run_returns_all_studies(self):
        from repro.experiments.spec import run_spec

        results = run_spec(extensions.SPEC, scale=8192)
        assert [r.name for r in results] == [
            "ext-oracle",
            "ext-ssd-scaling",
            "ext-prefetch",
            "ext-model-validation",
        ]
