"""Unit tests for the RMAT generator, CSR builder, and page layout."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads.kron import (
    CSRGraph,
    GraphPageMap,
    build_csr,
    rmat_csr,
    rmat_edges,
)


class TestRmatEdges:
    def test_edge_count(self):
        edges = rmat_edges(scale=8, edge_factor=4, seed=1)
        assert edges.shape == (4 * 256, 2)

    def test_endpoints_in_range(self):
        edges = rmat_edges(scale=8, edge_factor=4, seed=1)
        assert edges.min() >= 0
        assert edges.max() < 256

    def test_deterministic(self):
        a = rmat_edges(scale=6, seed=9)
        b = rmat_edges(scale=6, seed=9)
        assert np.array_equal(a, b)

    def test_seed_changes_graph(self):
        a = rmat_edges(scale=6, seed=1)
        b = rmat_edges(scale=6, seed=2)
        assert not np.array_equal(a, b)

    def test_power_law_skew(self):
        """RMAT with Graph500 parameters has heavy-hitter vertices."""
        edges = rmat_edges(scale=10, edge_factor=16, seed=0)
        degrees = np.bincount(edges[:, 0], minlength=1024)
        top = np.sort(degrees)[::-1]
        # The top 1% of vertices should hold far more than 1% of edges.
        assert top[:10].sum() > 0.05 * degrees.sum()

    def test_validation(self):
        with pytest.raises(TraceError):
            rmat_edges(scale=0)
        with pytest.raises(TraceError):
            rmat_edges(scale=5, edge_factor=0)
        with pytest.raises(TraceError):
            rmat_edges(scale=5, a=0.9, b=0.2, c=0.2)


class TestBuildCsr:
    def test_small_graph(self):
        edges = np.array([[0, 1], [0, 2], [2, 1], [1, 0]])
        g = build_csr(edges, num_vertices=3)
        assert g.num_vertices == 3
        assert g.num_edges == 4
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert g.neighbors(1).tolist() == [0]
        assert g.out_degree(2) == 1

    def test_vertex_without_edges(self):
        g = build_csr(np.array([[0, 1]]), num_vertices=4)
        assert g.out_degree(3) == 0

    def test_offsets_are_monotonic(self):
        g = rmat_csr(scale=7, edge_factor=8, seed=3)
        assert np.all(np.diff(g.offsets) >= 0)
        assert g.offsets[-1] == g.num_edges

    def test_out_of_range_rejected(self):
        with pytest.raises(TraceError):
            build_csr(np.array([[0, 5]]), num_vertices=3)

    def test_bad_shape_rejected(self):
        with pytest.raises(TraceError):
            build_csr(np.array([1, 2, 3]), num_vertices=3)


class TestGraphPageMap:
    @pytest.fixture
    def pages(self):
        return GraphPageMap(
            num_vertices=100,
            num_edges=1000,
            vertices_per_page=10,
            edges_per_page=100,
            num_property_arrays=2,
        )

    def test_page_counts(self, pages):
        assert pages.vertex_array_pages == 10
        assert pages.edge_pages == 10
        assert pages.total_pages == 30

    def test_vertex_page(self, pages):
        assert pages.vertex_page(0) == 0
        assert pages.vertex_page(9) == 0
        assert pages.vertex_page(10) == 1
        assert pages.vertex_page(0, array=1) == 10

    def test_edge_page(self, pages):
        assert pages.edge_page(0) == 20
        assert pages.edge_page(999) == 29

    def test_array_out_of_range(self, pages):
        with pytest.raises(TraceError):
            pages.vertex_page(0, array=2)

    def test_vertex_pages_array(self, pages):
        result = pages.vertex_pages_array(np.array([0, 5, 10, 95]))
        assert result.tolist() == [0, 1, 9]

    def test_edge_pages_for_ranges(self, pages):
        result = pages.edge_pages_for_ranges(
            np.array([0, 250]), np.array([150, 260])
        )
        assert result.tolist() == [20, 21, 22]

    def test_edge_pages_empty_frontier(self, pages):
        assert len(pages.edge_pages_for_ranges(np.array([]), np.array([]))) == 0

    def test_rounding_up(self):
        pages = GraphPageMap(
            num_vertices=101, num_edges=1001, vertices_per_page=10, edges_per_page=100
        )
        assert pages.vertex_array_pages == 11
        assert pages.edge_pages == 11

    def test_validation(self):
        with pytest.raises(TraceError):
            GraphPageMap(10, 10, vertices_per_page=0, edges_per_page=1)
        with pytest.raises(TraceError):
            GraphPageMap(10, 10, 1, 1, num_property_arrays=0)
