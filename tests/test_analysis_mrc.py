"""Unit tests for miss-ratio curves and analytic tier planning."""

import pytest

from repro.analysis.mrc import miss_ratio_curve
from repro.errors import TraceError
from repro.sim.gpu import WarpAccess
from repro.sim.latency import PlatformModel
from repro.workloads.trace import Workload


class _PagesWorkload(Workload):
    name = "pages"

    def __init__(self, pages):
        super().__init__(max(pages) + 1, 0)
        self._pages = pages

    def generate(self):
        for p in self._pages:
            yield WarpAccess(pages=(p,))


def sweep(footprint, repeats):
    return _PagesWorkload(list(range(footprint)) * repeats)


class TestMissRatioCurve:
    def test_sweep_step_function(self):
        # 3 sweeps over 10 pages: all 20 reuses at RD 9.  LRU hits them
        # iff capacity >= 10.
        mrc = miss_ratio_curve(sweep(10, 3))
        assert mrc.total_accesses == 30
        assert mrc.cold_accesses == 10
        assert mrc.hit_ratio(9) == 0.0
        assert mrc.hit_ratio(10) == pytest.approx(20 / 30)
        assert mrc.hit_ratio(1000) == pytest.approx(20 / 30)

    def test_miss_plus_hit_is_one(self):
        mrc = miss_ratio_curve(sweep(5, 4))
        for c in (0, 1, 5, 10):
            assert mrc.hit_ratio(c) + mrc.miss_ratio(c) == pytest.approx(1.0)

    def test_zero_capacity_never_hits(self):
        mrc = miss_ratio_curve(sweep(5, 2))
        assert mrc.hits_at(0) == 0

    def test_monotone_in_capacity(self):
        mrc = miss_ratio_curve(_PagesWorkload([0, 1, 2, 0, 3, 1, 4, 0, 2, 5]))
        ratios = [mrc.miss_ratio(c) for c in range(0, 8)]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_matches_simulated_lru(self):
        """MRC prediction equals an actual LRU simulation at every size."""
        import random
        from collections import OrderedDict

        rng = random.Random(5)
        pages = [rng.randrange(12) for _ in range(400)]
        mrc = miss_ratio_curve(_PagesWorkload(pages))
        for capacity in (1, 2, 4, 8, 12):
            lru: OrderedDict[int, None] = OrderedDict()
            hits = 0
            for p in pages:
                if p in lru:
                    hits += 1
                    lru.move_to_end(p)
                else:
                    if len(lru) >= capacity:
                        lru.popitem(last=False)
                    lru[p] = None
            assert mrc.hits_at(capacity) == hits, capacity

    def test_curve_points(self):
        mrc = miss_ratio_curve(sweep(4, 3))
        points = mrc.curve([2, 4])
        assert points[0][1] > points[1][1]

    def test_empty_trace_rejected(self):
        class Empty(Workload):
            name = "empty"

            def generate(self):
                return iter(())

        with pytest.raises(TraceError):
            miss_ratio_curve(Empty(footprint_pages=1))


class TestCapacityPlanning:
    def test_capacity_for_hit_ratio(self):
        mrc = miss_ratio_curve(sweep(10, 3))
        # 20/30 hits achievable, needs capacity 10.
        assert mrc.capacity_for_hit_ratio(0.5) == 10
        assert mrc.capacity_for_hit_ratio(20 / 30) == 10

    def test_unachievable_target(self):
        mrc = miss_ratio_curve(sweep(10, 3))
        assert mrc.capacity_for_hit_ratio(0.9) is None

    def test_target_validation(self):
        mrc = miss_ratio_curve(sweep(4, 2))
        with pytest.raises(ValueError):
            mrc.capacity_for_hit_ratio(1.5)

    def test_tier_hit_fractions_sum_to_one(self):
        mrc = miss_ratio_curve(sweep(10, 4))
        t1, t2, miss = mrc.tier_hit_fractions(4, 8)
        assert t1 + t2 + miss == pytest.approx(1.0)

    def test_expected_fault_ns_decreases_with_tier2(self):
        mrc = miss_ratio_curve(sweep(10, 4))
        platform = PlatformModel()
        small = mrc.expected_fault_ns(4, 2, platform)
        large = mrc.expected_fault_ns(4, 16, platform)
        assert large <= small

    def test_expected_fault_matches_hand_computation(self):
        mrc = miss_ratio_curve(sweep(10, 3))
        platform = PlatformModel()
        # Capacity 4 + 6 = 10: all reuses are Tier-2 band hits.
        t1, t2, miss = mrc.tier_hit_fractions(4, 6)
        assert t1 == 0.0
        expected = t2 * (
            platform.tier2_lookup_ns + platform.host_fetch_latency_ns
        ) + miss * platform.ssd_read_latency_ns
        assert mrc.expected_fault_ns(4, 6, platform) == pytest.approx(expected)
