"""Unit tests for the 3-state Markov-chain tier predictor (Fig. 5)."""

from repro.reuse.classifier import ReuseClass
from repro.reuse.markov import MarkovTierPredictor

S, M, L = ReuseClass.SHORT, ReuseClass.MEDIUM, ReuseClass.LONG


class TestMarkovTierPredictor:
    def test_no_history_predicts_none(self):
        p = MarkovTierPredictor()
        assert p.predict(None) is None

    def test_state_without_outgoing_weight_predicts_none(self):
        p = MarkovTierPredictor()
        p.record_transition(M, L)
        assert p.predict(S) is None  # S row is empty

    def test_learns_constant_pattern(self):
        # Figure 4(b): same tier at every eviction -> self-loop dominates.
        p = MarkovTierPredictor()
        for _ in range(5):
            p.record_transition(M, M)
        assert p.predict(M) is M

    def test_learns_alternating_pattern(self):
        # Figure 4(c): tiers alternate M <-> L; a 1-level history cannot
        # capture this, the 2-level transition weights can.
        p = MarkovTierPredictor()
        for _ in range(5):
            p.record_transition(M, L)
            p.record_transition(L, M)
        assert p.predict(M) is L
        assert p.predict(L) is M

    def test_majority_wins(self):
        p = MarkovTierPredictor()
        for _ in range(3):
            p.record_transition(S, M)
        p.record_transition(S, L)
        assert p.predict(S) is M

    def test_tie_breaks_toward_nearer_tier(self):
        p = MarkovTierPredictor()
        p.record_transition(S, M)
        p.record_transition(S, L)
        assert p.predict(S) is M

    def test_updates_counter(self):
        p = MarkovTierPredictor()
        p.record_transition(S, S)
        p.record_transition(M, L)
        assert p.updates == 2

    def test_weight_accessor(self):
        p = MarkovTierPredictor()
        p.record_transition(M, L)
        p.record_transition(M, L)
        assert p.weight(M, L) == 2
        assert p.weight(L, M) == 0

    def test_snapshot(self):
        p = MarkovTierPredictor()
        p.record_transition(M, L)
        snap = p.snapshot()
        assert snap["MEDIUM"]["LONG"] == 1
        assert snap["SHORT"]["SHORT"] == 0
        # Snapshot is a copy.
        snap["MEDIUM"]["LONG"] = 99
        assert p.weight(M, L) == 1
