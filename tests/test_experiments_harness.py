"""Unit tests for the experiment harness (configs, caching, runtimes)."""

import pytest

from repro.baselines.bam import BamRuntime
from repro.baselines.hmm import HmmRuntime
from repro.core.runtime import GMTRuntime
from repro.errors import ConfigError
from repro.experiments.harness import (
    ExperimentResult,
    RUNTIME_KINDS,
    RUNTIME_LABELS,
    app_label,
    build_runtime,
    default_config,
    get_workload,
    run_app,
    run_app_with_footprint,
    run_matrix,
)


@pytest.fixture
def tiny_config():
    # Scale 8192 -> Tier-1 = 32 frames, Tier-2 = 128, footprint = 320.
    return default_config(scale=8192)


class TestDefaultConfig:
    def test_scaled_geometry(self, tiny_config):
        assert tiny_config.tier1_frames == 32
        assert tiny_config.tier2_frames == 128

    def test_sampling_scales_with_tier1(self, tiny_config):
        assert tiny_config.sample_target == max(1000, 32 * 20)

    def test_default_scale(self):
        cfg = default_config()
        assert cfg.tier1_frames == 1024


class TestBuildRuntime:
    def test_kinds(self, tiny_config):
        assert isinstance(build_runtime("bam", tiny_config), BamRuntime)
        assert isinstance(build_runtime("hmm", tiny_config), HmmRuntime)
        gmt = build_runtime("reuse", tiny_config)
        assert isinstance(gmt, GMTRuntime)
        assert gmt.policy.name == "reuse"

    def test_unknown_kind(self, tiny_config):
        with pytest.raises(ConfigError):
            build_runtime("belady", tiny_config)

    def test_labels_cover_kinds(self):
        assert set(RUNTIME_LABELS) == set(RUNTIME_KINDS)


class TestCaching:
    def test_workload_cached(self, tiny_config):
        a = get_workload("hotspot", tiny_config)
        b = get_workload("hotspot", tiny_config)
        assert a is b

    def test_workload_cache_distinguishes_kwargs(self, tiny_config):
        a = get_workload("hotspot", tiny_config)
        b = get_workload("hotspot", tiny_config, jitter_warps=0)
        assert a is not b

    def test_run_cached(self, tiny_config):
        a = run_app("lavamd", "bam", tiny_config)
        b = run_app("lavamd", "bam", tiny_config)
        assert a is b

    def test_run_cache_distinguishes_kind(self, tiny_config):
        a = run_app("lavamd", "bam", tiny_config)
        b = run_app("lavamd", "reuse", tiny_config)
        assert a is not b


class TestRunMatrix:
    def test_shape(self, tiny_config):
        matrix = run_matrix(tiny_config, apps=("lavamd", "pathfinder"), kinds=("bam", "reuse"))
        assert set(matrix) == {"lavamd", "pathfinder"}
        assert set(matrix["lavamd"]) == {"bam", "reuse"}
        assert matrix["lavamd"]["bam"].elapsed_ns > 0

    def test_same_trace_for_all_kinds(self, tiny_config):
        matrix = run_matrix(tiny_config, apps=("pathfinder",), kinds=("bam", "reuse"))
        runs = matrix["pathfinder"]
        assert (
            runs["bam"].stats.coalesced_accesses
            == runs["reuse"].stats.coalesced_accesses
        )


class TestRunAppWithFootprint:
    def test_explicit_footprint(self, tiny_config):
        small = run_app_with_footprint("hotspot", "bam", tiny_config, 200)
        large = run_app_with_footprint("hotspot", "bam", tiny_config, 400)
        assert (
            large.stats.coalesced_accesses > small.stats.coalesced_accesses
        )


class TestExperimentResult:
    def test_to_text(self):
        res = ExperimentResult(
            name="figX",
            title="Figure X",
            headers=["app", "v"],
            rows=[["a", 1.0]],
            notes=["hello"],
        )
        text = res.to_text()
        assert "Figure X" in text
        assert "note: hello" in text


class TestAppLabel:
    def test_labels(self):
        assert app_label("lavamd") == "LavaMD"
        assert app_label("multivectoradd") == "MultiVectorAdd"
