"""Shared fixtures: tiny configs and traces that keep tests fast."""

from __future__ import annotations

import random

import pytest

from repro.core.config import GMTConfig
from repro.experiments import harness
from repro.sim.gpu import WarpAccess


@pytest.fixture(autouse=True)
def _clear_harness_caches():
    """Experiment caches are process-global; isolate tests from each other."""
    harness.clear_caches()
    yield
    harness.clear_caches()


@pytest.fixture(autouse=True)
def _isolate_run_ledger(tmp_path, monkeypatch):
    """CLI mains append to the run ledger; never let tests touch the
    committed benchmarks/results/ledger.jsonl."""
    from repro.obs.ledger import LEDGER_ENV_VAR

    monkeypatch.setenv(LEDGER_ENV_VAR, str(tmp_path / "ledger.jsonl"))


@pytest.fixture
def small_config() -> GMTConfig:
    """A tiny 3-tier geometry (Tier-2 = 4 x Tier-1, as in the paper)."""
    return GMTConfig(
        tier1_frames=16,
        tier2_frames=64,
        sample_target=200,
        sample_batch=50,
        tier3_bias_window=16,
    )


@pytest.fixture
def medium_config() -> GMTConfig:
    """Big enough for policies to differentiate, small enough to be quick."""
    return GMTConfig(
        tier1_frames=64,
        tier2_frames=256,
        sample_target=2_000,
        sample_batch=500,
        tier3_bias_window=32,
    )


def random_trace(
    num_warps: int,
    footprint: int,
    seed: int = 0,
    write_fraction: float = 0.3,
    lanes: int = 2,
) -> list[WarpAccess]:
    """A reproducible random warp trace (uniform page draws)."""
    rng = random.Random(seed)
    trace = []
    for _ in range(num_warps):
        pages = tuple(rng.randrange(footprint) for _ in range(lanes))
        trace.append(WarpAccess(pages=pages, write=rng.random() < write_fraction))
    return trace


def sweep_trace(footprint: int, repeats: int = 1, write: bool = False) -> list[WarpAccess]:
    """Sequential sweeps over the whole footprint."""
    return [
        WarpAccess(pages=(p,), write=write)
        for _ in range(repeats)
        for p in range(footprint)
    ]
