"""Failure injection: corrupted state must be *detected*, not absorbed.

A simulator that silently tolerates impossible states produces plausible
garbage; these tests corrupt runtime state in targeted ways and assert
the invariant checker (or the operation itself) catches it.
"""

import pytest

from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from repro.errors import CapacityError, PageStateError, SimulationError
from repro.mem.page import PageLocation


def make_runtime(tier1=4, tier2=8):
    cfg = GMTConfig(
        tier1_frames=tier1,
        tier2_frames=tier2,
        policy="tier-order",
        sample_target=50,
        sample_batch=10,
    )
    rt = GMTRuntime(cfg)
    for p in range(6):
        rt.access(p)
    rt.check_invariants()
    return rt


class TestInvariantDetection:
    def test_clean_runtime_passes(self):
        make_runtime()  # check_invariants inside

    def test_location_mismatch_detected(self):
        rt = make_runtime()
        page = next(iter(rt.tier1))
        rt.page_table.lookup(page).location = PageLocation.TIER3
        with pytest.raises(SimulationError):
            rt.check_invariants()

    def test_cross_tier_duplication_detected(self):
        rt = make_runtime()
        t2_page = next(iter(rt.tier2))
        # Force the page into Tier-1's membership as well.
        rt.tier1.remove(next(iter(rt.tier1)))
        rt.tier1.insert(t2_page)
        with pytest.raises(SimulationError):
            rt.check_invariants()

    def test_phantom_tier2_resident_detected(self):
        rt = make_runtime()
        phantom = 999
        rt.tier2.insert(phantom)
        # The page table says TIER3; membership says TIER2.
        with pytest.raises(SimulationError):
            rt.check_invariants()


class TestOperationLevelGuards:
    def test_double_insert_rejected_by_tier(self):
        rt = make_runtime()
        page = next(iter(rt.tier1))
        with pytest.raises(PageStateError):
            rt.tier1.insert(page)

    def test_overfill_rejected_by_tier(self):
        rt = make_runtime(tier1=4)
        assert rt.tier1.full
        with pytest.raises(CapacityError):
            rt.tier1.insert(12345)

    def test_clock_and_tier_stay_in_sync(self):
        rt = make_runtime()
        assert set(rt.t1_clock.pages()) == set(rt.tier1)

    def test_dirty_flag_never_set_on_nonresident(self):
        rt = make_runtime()
        for state in rt.page_table:
            if state.location is PageLocation.TIER3:
                assert not state.dirty

    def test_malformed_warp_rejected_before_any_state_change(self):
        from repro.errors import TraceError
        from repro.sim.gpu import WarpAccess

        rt = make_runtime()
        accesses = rt.stats.coalesced_accesses
        with pytest.raises(TraceError):
            rt.access_warp(WarpAccess(pages=()))
        assert rt.stats.coalesced_accesses == accesses

    def test_negative_page_rejected(self):
        rt = make_runtime()
        with pytest.raises(ValueError):
            rt.access(-1)


class TestStatsConsistencyAfterLongRuns:
    @pytest.mark.parametrize("policy", ["tier-order", "random", "reuse", "dueling"])
    def test_ledgers_balance(self, policy):
        import random

        cfg = GMTConfig(
            tier1_frames=8,
            tier2_frames=16,
            policy=policy,
            sample_target=100,
            sample_batch=20,
        )
        rt = GMTRuntime(cfg)
        rng = random.Random(11)
        for _ in range(2000):
            rt.access(rng.randrange(80), write=rng.random() < 0.4)
        rt.check_invariants()
        s = rt.stats
        assert s.t1_hits + s.t1_misses == s.coalesced_accesses
        assert s.t1_misses == s.t2_hits + s.ssd_page_reads
        # Every page currently in Tier-2 was placed and not yet fetched
        # back or evicted out.
        assert len(rt.tier2) == s.t2_placements - s.t2_fetches - s.t2_evictions - (
            0
        ) - _tier2_discards(s)


def _tier2_discards(stats):
    """Pages that left Tier-2 without fetch or FIFO eviction (none today;
    kept explicit so the balance equation is auditable)."""
    return 0
