"""Unit tests for the metrics registry (repro.obs.metrics)."""

import math

import pytest

from repro.core.stats import RuntimeStats
from repro.errors import ConfigError
from repro.obs.metrics import (
    BoundCounter,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    linear_buckets,
    log_buckets,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("gmt_things")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_monotonic(self):
        c = Counter("gmt_things")
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_name_validation(self):
        with pytest.raises(ConfigError):
            Counter("bad name")
        with pytest.raises(ConfigError):
            Counter("0leading")


class TestBoundCounter:
    def test_reads_host_attribute_live(self):
        stats = RuntimeStats()
        c = BoundCounter("gmt_t1_hits", stats, "t1_hits")
        assert c.value == 0
        stats.t1_hits += 7
        assert c.value == 7

    def test_missing_attribute_rejected(self):
        with pytest.raises(ConfigError):
            BoundCounter("gmt_nope", RuntimeStats(), "no_such_field")

    def test_inc_is_read_only(self):
        c = BoundCounter("gmt_t1_hits", RuntimeStats(), "t1_hits")
        with pytest.raises(ConfigError):
            c.inc()


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("gmt_depth")
        g.set(3.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 2.0

    def test_callback_backed(self):
        box = {"v": 10}
        g = Gauge("gmt_occupancy", fn=lambda: box["v"])
        assert g.value == 10
        box["v"] = 12
        assert g.value == 12
        with pytest.raises(ConfigError):
            g.set(1.0)


class TestBuckets:
    def test_log_buckets(self):
        assert log_buckets(1.0, 2.0, 4) == [1.0, 2.0, 4.0, 8.0]
        with pytest.raises(ConfigError):
            log_buckets(0.0, 2.0, 4)
        with pytest.raises(ConfigError):
            log_buckets(1.0, 1.0, 4)

    def test_linear_buckets(self):
        assert linear_buckets(0.1, 0.1, 3) == pytest.approx([0.1, 0.2, 0.3])
        with pytest.raises(ConfigError):
            linear_buckets(0.0, 0.0, 3)


class TestHistogram:
    def test_basic_accounting(self):
        h = Histogram("gmt_lat", buckets=[1.0, 10.0, 100.0])
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        assert h.min == 0.5
        assert h.max == 500.0
        assert h.mean == pytest.approx(555.5 / 4)

    def test_cumulative_buckets_end_at_inf(self):
        h = Histogram("gmt_lat", buckets=[1.0, 10.0])
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)  # overflow
        counts = h.bucket_counts()
        assert counts == [(1.0, 1), (10.0, 2), (math.inf, 3)]

    def test_boundary_lands_in_its_bucket(self):
        # Prometheus semantics: le is inclusive.
        h = Histogram("gmt_lat", buckets=[10.0, 100.0])
        h.observe(10.0)
        assert h.bucket_counts()[0] == (10.0, 1)

    def test_quantile_coarse(self):
        h = Histogram("gmt_lat", buckets=[1.0, 2.0, 4.0, 8.0])
        for _ in range(9):
            h.observe(1.5)  # -> le=2 bucket
        h.observe(7.0)  # -> le=8 bucket
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 8.0
        assert Histogram("gmt_empty").quantile(0.5) == 0.0
        with pytest.raises(ConfigError):
            h.quantile(1.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigError):
            Histogram("gmt_lat", buckets=[10.0, 1.0])


class TestMetricsRegistry:
    def test_same_name_same_type_dedupes(self):
        reg = MetricsRegistry()
        a = reg.counter("gmt_x")
        b = reg.counter("gmt_x")
        assert a is b
        assert len(reg) == 1

    def test_same_name_different_type_rejected(self):
        reg = MetricsRegistry()
        reg.counter("gmt_x")
        with pytest.raises(ConfigError):
            reg.gauge("gmt_x")

    def test_get_unknown(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().get("gmt_missing")

    def test_contains_and_names(self):
        reg = MetricsRegistry()
        reg.counter("gmt_a")
        reg.gauge("gmt_b")
        assert "gmt_a" in reg and "gmt_c" not in reg
        assert reg.names() == ["gmt_a", "gmt_b"]

    def test_snapshot_flattens_histograms(self):
        reg = MetricsRegistry()
        reg.counter("gmt_c").inc(3)
        h = reg.histogram("gmt_h", buckets=[1.0, 10.0])
        h.observe(5.0)
        snap = reg.snapshot()
        assert snap["gmt_c"] == 3
        assert snap["gmt_h_count"] == 1
        assert snap["gmt_h_sum"] == 5.0
        assert "gmt_h_p50" in snap and "gmt_h_p99" in snap


class TestStatsBinding:
    def test_bound_registry_mirrors_every_counter(self):
        stats = RuntimeStats()
        reg = stats.bind_registry(None)
        stats.t1_hits += 3
        stats.ssd_page_reads += 2
        assert reg.get("gmt_t1_hits").value == 3
        assert reg.get("gmt_ssd_page_reads").value == 2

    def test_bound_registry_covers_fields_and_properties(self):
        stats = RuntimeStats()
        reg = stats.bind_registry(None)
        for name in RuntimeStats.counter_names():
            assert f"gmt_{name}" in reg
        for name in RuntimeStats.EXPORTED_PROPERTIES:
            assert f"gmt_{name}" in reg

    def test_derived_rates_are_gauges(self):
        stats = RuntimeStats(t1_hits=3, t1_misses=1)
        reg = stats.bind_registry(None)
        assert reg.get("gmt_t1_hit_rate").value == 0.75


class TestTenantLabelledSeries:
    """Multi-tenant export: one Prometheus series per tenant per counter."""

    def test_const_tenant_labels_keep_series_distinct(self):
        from repro.obs.export import prometheus_text

        slices = {"bfs": RuntimeStats(), "pagerank": RuntimeStats()}
        slices["bfs"].t1_hits = 3
        slices["pagerank"].t1_hits = 9
        registries = [
            stats.bind_registry(MetricsRegistry(const_labels={"tenant": name}))
            for name, stats in slices.items()
        ]
        text = prometheus_text(registries)
        assert 'gmt_t1_hits_total{tenant="bfs"} 3' in text
        assert 'gmt_t1_hits_total{tenant="pagerank"} 9' in text
        # One shared header, two samples.
        assert text.count("# TYPE gmt_t1_hits_total counter") == 1

    def test_server_registries_export_distinct_series(self):
        from repro.experiments.harness import default_config
        from repro.obs.export import prometheus_text
        from repro.serve import TenantServer, build_tenants

        config = default_config(8192)
        streams = build_tenants(["hotspot", "pathfinder"], config)
        server = TenantServer(config, streams)
        server.run(solo_baselines=False)
        text = prometheus_text(server.tenant_registries())
        assert 'tenant="hotspot"' in text
        assert 'tenant="pathfinder"' in text
        # Both tenants sample the same counter on their own series.
        hits = [
            line
            for line in text.splitlines()
            if line.startswith("gmt_coalesced_accesses_total{")
        ]
        assert len(hits) == 2
        assert len({line.split(" ")[0] for line in hits}) == 2
