"""Tests for the differential/metamorphic harness (repro.check.differential)."""

import pytest

from repro.check.differential import (
    DEFAULT_RUNTIMES,
    INJECTIONS,
    check_degenerate_bam,
    check_determinism,
    check_solo_serve,
    run_conformance,
)
from repro.errors import ConfigError
from repro.experiments.harness import default_config, get_workload

SCALE = 8192


class TestRunConformance:
    def test_clean_run_is_ok(self):
        report = run_conformance("hotspot", scale=SCALE)
        assert report.ok
        assert {run.kind for run in report.runs} == set(DEFAULT_RUNTIMES)
        assert "cross-runtime-trace" in report.checks_run
        assert "metamorphic-degenerate-bam" in report.checks_run
        assert "metamorphic-determinism" in report.checks_run
        assert "metamorphic-solo-serve" in report.checks_run

    def test_prefetch_and_queueing_clean(self):
        report = run_conformance(
            "bfs",
            scale=SCALE,
            prefetch_degree=2,
            time_model="queueing",
            metamorphic=False,
            serve=False,
        )
        assert report.ok

    def test_periodic_checks_wired(self):
        report = run_conformance(
            "hotspot", scale=SCALE, check_every=200, metamorphic=False, serve=False
        )
        assert report.ok

    def test_flags_prune_checks(self):
        report = run_conformance(
            "hotspot", scale=SCALE, metamorphic=False, serve=False
        )
        assert "metamorphic-determinism" not in report.checks_run
        assert "metamorphic-solo-serve" not in report.checks_run

    def test_summary_lines_render(self):
        report = run_conformance(
            "hotspot", scale=SCALE, metamorphic=False, serve=False
        )
        text = "\n".join(report.summary_lines())
        assert "OK" in text or "ok" in text


class TestInjections:
    @pytest.mark.parametrize("fault", sorted(INJECTIONS))
    def test_every_injection_detected(self, fault):
        # ghost-leak corrupts the S3-FIFO ghost queue, so one has to be
        # in the matrix for that fault; vector-desync corrupts the dense
        # SoA location array, so the replay has to run on the vector engine.
        extra = {"tier1_policy": "s3fifo"} if fault == "ghost-leak" else {}
        if fault == "vector-desync":
            extra = {"engine": "vector"}
        report = run_conformance(
            "hotspot",
            scale=SCALE,
            inject=fault,
            metamorphic=False,
            serve=False,
            **extra,
        )
        assert not report.ok
        assert report.injected
        assert report.violations

    def test_unknown_injection_rejected(self):
        with pytest.raises(ConfigError):
            run_conformance("hotspot", scale=SCALE, inject="not-a-fault")

    def test_dup_resident_needs_tier2(self):
        with pytest.raises(ConfigError):
            run_conformance(
                "hotspot",
                scale=SCALE,
                runtimes=("bam",),
                inject="dup-resident",
                metamorphic=False,
                serve=False,
            )


class TestMetamorphicChecks:
    def test_degenerate_bam_identity_holds(self):
        config = default_config(SCALE)
        workload = get_workload("hotspot", config, seed=0)
        assert check_degenerate_bam(config, workload) == []

    def test_determinism_holds(self):
        config = default_config(SCALE)
        workload = get_workload("hotspot", config, seed=0)
        assert check_determinism("reuse", config, workload) == []

    def test_solo_serve_holds(self):
        config = default_config(SCALE)
        assert check_solo_serve("bfs", config, 2.0, 0) == []
