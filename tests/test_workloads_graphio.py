"""Unit tests for edge-list graph I/O and graph injection."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads.bfs import BFSWorkload
from repro.workloads.graphio import load_csr, load_edge_list, save_edge_list
from repro.workloads.kron import rmat_edges
from repro.workloads.pagerank import PageRankWorkload


class TestLoadEdgeList:
    def test_basic(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n0 1\n1 2\n2 0\n")
        edges = load_edge_list(path)
        assert edges.tolist() == [[0, 1], [1, 2], [2, 0]]

    def test_comma_and_percent_comments(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("% MatrixMarket-ish\n0,1\n1,0\n")
        edges = load_edge_list(path)
        assert edges.shape == (2, 2)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("\n0 1\n\n1 0\n\n")
        assert len(load_edge_list(path)) == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_edge_list(tmp_path / "none.txt")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\njust-one-token\n")
        with pytest.raises(TraceError):
            load_edge_list(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 x\n")
        with pytest.raises(TraceError):
            load_edge_list(path)

    def test_negative_id(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 -1\n")
        with pytest.raises(TraceError):
            load_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# only comments\n")
        with pytest.raises(TraceError):
            load_edge_list(path)


class TestSaveRoundtrip:
    def test_roundtrip(self, tmp_path):
        edges = rmat_edges(scale=6, edge_factor=4, seed=2)
        path = tmp_path / "g.txt"
        save_edge_list(edges, path, header="RMAT scale 6")
        loaded = load_edge_list(path)
        assert np.array_equal(loaded, edges)

    def test_bad_shape(self, tmp_path):
        with pytest.raises(TraceError):
            save_edge_list(np.array([1, 2, 3]), tmp_path / "g.txt")


class TestLoadCsr:
    def test_infers_vertex_count(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 5\n5 0\n")
        graph = load_csr(path)
        assert graph.num_vertices == 6
        assert graph.num_edges == 2

    def test_explicit_vertex_count(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        graph = load_csr(path, num_vertices=10)
        assert graph.num_vertices == 10


class TestGraphInjection:
    @pytest.fixture
    def csr(self, tmp_path):
        edges = rmat_edges(scale=8, edge_factor=8, seed=4)
        path = tmp_path / "g.txt"
        save_edge_list(edges, path)
        return load_csr(path, num_vertices=256)

    def test_footprint_follows_graph(self, csr):
        w = PageRankWorkload(footprint_pages=0, graph=csr)
        assert w.footprint_pages == w.page_map.total_pages
        assert w.graph is csr

    def test_workload_runs_on_injected_graph(self, csr):
        w = BFSWorkload(footprint_pages=0, graph=csr)
        warps = list(w)
        assert warps
        pages = {p for warp in warps for p in warp.pages}
        assert max(pages) < w.footprint_pages

    def test_injected_graph_end_to_end(self, csr):
        from repro.core.config import GMTConfig
        from repro.core.runtime import GMTRuntime

        w = PageRankWorkload(footprint_pages=0, iterations=2, graph=csr)
        cfg = GMTConfig(
            tier1_frames=max(4, w.footprint_pages // 10),
            tier2_frames=max(8, w.footprint_pages // 3),
            sample_target=200,
            sample_batch=50,
        )
        rt = GMTRuntime(cfg)
        result = rt.run(w)
        rt.check_invariants()
        assert result.stats.coalesced_accesses > 0
