"""Engine, cache, spec-protocol and CLI-wiring tests (the ISSUE's tier)."""

import pickle

import pytest

from repro.experiments import fig9
from repro.experiments.engine import (
    _MISS,
    Cell,
    Engine,
    ResultCache,
    cell_key,
    engine_registry,
    run_cells,
)
from repro.experiments.harness import (
    ExperimentResult,
    default_config,
    replay,
)
from repro.experiments.spec import CellResults, ExperimentSpec, run_spec
from repro.errors import ConfigError

SCALE = 8192


# ----------------------------------------------------------------------
# Cell identity and keys
# ----------------------------------------------------------------------
class TestCellKeys:
    def test_same_spec_same_key(self):
        a = replay("srad", "reuse", default_config(SCALE))
        b = replay("srad", "reuse", default_config(SCALE))
        assert a == b
        assert cell_key(a) == cell_key(b)

    def test_config_change_changes_key(self):
        a = replay("srad", "reuse", default_config(SCALE))
        b = replay("srad", "reuse", default_config(SCALE * 2))
        assert a != b
        assert cell_key(a) != cell_key(b)

    def test_label_excluded_from_identity(self):
        a = Cell.make("m:f", label="one", x=1)
        b = Cell.make("m:f", label="two", x=1)
        assert a == b
        assert cell_key(a) == cell_key(b)
        assert len({a, b}) == 1

    def test_param_order_is_canonical(self):
        a = Cell.make("m:f", x=1, y=2)
        b = Cell.make("m:f", y=2, x=1)
        assert a == b and cell_key(a) == cell_key(b)

    def test_salt_changes_key(self):
        cell = Cell.make("m:f", x=1)
        assert cell_key(cell, salt="a") != cell_key(cell, salt="b")

    def test_fn_must_be_dotted_path(self):
        with pytest.raises(ConfigError):
            Cell.make("not_a_path")

    def test_float_and_int_params_differ(self):
        assert cell_key(Cell.make("m:f", x=1)) != cell_key(Cell.make("m:f", x=1.0))


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_key(Cell.make("m:f", x=1), salt="t")
        assert key not in cache
        assert cache.put(key, {"answer": 42})
        assert key in cache
        assert cache.get(key) == {"answer": 42}
        assert len(cache) == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_key(Cell.make("m:f", x=1), salt="t")
        cache.put(key, 123)
        cache.path(key).write_bytes(b"not a pickle")
        assert cache.get(key) is _MISS

    def test_unpicklable_value_is_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert not cache.put("ab" + "0" * 62, lambda: None)

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(cell_key(Cell.make("m:f", x=i), salt="t"), i)
        assert cache.clear() == 3
        assert len(cache) == 0


# ----------------------------------------------------------------------
# Engine execution, memoisation, resumability
# ----------------------------------------------------------------------
class TestEngine:
    def cells(self):
        return fig9.SPEC.cells(SCALE)

    def test_serial_executes_and_memoises(self):
        engine = Engine(memo={})
        cells = self.cells()
        first = engine.run_cells(cells)
        assert set(first) == set(cells)
        again = engine.run_cells(cells)
        assert engine.stats.memo_hits == len(cells)
        assert engine.stats.executed == len(cells)
        assert [first[c].elapsed_ns for c in cells] == [
            again[c].elapsed_ns for c in cells
        ]

    def test_disk_cache_survives_process_memo_loss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = self.cells()
        Engine(cache=cache, memo={}).run_cells(cells)
        assert len(cache) == len(cells)
        warm = Engine(cache=cache, memo={})  # fresh memo = "new process"
        warm.run_cells(cells)
        assert warm.stats.executed == 0
        assert warm.stats.disk_hits == len(cells)
        assert warm.stats.hit_rate == 1.0

    def test_interrupted_sweep_resumes(self, tmp_path):
        """A killed run leaves completed cells cached; the rerun only
        executes the remainder."""
        cache = ResultCache(tmp_path)
        cells = self.cells()
        Engine(cache=cache, memo={}).run_cells(cells[:4])  # ... then "killed"
        resumed = Engine(cache=cache, memo={})
        resumed.run_cells(cells)
        assert resumed.stats.disk_hits == 4
        assert resumed.stats.executed == len(cells) - 4

    def test_force_reexecutes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = self.cells()
        Engine(cache=cache, memo={}).run_cells(cells)
        forced = Engine(cache=cache, memo={}, force=True)
        forced.run_cells(cells)
        assert forced.stats.executed == len(cells)
        assert forced.stats.hits == 0

    def test_pool_matches_serial_bytes(self):
        serial = run_spec(fig9.SPEC, scale=SCALE, engine=Engine(jobs=1, memo={}))
        pooled = run_spec(fig9.SPEC, scale=SCALE, engine=Engine(jobs=2, memo={}))
        assert [r.to_text() for r in serial] == [r.to_text() for r in pooled]

    def test_duplicate_cells_run_once(self):
        engine = Engine(memo={})
        cell = self.cells()[0]
        values = run_cells([cell, cell, cell], engine=engine)
        assert engine.stats.executed == 1
        assert values[0] is values[1] is values[2]

    def test_results_are_picklable(self):
        engine = Engine(memo={})
        for value in engine.run_cells(self.cells()).values():
            assert pickle.loads(pickle.dumps(value)).elapsed_ns == value.elapsed_ns

    def test_metrics_counters_advance(self):
        registry = engine_registry()
        executed = registry.get("engine_cells_executed_total").value
        total = registry.get("engine_cells_total").value
        engine = Engine(memo={})
        engine.run_cells(self.cells()[:2])
        assert registry.get("engine_cells_executed_total").value == executed + 2
        assert registry.get("engine_cells_total").value == total + 2

    def test_progress_lines_emitted(self):
        lines = []
        Engine(memo={}, progress=lines.append).run_cells(self.cells()[:2], group="t")
        assert any("2/2 cells to run" in line for line in lines)
        assert any("ran" in line for line in lines)

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigError):
            Engine(jobs=0)


# ----------------------------------------------------------------------
# ExperimentSpec protocol + deprecation shim
# ----------------------------------------------------------------------
class TestSpecProtocol:
    def test_all_modules_export_specs(self):
        from repro.experiments.runner import EXPERIMENTS, get_spec

        for name in EXPERIMENTS:
            spec = get_spec(name)
            assert isinstance(spec, ExperimentSpec)
            assert spec.name
            cells = spec.cells(SCALE)
            assert all(isinstance(c, Cell) for c in cells)

    def test_unknown_spec_exits(self):
        from repro.experiments.runner import get_spec

        with pytest.raises(SystemExit):
            get_spec("fig99")

    def test_reduce_missing_cell_is_config_error(self):
        results = CellResults({})
        with pytest.raises(ConfigError):
            results[Cell.make("m:f", x=1)]

    def test_legacy_run_shim_is_gone(self):
        """The deprecated ``figN.run(scale=...)`` shims were removed; the
        blessed entry points are run_spec / run_experiment / the CLI."""
        assert not hasattr(fig9, "run")
        assert not hasattr(fig9, "compat_run")

    def test_shared_cells_collapse_across_figures(self):
        """fig8/fig9 share the reuse replays — one engine runs them once."""
        from repro.experiments import fig8

        engine = Engine(memo={})
        run_spec(fig9.SPEC, scale=SCALE, engine=engine)
        executed = engine.stats.executed
        run_spec(fig8.SPEC, scale=SCALE, engine=engine)
        fig8_cells = len(fig8.SPEC.cells(SCALE))
        assert engine.stats.memo_hits >= len(fig9.SPEC.cells(SCALE))
        assert engine.stats.executed < executed + fig8_cells


# ----------------------------------------------------------------------
# Runner CLI wiring
# ----------------------------------------------------------------------
class TestRunnerFailures:
    def _specs(self):
        good = ExperimentSpec(
            name="good",
            cells=lambda scale: [],
            reduce=lambda results, scale: [
                ExperimentResult(name="good", title="ok", headers=["a"], rows=[[1]])
            ],
        )

        def boom(results, scale):
            raise RuntimeError("boom")

        bad = ExperimentSpec(name="bad", cells=lambda scale: [], reduce=boom)
        return {"good": good, "bad": bad}

    def test_failures_collected_and_reported_at_end(self, monkeypatch, capsys):
        from repro.experiments import runner

        specs = self._specs()
        monkeypatch.setattr(runner, "EXPERIMENTS", tuple(specs))
        monkeypatch.setattr(runner, "get_spec", lambda name: specs[name])
        rc = runner.main(["bad", "good", "--no-cache", "--scale", str(SCALE)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "ok" in captured.out  # the good experiment still ran
        assert "bad FAILED" in captured.err
        assert "RuntimeError" in captured.err
        assert "1/2 experiments failed" in captured.err

    def test_all_good_returns_zero(self, monkeypatch, capsys):
        from repro.experiments import runner

        specs = self._specs()
        monkeypatch.setattr(runner, "EXPERIMENTS", ("good",))
        monkeypatch.setattr(runner, "get_spec", lambda name: specs[name])
        assert runner.main(["all", "--no-cache", "--scale", str(SCALE)]) == 0
        assert "[engine]" in capsys.readouterr().out

    def test_cache_dir_flag_populates_cache(self, tmp_path, capsys):
        from repro.experiments import runner
        from repro.experiments.engine import clear_memo

        clear_memo()
        rc = runner.main(
            ["fig9", "--scale", str(SCALE), "--cache-dir", str(tmp_path)]
        )
        assert rc == 0
        assert len(ResultCache(tmp_path)) == len(fig9.SPEC.cells(SCALE))
        clear_memo()  # warm rerun must hit disk, not the memo
        capsys.readouterr()
        runner.main(["fig9", "--scale", str(SCALE), "--cache-dir", str(tmp_path)])
        assert "disk_hits=9" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Sweep + facade wiring
# ----------------------------------------------------------------------
class TestWiring:
    def test_sweep_runs_through_engine(self):
        from repro.experiments.sweep import sweep_config

        engine = Engine(memo={})
        result = sweep_config(
            "tier3_bias_threshold",
            [0.5, 0.8],
            apps=("srad",),
            scale=SCALE,
            vary_baseline=False,
        )
        engined = sweep_config(
            "tier3_bias_threshold",
            [0.5, 0.8],
            apps=("srad",),
            scale=SCALE,
            vary_baseline=False,
            engine=engine,
        )
        assert engine.stats.cells > 0
        assert result.to_text() == engined.to_text()

    def test_api_facade_surface(self):
        from repro import api

        assert api.RuntimeConfig is api.GMTConfig
        for name in api.__all__:
            assert getattr(api, name) is not None
        results = api.run_experiment("fig9", scale=SCALE, engine=Engine(memo={}))
        assert results and isinstance(results[0], ExperimentResult)

    def test_api_serve(self):
        from repro import api

        outcome = api.serve(["bfs", "pagerank"], scale=SCALE)
        assert len(outcome.tenants) == 2
        assert all(t.slowdown >= 1.0 for t in outcome.tenants)
