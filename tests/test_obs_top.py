"""gmt-top dashboard: rendering, window feed, anomaly surfacing, CLI."""

import io

import pytest

from repro.errors import ConfigError
from repro.obs import Telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshots import WindowedSnapshotter
from repro.obs.top import Dashboard, _bar, main


class TestBar:
    def test_full_and_empty(self):
        assert _bar(0.0, 10) == "[..........]"
        assert _bar(1.0, 10) == "[##########]"

    def test_clamped(self):
        assert _bar(-0.5, 10) == "[..........]"
        assert _bar(2.0, 10) == "[##########]"

    def test_half(self):
        assert _bar(0.5, 10) == "[#####.....]"


class TestOnWindowHook:
    def test_callback_fires_per_window(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", help="")
        snap = WindowedSnapshotter(registry, interval=10)
        seen = []
        snap.on_window = seen.append
        counter.inc(3)
        snap.maybe_snapshot(5)  # below interval: no window, no callback
        assert seen == []
        snap.maybe_snapshot(10)
        assert len(seen) == 1
        assert seen[0]["hits"] == 3
        assert seen[0] is snap.windows()[0]

    def test_flush_also_fires(self):
        registry = MetricsRegistry()
        snap = WindowedSnapshotter(registry, interval=10)
        seen = []
        snap.on_window = seen.append
        snap.flush(4)
        assert len(seen) == 1


def run_dashboard(plain, window=500, scale=16384):
    from repro.experiments.harness import build_runtime, default_config, get_workload

    config = default_config(scale)
    workload = get_workload("hotspot", config, oversubscription=2.0, seed=0)
    runtime = build_runtime("reuse", config)
    telemetry = runtime.attach_telemetry(Telemetry(window=window))
    stream = io.StringIO()
    dash = Dashboard(
        telemetry,
        title="GMT-Reuse replaying hotspot",
        tier1_capacity=config.tier1_frames,
        tier2_capacity=config.tier2_frames,
        stream=stream,
        plain=plain,
    ).attach()
    runtime.run(workload)
    return dash, stream.getvalue(), telemetry


class TestDashboard:
    def test_plain_mode_line_per_window(self):
        dash, out, telemetry = run_dashboard(plain=True)
        lines = [l for l in out.splitlines() if l]
        assert len(lines) == len(telemetry.windows())
        assert dash.frames == len(lines)
        assert lines[0].startswith("w0000 @")
        assert "t1 " in lines[0] and "hit " in lines[0] and "p99 " in lines[0]
        assert "\x1b" not in out  # plain mode is ANSI-free

    def test_ansi_mode_redraws_frames(self):
        dash, out, telemetry = run_dashboard(plain=False)
        assert out.count("\x1b[2J") == dash.frames
        assert "gmt-top — GMT-Reuse replaying hotspot" in out
        assert "Tier-1 [" in out and "Tier-2 [" in out
        assert "cumulative:" in out

    def test_anomalies_surface_in_output(self):
        # A 2x-oversubscribed hotspot replay thrashes by construction.
        dash, out, _ = run_dashboard(plain=True)
        assert dash.anomalies
        assert "anomalies+" in out
        summary = dash.finish()
        assert "anomalies" in summary
        assert "thrash" in summary

    def test_render_is_pure_text(self):
        dash, _, telemetry = run_dashboard(plain=False)
        frame = dash.render(telemetry.windows()[-1])
        assert "\x1b" not in frame
        assert frame.endswith("\n")

    def test_throughput_tracked_between_frames(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        telemetry = Telemetry(window=10)
        ticks = iter([0.0, 1.0, 2.0])
        dash = Dashboard(
            telemetry,
            title="t",
            tier1_capacity=16,
            tier2_capacity=64,
            stream=io.StringIO(),
            plain=True,
            clock=lambda: next(ticks),
        )
        dash.update({"window": 0, "position": 1000, "span": 1000})
        dash.update({"window": 1, "position": 3000, "span": 2000})
        assert dash._throughput == pytest.approx(2000.0)

    def test_tenant_rows_flag_slo_violations(self):
        from repro.obs.digest import LatencyDigest

        fast, slow = LatencyDigest(), LatencyDigest()
        for _ in range(100):
            fast.observe(1_000.0)
            slow.observe(9_000_000.0)
        dash = Dashboard(
            Telemetry(window=10),
            title="t",
            tier1_capacity=16,
            tier2_capacity=64,
            tenants=[
                ("fast", fast, None, 5_000_000.0),
                ("slow", slow, None, 5_000_000.0),
                ("idle", LatencyDigest(), None, None),
            ],
            stream=io.StringIO(),
            plain=False,
        )
        frame = dash.render({"window": 0, "position": 10, "span": 10})
        lines = {l.strip().split()[0]: l for l in frame.splitlines() if l.strip()}
        assert "p99!" in lines["slow"]
        assert "p99!" not in lines["fast"]
        assert "-" in lines["idle"]  # never missed: no percentiles yet

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigError):
            Dashboard(Telemetry(), title="t", tier1_capacity=0, tier2_capacity=4)

    def test_finish_flushes_final_partial_window(self):
        # Drive the runtime access-by-access (no run(), so no automatic
        # end-of-run flush): the tail after the last window boundary must
        # still render, via Dashboard.finish's explicit flush.
        from repro.experiments.harness import build_runtime, default_config, get_workload

        config = default_config(16384)
        workload = get_workload("hotspot", config, oversubscription=2.0, seed=0)
        runtime = build_runtime("reuse", config)
        telemetry = runtime.attach_telemetry(Telemetry(window=499))
        stream = io.StringIO()
        dash = Dashboard(
            telemetry,
            title="t",
            tier1_capacity=config.tier1_frames,
            tier2_capacity=config.tier2_frames,
            stream=stream,
            plain=True,
        ).attach()
        for warp in workload:
            runtime.access_warp(warp)
        before = [l for l in stream.getvalue().splitlines() if l]
        summary = dash.finish()
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == len(before) + 1  # the partial tail rendered
        assert len(lines) == len(telemetry.windows()) == dash.frames
        assert "windows rendered" in summary
        # Idempotent: a second finish cuts nothing new.
        dash.finish()
        assert len(telemetry.windows()) == len(lines)


class TestCLI:
    def test_single_workload_plain(self, capsys):
        assert main(["hotspot", "--scale", "16384", "--plain", "--window", "500"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("w0000")
        assert "windows rendered" in out

    def test_tenant_mix_plain(self, capsys):
        assert (
            main(
                [
                    "--tenants", "bfs,hotspot:2",
                    "--scale", "16384",
                    "--slo-p99", "1",
                    "--plain",
                ]
            )
            == 0
        )
        assert "windows rendered" in capsys.readouterr().out

    def test_requires_workload_xor_tenants(self):
        with pytest.raises(SystemExit):
            main(["--plain"])
        with pytest.raises(SystemExit):
            main(["hotspot", "--tenants", "bfs", "--plain"])
