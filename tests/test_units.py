"""Unit tests for repro.units."""

import pytest

from repro.units import (
    GiB,
    KiB,
    MiB,
    PAGE_SIZE,
    SEC,
    USEC,
    bytes_for_pages,
    format_bytes,
    format_time,
    pages_for_bytes,
)


class TestConstants:
    def test_page_size_is_64kib(self):
        assert PAGE_SIZE == 64 * 1024

    def test_size_ladder(self):
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    def test_time_ladder(self):
        assert USEC == 1_000
        assert SEC == 1_000_000_000


class TestPagesForBytes:
    def test_exact_multiple(self):
        assert pages_for_bytes(2 * PAGE_SIZE) == 2

    def test_rounds_up(self):
        assert pages_for_bytes(PAGE_SIZE + 1) == 2

    def test_zero(self):
        assert pages_for_bytes(0) == 0

    def test_one_byte(self):
        assert pages_for_bytes(1) == 1

    def test_paper_tier1(self):
        # 16 GB of Tier-1 = 262144 pages of 64 KB.
        assert pages_for_bytes(16 * GiB) == 262_144

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pages_for_bytes(-1)

    def test_custom_page_size(self):
        assert pages_for_bytes(8192, page_size=4096) == 2


class TestBytesForPages:
    def test_roundtrip(self):
        assert bytes_for_pages(pages_for_bytes(10 * PAGE_SIZE)) == 10 * PAGE_SIZE

    def test_zero(self):
        assert bytes_for_pages(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bytes_for_pages(-5)


class TestFormatting:
    def test_format_bytes_gib(self):
        assert format_bytes(64 * GiB) == "64.0 GiB"

    def test_format_bytes_small(self):
        assert format_bytes(512) == "512 B"

    def test_format_time_us(self):
        assert format_time(130_000) == "130.0 us"

    def test_format_time_ns(self):
        assert format_time(50) == "50.0 ns"

    def test_format_time_ms(self):
        assert format_time(2_500_000) == "2.5 ms"

    def test_format_time_s(self):
        assert format_time(3 * SEC) == "3.000 s"
