"""Unit tests for the Dragon baseline."""

import pytest

from repro.baselines.bam import BamRuntime
from repro.baselines.dragon import DragonRuntime
from repro.baselines.hmm import HmmRuntime
from repro.core.config import GMTConfig
from tests.conftest import random_trace, sweep_trace


@pytest.fixture
def config():
    return GMTConfig(
        tier1_frames=16, tier2_frames=64, sample_target=200, sample_batch=50
    )


class TestDragonRuntime:
    def test_constants_applied(self, config):
        dragon = DragonRuntime(config)
        assert dragon.name == "Dragon"
        assert dragon.cost.fault_concurrency == DragonRuntime.FAULT_CONCURRENCY
        assert dragon._extra_fault_ns == DragonRuntime.FAULT_OVERHEAD_NS
        assert dragon.ssd.read_bandwidth == DragonRuntime.MMAP_SSD_BANDWIDTH

    def test_uses_three_tiers(self, config):
        dragon = DragonRuntime(config)
        for warp in random_trace(500, footprint=100, seed=3):
            dragon.access_warp(warp)
        dragon.check_invariants()
        assert dragon.stats.t2_placements > 0

    def test_slower_than_hmm(self, config):
        """Dragon's mmap path is strictly heavier than HMM's page cache."""
        trace = sweep_trace(120, repeats=4, write=True)
        dragon = DragonRuntime(config).run(trace)
        hmm = HmmRuntime(config).run(trace)
        assert dragon.elapsed_ns >= hmm.elapsed_ns

    def test_much_slower_than_bam(self, config):
        """BaM [40] was shown to beat Dragon decisively."""
        trace = random_trace(1200, footprint=250, seed=9)
        dragon = DragonRuntime(config).run(trace)
        bam = BamRuntime(config).run(trace)
        assert dragon.elapsed_ns > 1.5 * bam.elapsed_ns

    def test_platform_for_helper(self, config):
        cfg = DragonRuntime.platform_for(config)
        assert cfg.platform.host_fault_concurrency == DragonRuntime.FAULT_CONCURRENCY
        assert (
            cfg.platform.host_pagecache_ssd_bandwidth
            == DragonRuntime.MMAP_SSD_BANDWIDTH
        )

    def test_available_via_harness(self, config):
        from repro.experiments.harness import build_runtime

        runtime = build_runtime("dragon", config)
        assert isinstance(runtime, DragonRuntime)
