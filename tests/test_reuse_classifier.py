"""Unit tests for Eq. 1's RRD classifier."""

import pytest

from repro.errors import ConfigError
from repro.reuse.classifier import ReuseClass, RRDClassifier


class TestRRDClassifier:
    @pytest.fixture
    def clf(self):
        # Tier-1 = 100 frames, Tier-2 = 400 frames -> bounds 100 / 500.
        return RRDClassifier(tier1_frames=100, tier2_frames=400)

    def test_short_below_tier1(self, clf):
        assert clf.classify(0) is ReuseClass.SHORT
        assert clf.classify(99) is ReuseClass.SHORT

    def test_medium_between_bounds(self, clf):
        assert clf.classify(100) is ReuseClass.MEDIUM
        assert clf.classify(499) is ReuseClass.MEDIUM

    def test_long_at_and_above_cumulative_capacity(self, clf):
        assert clf.classify(500) is ReuseClass.LONG
        assert clf.classify(10_000) is ReuseClass.LONG

    def test_none_is_long(self, clf):
        # No predicted reuse = infinitely far = long-reuse.
        assert clf.classify(None) is ReuseClass.LONG

    def test_float_rrds(self, clf):
        assert clf.classify(99.9) is ReuseClass.SHORT
        assert clf.classify(100.0) is ReuseClass.MEDIUM

    def test_negative_rrd_rejected(self, clf):
        with pytest.raises(ValueError):
            clf.classify(-1)

    def test_bounds_exposed(self, clf):
        assert clf.short_bound == 100
        assert clf.medium_bound == 500

    def test_zero_tier2_collapses_medium(self):
        clf = RRDClassifier(tier1_frames=100, tier2_frames=0)
        assert clf.classify(100) is ReuseClass.LONG

    def test_invalid_capacities(self):
        with pytest.raises(ConfigError):
            RRDClassifier(tier1_frames=0, tier2_frames=10)
        with pytest.raises(ConfigError):
            RRDClassifier(tier1_frames=10, tier2_frames=-1)

    def test_class_maps_to_tier_number(self):
        assert ReuseClass.SHORT.value == 1
        assert ReuseClass.MEDIUM.value == 2
        assert ReuseClass.LONG.value == 3
