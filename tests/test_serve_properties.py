"""Property tests for multi-tenant serving: invariants over random mixes.

Hypothesis is not available in CI, so this is a hypothesis-style loop
over seeds: each seed draws a random mix (workloads, discipline, quota
mode, weights, arrivals) on a deliberately tiny hierarchy and asserts
the structural invariants that must survive *any* interleaving:

- the runtime's own :meth:`check_invariants` (no page in two tiers, no
  tier over physical capacity, consistent page states);
- the per-tenant residency counts sum to each tier's occupancy and never
  exceed its capacity;
- with static quotas, no tenant's *peak* residency exceeded its budget;
- the per-tenant stat slices decompose the aggregate exactly.
"""

import random

import pytest

from repro.core.config import GMTConfig
from repro.core.stats import RuntimeStats
from repro.serve import (
    QUOTA_MODES,
    SCHEDULER_NAMES,
    QuotaConfig,
    TenantServer,
    TenantSpec,
    build_tenants,
)

#: Cheap generators — footprints here are a few hundred pages at most.
CHEAP_WORKLOADS = ("hotspot", "pathfinder", "srad", "lavamd")

SEEDS = range(8)


def random_mix(seed: int):
    rng = random.Random(seed)
    n = rng.randint(2, 3)
    specs = [
        TenantSpec(
            name=f"t{i}",
            workload=rng.choice(CHEAP_WORKLOADS),
            weight=rng.choice([0.5, 1.0, 2.0]),
            arrival=rng.choice([0, 0, 10, 50]),
        )
        for i in range(n)
    ]
    discipline = rng.choice(SCHEDULER_NAMES)
    mode = rng.choice(QUOTA_MODES)
    return specs, discipline, mode


@pytest.mark.parametrize("seed", SEEDS)
def test_invariants_after_interleaved_replay(seed):
    specs, discipline, mode = random_mix(seed)
    config = GMTConfig(tier1_frames=16, tier2_frames=32)
    streams = build_tenants(specs, config, seed=seed)
    server = TenantServer(
        config, streams, discipline=discipline, quota=QuotaConfig(mode=mode)
    )
    outcome = server.run(solo_baselines=False)
    runtime = server.runtime

    # Structural invariants of the shared hierarchy.
    runtime.check_invariants()

    # Per-tenant residency decomposes each tier's occupancy and can never
    # exceed the tier's physical capacity.
    for tier in (runtime.tier1, runtime.tier2):
        counts = tier.owner_counts()
        assert sum(counts.values()) == len(tier)
        assert sum(counts.values()) <= tier.capacity
        for owner, count in counts.items():
            assert 0 <= owner < len(streams)
            assert count == tier.owner_count(owner)

    # Static quotas are hard caps on *peak* residency.
    if mode == "static":
        for idx in range(len(streams)):
            assert (
                runtime.tier1.peak_owner_count(idx)
                <= runtime.quotas.static_tier1_budget(idx)
            )
            assert (
                runtime.tier2.peak_owner_count(idx)
                <= runtime.quotas.static_tier2_budget(idx)
            )

    # The tenant slices decompose the aggregate counters exactly.
    for field in RuntimeStats.counter_names():
        total = sum(getattr(s, field) for s in runtime.tenant_stats)
        assert total == getattr(runtime.stats, field), (field, seed)

    # Every tenant finished within the makespan.
    for tenant in outcome.tenants:
        assert 0 <= tenant.finish_ns <= outcome.elapsed_ns + 1e-6
