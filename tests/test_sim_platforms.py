"""Tests for platform presets and calibration."""

import pytest

from repro.errors import ConfigError
from repro.sim.latency import PlatformModel
from repro.sim.platforms import (
    COHERENT_LINK_PLATFORM,
    GEN4_PLATFORM,
    PAPER_PLATFORM,
    PLATFORM_PRESETS,
    calibrate,
    get_platform,
)
from repro.units import GiB


class TestPresets:
    def test_paper_is_default(self):
        assert PAPER_PLATFORM == PlatformModel()

    def test_gen4_faster_than_paper(self):
        assert GEN4_PLATFORM.pcie_bandwidth > PAPER_PLATFORM.pcie_bandwidth
        assert GEN4_PLATFORM.ssd_read_bandwidth > PAPER_PLATFORM.ssd_read_bandwidth
        assert GEN4_PLATFORM.ssd_read_latency_ns < PAPER_PLATFORM.ssd_read_latency_ns

    def test_coherent_link_shrinks_tier2_gap(self):
        assert (
            COHERENT_LINK_PLATFORM.host_fetch_latency_ns
            < GEN4_PLATFORM.host_fetch_latency_ns / 5
        )

    def test_get_platform(self):
        assert get_platform("paper") is PAPER_PLATFORM
        assert get_platform("GEN4") is GEN4_PLATFORM

    def test_unknown_preset(self):
        with pytest.raises(ConfigError):
            get_platform("tpu")

    def test_all_presets_valid(self):
        # Construction runs PlatformModel's validation; reaching here means
        # every preset satisfies it.
        assert set(PLATFORM_PRESETS) == {"paper", "gen4", "coherent"}


class TestCalibrate:
    def test_overrides_applied(self):
        platform = calibrate("paper", ssd_read_latency_ns=95_000.0)
        assert platform.ssd_read_latency_ns == 95_000.0
        assert platform.pcie_bandwidth == PAPER_PLATFORM.pcie_bandwidth

    def test_base_model_accepted(self):
        platform = calibrate(GEN4_PLATFORM, pcie_bandwidth=20 * GiB)
        assert platform.pcie_bandwidth == 20 * GiB

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            calibrate("paper", warp_speed=9)

    def test_invalid_value_rejected(self):
        with pytest.raises(ConfigError):
            calibrate("paper", ssd_read_bandwidth=0)

    def test_end_to_end_with_runtime(self):
        from repro.core.config import GMTConfig
        from repro.core.runtime import GMTRuntime
        from repro.workloads import make_workload

        cfg = GMTConfig(
            tier1_frames=16,
            tier2_frames=64,
            platform=get_platform("coherent"),
            sample_target=200,
            sample_batch=50,
        )
        workload = make_workload("srad", 160, jitter_warps=0)
        result = GMTRuntime(cfg).run(workload)
        assert result.elapsed_ns > 0
