"""Unit tests for the queueing time model."""

import pytest

from repro.errors import SimulationError
from repro.sim.latency import PlatformModel
from repro.sim.queueing import FluidLink, QueueingModel, SlotPool
from repro.units import GiB, PAGE_SIZE, SEC, USEC


class TestSlotPool:
    def test_single_slot_serializes(self):
        pool = SlotPool(1)
        start1 = pool.admit(0.0)
        pool.release(start1 + 100.0)
        start2 = pool.admit(10.0)
        assert start1 == 0.0
        assert start2 == 100.0  # waited for the slot

    def test_parallel_slots(self):
        pool = SlotPool(2)
        a = pool.admit(0.0)
        b = pool.admit(0.0)
        assert a == b == 0.0

    def test_ready_after_free(self):
        pool = SlotPool(1)
        s = pool.admit(50.0)
        assert s == 50.0  # no artificial wait

    def test_validation(self):
        with pytest.raises(SimulationError):
            SlotPool(0)


class TestFluidLink:
    def test_wire_time(self):
        link = FluidLink(bandwidth=1 * GiB)
        finish = link.transfer(0.0, GiB)
        assert finish == pytest.approx(SEC)

    def test_busy_accumulates(self):
        link = FluidLink(bandwidth=1 * GiB)
        link.transfer(0.0, GiB // 2)
        link.transfer(100.0, GiB // 2)
        assert link.busy_ns == pytest.approx(SEC)

    def test_validation(self):
        with pytest.raises(SimulationError):
            FluidLink(0)
        with pytest.raises(SimulationError):
            FluidLink(1.0).transfer(0.0, -1)


class TestQueueingModel:
    def make(self, concurrency=2, **kwargs):
        platform = PlatformModel(**kwargs)
        return QueueingModel(
            platform=platform, page_size=PAGE_SIZE, fault_concurrency=concurrency
        )

    def test_hits_only_track_issue_rate(self):
        qm = self.make()
        for _ in range(100):
            qm.on_hit()
        platform = PlatformModel()
        assert qm.makespan_ns == pytest.approx(100 * platform.gpu_access_ns)

    def test_single_miss_latency(self):
        qm = self.make()
        done = qm.on_miss(tier2_lookup=False, tier2_hit=False)
        platform = PlatformModel()
        wire = PAGE_SIZE / platform.ssd_read_bandwidth * SEC
        expected = platform.gpu_access_ns + platform.ssd_read_latency_ns + wire
        assert done == pytest.approx(expected)

    def test_fault_slots_throttle(self):
        # 2 slots, 3 back-to-back misses: the third waits for a slot.
        qm = self.make(concurrency=2)
        d1 = qm.on_miss(tier2_lookup=False, tier2_hit=False)
        d2 = qm.on_miss(tier2_lookup=False, tier2_hit=False)
        d3 = qm.on_miss(tier2_lookup=False, tier2_hit=False)
        assert d3 > max(d1, d2)
        assert d3 >= min(d1, d2) + PlatformModel().ssd_read_latency_ns * 0.9

    def test_tier2_hit_cheaper_than_ssd(self):
        a = self.make(concurrency=1)
        t_ssd = a.on_miss(tier2_lookup=True, tier2_hit=False)
        b = self.make(concurrency=1)
        t_host = b.on_miss(tier2_lookup=True, tier2_hit=True)
        assert t_host < t_ssd

    def test_bandwidth_floor(self):
        qm = self.make(concurrency=1000)
        for _ in range(1000):
            qm.on_miss(tier2_lookup=False, tier2_hit=False)
        platform = PlatformModel()
        floor = 1000 * PAGE_SIZE / platform.ssd_read_bandwidth * SEC
        assert qm.makespan_ns >= floor

    def test_background_io_counts_toward_floor(self):
        qm = self.make()
        before = qm.makespan_ns
        for _ in range(10_000):
            qm.on_background_io(PAGE_SIZE)
        assert qm.makespan_ns > before

    def test_eviction_side_effects_extend_chain(self):
        plain = self.make(concurrency=1).on_miss(tier2_lookup=True, tier2_hit=False)
        loaded = self.make(concurrency=1).on_miss(
            tier2_lookup=True,
            tier2_hit=False,
            writeback=True,
            tier2_place=True,
            tier2_evict=True,
        )
        assert loaded > plain

    def test_host_orchestration_overhead(self):
        fast = self.make(concurrency=1)
        platform = PlatformModel()
        slow = QueueingModel(
            platform=platform,
            page_size=PAGE_SIZE,
            fault_concurrency=1,
            extra_fault_ns=80 * USEC,
        )
        t_fast = fast.on_miss(tier2_lookup=False, tier2_hit=False)
        t_slow = slow.on_miss(tier2_lookup=False, tier2_hit=False)
        assert t_slow == pytest.approx(t_fast + 80 * USEC)


class TestRuntimeIntegration:
    def test_models_agree_when_bandwidth_bound(self):
        """The validation claim: on the paper's platform the roofline and
        queueing models coincide for bandwidth-bound runs."""
        from dataclasses import replace

        from repro.core.config import GMTConfig
        from repro.core.runtime import GMTRuntime
        from repro.workloads import make_workload

        cfg = GMTConfig(
            tier1_frames=32, tier2_frames=128, sample_target=500, sample_batch=100
        )
        workload = make_workload("hotspot", 320)
        analytic = GMTRuntime(cfg).run(workload)
        queued = GMTRuntime(replace(cfg, time_model="queueing")).run(workload)
        assert queued.elapsed_ns == pytest.approx(analytic.elapsed_ns, rel=0.1)
        assert queued.breakdown.measured_ns is not None
        assert analytic.breakdown.measured_ns is None

    def test_queueing_model_exceeds_roofline_when_latency_bound(self):
        """With a tiny handler pool (HMM-like), queueing adds real delay
        the averaged roofline term can miss; the measured makespan must be
        at least the roofline."""
        from dataclasses import replace

        from repro.core.config import GMTConfig
        from repro.baselines.hmm import HmmRuntime
        from repro.workloads import make_workload

        cfg = GMTConfig(
            tier1_frames=32, tier2_frames=128, sample_target=500, sample_batch=100
        )
        workload = make_workload("lavamd", 320)
        analytic = HmmRuntime(cfg).run(workload)
        queued = HmmRuntime(replace(cfg, time_model="queueing")).run(workload)
        assert queued.elapsed_ns >= analytic.elapsed_ns * 0.9

    def test_invalid_time_model_rejected(self):
        from repro.core.config import GMTConfig
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            GMTConfig(tier1_frames=4, tier2_frames=4, time_model="exact")
