"""Unit tests for the instrumented-run characterisation machinery."""

import pytest

from repro.analysis.characterize import (
    characterize_workload,
    collect_access_rds,
    collect_eviction_rrds,
    vtd_rd_correlation,
)
from repro.errors import TraceError
from repro.reuse.classifier import ReuseClass
from repro.sim.gpu import WarpAccess
from repro.workloads.trace import Workload


class _PagesWorkload(Workload):
    """Workload wrapping a plain page-id list (one page per warp)."""

    name = "pages"

    def __init__(self, pages, write_pages=(), footprint_pages=None):
        super().__init__(footprint_pages or (max(pages) + 1), 0)
        self._pages = pages
        self._writes = set(write_pages)

    def generate(self):
        for p in self._pages:
            yield WarpAccess(pages=(p,), write=p in self._writes)


class TestCharacterizeWorkload:
    def test_counts(self):
        w = _PagesWorkload([1, 2, 3, 1, 2, 4], write_pages={2})
        ch = characterize_workload(w)
        assert ch.coalesced_accesses == 6
        assert ch.distinct_pages == 4
        assert ch.reused_pages == 2
        assert ch.write_accesses == 2

    def test_reuse_percent(self):
        w = _PagesWorkload([1, 2, 3, 4, 1])
        assert characterize_workload(w).reuse_percent == pytest.approx(25.0)

    def test_total_io(self):
        w = _PagesWorkload([1, 2, 3])
        ch = characterize_workload(w)
        assert ch.total_io_bytes(page_size=1000) == 3000

    def test_intra_warp_duplicates_coalesce(self):
        class W(Workload):
            name = "dups"

            def generate(self):
                yield WarpAccess(pages=(1, 1, 1))

        ch = characterize_workload(W(footprint_pages=2))
        assert ch.coalesced_accesses == 1
        assert ch.reused_pages == 0


class TestCollectAccessRds:
    def test_classes(self):
        # Footprint 10, tier1=2, tier2=3 -> bounds 2 and 5.
        pages = [0, 1, 0, 2, 3, 1, 4, 5, 6, 7, 2]
        w = _PagesWorkload(pages)
        an = collect_access_rds(w, tier1_frames=2, tier2_frames=3)
        # Reuses: 0 (rd 1, SHORT), 1 (rd 3, MEDIUM), 2 (rd 6, LONG).
        assert an.finite_reuses == 3
        assert an.class_counts[ReuseClass.SHORT] == 1
        assert an.class_counts[ReuseClass.MEDIUM] == 1
        assert an.class_counts[ReuseClass.LONG] == 1
        assert an.cold_accesses == 8

    def test_fractions_sum_to_one(self):
        w = _PagesWorkload([0, 1, 2, 0, 1, 2, 0])
        an = collect_access_rds(w, 2, 2)
        assert sum(an.class_fractions().values()) == pytest.approx(1.0)

    def test_percentile(self):
        w = _PagesWorkload([0, 1, 0, 1, 0, 1])
        an = collect_access_rds(w, 4, 4)
        assert an.percentile(0.5) == 1

    def test_percentile_validation(self):
        w = _PagesWorkload([0, 1, 0])
        an = collect_access_rds(w, 4, 4)
        with pytest.raises(ValueError):
            an.percentile(1.5)

    def test_sample_stride(self):
        w = _PagesWorkload([0, 1] * 50)
        an = collect_access_rds(w, 4, 4, sample_stride=10)
        assert 0 < len(an.rd_sample) < an.finite_reuses

    def test_invalid_stride(self):
        with pytest.raises(TraceError):
            collect_access_rds(_PagesWorkload([0]), 4, 4, sample_stride=0)


class TestCollectEvictionRrds:
    def test_sweep_evictions_have_constant_rrd(self):
        # Two sweeps over 6 pages with tier1=2: a page is evicted 2
        # accesses after its own (Tier-1 residency), so the remaining
        # distance to its next access is 6 - 2 - 1 = 3 distinct pages.
        pages = list(range(6)) * 2
        an = collect_eviction_rrds(_PagesWorkload(pages), tier1_frames=2)
        assert an.rrds, "expected resolved evictions"
        assert all(rrd == 3 for _, rrd in an.rrds)

    def test_never_reused_counted_long(self):
        pages = list(range(10))  # single sweep: evicted pages never return
        an = collect_eviction_rrds(_PagesWorkload(pages), tier1_frames=2)
        assert an.never_reused_evictions == an.total_evictions > 0
        assert an.class_counts[ReuseClass.LONG] == an.total_evictions

    def test_class_fractions_empty(self):
        an = collect_eviction_rrds(_PagesWorkload([0, 1]), tier1_frames=4)
        assert an.total_evictions == 0
        assert sum(an.class_fractions().values()) == 0.0

    def test_per_page_series_order(self):
        pages = list(range(4)) * 5
        an = collect_eviction_rrds(_PagesWorkload(pages), tier1_frames=2)
        series = an.per_page_series(0)
        assert len(series) >= 2
        assert all(s == series[0] for s in series)  # constant pattern

    def test_validation(self):
        with pytest.raises(TraceError):
            collect_eviction_rrds(_PagesWorkload([0]), tier1_frames=0)


class TestVtdRdCorrelation:
    def test_sweep_is_perfectly_linear(self):
        pages = list(range(20)) * 4
        corr = vtd_rd_correlation(_PagesWorkload(pages))
        assert abs(corr.pearson_r) > 0.99 or corr.samples > 0

    def test_requires_reuse(self):
        with pytest.raises(TraceError):
            vtd_rd_correlation(_PagesWorkload(list(range(10))))

    def test_max_samples(self):
        pages = list(range(10)) * 10
        corr = vtd_rd_correlation(_PagesWorkload(pages), max_samples=15)
        assert corr.samples == 15

    def test_model_maps_vtd_to_rd(self):
        # On a sweep, VTD = footprint and RD = footprint - 1.
        pages = list(range(30)) * 3
        corr = vtd_rd_correlation(_PagesWorkload(pages))
        assert corr.model.predict(30) == pytest.approx(29, abs=1.0)
