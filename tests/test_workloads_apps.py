"""Tests over the nine Table 2 application workloads.

Each application is checked for the properties the paper's evaluation
depends on: footprint, reuse percentage band, and RRD class bias.
"""

import pytest

from repro.analysis.characterize import characterize_workload, collect_access_rds
from repro.errors import ConfigError
from repro.reuse.classifier import ReuseClass
from repro.workloads.registry import (
    GRAPH_WORKLOADS,
    WORKLOAD_NAMES,
    make_workload,
    normalize_name,
    workload_class,
    workload_table,
)

# Small geometry for fast tests: Tier-1=128, Tier-2=512, footprint=1280.
T1, T2, FOOTPRINT = 128, 512, 1280


@pytest.fixture(scope="module")
def suite():
    """One characterisation pass per app (module-scoped: it is not cheap)."""
    results = {}
    for name in WORKLOAD_NAMES:
        w = make_workload(name, FOOTPRINT, jitter_warps=0)
        results[name] = {
            "workload": w,
            "chars": characterize_workload(w),
            "rds": collect_access_rds(w, T1, T2),
        }
    return results


class TestRegistry:
    def test_all_nine_present(self):
        assert len(WORKLOAD_NAMES) == 9

    def test_normalize_name(self):
        assert normalize_name("LavaMD") == "lavamd"
        assert normalize_name("Multi-Vector_Add") == "multivectoradd"

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            normalize_name("doom")

    def test_workload_table_rows(self):
        rows = workload_table()
        assert len(rows) == 9
        assert all(r["name"] and r["description"] for r in rows)

    def test_graph_workloads_subset(self):
        assert GRAPH_WORKLOADS <= set(WORKLOAD_NAMES)

    def test_make_workload_from_config(self):
        from repro.core.config import GMTConfig

        cfg = GMTConfig(tier1_frames=T1, tier2_frames=T2)
        w = make_workload("hotspot", cfg)
        assert w.footprint_pages == cfg.working_set_frames()


class TestTraceValidity:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_nonempty_and_reiterable(self, suite, name):
        w = suite[name]["workload"]
        first = sum(1 for _ in w)
        second = sum(1 for _ in w)
        assert first > 0
        assert first == second

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_footprint_roughly_requested(self, suite, name):
        chars = suite[name]["chars"]
        # Graph workloads round to power-of-two vertex counts.
        tolerance = 0.45 if name in GRAPH_WORKLOADS else 0.15
        assert chars.distinct_pages == pytest.approx(FOOTPRINT, rel=tolerance)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_has_writes(self, suite, name):
        assert suite[name]["chars"].write_accesses > 0


class TestTable2Shapes:
    """Reuse % within a band around Table 2's published value."""

    BANDS = {
        "lavamd": (0.5, 5),
        "pathfinder": (10, 30),
        "bfs": (20, 50),
        "multivectoradd": (15, 50),
        "srad": (70, 95),
        "backprop": (85, 99),
        "pagerank": (80, 98),
        "sssp": (60, 95),
        "hotspot": (70, 95),
    }

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_reuse_percent_band(self, suite, name):
        lo, hi = self.BANDS[name]
        assert lo <= suite[name]["chars"].reuse_percent <= hi


class TestFigure7Bias:
    """Dominant Eq. 1 class of each app's reuses (Figure 7's tier bias)."""

    def _fractions(self, suite, name):
        return suite[name]["rds"].class_fractions()

    def test_lavamd_tier1_biased(self, suite):
        assert self._fractions(suite, "lavamd")[ReuseClass.SHORT] > 0.5

    def test_pathfinder_tier1_biased(self, suite):
        fr = self._fractions(suite, "pathfinder")
        assert fr[ReuseClass.SHORT] > 0.6

    def test_multivectoradd_tier2_biased(self, suite):
        assert self._fractions(suite, "multivectoradd")[ReuseClass.MEDIUM] > 0.5

    def test_srad_tier2_biased(self, suite):
        fr = self._fractions(suite, "srad")
        assert fr[ReuseClass.MEDIUM] > fr[ReuseClass.SHORT]

    def test_hotspot_tier3_biased(self, suite):
        assert self._fractions(suite, "hotspot")[ReuseClass.LONG] > 0.8

    def test_pagerank_not_tier1_dominated(self, suite):
        fr = self._fractions(suite, "pagerank")
        assert fr[ReuseClass.MEDIUM] + fr[ReuseClass.LONG] > 0.4

    def test_sssp_long_heavy(self, suite):
        fr = self._fractions(suite, "sssp")
        assert fr[ReuseClass.MEDIUM] + fr[ReuseClass.LONG] > 0.6


class TestGraphWorkloads:
    def test_bfs_visits_most_of_graph(self, suite):
        w = suite["bfs"]["workload"]
        chars = suite["bfs"]["chars"]
        assert chars.distinct_pages > 0.7 * w.footprint_pages

    def test_graph_cached_between_iterations(self):
        w = make_workload("pagerank", FOOTPRINT, jitter_warps=0)
        g1 = w.graph
        list(w)
        assert w.graph is g1

    def test_explicit_scale_override(self):
        cls = workload_class("bfs")
        w = cls(footprint_pages=FOOTPRINT, scale=8)
        assert w.graph.num_vertices == 256


class TestWorkloadParameters:
    def test_hotspot_iterations(self):
        w = make_workload("hotspot", FOOTPRINT, jitter_warps=0, iterations=2)
        w2 = make_workload("hotspot", FOOTPRINT, jitter_warps=0, iterations=4)
        assert sum(1 for _ in w2) > sum(1 for _ in w)

    def test_invalid_parameters_rejected(self):
        from repro.errors import TraceError

        with pytest.raises(TraceError):
            make_workload("hotspot", FOOTPRINT, iterations=0)
        with pytest.raises(TraceError):
            make_workload("backprop", FOOTPRINT, epochs=0)
        with pytest.raises(TraceError):
            make_workload("srad", FOOTPRINT, chunk_fraction=0.0)
        with pytest.raises(TraceError):
            make_workload("multivectoradd", FOOTPRINT, num_inputs=0)

    def test_seeded_determinism(self):
        a = make_workload("sssp", FOOTPRINT, seed=3)
        b = make_workload("sssp", FOOTPRINT, seed=3)
        assert [w.pages for w in a][:200] == [w.pages for w in b][:200]
