"""Hand-computed cost-accounting checks for the runtime's time model.

Small deterministic scenarios whose expected elapsed time can be derived
on paper — the arithmetic behind every speedup in the evaluation.
"""

import pytest

from repro.baselines.hmm import HmmRuntime
from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from repro.sim.latency import PlatformModel
from repro.units import GiB, PAGE_SIZE, SEC


def big_bandwidth_platform(**kwargs):
    """Bandwidths high enough that latency terms dominate."""
    defaults = dict(
        pcie_bandwidth=10_000 * GiB,
        ssd_read_bandwidth=10_000 * GiB,
        ssd_write_bandwidth=10_000 * GiB,
    )
    defaults.update(kwargs)
    return PlatformModel(**defaults)


def make_runtime(platform, tier1=4, tier2=8, policy="tier-order", **kwargs):
    cfg = GMTConfig(
        tier1_frames=tier1,
        tier2_frames=tier2,
        policy=policy,
        platform=platform,
        sample_target=50,
        sample_batch=10,
        **kwargs,
    )
    return GMTRuntime(cfg)


class TestFaultLatencyAccounting:
    def test_cold_miss_cost(self):
        platform = big_bandwidth_platform()
        rt = make_runtime(platform)
        rt.access(1)
        expected = platform.tier2_lookup_ns + platform.ssd_read_latency_ns
        assert rt.cost.fault_latency_ns == pytest.approx(expected)

    def test_hit_adds_no_fault_latency(self):
        rt = make_runtime(big_bandwidth_platform())
        rt.access(1)
        before = rt.cost.fault_latency_ns
        rt.access(1)
        assert rt.cost.fault_latency_ns == before

    def test_tier2_fetch_cost(self):
        platform = big_bandwidth_platform()
        rt = make_runtime(platform, tier1=1, tier2=4)
        rt.access(1)  # cold
        rt.access(2)  # cold; evicts 1 -> Tier-2
        base = rt.cost.fault_latency_ns
        rt.access(1)  # Tier-2 hit; evicts 2 -> Tier-2
        delta = rt.cost.fault_latency_ns - base
        expected = (
            platform.tier2_lookup_ns
            + platform.host_fetch_latency_ns
            + 2 * rt._t2_move_ns  # fetch move + eviction placement
        )
        assert delta == pytest.approx(expected)

    def test_dirty_bypass_cost_includes_write_latency(self):
        platform = big_bandwidth_platform()
        rt = make_runtime(platform, tier1=1, tier2=0)
        rt.access(1, write=True)
        base = rt.cost.fault_latency_ns
        rt.access(2)  # evicts dirty 1 -> SSD write on the critical path
        delta = rt.cost.fault_latency_ns - base
        expected = platform.ssd_read_latency_ns + platform.ssd_write_latency_ns
        assert delta == pytest.approx(expected)

    def test_tier2_eviction_charge(self):
        platform = big_bandwidth_platform()
        rt = make_runtime(platform, tier1=1, tier2=1)
        rt.access(1)
        rt.access(2)  # 1 -> Tier-2 (fills it)
        base = rt.cost.fault_latency_ns
        rt.access(3)  # 2 -> Tier-2 must first evict 1 (clean discard)
        delta = rt.cost.fault_latency_ns - base
        expected = (
            platform.tier2_lookup_ns
            + platform.ssd_read_latency_ns
            + platform.tier2_eviction_ns
            + rt._t2_move_ns
        )
        assert delta == pytest.approx(expected)

    def test_compute_term(self):
        platform = big_bandwidth_platform()
        rt = make_runtime(platform)
        for p in range(5):
            rt.access(p % 2)
        assert rt.cost.compute_ns == pytest.approx(5 * platform.gpu_access_ns)


class TestElapsedComposition:
    def test_elapsed_is_fault_term_when_latency_bound(self):
        platform = big_bandwidth_platform()
        rt = make_runtime(platform, tier1=2, tier2=0)
        for p in range(100):
            rt.access(p)
        b = rt.result().breakdown
        assert b.bottleneck == "fault-latency"
        expected = rt.cost.fault_latency_ns / platform.gpu_fault_concurrency
        assert b.elapsed_ns == pytest.approx(expected)

    def test_elapsed_is_ssd_term_when_bandwidth_bound(self):
        platform = PlatformModel(ssd_read_bandwidth=0.001 * GiB)
        rt = make_runtime(platform, tier1=2, tier2=0)
        for p in range(50):
            rt.access(p)
        b = rt.result().breakdown
        assert b.bottleneck == "ssd"
        expected = 50 * PAGE_SIZE / (0.001 * GiB) * SEC
        assert b.elapsed_ns == pytest.approx(expected)

    def test_pcie_accounting_matches_transfers(self):
        rt = make_runtime(big_bandwidth_platform(), tier1=1, tier2=4)
        rt.access(1)
        rt.access(2)
        rt.access(1)
        # Placements: 1 then 2 (d2h); fetch of 1 (h2d).
        assert rt.pcie.d2h_transfers == 2
        assert rt.pcie.h2d_transfers == 1
        assert rt.pcie.total_bytes == 3 * PAGE_SIZE


class TestHmmAccounting:
    def test_host_overhead_on_every_miss(self):
        platform = big_bandwidth_platform()
        cfg = GMTConfig(
            tier1_frames=4,
            tier2_frames=8,
            platform=platform,
            sample_target=50,
            sample_batch=10,
        )
        hmm = HmmRuntime(cfg)
        for p in range(10):
            hmm.access(p)
        base = 10 * (
            platform.host_fault_overhead_ns
            + platform.tier2_lookup_ns
            + platform.ssd_read_latency_ns
        )
        # Evictions beyond Tier-1 capacity add Tier-2 move costs on top.
        assert hmm.cost.fault_latency_ns >= base
        assert hmm.cost.fault_latency_ns == pytest.approx(
            base + 6 * hmm._t2_move_ns
        )

    def test_hmm_divides_by_host_concurrency(self):
        platform = big_bandwidth_platform()
        cfg = GMTConfig(
            tier1_frames=4,
            tier2_frames=8,
            platform=platform,
            sample_target=50,
            sample_batch=10,
        )
        hmm = HmmRuntime(cfg)
        for p in range(20):
            hmm.access(p)
        b = hmm.result().breakdown
        assert b.fault_ns == pytest.approx(
            hmm.cost.fault_latency_ns / platform.host_fault_concurrency
        )
