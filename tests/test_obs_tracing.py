"""Unit tests for the span tracer and the exporters (repro.obs)."""

import json

import pytest

from repro.obs.export import (
    chrome_trace_events,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, SpanTracer


class TestSpanTracer:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)

    def test_record_and_filter(self):
        t = SpanTracer()
        t.record("miss", "access", 100.0, 50.0, page=7)
        t.record("evict", "evict", 200.0, 25.0)
        t.instant("prefetch", "access", 300.0, page=8)
        assert len(t) == 3
        assert len(t.spans(cat="access")) == 2
        assert t.spans(name="miss")[0].args == {"page": 7}
        assert t.spans(name="prefetch")[0].instant

    def test_bounded_drop_oldest(self):
        t = SpanTracer(capacity=2)
        for i in range(5):
            t.record("miss", "access", float(i), 1.0)
        assert len(t) == 2
        assert t.emitted == 5
        assert t.dropped == 3
        assert [s.args for s in t] == [{}, {}]
        assert [s.ts_ns for s in t] == [3.0, 4.0]

    def test_track_sequencing_prevents_overlap(self):
        """Same-name spans at the same virtual timestamp render as a
        sequential lane: each start is nudged past the previous end."""
        t = SpanTracer()
        a = t.record("miss", "access", 100.0, 50.0)
        b = t.record("miss", "access", 100.0, 30.0)
        c = t.record("miss", "access", 500.0, 10.0)
        assert a.ts_ns == 100.0
        assert b.ts_ns == 150.0  # pushed to a's end
        assert c.ts_ns == 500.0  # clock moved past the cursor; untouched

    def test_tracks_are_independent(self):
        t = SpanTracer()
        t.record("miss", "access", 100.0, 50.0)
        other = t.record("evict", "evict", 100.0, 10.0)
        assert other.ts_ns == 100.0

    def test_hottest_ranks_by_total_duration(self):
        t = SpanTracer()
        for _ in range(10):
            t.record("miss", "access", 0.0, 5.0)
        t.record("writeback", "evict", 0.0, 1000.0)
        top = t.hottest(2)
        assert top[0][0] == "writeback"
        assert top[1] == ("miss", 10, 50.0)

    def test_clear(self):
        t = SpanTracer()
        t.record("miss", "access", 100.0, 50.0)
        t.clear()
        assert len(t) == 0 and t.emitted == 0
        # cursor reset too: a new span at ts 0 stays at ts 0
        assert t.record("miss", "access", 0.0, 1.0).ts_ns == 0.0


class TestChromeTraceExport:
    def test_event_structure(self):
        t = SpanTracer()
        t.record("miss", "access", 2000.0, 1000.0, page=7)
        t.instant("prefetch", "access", 4000.0)
        events = chrome_trace_events({"GMT-Reuse": t})
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"GMT-Reuse", "miss", "prefetch"}
        complete = next(e for e in events if e["ph"] == "X")
        assert complete["ts"] == 2.0 and complete["dur"] == 1.0  # ns -> us
        assert complete["args"] == {"page": 7}
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"

    def test_multiple_processes_get_distinct_pids(self):
        a, b = SpanTracer(), SpanTracer()
        a.record("miss", "access", 0.0, 1.0)
        b.record("miss", "access", 0.0, 1.0)
        events = chrome_trace_events([("BaM", a), ("GMT-Reuse", b)])
        pids = {e["pid"] for e in events}
        assert pids == {0, 1}

    def test_write_is_loadable_json(self, tmp_path):
        t = SpanTracer()
        t.record("miss", "access", 0.0, 1.0)
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), {"run": t})
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == count
        assert doc["displayTimeUnit"] == "ns"


class TestPrometheusExport:
    def make_registry(self, **labels):
        reg = MetricsRegistry(const_labels=labels)
        reg.counter("gmt_t1_hits", help="Tier-1 hits").inc(8)
        reg.gauge("gmt_depth").set(3.0)
        h = reg.histogram("gmt_lat", help="latency", buckets=[1.0, 10.0])
        h.observe(5.0)
        return reg

    def test_text_format(self):
        text = prometheus_text(self.make_registry(runtime="GMT-Reuse"))
        assert "# HELP gmt_t1_hits_total Tier-1 hits" in text
        assert "# TYPE gmt_t1_hits_total counter" in text
        assert 'gmt_t1_hits_total{runtime="GMT-Reuse"} 8' in text
        assert "# TYPE gmt_depth gauge" in text
        assert 'gmt_lat_bucket{le="1",runtime="GMT-Reuse"} 0' in text
        assert 'gmt_lat_bucket{le="+Inf",runtime="GMT-Reuse"} 1' in text
        assert 'gmt_lat_sum{runtime="GMT-Reuse"} 5.0' in text
        assert 'gmt_lat_count{runtime="GMT-Reuse"} 1' in text
        assert text.endswith("\n")

    def test_merged_registries_share_headers(self):
        a = self.make_registry(runtime="BaM")
        b = self.make_registry(runtime="GMT-Reuse")
        text = prometheus_text([a, b])
        assert text.count("# TYPE gmt_t1_hits_total counter") == 1
        assert 'gmt_t1_hits_total{runtime="BaM"} 8' in text
        assert 'gmt_t1_hits_total{runtime="GMT-Reuse"} 8' in text

    def test_label_escaping(self):
        reg = MetricsRegistry(const_labels={"app": 'he said "hi"\n'})
        reg.counter("gmt_x").inc()
        text = prometheus_text(reg)
        assert r'app="he said \"hi\"\n"' in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_write_prometheus(self, tmp_path):
        path = tmp_path / "metrics.prom"
        text = write_prometheus(str(path), self.make_registry())
        assert path.read_text() == text


class TestJsonlExport:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "windows.jsonl"
        records = [{"window": 0, "x": 1}, {"window": 1, "x": 2}]
        assert write_jsonl(str(path), records) == 2
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == records


class TestTenantTracks:
    """Multi-tenant export: per-tenant Perfetto lanes."""

    def _thread_names(self, events):
        return {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["name"] == "thread_name"
        }

    def test_tenant_arg_splits_tracks(self):
        t = SpanTracer()
        t.record("miss", "access", 100.0, 10.0, tenant="bfs")
        t.record("miss", "access", 200.0, 10.0, tenant="pagerank")
        t.record("miss", "access", 300.0, 10.0, tenant="bfs")
        events = chrome_trace_events({"serve": t})
        names = self._thread_names(events)
        assert sorted(names.values()) == ["miss [bfs]", "miss [pagerank]"]
        # Spans land on their tenant's track.
        by_track = {}
        for e in events:
            if e["name"] == "miss" and e.get("ph") == "X":
                by_track.setdefault(names[e["tid"]], []).append(e)
        assert len(by_track["miss [bfs]"]) == 2
        assert len(by_track["miss [pagerank]"]) == 1

    def test_untagged_spans_keep_plain_track(self):
        t = SpanTracer()
        t.record("evict", "evict", 100.0, 5.0)
        t.record("evict", "evict", 200.0, 5.0, tenant="bfs")
        events = chrome_trace_events({"serve": t})
        names = self._thread_names(events)
        assert sorted(names.values()) == ["evict", "evict [bfs]"]

    def test_served_run_produces_tenant_lanes(self):
        from repro.experiments.harness import default_config
        from repro.serve import TenantServer, build_tenants

        config = default_config(8192)
        streams = build_tenants(["hotspot", "pathfinder"], config)
        server = TenantServer(config, streams)
        telemetry = server.attach_telemetry()
        server.run(solo_baselines=False)
        events = chrome_trace_events({telemetry.name: telemetry.tracer})
        names = set(self._thread_names(events).values())
        assert any(name.endswith("[hotspot]") for name in names)
        assert any(name.endswith("[pathfinder]") for name in names)
