"""Page-lifecycle flight recorder: ring bounds, journeys, queries, export."""

import random
import tracemalloc

import pytest

from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from repro.errors import ConfigError
from repro.obs import LifecycleQuery, Telemetry
from repro.obs.lifecycle import (
    FILL_KINDS,
    LifecycleEvent,
    LifecycleKind,
    LifecycleRecorder,
    lifecycle_trace_events,
    load_lifecycle_jsonl,
    write_lifecycle_jsonl,
)


def make_config(**kwargs):
    return GMTConfig(
        tier1_frames=kwargs.pop("tier1", 16),
        tier2_frames=kwargs.pop("tier2", 64),
        policy=kwargs.pop("policy", "reuse"),
        sample_target=200,
        sample_batch=40,
        **kwargs,
    )


def random_pages(n=3000, universe=512, seed=11):
    rng = random.Random(seed)
    return [rng.randrange(universe) for _ in range(n)]


def recorded_run(pages=None, config=None, capacity=None, writes=False):
    runtime = GMTRuntime(config or make_config())
    telemetry = Telemetry(lifecycle=capacity if capacity is not None else True)
    runtime.attach_telemetry(telemetry)
    rng = random.Random(3)
    for page in pages if pages is not None else random_pages():
        runtime.access(page, write=writes and rng.random() < 0.4)
    return runtime, telemetry


class TestRecorder:
    def test_emits_with_monotonic_seq(self):
        rec = LifecycleRecorder(capacity=None)
        for i in range(5):
            rec.emit(LifecycleKind.ADMIT, page=i, access=i)
        assert [e.seq for e in rec] == list(range(5))
        assert rec.emitted == 5 and rec.dropped == 0

    def test_ring_bound_respected_under_long_workload(self):
        rec = LifecycleRecorder(capacity=64)
        for i in range(1000):
            rec.emit(LifecycleKind.ADMIT, page=i % 7, access=i)
        assert len(rec) == 64
        assert rec.emitted == 1000
        assert rec.dropped == 936
        # Drop-oldest: survivors are the most recent emissions.
        assert [e.access for e in rec] == list(range(936, 1000))

    def test_ring_bound_in_live_run(self):
        runtime, telemetry = recorded_run(capacity=64)
        rec = telemetry.lifecycle
        assert rec.emitted > 64  # the workload outlives the ring
        assert len(rec) == 64
        assert rec.dropped == rec.emitted - 64

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            LifecycleRecorder(capacity=0)

    def test_filters(self):
        rec = LifecycleRecorder()
        rec.emit(LifecycleKind.ADMIT, page=1, access=0)
        rec.emit(LifecycleKind.DEMOTE, page=1, access=1)
        rec.emit(LifecycleKind.ADMIT, page=2, access=2)
        assert len(rec.events(page=1)) == 2
        assert len(rec.events(kind=LifecycleKind.ADMIT)) == 2
        assert len(rec.events(page=1, kind=LifecycleKind.ADMIT)) == 1

    def test_clear_resets_counts(self):
        rec = LifecycleRecorder()
        rec.emit(LifecycleKind.ADMIT, page=1, access=0)
        rec.clear()
        assert len(rec) == 0 and rec.emitted == 0 and rec.dropped == 0


class TestZeroCostWhenDisabled:
    def test_disabled_runtime_never_touches_the_recorder(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("LifecycleRecorder.emit called while disabled")

        monkeypatch.setattr(LifecycleRecorder, "emit", boom)
        runtime = GMTRuntime(make_config())
        for page in random_pages(n=800):
            runtime.access(page)
        assert runtime._flight is None

    def test_disabled_runtime_allocates_nothing_in_lifecycle_module(self):
        import repro.obs.lifecycle as lifecycle_module

        runtime = GMTRuntime(make_config())
        for page in random_pages(n=50):
            runtime.access(page)  # warm up lazily-built structures
        trace_filter = tracemalloc.Filter(True, lifecycle_module.__file__)
        tracemalloc.start()
        try:
            for page in random_pages(n=500, seed=12):
                runtime.access(page)
            snapshot = tracemalloc.take_snapshot().filter_traces([trace_filter])
        finally:
            tracemalloc.stop()
        assert snapshot.statistics("filename") == []


class TestRuntimeEmissionSites:
    def test_every_faulted_page_starts_with_an_admit(self):
        runtime, telemetry = recorded_run()
        query = LifecycleQuery(telemetry.lifecycle.events())
        for page in query.pages:
            journey = [
                e for e in query.journey(page) if e.kind is not LifecycleKind.RESOLVE
            ]
            assert journey[0].kind is LifecycleKind.ADMIT
            assert journey[0].cause in ("demand-miss", "prefetch")

    def test_event_counts_reconcile_with_stats(self):
        runtime, telemetry = recorded_run()
        rec = telemetry.lifecycle
        assert rec.dropped == 0
        stats = runtime.stats
        kinds = {}
        for event in rec:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        assert kinds.get(LifecycleKind.DEMOTE, 0) == stats.t2_placements
        assert kinds.get(LifecycleKind.T2_EVICT, 0) == stats.t2_evictions
        assert (
            kinds.get(LifecycleKind.ADMIT, 0)
            == stats.ssd_page_reads + stats.prefetch_wasted
        )
        assert kinds.get(LifecycleKind.PROMOTE, 0) == stats.t2_fetches

    def test_journeys_alternate_fills_and_exits(self):
        runtime, telemetry = recorded_run()
        query = LifecycleQuery(telemetry.lifecycle.events())
        for page in query.pages:
            resident = False
            for event in query.journey(page):
                if event.kind in FILL_KINDS:
                    assert not resident, f"double fill for page {page}"
                    resident = True
                elif event.kind in (LifecycleKind.DEMOTE, LifecycleKind.BYPASS):
                    assert resident, f"exit without residency for page {page}"
                    resident = False

    def test_bypass_records_dirtiness_detail(self):
        runtime, telemetry = recorded_run(writes=True)
        bypasses = telemetry.lifecycle.events(kind=LifecycleKind.BYPASS)
        if not bypasses:
            pytest.skip("workload produced no bypasses")
        assert all(
            e.detail == ("writeback-dirty" if e.dirty else "discard-clean")
            for e in bypasses
        )

    def test_standalone_flight_recorder_without_telemetry(self):
        runtime = GMTRuntime(make_config())
        rec = runtime.attach_flight_recorder(capacity=10_000)
        for page in random_pages(n=400):
            runtime.access(page)
        assert runtime._obs is None  # only the flight recorder is on
        assert rec.emitted > 0
        last_ts = max(e.ts_ns for e in rec)
        assert last_ts > 0  # clock wired to the runtime's cost model
        runtime.detach_flight_recorder()
        emitted = rec.emitted
        runtime.access(1)
        assert rec.emitted == emitted

    def test_detach_telemetry_clears_flight_hook(self):
        runtime, telemetry = recorded_run(pages=[1, 2, 3])
        assert runtime._flight is telemetry.lifecycle
        runtime.detach_telemetry()
        assert runtime._flight is None


class TestQueries:
    def test_explain_miss_names_the_page_and_cause(self):
        runtime, telemetry = recorded_run()
        query = LifecycleQuery(telemetry.lifecycle.events())
        fill = next(e for e in telemetry.lifecycle if e.kind in FILL_KINDS)
        answer = query.explain_miss(fill.access)
        assert answer is not None
        assert f"page {fill.page}" in answer
        assert "cold miss" in answer or "verdict" in answer or "departure" in answer

    def test_explain_miss_returns_none_for_hits(self):
        runtime, telemetry = recorded_run()
        filled = {e.access for e in telemetry.lifecycle if e.kind in FILL_KINDS}
        hit_access = next(
            i for i in range(runtime.stats.coalesced_accesses) if i not in filled
        )
        assert LifecycleQuery(telemetry.lifecycle.events()).explain_miss(hit_access) is None

    def test_refault_after_bypass_is_diagnosed_as_misprediction(self):
        rec = LifecycleRecorder()
        rec.emit(LifecycleKind.ADMIT, 7, access=10, tier_from="T3", tier_to="T1",
                 cause="demand-miss")
        rec.emit(LifecycleKind.BYPASS, 7, access=20, tier_from="T1", tier_to="T3",
                 cause="predicted-long", predicted="long", dirty=True)
        rec.emit(LifecycleKind.ADMIT, 7, access=30, tier_from="T3", tier_to="T1",
                 cause="demand-miss")
        answer = LifecycleQuery(rec.events()).explain_miss(30)
        assert "mispredicted" in answer

    def test_tier2_hit_is_credited_to_the_placement(self):
        rec = LifecycleRecorder()
        rec.emit(LifecycleKind.DEMOTE, 7, access=20, tier_from="T1", tier_to="T2",
                 cause="predicted-medium", predicted="medium")
        rec.emit(LifecycleKind.PROMOTE, 7, access=30, tier_from="T2", tier_to="T1",
                 cause="demand-miss")
        answer = LifecycleQuery(rec.events()).explain_miss(30)
        assert "paid off" in answer

    def test_misprediction_costs_charge_bypass_refaults(self):
        rec = LifecycleRecorder()
        # page 1: two charged refaults (one dirty -> +1 writeback)
        rec.emit(LifecycleKind.BYPASS, 1, access=0, predicted="long", dirty=True)
        rec.emit(LifecycleKind.ADMIT, 1, access=5)
        rec.emit(LifecycleKind.BYPASS, 1, access=9, predicted="long")
        rec.emit(LifecycleKind.ADMIT, 1, access=14)
        # page 2: demote (not charged), page 3: bypass never refaulted
        rec.emit(LifecycleKind.DEMOTE, 2, access=1)
        rec.emit(LifecycleKind.PROMOTE, 2, access=6)
        rec.emit(LifecycleKind.BYPASS, 3, access=2, predicted="long")
        costs = LifecycleQuery(rec.events()).misprediction_costs()
        assert [c.page for c in costs] == [1]
        (cost,) = costs
        assert cost.refaults == 2
        assert cost.writebacks == 1
        assert cost.ssd_page_ios == 3
        assert cost.predicted == {"long": 2}
        assert cost.ssd_bytes(65536) == 3 * 65536

    def test_top_k_limits_and_orders(self):
        rec = LifecycleRecorder()
        for page, bounces in ((1, 1), (2, 3), (3, 2)):
            for i in range(bounces):
                rec.emit(LifecycleKind.BYPASS, page, access=10 * page + 2 * i)
                rec.emit(LifecycleKind.ADMIT, page, access=10 * page + 2 * i + 1)
        top = LifecycleQuery(rec.events()).top_misprediction_costs(2)
        assert [c.page for c in top] == [2, 3]

    def test_residency_durations(self):
        rec = LifecycleRecorder()
        rec.emit(LifecycleKind.ADMIT, 5, access=10, tier_from="T3", tier_to="T1")
        rec.emit(LifecycleKind.DEMOTE, 5, access=25, tier_from="T1", tier_to="T2")
        rec.emit(LifecycleKind.PROMOTE, 5, access=40, tier_from="T2", tier_to="T1")
        rec.emit(LifecycleKind.BYPASS, 5, access=45, tier_from="T1", tier_to="T3")
        durations = LifecycleQuery(rec.events()).residency()
        assert durations["T1"] == [15, 5]
        assert durations["T2"] == [15]
        summary = LifecycleQuery(rec.events()).residency_summary()
        assert summary["T1"]["count"] == 2
        assert summary["T1"]["mean"] == 10.0
        assert summary["T2"]["max"] == 15.0

    def test_prediction_outcomes_tally(self):
        runtime, telemetry = recorded_run()
        outcomes = LifecycleQuery(telemetry.lifecycle.events()).prediction_outcomes()
        resolved = sum(outcomes.values())
        assert resolved == sum(
            1 for e in telemetry.lifecycle if e.kind is LifecycleKind.RESOLVE
        )
        stats = runtime.stats
        assert outcomes.get("correct", 0) == stats.correct_predictions
        assert (
            outcomes.get("correct", 0) + outcomes.get("mispredicted", 0)
            == stats.resolved_predictions
        )


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        runtime, telemetry = recorded_run(writes=True)
        events = telemetry.lifecycle.events()
        path = tmp_path / "lifecycle.jsonl"
        count = write_lifecycle_jsonl(str(path), events)
        assert count == len(events)
        loaded = load_lifecycle_jsonl(str(path))
        assert loaded == events

    def test_jsonl_extra_keys_survive_load(self, tmp_path):
        rec = LifecycleRecorder()
        rec.emit(LifecycleKind.ADMIT, 1, access=0)
        path = tmp_path / "lc.jsonl"
        write_lifecycle_jsonl(str(path), rec.events(), extra={"runtime": "reuse"})
        assert load_lifecycle_jsonl(str(path)) == rec.events()

    def test_trace_events_one_lane_per_kind(self):
        rec = LifecycleRecorder()
        rec.clock = lambda: 1000.0
        rec.emit(LifecycleKind.ADMIT, 1, access=0)
        rec.emit(LifecycleKind.DEMOTE, 1, access=1)
        rec.emit(LifecycleKind.ADMIT, 2, access=2)
        trace = lifecycle_trace_events(rec.events())
        meta = [e for e in trace if e["ph"] == "M"]
        instants = [e for e in trace if e["ph"] == "i"]
        assert {m["args"]["name"] for m in meta} == {
            "lifecycle/admit",
            "lifecycle/demote",
        }
        assert len(instants) == 3
        admit_tid = next(
            m["tid"] for m in meta if m["args"]["name"] == "lifecycle/admit"
        )
        assert [e["tid"] for e in instants if e["name"] == "admit"] == [admit_tid] * 2

    def test_tenant_events_get_their_own_lane(self):
        rec = LifecycleRecorder()
        tenant = {"name": None}
        rec.tenant_source = lambda: tenant["name"]
        rec.emit(LifecycleKind.ADMIT, 1, access=0)
        tenant["name"] = "bfs"
        rec.emit(LifecycleKind.ADMIT, 2, access=1)
        trace = lifecycle_trace_events(rec.events())
        names = {m["args"]["name"] for m in trace if m["ph"] == "M"}
        assert names == {"lifecycle/admit", "lifecycle/admit [bfs]"}

    def test_event_round_trips_through_dict(self):
        event = LifecycleEvent(
            seq=3, access=17, ts_ns=123.5, page=9, kind=LifecycleKind.BYPASS,
            tier_from="T1", tier_to="T3", cause="predicted-long",
            predicted="long", dirty=True, latency_ns=42.0, tenant="bfs",
            detail="writeback-dirty",
        )
        assert LifecycleEvent.from_dict(event.to_dict()) == event
