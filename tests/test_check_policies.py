"""Conformance harness x policy zoo: gmt-check with each eviction policy
substituted, and the seeded ghost-queue corruption self-test."""

import pytest

from repro.check.differential import run_conformance
from repro.check.identities import CATALOG
from repro.errors import ConfigError
from repro.policyzoo import ZOO_POLICY_NAMES

SCALE = 8192


class TestCatalogue:
    def test_eviction_structural_identity_registered(self):
        assert "eviction-structural" in {name for name, _ in CATALOG}


@pytest.mark.parametrize("name", ZOO_POLICY_NAMES)
class TestConformancePerPolicy:
    def test_full_matrix_passes(self, name):
        report = run_conformance(
            "hotspot",
            scale=SCALE,
            tier1_policy=name,
            tier2_policy=name,
        )
        assert report.ok, report.summary_lines()
        assert report.tier1_policy == name
        assert report.tier2_policy == name
        assert any(
            "eviction" in line for line in report.summary_lines()
        )


class TestGhostLeakSelfTest:
    def test_seeded_ghost_leak_is_detected(self):
        report = run_conformance(
            "hotspot",
            scale=SCALE,
            tier1_policy="s3fifo",
            metamorphic=False,
            serve=False,
            inject="ghost-leak",
        )
        assert not report.ok
        assert any(
            v.identity == "eviction-structural" for _, v in report.violations
        )

    def test_injection_needs_an_s3fifo_somewhere(self):
        with pytest.raises(ConfigError):
            run_conformance(
                "hotspot",
                scale=SCALE,
                metamorphic=False,
                serve=False,
                inject="ghost-leak",
            )

    def test_cli_exposes_the_injection(self, capsys):
        from repro.check.cli import main

        rc = main(
            [
                "hotspot",
                "--scale",
                str(SCALE),
                "--tier1-policy",
                "s3fifo",
                "--no-metamorphic",
                "--no-serve",
                "--inject",
                "ghost-leak",
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "eviction-structural" in out

    def test_cli_policy_flags_pass_clean(self, capsys):
        from repro.check.cli import main

        rc = main(
            [
                "hotspot",
                "--scale",
                str(SCALE),
                "--tier1-policy",
                "mglru",
                "--tier2-policy",
                "lfu",
                "--runtimes",
                "reuse",
                "--no-metamorphic",
            ]
        )
        assert rc == 0
        assert "t1=mglru" in capsys.readouterr().out
