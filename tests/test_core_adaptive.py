"""Tests for the set-dueling adaptive policy."""

import random

import pytest

from repro.core.adaptive import DuelingPolicy, _LeaderScore
from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from repro.core.stats import RuntimeStats
from repro.reuse.vtd import VirtualTimestampClock


@pytest.fixture
def config():
    return GMTConfig(
        tier1_frames=16,
        tier2_frames=64,
        policy="dueling",
        sample_target=200,
        sample_batch=50,
    )


def build(config):
    return DuelingPolicy(
        config, RuntimeStats(), VirtualTimestampClock(), random.Random(0)
    )


class TestLeaderScore:
    def test_optimistic_prior(self):
        assert _LeaderScore().yield_rate == 1.0

    def test_yield(self):
        score = _LeaderScore()
        score.placements = 4.0
        score.returns = 2.0
        assert score.yield_rate == 0.5

    def test_decay(self):
        score = _LeaderScore()
        score.placements = 8.0
        score.returns = 4.0
        score.decay(0.5)
        assert score.placements == 4.0
        assert score.yield_rate == 0.5  # ratio preserved


class TestDuelingPolicy:
    def test_registered_with_factory(self, config):
        runtime = GMTRuntime(config)
        assert isinstance(runtime.policy, DuelingPolicy)
        assert runtime.name == "GMT-dueling"

    def test_leader_sets_are_disjoint_and_sparse(self, config):
        policy = build(config)
        sets = [policy._set_of(p) for p in range(10_000)]
        a = sets.count("a")
        b = sets.count("b")
        assert 0 < a < 10_000 // 8
        assert 0 < b < 10_000 // 8
        assert sets.count(None) > 10_000 * 0.8

    def test_cold_start_follows_reuse(self, config):
        policy = build(config)
        assert policy.following == "reuse"

    def test_clear_advantage_switches_followers(self, config):
        policy = build(config)
        policy.score_a.placements = 100.0
        policy.score_a.returns = 90.0
        policy.score_b.placements = 100.0
        policy.score_b.returns = 10.0
        assert policy.following == "tier-order"

    def test_small_advantage_does_not_switch(self, config):
        policy = build(config)
        policy.score_a.placements = 100.0
        policy.score_a.returns = 52.0
        policy.score_b.placements = 100.0
        policy.score_b.returns = 50.0
        assert policy.following == "reuse"

    def test_runs_end_to_end_with_invariants(self, config):
        from tests.conftest import random_trace

        runtime = GMTRuntime(config)
        for warp in random_trace(1500, footprint=200, seed=8):
            runtime.access_warp(warp)
        runtime.check_invariants()
        assert runtime.stats.t1_evictions > 0

    def test_never_much_worse_than_both_policies(self, config):
        """The adaptive guarantee: close to the better constituent."""
        from repro.workloads import make_workload

        workload = make_workload("srad", 160, jitter_warps=32)
        elapsed = {}
        for pol in ("tier-order", "reuse", "dueling"):
            elapsed[pol] = (
                GMTRuntime(config.with_policy(pol)).run(workload).elapsed_ns
            )
        best = min(elapsed["tier-order"], elapsed["reuse"])
        assert elapsed["dueling"] <= best * 1.3

    def test_epoch_decay_applied(self, config):
        policy = build(config)
        policy.score_a.placements = 8.0
        policy._evictions_this_epoch = policy.EPOCH_EVICTIONS - 1
        from repro.core.placement import PlacementDecision
        from repro.core.policies import PlacementPlan
        from repro.mem.page import PageState

        plan = PlacementPlan(decision=PlacementDecision.BYPASS_TIER3)
        policy.on_evicted(PageState(page=2), plan)
        assert policy.score_a.placements == 4.0
