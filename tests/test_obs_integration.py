"""End-to-end telemetry tests: runtime wiring, windows, CLI, harness."""

import json
import random

import pytest

from repro.baselines.bam import BamRuntime
from repro.baselines.dragon import DragonRuntime
from repro.baselines.hmm import HmmRuntime
from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from repro.core.timeline import StatsTimeline
from repro.errors import ConfigError
from repro.obs import Telemetry


def make_config(**kwargs):
    return GMTConfig(
        tier1_frames=kwargs.pop("tier1", 32),
        tier2_frames=kwargs.pop("tier2", 128),
        policy=kwargs.pop("policy", "reuse"),
        sample_target=200,
        sample_batch=40,
        **kwargs,
    )


def random_pages(n=2000, universe=1024, seed=11):
    rng = random.Random(seed)
    return [rng.randrange(universe) for _ in range(n)]


class TestRuntimeWiring:
    def test_disabled_by_default(self):
        rt = GMTRuntime(make_config())
        rt.access(1)
        assert rt._obs is None

    def test_counters_track_stats_exactly(self):
        rt = GMTRuntime(make_config())
        tel = rt.attach_telemetry()
        for p in random_pages():
            rt.access(p)
        reg = tel.registry
        assert reg.get("gmt_t1_hits").value == rt.stats.t1_hits
        assert reg.get("gmt_t2_hits").value == rt.stats.t2_hits
        assert reg.get("gmt_ssd_page_reads").value == rt.stats.ssd_page_reads

    def test_fault_histogram_counts_misses(self):
        rt = GMTRuntime(make_config())
        tel = rt.attach_telemetry()
        for p in random_pages():
            rt.access(p)
        assert tel.fault_latency.count == rt.stats.t1_misses
        assert tel.fault_latency.sum > 0

    def test_spans_cover_the_pipeline(self):
        rt = GMTRuntime(make_config(tier1=4, tier2=8))
        tel = rt.attach_telemetry()
        for p in random_pages(500, universe=64):
            rt.access(p, write=(p % 3 == 0))
        names = {s.name for s in tel.tracer}
        assert {"miss", "t2-lookup", "ssd-read", "evict"} <= names
        assert "t2-fetch" in names or "place-t2" in names

    def test_writeback_span_on_dirty_bypass(self):
        rt = GMTRuntime(make_config(tier1=1, tier2=0, policy="tier-order"))
        tel = rt.attach_telemetry()
        rt.access(1, write=True)
        rt.access(2)
        assert tel.tracer.spans(name="writeback")

    def test_pcie_and_nvme_observed(self):
        rt = GMTRuntime(make_config(tier1=4, tier2=8))
        tel = rt.attach_telemetry()
        for p in random_pages(500, universe=64):
            rt.access(p)
        assert tel.pcie_transfer_bytes.count == (
            rt.pcie.h2d_transfers + rt.pcie.d2h_transfers
        )
        assert tel.nvme_io_bytes.count > 0

    def test_labels_describe_the_runtime(self):
        rt = GMTRuntime(make_config())
        tel = rt.attach_telemetry()
        labels = tel.registry.const_labels
        assert labels["policy"] == "reuse"
        assert labels["orchestration"] == "gpu"

    def test_double_attach_other_runtime_rejected(self):
        tel = Telemetry()
        GMTRuntime(make_config()).attach_telemetry(tel)
        with pytest.raises(ConfigError):
            GMTRuntime(make_config()).attach_telemetry(tel)

    def test_detach_clears_hooks(self):
        rt = GMTRuntime(make_config())
        rt.attach_telemetry()
        rt.detach_telemetry()
        assert rt._obs is None
        assert rt.pcie.observer is None
        assert rt.ssd.observer is None
        assert rt.policy.telemetry is None

    def test_markov_confidence_observed_under_reuse(self):
        rt = GMTRuntime(make_config(tier1=8, tier2=16))
        tel = rt.attach_telemetry()
        pages = random_pages(4000, universe=256, seed=5)
        for p in pages:
            rt.access(p)
        if rt.stats.predictions_made:
            assert tel.markov_confidence.count > 0

    def test_reuse_distance_observed(self):
        rt = GMTRuntime(make_config())
        tel = rt.attach_telemetry()
        for p in random_pages(3000, universe=128):
            rt.access(p)
        assert tel.reuse_distance.count > 0


class TestBaselines:
    @pytest.mark.parametrize(
        "cls,expected",
        [
            (BamRuntime, {"baseline": "bam", "orchestration": "gpu"}),
            (HmmRuntime, {"baseline": "hmm", "orchestration": "host"}),
            (DragonRuntime, {"baseline": "dragon", "mechanism": "mmap"}),
        ],
    )
    def test_attach_and_labels(self, cls, expected):
        rt = cls(make_config())
        tel = rt.attach_telemetry()
        for p in random_pages(500):
            rt.access(p)
        for key, value in expected.items():
            assert tel.registry.const_labels[key] == value
        assert tel.tracer.emitted > 0
        assert tel.fault_latency.count == rt.stats.t1_misses


class TestWindows:
    def test_delta_windows_sum_to_totals(self):
        rt = GMTRuntime(make_config())
        tel = rt.attach_telemetry(Telemetry(window=500))
        for p in random_pages():
            rt.access(p)
        tel.snapshotter.snapshot(rt.stats.coalesced_accesses)  # final partial
        wins = tel.windows()
        assert len(wins) >= 2
        assert sum(w["gmt_t1_hits"] for w in wins) == rt.stats.t1_hits
        assert sum(w["gmt_coalesced_accesses"] for w in wins) == (
            rt.stats.coalesced_accesses
        )

    def test_run_flushes_the_final_partial_window(self):
        from repro.sim.gpu import WarpAccess

        rt = GMTRuntime(make_config())
        tel = rt.attach_telemetry(Telemetry(window=500))
        # 1234 accesses = two full windows + one 234-access tail.
        rng = random.Random(4)
        rt.run(
            WarpAccess(pages=(rng.randrange(1024),)) for _ in range(1234)
        )
        wins = tel.windows()
        assert wins[-1]["position"] == rt.stats.coalesced_accesses
        assert sum(w["gmt_coalesced_accesses"] for w in wins) == (
            rt.stats.coalesced_accesses
        )

    def test_flush_is_idempotent_and_skips_empty_tails(self):
        rt = GMTRuntime(make_config())
        tel = rt.attach_telemetry(Telemetry(window=500))
        for p in random_pages(n=500):
            rt.access(p)
        count = len(tel.windows())  # the full window was cut on its edge
        tel.finish()
        assert len(tel.windows()) == count  # nothing pending: no new window
        tel.finish()
        assert len(tel.windows()) == count

    def test_detach_flushes_pending_tail(self):
        rt = GMTRuntime(make_config())
        tel = rt.attach_telemetry(Telemetry(window=500))
        for p in random_pages(n=750):
            rt.access(p)
        rt.detach_telemetry()
        wins = tel.windows()
        assert wins[-1]["position"] == 750
        assert sum(w["span"] for w in wins) == 750

    def test_windows_align_with_stats_timeline(self):
        rt = GMTRuntime(make_config())
        tel = rt.attach_telemetry(Telemetry(window=10_000_000))
        tl = StatsTimeline(rt, window=400, telemetry=tel)
        for p in random_pages():
            rt.access(p)
            tl.maybe_snapshot()
        registry_windows = tel.windows()
        timeline_windows = tl.windows()
        assert len(registry_windows) == len(timeline_windows)
        for rw, tw in zip(registry_windows, timeline_windows):
            assert rw["gmt_t1_hits"] == tw.t1_hits
            assert rw["gmt_t1_misses"] == tw.t1_misses


class TestCliAndHarness:
    def test_gmt_sim_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.cli import main_sim

        trace = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        rc = main_sim(
            [
                "hotspot",
                "--scale",
                "8192",
                "--runtimes",
                "bam",
                "reuse",
                "--trace-out",
                str(trace),
                "--metrics-out",
                str(prom),
            ]
        )
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        processes = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert len(processes) == 2
        text = prom.read_text()
        assert "gmt_t1_hits_total" in text
        assert "gmt_t1_misses_total" in text
        assert "# TYPE gmt_fault_latency_ns histogram" in text

    def test_harness_telemetry_dir(self, tmp_path):
        from repro.experiments import harness

        harness.clear_caches()
        harness.set_telemetry_dir(str(tmp_path))
        try:
            config = harness.default_config(8192)
            harness.run_app("hotspot", "reuse", config)
            # cached second run must not fail or duplicate work
            harness.run_app("hotspot", "reuse", config)
        finally:
            harness.set_telemetry_dir(None)
            harness.clear_caches()
        assert (tmp_path / "hotspot-reuse.trace.json").exists()
        assert (tmp_path / "hotspot-reuse.prom").exists()

    def test_harness_disabled_writes_nothing(self, tmp_path):
        from repro.experiments import harness

        harness.clear_caches()
        config = harness.default_config(8192)
        harness.run_app("hotspot", "bam", config)
        harness.clear_caches()
        assert list(tmp_path.iterdir()) == []
