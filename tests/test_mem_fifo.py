"""Unit tests for the Tier-2 FIFO queue."""

import pytest

from repro.errors import PageStateError
from repro.mem.fifo import FifoQueue


class TestFifoQueue:
    def test_push_and_len(self):
        q = FifoQueue()
        q.push(1)
        q.push(2)
        assert len(q) == 2
        assert 1 in q and 2 in q

    def test_fifo_order(self):
        q = FifoQueue()
        for p in (3, 1, 2):
            q.push(p)
        assert q.pop_oldest() == 3
        assert q.pop_oldest() == 1
        assert q.pop_oldest() == 2

    def test_duplicate_push_raises(self):
        q = FifoQueue()
        q.push(1)
        with pytest.raises(PageStateError):
            q.push(1)

    def test_pop_empty_raises(self):
        with pytest.raises(PageStateError):
            FifoQueue().pop_oldest()

    def test_remove_from_middle(self):
        q = FifoQueue()
        for p in (1, 2, 3):
            q.push(p)
        q.remove(2)
        assert 2 not in q
        assert q.pages() == [1, 3]

    def test_remove_absent_raises(self):
        with pytest.raises(PageStateError):
            FifoQueue().remove(7)

    def test_reinsert_moves_to_tail(self):
        # A page promoted to Tier-1 and evicted again re-enters at the tail.
        q = FifoQueue()
        for p in (1, 2):
            q.push(p)
        q.remove(1)
        q.push(1)
        assert q.pages() == [2, 1]
        assert q.pop_oldest() == 2
