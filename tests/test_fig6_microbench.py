"""Unit tests for the Figure 6 microbenchmark helpers."""

import pytest

from repro.experiments.fig6 import crossover_pages, zipf_delivered_bandwidth
from repro.sim.transfer import DmaEngine, HybridEngine, ZeroCopyEngine
from repro.units import GiB


class TestCrossoverPages:
    def test_default_engines_cross_near_eight(self):
        assert crossover_pages(DmaEngine(), ZeroCopyEngine()) == 8

    def test_never_crossing_returns_none(self):
        slow_zc = ZeroCopyEngine(pin_overhead_ns=1e12)
        assert crossover_pages(DmaEngine(), slow_zc, limit=64) is None

    def test_instant_zero_copy_crosses_at_one(self):
        fast_zc = ZeroCopyEngine(pin_overhead_ns=0.0, warp_bandwidth=1e15)
        assert crossover_pages(DmaEngine(), fast_zc) == 1


class TestZipfDeliveredBandwidth:
    def test_deterministic(self):
        engine = HybridEngine(min_threads=32)
        a = zipf_delivered_bandwidth(engine, 0.5, num_warps=300)
        b = zipf_delivered_bandwidth(engine, 0.5, num_warps=300)
        assert a == b

    def test_zero_copy_declines_with_skew(self):
        zc = ZeroCopyEngine()
        low = zipf_delivered_bandwidth(zc, 0.0, num_warps=500)
        high = zipf_delivered_bandwidth(zc, 1.2, num_warps=500)
        assert high < low

    def test_dma_roughly_flat(self):
        dma = DmaEngine()
        low = zipf_delivered_bandwidth(dma, 0.0, num_warps=500)
        high = zipf_delivered_bandwidth(dma, 1.0, num_warps=500)
        assert high == pytest.approx(low, rel=0.05)

    def test_bandwidths_physical(self):
        for engine in (DmaEngine(), ZeroCopyEngine(), HybridEngine()):
            bw = zipf_delivered_bandwidth(engine, 0.4, num_warps=300)
            assert 0 < bw < 64 * GiB

    def test_all_hits_gives_zero_bandwidth(self):
        # Cache as large as the footprint: after warm-up nothing transfers;
        # delivered bandwidth stays finite and small.
        engine = DmaEngine()
        bw = zipf_delivered_bandwidth(
            engine, 0.0, footprint_pages=64, cache_frames=64, num_warps=200
        )
        assert bw >= 0
