"""Unit tests for the exact reuse-distance tracker (Fenwick tree)."""

import pytest

from repro.reuse.distance import ReuseDistanceTracker, _FenwickTree, reuse_distances


class TestFenwickTree:
    def test_prefix_sums(self):
        t = _FenwickTree(8)
        t.add(3, 5)
        t.add(6, 2)
        assert t.prefix_sum(2) == 0
        assert t.prefix_sum(3) == 5
        assert t.prefix_sum(6) == 7
        assert t.prefix_sum(8) == 7

    def test_prefix_sum_beyond_size_clamps(self):
        t = _FenwickTree(4)
        t.add(4, 1)
        assert t.prefix_sum(100) == 1

    def test_prefix_sum_zero_index(self):
        assert _FenwickTree(4).prefix_sum(0) == 0

    def test_negative_updates(self):
        t = _FenwickTree(4)
        t.add(2, 1)
        t.add(2, -1)
        assert t.prefix_sum(4) == 0

    def test_out_of_range_add(self):
        t = _FenwickTree(4)
        with pytest.raises(IndexError):
            t.add(0, 1)
        with pytest.raises(IndexError):
            t.add(5, 1)


def naive_reuse_distances(pages):
    """Quadratic reference implementation."""
    result = []
    for i, page in enumerate(pages):
        prev = None
        for j in range(i - 1, -1, -1):
            if pages[j] == page:
                prev = j
                break
        if prev is None:
            result.append(None)
        else:
            result.append(len(set(pages[prev + 1 : i])))
    return result


class TestReuseDistanceTracker:
    def test_first_access_is_none(self):
        t = ReuseDistanceTracker()
        assert t.record(1) is None

    def test_immediate_reuse_is_zero(self):
        t = ReuseDistanceTracker()
        t.record(1)
        assert t.record(1) == 0

    def test_classic_example(self):
        assert reuse_distances([1, 2, 3, 1]) == [None, None, None, 2]

    def test_duplicates_not_double_counted(self):
        # 1 2 2 2 1: only one distinct page between the 1s.
        assert reuse_distances([1, 2, 2, 2, 1])[-1] == 1

    def test_matches_naive_on_mixed_trace(self):
        pages = [1, 2, 1, 3, 2, 4, 1, 4, 2, 5, 3, 3, 1]
        assert reuse_distances(pages) == naive_reuse_distances(pages)

    def test_matches_naive_on_random_trace(self):
        import random

        rng = random.Random(42)
        pages = [rng.randrange(20) for _ in range(500)]
        assert reuse_distances(pages) == naive_reuse_distances(pages)

    def test_counters(self):
        t = ReuseDistanceTracker()
        for p in [1, 2, 1]:
            t.record(p)
        assert t.accesses == 3
        assert t.distinct_pages == 2

    def test_growth_beyond_initial_capacity(self):
        t = ReuseDistanceTracker()
        n = t._INITIAL_CAPACITY + 100
        for p in range(n):
            t.record(p)
        # Reuse of the very first page sees n-1 distinct pages.
        assert t.record(0) == n - 1

    def test_sweep_distances_equal_footprint_minus_one(self):
        pages = list(range(50)) + list(range(50))
        rds = reuse_distances(pages)
        assert all(rd == 49 for rd in rds[50:])
