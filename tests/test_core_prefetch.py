"""Unit tests for the sequential prefetcher and related config knobs."""

import pytest

from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from repro.errors import ConfigError
from repro.mem.page import PageLocation


def make_runtime(prefetch_degree=2, tier1=8, tier2=16, **kwargs):
    cfg = GMTConfig(
        tier1_frames=tier1,
        tier2_frames=tier2,
        policy="tier-order",
        prefetch_degree=prefetch_degree,
        sample_target=50,
        sample_batch=10,
        **kwargs,
    )
    return GMTRuntime(cfg)


class TestPrefetchConfig:
    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            GMTConfig(tier1_frames=4, tier2_frames=4, prefetch_degree=-1)

    def test_zero_disables(self):
        rt = make_runtime(prefetch_degree=0)
        rt.access(10)
        assert rt.stats.prefetches_issued == 0


class TestPrefetchMechanics:
    def test_ssd_miss_prefetches_next_pages(self):
        rt = make_runtime(prefetch_degree=2)
        rt.access(10)
        assert rt.stats.prefetches_issued == 2
        assert rt.page_table.lookup(11).location is PageLocation.TIER1
        assert rt.page_table.lookup(12).location is PageLocation.TIER1
        assert rt.page_table.lookup(11).prefetched

    def test_prefetch_reads_ssd(self):
        rt = make_runtime(prefetch_degree=2)
        rt.access(10)
        assert rt.stats.ssd_page_reads == 3  # demand + 2 prefetches

    def test_already_resident_pages_skipped(self):
        rt = make_runtime(prefetch_degree=2)
        rt.access(11)  # brings 11 (demand), 12, 13 (prefetch)
        issued = rt.stats.prefetches_issued
        rt.access(10)  # prefetch of 11/12 must be skipped
        assert rt.stats.prefetches_issued == issued  # 11 and 12 resident

    def test_tier2_hits_do_not_prefetch(self):
        rt = make_runtime(prefetch_degree=2, tier1=2)
        rt.access(10)  # 10, 11, 12 in Tier-1 (cap 2 -> some evicted)
        rt.access(20)
        rt.access(21)
        # Find a page in Tier-2 and demand it back.
        t2_pages = list(rt.tier2)
        if t2_pages:
            issued = rt.stats.prefetches_issued
            rt.access(t2_pages[0])
            assert rt.stats.prefetches_issued == issued

    def test_demand_hit_on_prefetched_page_counts(self):
        rt = make_runtime(prefetch_degree=2)
        rt.access(10)
        rt.access(11)  # demand-hits the prefetched page
        assert rt.stats.prefetch_hits == 1
        assert not rt.page_table.lookup(11).prefetched
        assert rt.stats.t1_hits == 1  # it was a Tier-1 hit, not a miss

    def test_unused_prefetch_counted_wasted_on_eviction(self):
        rt = make_runtime(prefetch_degree=2, tier1=2, tier2=4)
        rt.access(10)  # fills tier1 with 10 + prefetched 11/12 (evicting)
        for p in (30, 40, 50):
            rt.access(p)
        assert rt.stats.prefetch_wasted > 0

    def test_prefetched_pages_evict_before_demanded_ones(self):
        rt = make_runtime(prefetch_degree=1, tier1=3, tier2=8)
        rt.access(10)  # Tier-1: 10 (ref) + 11 (prefetched, unref)
        rt.access(20)  # 20 fits; its prefetch of 21 must displace 11, not 10
        assert 10 in rt.tier1
        assert 20 in rt.tier1
        assert rt.page_table.lookup(11).location is not PageLocation.TIER1

    def test_accuracy_property(self):
        rt = make_runtime(prefetch_degree=1)
        rt.access(10)
        rt.access(11)
        assert rt.stats.prefetch_accuracy == 1.0

    def test_invariants_with_prefetching(self):
        rt = make_runtime(prefetch_degree=3, tier1=4, tier2=8)
        import random

        rng = random.Random(0)
        for _ in range(500):
            rt.access(rng.randrange(60), write=rng.random() < 0.3)
        rt.check_invariants()
        s = rt.stats
        # Conservation still holds: every SSD read is a demand miss or a
        # prefetch.
        assert s.ssd_page_reads == (s.t1_misses - s.t2_hits) + s.prefetches_issued


class TestAsyncEvictions:
    def test_async_never_increases_fault_term(self):
        import random

        def fault_term(async_evictions):
            cfg = GMTConfig(
                tier1_frames=8,
                tier2_frames=16,
                policy="tier-order",
                async_evictions=async_evictions,
                sample_target=50,
                sample_batch=10,
            )
            rt = GMTRuntime(cfg)
            rng = random.Random(1)
            for _ in range(400):
                rt.access(rng.randrange(50), write=rng.random() < 0.5)
            return rt.result().breakdown.fault_ns

        assert fault_term(True) <= fault_term(False)


class TestPredictorKnob:
    def test_invalid_predictor_rejected(self):
        with pytest.raises(ConfigError):
            GMTConfig(tier1_frames=4, tier2_frames=4, reuse_predictor="nn")

    def test_last_predictor_selected(self):
        from repro.reuse.markov import LastTierPredictor

        cfg = GMTConfig(
            tier1_frames=4,
            tier2_frames=4,
            reuse_predictor="last",
            sample_target=50,
            sample_batch=10,
        )
        rt = GMTRuntime(cfg)
        assert isinstance(rt.policy.predictor, LastTierPredictor)

    def test_heuristic_disable(self):
        from repro.workloads import make_workload

        cfg = GMTConfig(
            tier1_frames=16,
            tier2_frames=64,
            tier3_bias_enabled=False,
            sample_target=200,
            sample_batch=50,
        )
        workload = make_workload("hotspot", 160, jitter_warps=0)
        rt = GMTRuntime(cfg)
        rt.run(workload)
        assert rt.stats.forced_t2_placements == 0
