#!/usr/bin/env python3
"""Out-of-core ML training: where host memory earns its keep.

Backprop is the paper's biggest GMT-Reuse win (+179% over BaM, 81% less
SSD I/O): every epoch sweeps the weight pages forward then backward, so a
large share of evictions have host-memory-sized reuse distances.  This
example trains for a growing number of epochs and shows how the speedup
*grows as history accumulates* — the sampler needs accesses to fit the
VTD->RD line, and the Markov chain needs resolved evictions.

Also demonstrates a custom (non-paper) platform: an aggressive Gen4 SSD
narrows the tiers' latency gap and visibly shrinks GMT's advantage —
useful for "would this help on my box?" questions.

Run:  python examples/ml_outofcore.py
"""

from dataclasses import replace

from repro import BamRuntime, GMTConfig, GMTRuntime, PlatformModel
from repro.analysis.report import render_table
from repro.units import GiB, USEC
from repro.workloads import make_workload


def epochs_sweep(config: GMTConfig) -> None:
    rows = []
    for epochs in (2, 4, 8, 16):
        workload = make_workload("backprop", config, epochs=epochs)
        bam = BamRuntime(config).run(workload)
        runtime = GMTRuntime(config.with_policy("reuse"))
        gmt = runtime.run(workload)
        stats = gmt.stats
        rows.append(
            [
                epochs,
                gmt.speedup_over(bam),
                1 - gmt.ssd_io_bytes / bam.ssd_io_bytes,
                stats.prediction_accuracy,
                stats.predictions_made,
                stats.fallback_placements,
            ]
        )
    print(
        render_table(
            ["epochs", "speedup/BaM", "SSD I/O cut", "pred acc", "preds", "fallbacks"],
            rows,
            title="Backprop: GMT-Reuse warms up with training history",
        )
    )


def platform_comparison(config: GMTConfig) -> None:
    workload = make_workload("backprop", config, epochs=8)
    rows = []
    platforms = {
        "paper (Gen3 SSD, 130us)": config.platform,
        "fast Gen4 SSD (60us, 7GiB/s)": replace(
            config.platform,
            ssd_read_latency_ns=60 * USEC,
            ssd_read_bandwidth=7 * GiB,
            ssd_write_bandwidth=6 * GiB,
        ),
    }
    for name, platform in platforms.items():
        cfg = replace(config, platform=platform)
        bam = BamRuntime(cfg).run(workload)
        gmt = GMTRuntime(cfg.with_policy("reuse")).run(workload)
        rows.append([name, gmt.speedup_over(bam)])
    print()
    print(
        render_table(
            ["platform", "GMT-Reuse speedup/BaM"],
            rows,
            title="GMT's relative win persists on faster SSDs (both tiers speed up)",
        )
    )


def main() -> None:
    config = GMTConfig.paper_default(scale=512)
    epochs_sweep(config)
    platform_comparison(config)


if __name__ == "__main__":
    main()
