#!/usr/bin/env python3
"""Capture a Perfetto trace and a Prometheus snapshot of one replay.

Attaches :class:`~repro.obs.telemetry.Telemetry` to GMT-Reuse, replays
Hotspot, then exports the two artefacts the :mod:`repro.obs` package is
built around:

- ``trace_capture.trace.json`` — a Chrome Trace Event file of the miss
  path, eviction pipeline, Tier-2 maintenance and writebacks on the
  *simulated* time axis.  Open it at https://ui.perfetto.dev ("Open trace
  file"): each span name renders as its own lane.
- ``trace_capture.prom`` — a Prometheus text-format snapshot of every
  registered counter, derived rate, and latency/size histogram.

It also prints the top-5 hottest span tracks (by accumulated simulated
time), which is the 10-second answer to "where does this run spend its
time?".

Run:  python examples/trace_capture.py
"""

from repro import GMTConfig, GMTRuntime
from repro.analysis.report import render_table
from repro.obs.export import write_chrome_trace, write_prometheus
from repro.units import format_bytes
from repro.workloads import make_workload

TRACE_PATH = "trace_capture.trace.json"
PROM_PATH = "trace_capture.prom"


def main() -> None:
    config = GMTConfig.paper_default(scale=512)
    workload = make_workload("hotspot", config)

    runtime = GMTRuntime(config.with_policy("reuse"))
    telemetry = runtime.attach_telemetry()
    runtime.run(workload)

    events = write_chrome_trace(TRACE_PATH, {telemetry.name: telemetry.tracer})
    write_prometheus(PROM_PATH, telemetry.registry)

    stats = runtime.stats
    print(
        f"{workload.name} through {runtime.name}: "
        f"T1 hit rate {stats.t1_hit_rate:.0%}, T2 hit rate {stats.t2_hit_rate:.0%}, "
        f"SSD I/O {format_bytes(stats.io_bytes(config.page_size))}"
    )
    print(
        f"captured {telemetry.tracer.emitted} spans "
        f"({telemetry.tracer.dropped} dropped by the capacity bound)"
    )
    print()

    rows = [
        [name, count, f"{total_ns / 1e6:.2f} ms"]
        for name, count, total_ns in telemetry.tracer.hottest(5)
    ]
    print(
        render_table(
            ["span", "count", "total simulated time"],
            rows,
            title="Top-5 hottest span tracks",
        )
    )

    fault = telemetry.fault_latency
    print(
        f"\nfault latency: p50 ~{fault.quantile(0.5):.0f} ns, "
        f"p99 ~{fault.quantile(0.99):.0f} ns over {fault.count} misses"
    )
    print(f"\nwrote {events} trace events to {TRACE_PATH} (open at ui.perfetto.dev)")
    print(f"wrote Prometheus snapshot to {PROM_PATH}")


if __name__ == "__main__":
    main()
