#!/usr/bin/env python3
"""Capacity planning: size the tiers before buying the DRAM.

A team adopting GMT asks: *how much host memory should this box have for
our workload?*  Instead of simulating every geometry, one instrumented
pass builds the workload's miss-ratio curve (Mattson stack analysis), and
from it an analytic expected-fault-cost (AMAT) model for any
Tier-1/Tier-2 split — the analytic counterpart of the paper's Figure 12
sweep.  This example:

1. builds miss-ratio curves for two contrasting apps;
2. prints the analytic expected fault cost across Tier-2:Tier-1 ratios
   next to the *simulated* GMT-Reuse speedups for the same geometries;
3. answers planning questions ("capacity for 60% hit ratio?").

Run:  python examples/capacity_planning.py
"""

from dataclasses import replace

from repro import BamRuntime, GMTConfig, GMTRuntime
from repro.analysis.mrc import miss_ratio_curve
from repro.analysis.report import render_table
from repro.units import format_time
from repro.workloads import make_workload


def plan(app: str, config: GMTConfig) -> None:
    # The MRC comes from the program-order trace (an application
    # property); simulations run the jittered execution-order trace.
    footprint = config.working_set_frames()
    workload = make_workload(app, footprint, jitter_warps=0)
    mrc = miss_ratio_curve(workload)

    rows = []
    for ratio in (1, 2, 4, 8):
        tier2 = config.tier1_frames * ratio
        cfg = replace(config, tier2_frames=tier2)
        analytic_ns = mrc.expected_fault_ns(config.tier1_frames, tier2, cfg.platform)
        sim_workload = make_workload(app, footprint)
        bam = BamRuntime(cfg).run(sim_workload)
        gmt = GMTRuntime(cfg.with_policy("reuse")).run(sim_workload)
        t1, t2_frac, miss = mrc.tier_hit_fractions(config.tier1_frames, tier2)
        rows.append(
            [
                f"{ratio}x",
                f"{t2_frac:.0%}",
                f"{miss:.0%}",
                format_time(analytic_ns),
                gmt.speedup_over(bam),
            ]
        )
    print(
        render_table(
            ["Tier-2 size", "T2-band hits", "SSD misses", "analytic fault/access", "simulated speedup"],
            rows,
            title=f"{workload.name}: analytic plan vs simulated GMT-Reuse",
        )
    )

    for target in (0.4, 0.6, 0.8):
        capacity = mrc.capacity_for_hit_ratio(target)
        answer = f"{capacity} pages" if capacity is not None else "unachievable (cold misses)"
        print(f"  capacity for {target:.0%} hit ratio: {answer}")
    print()


def main() -> None:
    config = GMTConfig.paper_default(scale=512)
    for app in ("srad", "hotspot"):
        plan(app, config)
    print(
        "Reading the tables: where the analytic fault cost stops falling,\n"
        "extra host memory stops paying for itself — the same knee the\n"
        "simulated speedups show.  Hotspot also exposes the LRU model's\n"
        "blind spot: below the knee it predicts zero benefit, while\n"
        "GMT-Reuse's 80% heuristic (paper section 2.2) still extracts real\n"
        "hits from a Tier-2 that LRU would churn — plan with the analytic\n"
        "model, verify with the simulator."
    )


if __name__ == "__main__":
    main()
