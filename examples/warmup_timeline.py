#!/usr/bin/env python3
"""Watch GMT-Reuse learn: the warm-up timeline.

GMT-Reuse starts ignorant: the first evictions use a default strategy
while the sampler fits the VTD->RD line and the Markov chain accumulates
resolved history (paper section 2.1.3).  End-of-run averages hide this;
the :class:`~repro.core.timeline.StatsTimeline` makes it visible window
by window.  This example trains Backprop and prints, per window of
accesses: prediction coverage (history-driven decisions), Tier-2 hit
rate, and SSD reads — the learning curve of the policy.

Run:  python examples/warmup_timeline.py
"""

from repro import GMTConfig, GMTRuntime
from repro.analysis.report import render_histogram, render_table
from repro.core.timeline import StatsTimeline
from repro.workloads import make_workload


def main() -> None:
    config = GMTConfig.paper_default(scale=512)
    workload = make_workload("backprop", config, epochs=10)

    runtime = GMTRuntime(config.with_policy("reuse"))
    timeline = StatsTimeline(runtime, window=20_000)
    timeline.run(workload)

    rows = []
    for w in timeline.windows():
        rows.append(
            [
                w.index,
                w.accesses,
                f"{w.prediction_coverage:.0%}",
                f"{w.t2_hit_rate:.0%}",
                w.ssd_reads,
            ]
        )
    print(
        render_table(
            ["window", "accesses", "history-driven", "T2 hit rate", "SSD reads"],
            rows,
            title="Backprop through GMT-Reuse, 20k-access windows",
        )
    )

    print()
    print(
        render_histogram(
            [f"w{w.index}" for w in timeline.windows()],
            timeline.series("t2_hit_rate"),
            title="Tier-2 hit rate per window (the learning curve)",
            width=30,
        )
    )
    stats = runtime.stats
    print(
        f"\nEnd of run: prediction accuracy {stats.prediction_accuracy:.0%} "
        f"over {stats.resolved_predictions} resolved predictions; "
        f"{stats.fallback_placements} cold-phase fallbacks."
    )


if __name__ == "__main__":
    main()
