#!/usr/bin/env python3
"""Tuning Tier-1<->Tier-2 transfers (paper section 2.3 / Figure 6).

Moving 64 KB pages between GPU and host memory can go through the DMA
engine (``cudaMemcpyAsync``: cheap per batch, serialized per page) or
through warp zero-copy loads/stores (parallel, but pages must be pinned
first).  This example:

1. prints the efficiency curves and finds the crossover (~8 pages);
2. sweeps zipf-skewed access patterns over all engines, reproducing the
   Hybrid-32T recommendation;
3. shows the end-to-end effect of the engine choice on a real workload.

Run:  python examples/transfer_tuning.py
"""

from dataclasses import replace

from repro import BamRuntime, GMTConfig, GMTRuntime
from repro.analysis.report import render_table
from repro.experiments.fig6 import crossover_pages, zipf_delivered_bandwidth
from repro.sim.transfer import DmaEngine, HybridEngine, ZeroCopyEngine
from repro.units import GiB
from repro.workloads import make_workload


def efficiency_curves() -> None:
    dma, zc = DmaEngine(), ZeroCopyEngine()
    rows = [
        [n, dma.efficiency(n) / GiB, zc.efficiency(n) / GiB]
        for n in (1, 2, 4, 8, 16, 32)
    ]
    print(
        render_table(
            ["non-contiguous pages", "DMA GiB/s", "zero-copy GiB/s"],
            rows,
            title="Transfer efficiency (Figure 6(a))",
        )
    )
    print(f"  -> zero-copy overtakes DMA at {crossover_pages(dma, zc)} pages\n")


def zipf_sweep() -> None:
    engines = [DmaEngine(), ZeroCopyEngine(), HybridEngine(min_threads=32)]
    rows = []
    for skew in (0.0, 0.4, 0.8, 1.0):
        rows.append(
            [skew]
            + [zipf_delivered_bandwidth(e, skew) / GiB for e in engines]
        )
    print(
        render_table(
            ["zipf skew"] + [e.name for e in engines],
            rows,
            title="Delivered bandwidth across access skews (Figure 6(b))",
        )
    )
    print("  -> Hybrid-32T tracks the best mechanism everywhere\n")


def end_to_end_effect() -> None:
    config = GMTConfig.paper_default(scale=512)
    workload = make_workload("srad", config)
    bam = BamRuntime(config).run(workload)
    rows = []
    for engine in ("dma", "zero-copy", "hybrid-32t"):
        cfg = replace(config, transfer_engine=engine)
        result = GMTRuntime(cfg.with_policy("reuse")).run(workload)
        # The engine prices the Tier-1<->Tier-2 moves, so its footprint is
        # in the fault-latency term; elapsed time only moves when that
        # term is the bottleneck (on this platform the SSD usually is).
        rows.append(
            [
                engine,
                result.speedup_over(bam),
                result.breakdown.fault_ns / 1e6,
                result.breakdown.bottleneck,
            ]
        )
    print(
        render_table(
            ["Tier-1<->Tier-2 engine", "speedup/BaM", "fault term (ms)", "bottleneck"],
            rows,
            title="Engine choice, end to end (Srad)",
        )
    )


def main() -> None:
    efficiency_curves()
    zipf_sweep()
    end_to_end_effect()


if __name__ == "__main__":
    main()
