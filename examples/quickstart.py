#!/usr/bin/env python3
"""Quickstart: run one workload through BaM and all three GMT policies.

This is the 2-minute tour of the library:

1. build the paper's default geometry (Tier-1 "16 GB" at 1/256 scale,
   Tier-2 = 4x, over-subscription 2);
2. generate a Table 2 workload (Srad — high reuse, Tier-2 bias);
3. replay it through the 2-tier BaM baseline and the three GMT placement
   policies;
4. print speedups, SSD I/O, and hit rates.

Run:  python examples/quickstart.py
"""

from repro import BamRuntime, GMTConfig, GMTRuntime
from repro.analysis.report import render_table
from repro.units import format_bytes, format_time
from repro.workloads import make_workload


def main() -> None:
    # The paper's section 3.1 geometry, byte-scaled by 1/256 so a pure
    # Python run finishes in seconds (ratios are preserved exactly).
    config = GMTConfig.paper_default()
    print(
        f"Geometry: Tier-1={config.tier1_frames} frames, "
        f"Tier-2={config.tier2_frames} frames, "
        f"working set={config.working_set_frames()} pages "
        f"(over-subscription {2.0})\n"
    )

    # Workloads are sized from the config; they are re-iterable, so one
    # instance feeds every runtime with the identical trace.
    workload = make_workload("srad", config)

    baseline = BamRuntime(config).run(workload)
    rows = []
    for policy in ("tier-order", "random", "reuse"):
        result = GMTRuntime(config.with_policy(policy)).run(workload)
        rows.append(
            [
                result.runtime_name,
                result.speedup_over(baseline),
                format_time(result.elapsed_ns),
                format_bytes(result.ssd_io_bytes),
                f"{result.stats.t2_hit_rate:.0%}",
                result.breakdown.bottleneck,
            ]
        )
    rows.append(
        [
            baseline.runtime_name,
            1.0,
            format_time(baseline.elapsed_ns),
            format_bytes(baseline.ssd_io_bytes),
            "-",
            baseline.breakdown.bottleneck,
        ]
    )

    print(
        render_table(
            ["runtime", "speedup/BaM", "time", "SSD I/O", "T2 hit", "bottleneck"],
            rows,
            title=f"Srad through the hierarchy ({workload.footprint_pages} pages)",
        )
    )
    print(
        "\nGMT-Reuse wins by keeping the medium-reuse-distance image chunks "
        "in host memory\ninstead of refetching them from the SSD."
    )


if __name__ == "__main__":
    main()
