#!/usr/bin/env python3
"""Graph analytics over SSD-resident graphs (the paper's motivating case).

BaM-style systems exist because graphs outgrow GPU memory: GAP-Kron-scale
edge lists live on SSDs, and traversal order is data-dependent, so no
static prefetcher helps.  This example runs real BFS / PageRank / SSSP
algorithms over a synthetic RMAT (Kronecker) graph and compares:

- BaM        : 2-tier, every miss goes to the SSD;
- HMM        : 3-tier, but CPU-orchestrated (host page cache);
- GMT-Reuse  : 3-tier, GPU-orchestrated, reuse-predicted placement.

Also shows the prediction machinery at work: accuracy, Markov-chain
weights, and the Tier-3-bias heuristic state.

Run:  python examples/graph_analytics.py
"""

from repro import BamRuntime, GMTConfig, GMTRuntime, HmmRuntime
from repro.analysis.report import render_table
from repro.units import format_time
from repro.workloads import make_workload


def main() -> None:
    config = GMTConfig.paper_default(scale=512)  # half the default scale

    rows = []
    reuse_runtimes = {}
    for app in ("bfs", "pagerank", "sssp"):
        workload = make_workload(app, config)
        bam = BamRuntime(config).run(workload)
        hmm = HmmRuntime(config).run(workload)
        gmt_rt = GMTRuntime(config.with_policy("reuse"))
        gmt = gmt_rt.run(workload)
        reuse_runtimes[app] = gmt_rt
        rows.append(
            [
                workload.name,
                format_time(bam.elapsed_ns),
                format_time(hmm.elapsed_ns),
                format_time(gmt.elapsed_ns),
                gmt.speedup_over(bam),
                gmt.speedup_over(hmm),
            ]
        )

    print(
        render_table(
            ["graph app", "BaM", "HMM", "GMT-Reuse", "vs BaM", "vs HMM"],
            rows,
            title="Out-of-core graph analytics (RMAT graph, SSD-resident)",
        )
    )

    # Peek inside GMT-Reuse's predictor for PageRank: the 2-level history
    # captures its alternating reuse distances (paper Figure 4(c)).
    runtime = reuse_runtimes["pagerank"]
    policy = runtime.policy
    print("\nPageRank predictor state:")
    print(f"  VTD->RD model: {policy.sampler.model}")
    print(f"  prediction accuracy: {runtime.stats.prediction_accuracy:.1%}")
    print(f"  Markov transition weights: {policy.predictor.snapshot()}")
    print(
        f"  Tier-3-bias heuristic: long fraction "
        f"{policy.heuristic.long_fraction:.0%}, "
        f"forced placements {runtime.stats.forced_t2_placements}"
    )


if __name__ == "__main__":
    main()
