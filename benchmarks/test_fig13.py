"""Benchmark: regenerate Figure 13 (Tier-1 = "32 GB", non-graph apps)."""

from repro.experiments import fig13


def test_fig13(benchmark, scale, save_result):
    results = benchmark.pedantic(
        lambda: fig13.run(scale=scale), rounds=1, iterations=1
    )
    save_result(results)
    means = results[0].extras["means"]

    # Paper: GMT-Reuse delivers ~45% over BaM at the larger Tier-1 and
    # stays the best policy.
    assert means["reuse"] > 1.2
    assert means["reuse"] >= means["tier-order"]
    assert means["reuse"] >= means["random"]
