"""Benchmark: regenerate Figure 7 (RRD distributions / tier bias)."""

from repro.experiments import fig7
from repro.reuse.classifier import ReuseClass


def test_fig7(benchmark, scale, save_result):
    results = benchmark.pedantic(lambda: fig7.run(scale=scale), rounds=1, iterations=1)
    save_result(results)
    fractions = results[0].extras["access_fractions"]
    # The categories section 3.3 builds its analysis on:
    assert fractions["lavamd"][ReuseClass.SHORT] > 0.5      # Tier-1 bias
    assert fractions["pathfinder"][ReuseClass.SHORT] > 0.6  # Tier-1 bias
    assert fractions["multivectoradd"][ReuseClass.MEDIUM] > 0.5  # Tier-2 bias
    assert fractions["srad"][ReuseClass.MEDIUM] > 0.4       # Tier-2 bias
    assert fractions["hotspot"][ReuseClass.LONG] > 0.8      # Tier-3 bias
