"""Benchmark: regenerate Figure 8 — the headline result.

Paper shape: all three GMT policies speed up over BaM on average, with
GMT-Reuse clearly ahead (paper: 1.50 vs 1.24/1.07) via SSD I/O reductions.
"""

from repro.analysis.metrics import arithmetic_mean
from repro.experiments import fig8


def test_fig8(benchmark, scale, save_result):
    results = benchmark.pedantic(lambda: fig8.run(scale=scale), rounds=1, iterations=1)
    save_result(results)
    fig8a, fig8b = results
    means = fig8a.extras["means"]

    # Every policy beats BaM on average (Tier-2 matters, contribution #6).
    for policy in ("tier-order", "random", "reuse"):
        assert means[policy] > 1.0, policy

    # GMT-Reuse is the best policy and lands near the paper's 1.5x.
    assert means["reuse"] >= means["tier-order"]
    assert means["reuse"] >= means["random"]
    assert 1.2 <= means["reuse"] <= 2.2

    # The speedups come from SSD I/O reductions (Figure 8(b)).
    io = fig8b.extras["io_ratios"]
    assert arithmetic_mean(io["reuse"]) < 0.9

    # Per-app stories from section 3.3: Srad/Backprop/Hotspot are the big
    # GMT-Reuse winners; LavaMD is roughly flat.
    speedups = dict(zip([r[0] for r in fig8a.rows], [r[3] for r in fig8a.rows]))
    assert speedups["Srad"] > 1.3
    assert speedups["Backprop"] > 1.2
    assert speedups["Hotspot"] > 1.3
    assert 0.7 < speedups["LavaMD"] < 1.6
