"""Benchmarks for the extension studies (oracle gap, SSD scaling,
prefetching) — see repro.experiments.extensions."""

from repro.experiments import extensions


def test_oracle_gap(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: extensions.run_oracle_gap(scale), rounds=1, iterations=1
    )
    save_result([result])
    gaps = result.extras["gaps"]
    # The online predictor should sit close to its oracle on average —
    # GMT-Reuse's approximation of OPT is a good one.
    from repro.analysis.metrics import arithmetic_mean

    mean_gap = arithmetic_mean(list(gaps.values()))
    assert 0.85 <= mean_gap <= 1.5
    # Hotspot may legitimately beat its "oracle": perfect prediction says
    # LONG for everything, and only the forced heuristic fills Tier-2.
    assert gaps["hotspot"] < 1.2


def test_ssd_scaling(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: extensions.run_ssd_scaling(scale), rounds=1, iterations=1
    )
    save_result([result])
    means = result.extras["means"]
    # More drives -> SSD relief matters less -> speedup shrinks monotonically.
    counts = sorted(means)
    for a, b in zip(counts, counts[1:]):
        assert means[b] <= means[a] * 1.02
    # With one drive (the paper's platform) Tier-2 is clearly valuable.
    assert means[1] > 1.3


def test_model_validation(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: extensions.run_model_validation(scale), rounds=1, iterations=1
    )
    save_result([result])
    # On the paper's bandwidth-bound platform the queueing model must
    # reproduce the analytic roofline's speedups.
    for app, ratio in result.extras["ratios"].items():
        assert 0.85 <= ratio <= 1.2, app


def test_prefetch_study(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: extensions.run_prefetch_study(scale), rounds=1, iterations=1
    )
    save_result([result])
    ratios = result.extras["time_ratios"]
    # Demand-only movement wins in the bandwidth-bound regime: the
    # prefetcher never speeds these workloads up materially.
    assert all(r >= 0.95 for r in ratios.values())
