"""Benchmark: regenerate Table 2 (application characteristics)."""

from repro.experiments import table2


def test_table2(benchmark, scale, save_result):
    results = benchmark.pedantic(
        lambda: table2.run(scale=scale), rounds=1, iterations=1
    )
    save_result(results)
    measured = results[0].extras["measured"]
    # The suite must span the paper's reuse spectrum (1.17% .. 93.5%).
    assert measured["lavamd"]["reuse_percent"] < 5
    assert measured["backprop"]["reuse_percent"] > 85
    assert measured["srad"]["reuse_percent"] > 70
    assert measured["pathfinder"]["reuse_percent"] < 35
