"""Benchmark: regenerate Figure 9 (GMT-Reuse prediction accuracy)."""

from repro.experiments import fig9


def test_fig9(benchmark, scale, save_result):
    results = benchmark.pedantic(lambda: fig9.run(scale=scale), rounds=1, iterations=1)
    save_result(results)
    accs = results[0].extras["accuracies"]

    # High-reuse iterative apps build usable history (paper: high bars).
    for app in ("srad", "backprop", "hotspot", "multivectoradd"):
        assert accs[app] > 0.5, app

    # LavaMD's single pass builds "hardly any history" (section 3.3).
    assert accs["lavamd"] < 0.3
