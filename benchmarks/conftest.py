"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures through the
experiment modules, asserts its headline *shape* properties, prints the
rows (visible with ``pytest -s`` or in the saved artifacts), and writes
them to ``benchmarks/results/<name>.txt``.

Scale is controlled with ``GMT_BENCH_SCALE`` (byte-scale divisor vs the
paper's platform; default 256 — see DESIGN.md section 5).  Runs within a
session share the experiment harness's process-level cache, so the four
figures built on the default geometry pay for its 36 runs once.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> int:
    return int(os.environ.get("GMT_BENCH_SCALE", "256"))


@pytest.fixture(scope="session")
def scale() -> int:
    return bench_scale()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(results) -> str:
        text = "\n\n".join(r.to_text() for r in results)
        name = results[0].name
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
        return text

    return _save
