"""Benchmark: regenerate Figure 14 (HMM vs BaM vs GMT-Reuse, section 3.6)."""

from repro.experiments import fig14


def test_fig14(benchmark, scale, save_result):
    results = benchmark.pedantic(
        lambda: fig14.run(scale=scale), rounds=1, iterations=1
    )
    save_result(results)
    means = results[0].extras["means"]

    # BaM outperforms HMM despite HMM's Tier-2 — GPU orchestration wins.
    assert means["hmm_over_bam"] < 1.0
    # GMT-Reuse beats BaM and beats HMM by a large factor (paper: 4.57x).
    assert means["reuse_over_bam"] > 1.2
    assert means["reuse_over_hmm"] > 2.0
    # Even granting HMM GMT-Reuse's hit rates, orchestration keeps
    # GMT-Reuse ahead (paper: +90%).
    assert means["reuse_over_optimistic_hmm"] > 1.5
