"""Benchmark: regenerate Figure 12 (Tier-2:Tier-1 capacity ratio sweep)."""

from repro.analysis.metrics import arithmetic_mean
from repro.experiments import fig12


def test_fig12(benchmark, scale, save_result):
    results = benchmark.pedantic(
        lambda: fig12.run(scale=scale), rounds=1, iterations=1
    )
    save_result(results)
    series = results[0].extras["series"]

    # "Speedups will increase since there is scope for a larger working
    # set to be accommodated in Tier-2" — monotone in the ratio on average.
    means = [arithmetic_mean(series[r]) for r in (2, 4, 8)]
    assert means[0] < means[1] < means[2]

    # And per app, ratio 8 should never lose to ratio 2.
    for row in results[0].rows:
        assert row[3] >= row[1] * 0.95, row[0]
