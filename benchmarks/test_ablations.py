"""Ablation benchmarks for GMT-Reuse's design choices (DESIGN.md).

Each ablation switches off one ingredient and checks the paper's rationale
for including it:

- the 80% Tier-3-bias heuristic (section 2.2)     -> Hotspot collapses;
- 2-level Markov vs 1-level "last tier" history   -> alternating-pattern
  apps (PageRank, Figure 4(c)) lose accuracy;
- pipelined sampling (flush every batch) vs a single flush at the end of
  sampling -> "better placement for the early part of the execution";
- asynchronous background evictions (section 5 future work) -> never
  slower than synchronous.
"""

from dataclasses import replace

from repro.analysis.report import render_table
from repro.baselines.bam import BamRuntime
from repro.core.runtime import GMTRuntime
from repro.experiments.harness import default_config, get_workload


def _speedup(config, workload, **overrides):
    cfg = replace(config.with_policy("reuse"), **overrides)
    bam = BamRuntime(config).run(workload)
    res = GMTRuntime(cfg).run(workload)
    return res, res.speedup_over(bam)


def test_tier3_bias_heuristic_ablation(benchmark, scale, save_result):
    """Without the 80% rule, Hotspot's Tier-2 stays empty (section 3.3)."""
    config = default_config(scale)
    workload = get_workload("hotspot", config)

    def run():
        on, s_on = _speedup(config, workload)
        off, s_off = _speedup(config, workload, tier3_bias_enabled=False)
        return (on, s_on), (off, s_off)

    (on, s_on), (off, s_off) = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + render_table(
            ["heuristic", "speedup/BaM", "T2 hits", "forced placements"],
            [
                ["on", s_on, on.stats.t2_hits, on.stats.forced_t2_placements],
                ["off", s_off, off.stats.t2_hits, off.stats.forced_t2_placements],
            ],
            title="Ablation: 80% Tier-3-bias heuristic (Hotspot)",
        )
    )
    assert on.stats.forced_t2_placements > 0
    assert off.stats.forced_t2_placements == 0
    assert s_on > s_off  # the heuristic is what makes Hotspot win
    assert on.stats.t2_hits > 2 * max(1, off.stats.t2_hits)


def test_markov_vs_last_tier_history(benchmark, scale, save_result):
    """PageRank's alternating RRDs defeat a 1-level history (Fig. 4(c))."""
    config = default_config(scale)
    workload = get_workload("pagerank", config)

    def run():
        markov, s_markov = _speedup(config, workload)
        last, s_last = _speedup(config, workload, reuse_predictor="last")
        return (markov, s_markov), (last, s_last)

    (markov, s_markov), (last, s_last) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        "\n"
        + render_table(
            ["predictor", "speedup/BaM", "prediction accuracy"],
            [
                ["markov (2-level)", s_markov, markov.stats.prediction_accuracy],
                ["last-tier (1-level)", s_last, last.stats.prediction_accuracy],
            ],
            title="Ablation: 2-level Markov vs 1-level history (PageRank)",
        )
    )
    assert markov.stats.prediction_accuracy >= last.stats.prediction_accuracy


def test_pipelined_vs_oneshot_sampling(benchmark, scale, save_result):
    """Paper: pipelining samples to the CPU thread 'results in better
    placement for the early part of the execution'."""
    config = default_config(scale)
    workload = get_workload("srad", config)

    def run():
        pipelined, s_p = _speedup(config, workload)
        oneshot, s_o = _speedup(config, workload, sample_batch=config.sample_target)
        return (pipelined, s_p), (oneshot, s_o)

    (pipelined, s_p), (oneshot, s_o) = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + render_table(
            ["sampling", "speedup/BaM", "resolved predictions"],
            [
                ["pipelined (paper)", s_p, pipelined.stats.resolved_predictions],
                ["one-shot flush", s_o, oneshot.stats.resolved_predictions],
            ],
            title="Ablation: pipelined vs one-shot sampling (Srad)",
        )
    )
    # Pipelining can only help: the model exists earlier, so more early
    # evictions are predicted/resolved.
    assert pipelined.stats.resolved_predictions >= oneshot.stats.resolved_predictions
    assert s_p >= s_o * 0.97


def test_async_evictions_future_work(benchmark, scale, save_result):
    """Section 5: background eviction orchestration reduces miss latency."""
    config = default_config(scale)
    workload = get_workload("backprop", config)

    def run():
        sync, s_sync = _speedup(config, workload)
        async_, s_async = _speedup(config, workload, async_evictions=True)
        return (sync, s_sync), (async_, s_async)

    (sync, s_sync), (async_, s_async) = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + render_table(
            ["evictions", "speedup/BaM", "fault term (ms)"],
            [
                ["synchronous", s_sync, sync.breakdown.fault_ns / 1e6],
                ["background (section 5)", s_async, async_.breakdown.fault_ns / 1e6],
            ],
            title="Extension: asynchronous eviction orchestration (Backprop)",
        )
    )
    assert async_.breakdown.fault_ns <= sync.breakdown.fault_ns
    assert s_async >= s_sync * 0.999
