"""Benchmark: regenerate Figure 6 (transfer-scheme comparison)."""

from repro.experiments import fig6


def test_fig6(benchmark, scale, save_result):
    results = benchmark.pedantic(lambda: fig6.run(scale=scale), rounds=1, iterations=1)
    save_result(results)
    fig6a, fig6b = results
    # Figure 6(a): DMA/zero-copy crossover near 8 non-contiguous pages.
    assert 6 <= fig6a.extras["crossover"] <= 10
    # Figure 6(b): Hybrid-32T at (or close to) the best across all skews.
    series = fig6b.extras["series"]
    points = len(next(iter(series.values())))
    for i in range(points):
        best = max(series[name][i] for name in series)
        assert series["Hybrid-32T"][i] >= 0.55 * best
    # Zero-copy wins at low skew (many transfers)...
    assert series["zero-copy"][0] > series["cudaMemcpyAsync"][0]
    # ...and loses its edge at skew 1 (few transfers, pinning dominates).
    assert series["zero-copy"][-1] < series["zero-copy"][0] * 0.7
