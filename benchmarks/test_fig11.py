"""Benchmark: regenerate Figure 11 (over-subscription factor 4)."""

from repro.experiments import fig8, fig11


def test_fig11(benchmark, scale, save_result):
    results = benchmark.pedantic(
        lambda: fig11.run(scale=scale), rounds=1, iterations=1
    )
    save_result(results)
    means4 = results[0].extras["means"]
    means2 = fig8.run(scale=scale)[0].extras["means"]  # cached

    # Higher over-subscription shrinks everyone's speedups...
    assert means4["reuse"] < means2["reuse"]
    # ...but GMT-Reuse stays at-or-above BaM and remains the best policy
    # (paper: 1.23 vs 1.14 / 1.03).
    assert means4["reuse"] > 1.0
    assert means4["reuse"] >= means4["tier-order"] - 0.02
    assert means4["reuse"] >= means4["random"] - 0.02
