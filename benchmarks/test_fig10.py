"""Benchmark: regenerate Figure 10 (Tier-2 overhead accounting)."""

from repro.analysis.metrics import arithmetic_mean
from repro.experiments import fig10


def test_fig10(benchmark, scale, save_result):
    results = benchmark.pedantic(
        lambda: fig10.run(scale=scale), rounds=1, iterations=1
    )
    save_result(results)
    fig10a, fig10b = results

    # Figure 10(a): GMT-Reuse has no more wasteful lookups than GMT-Random
    # on average, and TierOrder "does quite bad" on the Tier-3-biased app.
    wasteful = fig10a.extras["wasteful"]
    assert arithmetic_mean(wasteful["reuse"]) <= arithmetic_mean(wasteful["random"]) * 1.1
    by_app = {row[0]: row for row in fig10a.rows}
    assert by_app["Hotspot"][1] > by_app["Hotspot"][3]  # TierOrder >> Reuse

    # Figure 10(b): GMT-Reuse's placements match its fetches more closely
    # than GMT-TierOrder's do (placements that get reused), on average.
    def imbalance(place_col, fetch_col):
        gaps = []
        for row in fig10b.rows:
            place, fetch = row[place_col], row[fetch_col]
            if place:
                gaps.append((place - fetch) / place)
        return arithmetic_mean(gaps)

    assert imbalance(5, 6) < imbalance(1, 2)  # Reuse cols vs TierOrder cols
