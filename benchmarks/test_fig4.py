"""Benchmark: regenerate Figure 4 (VTD/RD correlation, per-page RRD patterns)."""

from repro.experiments import fig4


def test_fig4(benchmark, scale, save_result):
    results = benchmark.pedantic(lambda: fig4.run(scale=scale), rounds=1, iterations=1)
    save_result(results)
    fig4a, fig4bc = results
    # Figure 4(a): near-linear VTD <-> RD relation for both apps.
    for r in fig4a.extras["correlations"].values():
        assert r > 0.9
    # Figure 4(b): MultiVectorAdd per-page RRDs mostly constant;
    # Figure 4(c): PageRank per-page RRDs mostly alternating.
    fr = fig4bc.extras["series_fractions"]
    assert fr["multivectoradd"]["constant"] > fr["multivectoradd"]["alternating"]
    assert fr["pagerank"]["alternating"] > fr["pagerank"]["constant"]
