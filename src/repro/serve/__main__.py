"""``python -m repro.serve`` — same entry point as the ``gmt-serve`` script."""

import sys

from repro.cli import main_serve

if __name__ == "__main__":
    sys.exit(main_serve())
