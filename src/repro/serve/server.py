"""The tenant server: replay N workload streams over one shared hierarchy.

:class:`TenantServer` is the serving layer's front door.  It builds the
merged schedule (:mod:`repro.serve.scheduler`), drives one
:class:`~repro.serve.runtime.TenantAwareRuntime` warp-by-warp while
switching the accounting/quota context to the issuing tenant, and returns
a :class:`ServeResult` carrying the aggregate :class:`RunResult` plus one
:class:`TenantResult` per stream — per-tenant counters, completion time,
slowdown versus a solo run of the same stream, and Jain-fairness
summaries across the mix.

Quick start::

    from repro.core.config import GMTConfig
    from repro.serve import TenantServer, build_tenants, QuotaConfig

    config = GMTConfig.paper_default(scale=2048)
    streams = build_tenants(["bfs", "pagerank"], config)
    server = TenantServer(config, streams, discipline="weighted-fair",
                          quota=QuotaConfig(mode="static"))
    outcome = server.run()
    print(outcome.to_table())
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis.metrics import jain_index
from repro.analysis.report import render_table
from repro.core.config import GMTConfig, PAPER_OVERSUBSCRIPTION
from repro.core.runtime import RunResult
from repro.core.stats import RuntimeStats
from repro.errors import ConfigError, SimulationError
from repro.serve.quota import QuotaConfig
from repro.serve.runtime import TenantAwareRuntime
from repro.serve.scheduler import SCHEDULER_NAMES, make_scheduler, warp_bytes
from repro.serve.stream import MAX_TENANTS, TenantSpec, TenantStream
from repro.units import format_bytes, format_time
from repro.workloads.registry import make_workload, normalize_name


@dataclass
class TenantResult:
    """One tenant's slice of a served run."""

    tenant: str
    workload: str
    weight: float
    stats: RuntimeStats
    issued_warps: int
    issued_bytes: int
    #: Aggregate modelled time when this tenant's stream drained.
    finish_ns: float
    #: Elapsed time of the same stream replayed solo (None = not measured).
    solo_ns: float | None = None
    peak_tier1: int = 0
    peak_tier2: int = 0
    tier1_budget: int | None = None
    tier2_budget: int | None = None
    #: Streaming-digest percentiles of the tenant's modelled miss
    #: latency (None = telemetry was not attached / tenant never missed).
    latency_p50_ns: float | None = None
    latency_p99_ns: float | None = None
    #: Same percentiles from the tenant's *solo* baseline replay (None =
    #: solos skipped, telemetry off, or the solo never missed).  Solo
    #: replays ride the vector engine where eligible — the digest is
    #: miss-side and therefore batch-capable.
    solo_latency_p50_ns: float | None = None
    solo_latency_p99_ns: float | None = None
    #: SLO targets from the tenant's spec (None = no target set).
    slo_p50_ns: float | None = None
    slo_p99_ns: float | None = None

    @property
    def slowdown(self) -> float | None:
        """Completion-time inflation vs the solo run (>1 = slower shared)."""
        if self.solo_ns is None:
            return None
        if self.solo_ns <= 0:
            raise SimulationError(
                f"tenant {self.tenant!r}: solo baseline has zero elapsed time"
            )
        return self.finish_ns / self.solo_ns

    @property
    def slo_violations(self) -> list[str]:
        """Which latency targets the tenant missed (empty = all met or
        no targets/measurements)."""
        violated = []
        for label, measured, target in (
            ("p50", self.latency_p50_ns, self.slo_p50_ns),
            ("p99", self.latency_p99_ns, self.slo_p99_ns),
        ):
            if measured is not None and target is not None and measured > target:
                violated.append(label)
        return violated


@dataclass
class ServeResult:
    """Outcome of one served mix."""

    discipline: str
    quota_mode: str
    result: RunResult
    tenants: list[TenantResult] = field(default_factory=list)

    @property
    def elapsed_ns(self) -> float:
        """Makespan of the whole mix."""
        return self.result.elapsed_ns

    def slowdowns(self) -> list[float]:
        """Per-tenant slowdowns (empty when solo baselines were skipped)."""
        return [t.slowdown for t in self.tenants if t.slowdown is not None]

    def fairness(self) -> dict[str, float]:
        """min/max slowdown and Jain's index over the tenants' slowdowns.

        Jain's index is computed over *normalised service* (1/slowdown),
        so equal slowdowns — however large — score a perfect 1.0 and one
        starved tenant drags the index toward 1/N.
        """
        slowdowns = self.slowdowns()
        if not slowdowns:
            return {}
        service = [1.0 / s for s in slowdowns]
        return {
            "min_slowdown": min(slowdowns),
            "max_slowdown": max(slowdowns),
            "jain_index": jain_index(service),
        }

    def to_table(self) -> str:
        """Human-readable per-tenant comparison (CLI/report rendering)."""
        headers = [
            "tenant", "workload", "warps", "T1 hit", "SSD I/O",
            "finish", "slowdown", "p50/p99", "peak T1 (budget)", "peak T2 (budget)",
        ]
        rows: list[list[object]] = []
        for t in self.tenants:
            rows.append(
                [
                    t.tenant,
                    t.workload,
                    t.issued_warps,
                    f"{t.stats.t1_hit_rate:.0%}",
                    format_bytes(t.stats.io_bytes(self.result.page_size)),
                    format_time(t.finish_ns),
                    "-" if t.slowdown is None else f"{t.slowdown:.2f}x",
                    _latency_cell(t),
                    _peak_cell(t.peak_tier1, t.tier1_budget),
                    _peak_cell(t.peak_tier2, t.tier2_budget),
                ]
            )
        title = (
            f"{self.result.runtime_name} serving {len(self.tenants)} tenants "
            f"(discipline={self.discipline}, quotas={self.quota_mode}): "
            f"makespan {format_time(self.elapsed_ns)}"
        )
        text = render_table(headers, rows, title=title)
        fairness = self.fairness()
        if fairness:
            text += (
                f"\n  fairness: slowdown min {fairness['min_slowdown']:.2f}x / "
                f"max {fairness['max_slowdown']:.2f}x, "
                f"Jain's index {fairness['jain_index']:.3f}"
            )
        return text


def _peak_cell(peak: int, budget: int | None) -> str:
    return f"{peak}" if budget is None else f"{peak} ({budget})"


def _latency_cell(t: TenantResult) -> str:
    """``p50/p99`` miss-latency cell, flagging SLO violations with ``!``."""
    if t.latency_p50_ns is None and t.latency_p99_ns is None:
        return "-"
    violated = t.slo_violations
    parts = []
    for label, value in (("p50", t.latency_p50_ns), ("p99", t.latency_p99_ns)):
        text = "-" if value is None else format_time(value)
        if label in violated:
            text += "!"
        parts.append(text)
    return "/".join(parts)


def build_tenants(
    specs: list[str | TenantSpec],
    config: GMTConfig,
    oversubscription: float = PAPER_OVERSUBSCRIPTION,
    seed: int = 0,
    share_working_set: bool = True,
) -> list[TenantStream]:
    """Size and namespace one :class:`TenantStream` per spec.

    Plain workload names become unit-weight specs.  With
    ``share_working_set`` (the default) the paper's aggregate working set
    — ``oversubscription x (Tier-1 + Tier-2)`` — is divided evenly among
    the tenants, so total memory pressure matches the single-tenant
    setup; otherwise every tenant gets the full working set.  A single
    tenant therefore always reproduces the single-stream sizing.  Tenant
    ``i`` generates with ``seed + i`` so same-workload tenants do not
    replay identical traces.
    """
    if not specs:
        raise ConfigError("need at least one tenant")
    if len(specs) > MAX_TENANTS:
        raise ConfigError(f"too many tenants ({len(specs)} > {MAX_TENANTS})")
    resolved: list[TenantSpec] = []
    seen: dict[str, int] = {}
    for entry in specs:
        if isinstance(entry, str):
            entry = TenantSpec(name=entry, workload=entry)
        key = normalize_name(entry.workload)
        name = entry.name
        if name in seen or any(
            s.name == name for s in resolved
        ):  # disambiguate duplicates: bfs, bfs-2, bfs-3 ...
            seen[name] = seen.get(name, 1) + 1
            name = f"{name}-{seen[name]}"
        entry = replace(entry, name=name, workload=key)
        resolved.append(entry)

    total_ws = config.working_set_frames(oversubscription)
    footprint = max(1, total_ws // len(resolved)) if share_working_set else total_ws
    return [
        TenantStream(i, spec, make_workload(spec.workload, footprint, seed=seed + i))
        for i, spec in enumerate(resolved)
    ]


class _DrainTracking:
    """Stream proxy that reports when the scheduler drains it.

    Exposes the attributes the disciplines read (``index`` / ``arrival``
    / ``weight``); iteration passes through and fires ``on_drained`` when
    the underlying stream is exhausted — the moment the tenant's
    completion time is stamped.
    """

    def __init__(self, stream: TenantStream, on_drained) -> None:
        self.index = stream.index
        self.arrival = stream.arrival
        self.weight = stream.weight
        self._stream = stream
        self._on_drained = on_drained

    def __iter__(self):
        yield from self._stream
        self._on_drained(self.index)


class TenantServer:
    """Multiplex tenant streams onto one shared :class:`GMTRuntime`.

    Args:
        config: shared hierarchy configuration.
        streams: the tenants (see :func:`build_tenants`).
        discipline: scheduling discipline (:data:`SCHEDULER_NAMES`).
        epoch: warps emitted per scheduling decision; 1 (the default)
            reproduces the historical per-warp interleave byte for
            byte, larger epochs trade interleave granularity for fewer
            decisions (and fewer tenant-context switches).
        quota: per-tenant tier budgets (default: none).
        policy_factory: forwarded to the runtime.
        tier1_policy / tier2_policy: server-wide default eviction policy
            for tenants whose :class:`TenantSpec` leaves the tier unset
            (``repro.policyzoo`` registry names).  When every tenant
            resolves to None the server keeps one shared structure per
            tier — the pre-zoo behaviour, byte-identical.
        governor: :class:`~repro.policyzoo.governor.GovernorConfig`
            enabling per-tenant migration admission control.
        engine: replay-engine request (``repro.core.ENGINE_NAMES``) for
            the *solo* baseline replays; the shared multiplexed runtime
            always replays scalar.  Defaults to ``config.engine``.
    """

    def __init__(
        self,
        config: GMTConfig,
        streams: list[TenantStream],
        discipline: str = "round-robin",
        quota: QuotaConfig | None = None,
        policy_factory=None,
        tier1_policy: str | None = None,
        tier2_policy: str | None = None,
        governor=None,
        engine: str | None = None,
        epoch: int = 1,
    ) -> None:
        if not streams:
            raise ConfigError("TenantServer needs at least one tenant stream")
        if discipline not in SCHEDULER_NAMES:
            raise ConfigError(
                f"unknown discipline {discipline!r}; expected one of {SCHEDULER_NAMES}"
            )
        if epoch < 1:
            raise ConfigError(f"epoch must be >= 1, got {epoch}")
        indices = [s.index for s in streams]
        if indices != list(range(len(streams))):
            raise ConfigError("tenant stream indices must be 0..N-1 in order")
        for name in (tier1_policy, tier2_policy):
            if name is not None:
                from repro.policyzoo.registry import validate_policy_name

                validate_policy_name(name)
        self.config = config
        self.streams = streams
        self.discipline = discipline
        #: Warps emitted per scheduling decision (1 = the historical
        #: per-warp interleave, byte-identical to pre-epoch replays).
        self.epoch = epoch
        self.quota = quota or QuotaConfig()
        self._policy_factory = policy_factory
        self.governor = governor
        # Engine request for the *solo* baseline replays.  The shared
        # multiplexed runtime always replays scalar: per-tenant eviction
        # structures, quotas and the governor observe every access, and
        # namespaced page ids (tenant << 32) exceed the vector store's
        # dense capacity anyway.
        self.engine = engine
        #: Live engine resolution of each solo baseline replay, keyed by
        #: tenant index (filled by :meth:`solo_run`) — the surface
        #: ``gmt-serve`` prints and the ledger records.
        self.solo_resolutions: dict[int, tuple[str, str]] = {}
        # Per-tenant policy resolution: the tenant's spec wins, then the
        # server-wide default.  All-None at a tier keeps that tier's
        # single shared structure (exact pre-zoo replay).
        tier1_policies = [s.spec.tier1_policy or tier1_policy for s in streams]
        tier2_policies = [s.spec.tier2_policy or tier2_policy for s in streams]
        per_tenant_t1 = any(p is not None for p in tier1_policies)
        per_tenant_t2 = any(p is not None for p in tier2_policies)
        self.runtime = TenantAwareRuntime(
            config,
            tenant_names=[s.name for s in streams],
            quota=self.quota,
            weights=[s.weight for s in streams],
            policy_factory=policy_factory,
            tier1_policies=tier1_policies if per_tenant_t1 else None,
            tier2_policies=tier2_policies if per_tenant_t2 else None,
            governor=governor,
        )

    # -- telemetry -------------------------------------------------------
    def attach_telemetry(self, telemetry=None):
        """Attach tenant-labelling telemetry to the shared runtime."""
        return self.runtime.attach_telemetry(telemetry)

    def engine_resolution(self) -> tuple[str, str]:
        """Resolved engine of the *shared* multiplexed runtime.

        Always scalar today; the reason explains why, mirroring
        ``GMTRuntime.engine_resolution()`` so CLIs and the ledger treat
        served and solo runs uniformly.  Solo replays resolve per stream
        — see :attr:`solo_resolutions`.
        """
        return (
            "scalar",
            "shared multi-tenant hierarchy switches tenant context per access",
        )

    def tenant_registries(self, prefix: str = "gmt_") -> list:
        """Per-tenant metric registries (constant label ``tenant=<name>``).

        Each registry binds the tenant's private stats slice, so exporting
        them alongside the shared registry yields one Prometheus series
        per tenant per counter.
        """
        from repro.obs.metrics import MetricsRegistry

        registries = []
        base_labels = self.runtime.obs_labels()
        for stream, stats, digest in zip(
            self.streams, self.runtime.tenant_stats, self.runtime.tenant_digests
        ):
            labels = dict(base_labels)
            labels["tenant"] = stream.name
            reg = stats.bind_registry(MetricsRegistry(const_labels=labels), prefix)
            for q_name, q in (("p50", 0.50), ("p99", 0.99)):
                reg.gauge(
                    f"{prefix}tenant_latency_{q_name}_ns",
                    help=f"Streaming-digest {q_name} of this tenant's miss latency",
                    unit="ns",
                    fn=lambda d=digest, q=q: d.quantile(q),
                )
                target = getattr(stream.spec, f"slo_{q_name}_ns", None)
                if target is not None:
                    reg.gauge(
                        f"{prefix}tenant_slo_{q_name}_target_ns",
                        help=f"Configured {q_name} miss-latency SLO target",
                        unit="ns",
                        fn=lambda t=target: t,
                    )
                    reg.gauge(
                        f"{prefix}tenant_slo_{q_name}_ratio",
                        help=f"Measured {q_name} over its SLO target (>1 = violating)",
                        fn=lambda d=digest, q=q, t=target: d.quantile(q) / t,
                    )
            registries.append(reg)
        return registries

    # -- the serving loop ------------------------------------------------
    def run(
        self,
        solo_baselines: bool = True,
        solo_ns: dict[int, float] | None = None,
    ) -> ServeResult:
        """Replay the merged schedule; returns the mix outcome.

        Args:
            solo_baselines: replay every stream solo (same config, empty
                machine) to compute slowdowns.  Skipped when ``solo_ns``
                already provides the baselines.
            solo_ns: precomputed ``{tenant index: solo elapsed ns}`` —
                lets experiment sweeps amortise the solo runs across many
                served configurations.
        """
        runtime = self.runtime
        page_size = self.config.page_size
        scheduler = make_scheduler(self.discipline, epoch=self.epoch)
        issued_warps = [0] * len(self.streams)
        issued_bytes = [0] * len(self.streams)
        finish_ns: dict[int, float] = {}

        def on_drained(index: int) -> None:
            # Completion stamp: the aggregate modelled time when the
            # scheduler found the stream exhausted (for FIFO this is
            # immediately after the tenant's last warp; the interleaving
            # disciplines may be a few foreign warps late, which is noise
            # at trace scale).
            finish_ns[index] = self._elapsed_now()
            runtime.finish_tenant(index)

        tracked = [_DrainTracking(s, on_drained) for s in self.streams]
        last_tenant: int | None = None
        for tenant, warp in scheduler.schedule(tracked, page_size):
            if tenant != last_tenant:
                runtime.begin_tenant(tenant)
                last_tenant = tenant
            runtime.access_warp(warp)
            issued_warps[tenant] += 1
            issued_bytes[tenant] += warp_bytes(warp, page_size)
        runtime.begin_tenant(None)
        if runtime._obs is not None:
            # Flush the final partial telemetry window (the serving loop
            # drives accesses directly, bypassing GMTRuntime.run()).
            runtime._obs.finish()

        result = runtime.result()
        for stream in self.streams:
            # A scheduler that never pulled past a stream's end (or a
            # zero-warp stream) still gets a completion stamp.
            finish_ns.setdefault(stream.index, result.elapsed_ns)
        tenants: list[TenantResult] = []
        solo_digests: dict[int, object] = {}
        if solo_ns is None and solo_baselines:
            solo_ns = {}
            for s in self.streams:
                solo_telemetry = None
                if runtime._obs is not None:
                    # The served run is instrumented: instrument the solo
                    # baselines too, so per-tenant latency digests exist
                    # for both sides of the slowdown comparison.  The
                    # digest observes misses only, so the solo still
                    # rides the vector engine where eligible.
                    from repro.obs import Telemetry

                    solo_telemetry = Telemetry(
                        labels={"runtime": f"solo-{s.name}", "tenant": s.name}
                    )
                solo_ns[s.index] = self.solo_run(
                    s, telemetry=solo_telemetry
                ).elapsed_ns
                if solo_telemetry is not None:
                    solo_digests[s.index] = solo_telemetry.latency_digest
        for stream in self.streams:
            idx = stream.index
            quotas = runtime.quotas
            digest = runtime.tenant_digests[idx]
            tenants.append(
                TenantResult(
                    tenant=stream.name,
                    workload=stream.spec.workload,
                    weight=stream.weight,
                    stats=runtime.tenant_stats[idx],
                    issued_warps=issued_warps[idx],
                    issued_bytes=issued_bytes[idx],
                    finish_ns=finish_ns[idx],
                    solo_ns=None if solo_ns is None else solo_ns.get(idx),
                    latency_p50_ns=digest.p50 if digest.count else None,
                    latency_p99_ns=digest.p99 if digest.count else None,
                    solo_latency_p50_ns=(
                        solo_digests[idx].p50
                        if idx in solo_digests and solo_digests[idx].count
                        else None
                    ),
                    solo_latency_p99_ns=(
                        solo_digests[idx].p99
                        if idx in solo_digests and solo_digests[idx].count
                        else None
                    ),
                    slo_p50_ns=stream.spec.slo_p50_ns,
                    slo_p99_ns=stream.spec.slo_p99_ns,
                    peak_tier1=runtime.tier1.peak_owner_count(idx),
                    peak_tier2=runtime.tier2.peak_owner_count(idx),
                    tier1_budget=(
                        quotas.static_tier1_budget(idx) if quotas.enabled else None
                    ),
                    tier2_budget=(
                        quotas.static_tier2_budget(idx) if quotas.enabled else None
                    ),
                )
            )
        return ServeResult(
            discipline=self.discipline,
            quota_mode=self.quota.mode,
            result=result,
            tenants=tenants,
        )

    def _elapsed_now(self) -> float:
        """Cheap read of the aggregate modelled elapsed time so far."""
        runtime = self.runtime
        if runtime._queueing is not None:
            return runtime._queueing.makespan_ns
        return runtime.cost.breakdown(
            pcie_busy_ns=runtime.pcie.busy_time_ns(),
            ssd_busy_ns=runtime.ssd.busy_time_ns(),
        ).elapsed_ns

    def solo_run(self, stream: TenantStream, telemetry=None) -> RunResult:
        """Replay one tenant's stream alone on a fresh, unshared runtime.

        Engine selection honours :attr:`engine` (then ``config.engine``)
        via :func:`repro.core.factory.make_runtime` — except for tenants
        beyond index 0, whose namespaced page ids (``index << 32``) exceed
        the vector store's dense page-id capacity and therefore always
        replay scalar.  ``telemetry`` (a :class:`~repro.obs.Telemetry`)
        is attached before the replay; batch-capable telemetry — per-
        tenant latency digests included — keeps the solo on the vector
        engine.  The live resolution lands in :attr:`solo_resolutions`.
        """
        from repro.core.factory import make_runtime

        engine = self.engine
        if stream.index > 0:
            engine = "scalar"
        runtime = make_runtime(
            self.config,
            engine=engine,
            policy_factory=self._policy_factory,
            telemetry=telemetry is not None,
        )
        if telemetry is not None:
            runtime.attach_telemetry(telemetry)
        result = runtime.run(iter(stream))
        self.solo_resolutions[stream.index] = runtime.engine_resolution()
        return result
