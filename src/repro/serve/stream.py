"""Tenant identity and page-id namespacing.

A *tenant* is one workload stream admitted to a shared GMT hierarchy.
Tenants must never alias pages — two tenants reading "page 7" of their
own datasets touch different physical data — so every tenant's page ids
are namespaced into a disjoint range: tenant ``i`` owns pages
``[i << NAMESPACE_BITS, (i + 1) << NAMESPACE_BITS)``.  The owner of any
page is then a single shift (:func:`owner_of_page`), cheap enough for
quota checks on the eviction path.

Tenant 0's namespace is the identity mapping, which is what makes a
1-tenant serve run bit-for-bit reproduce the single-stream runtime (the
trace it replays is literally the same).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigError
from repro.sim.gpu import WarpAccess
from repro.workloads.trace import Workload

#: Bits reserved for the per-tenant page index.  Every workload footprint
#: in this codebase is far below 2**32 pages (that would be 256 TiB of
#: 64 KB pages), so tenants can never collide.
NAMESPACE_BITS = 32

#: Upper bound on tenant count implied by Python ints being unbounded is
#: none; this is a sanity cap so a typo'd tenant list fails loudly.  It
#: sits above the open-loop capacity experiment's 10k-tenant populations
#: with headroom.
MAX_TENANTS = 16384


def namespace_base(index: int) -> int:
    """First page id of tenant ``index``'s namespace."""
    return index << NAMESPACE_BITS


def owner_of_page(page: int) -> int:
    """Tenant index owning ``page`` (inverse of the namespacing)."""
    return page >> NAMESPACE_BITS


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one tenant's stream.

    Attributes:
        name: display name ("bfs", "pagerank-1", ...).
        workload: registry name of the workload to replay.
        weight: scheduling weight (weighted-fair discipline) and default
            quota share.
        arrival: number of scheduler-emitted warps before this stream
            joins (FIFO-arrival ordering; 0 = present from the start).
        slo_p50_ns / slo_p99_ns: optional latency targets for the
            tenant's modelled miss-latency percentiles; drives the
            per-tenant SLO gauges and the served-table violation marks
            (None = no target).
        tier1_policy / tier2_policy: eviction policy managing this
            tenant's frames at each tier, from the
            :mod:`repro.policyzoo` registry ("clock", "s3fifo", "mglru",
            "lfu", "mru", "lhd", ...).  None (the default) keeps the
            tenant on the server-wide policy — when every tenant leaves
            both unset, the server runs one shared structure per tier
            exactly as before the zoo existed.
    """

    name: str
    workload: str
    weight: float = 1.0
    arrival: int = 0
    slo_p50_ns: float | None = None
    slo_p99_ns: float | None = None
    tier1_policy: str | None = None
    tier2_policy: str | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(f"tenant {self.name!r}: weight must be positive")
        if self.arrival < 0:
            raise ConfigError(f"tenant {self.name!r}: arrival must be >= 0")
        for attr in ("slo_p50_ns", "slo_p99_ns"):
            target = getattr(self, attr)
            if target is not None and target <= 0:
                raise ConfigError(f"tenant {self.name!r}: {attr} must be positive")
        for attr in ("tier1_policy", "tier2_policy"):
            name = getattr(self, attr)
            if name is not None:
                from repro.policyzoo.registry import validate_policy_name

                validate_policy_name(name)


class TenantStream:
    """A tenant's workload with its pages mapped into the tenant namespace.

    Re-iterable, like the wrapped :class:`~repro.workloads.trace.Workload`:
    every ``iter()`` regenerates the same namespaced trace, so the same
    stream can be replayed both inside a served mix and solo (for the
    slowdown baseline).
    """

    def __init__(self, index: int, spec: TenantSpec, workload: Workload) -> None:
        if not 0 <= index < MAX_TENANTS:
            raise ConfigError(f"tenant index {index} out of range [0, {MAX_TENANTS})")
        self.index = index
        self.spec = spec
        self.workload = workload
        self.name = spec.name
        self.weight = spec.weight
        self.arrival = spec.arrival

    @property
    def footprint_pages(self) -> int:
        return self.workload.footprint_pages

    def __iter__(self) -> Iterator[WarpAccess]:
        base = namespace_base(self.index)
        if base == 0:
            # Tenant 0 is the identity namespace: pass the workload's own
            # WarpAccess objects through untouched (exact single-stream
            # reproduction, and no per-warp rebuild cost).
            yield from self.workload
            return
        for warp in self.workload:
            yield WarpAccess(
                pages=tuple(base + page for page in warp.pages), write=warp.write
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TenantStream({self.index}, {self.name!r}, "
            f"{self.footprint_pages} pages, w={self.weight})"
        )


class TenantPopulation:
    """Generate a service-scale tenant population (1k–10k tenants).

    Real serving fleets are zipf-shaped: a few heavy tenants own most of
    the data and traffic, a long tail of small tenants owns the rest.
    The population ranks tenants 1..N and draws three correlated
    zipf-skewed attributes per rank:

    - **footprint** — dataset size in pages, scaled into
      ``[min_footprint, max_footprint]``;
    - **weight** — scheduling weight (heavy tenants get proportionally
      more of the machine, like paid tiers);
    - **popularity** — the probability an open-loop arrival targets the
      tenant (:meth:`arrival_weights`), the knob that concentrates load
      on the head of the distribution.

    Ranks are shuffled by ``seed`` so tenant index does not encode size,
    and every derived quantity is deterministic in ``(tenants, seed)`` —
    the same population always builds byte-identical streams.

    Args:
        tenants: population size (1 .. :data:`MAX_TENANTS`).
        seed: base RNG seed; tenant ``i``'s workload generates with
            ``seed + i``.
        workload: registry name of the per-tenant workload (default
            ``"keyvalue"``, the cheap synthetic serving workload).
        skew: zipf exponent shaping footprints/weights/popularity
            (0 = uniform fleet).
        min_footprint / max_footprint: per-tenant dataset bounds, pages.
        slo_p50_ns / slo_p99_ns: optional fleet-wide latency SLOs
            stamped on every spec.
    """

    def __init__(
        self,
        tenants: int,
        seed: int = 0,
        workload: str = "keyvalue",
        skew: float = 1.1,
        min_footprint: int = 4,
        max_footprint: int = 64,
        slo_p50_ns: float | None = None,
        slo_p99_ns: float | None = None,
    ) -> None:
        if not 1 <= tenants <= MAX_TENANTS:
            raise ConfigError(
                f"population size {tenants} out of range [1, {MAX_TENANTS}]"
            )
        if skew < 0:
            raise ConfigError(f"population skew must be >= 0, got {skew}")
        if not 1 <= min_footprint <= max_footprint:
            raise ConfigError(
                f"footprint bounds must satisfy 1 <= min <= max, got "
                f"[{min_footprint}, {max_footprint}]"
            )
        self.tenants = tenants
        self.seed = seed
        self.workload = workload
        self.skew = skew
        self.min_footprint = min_footprint
        self.max_footprint = max_footprint
        self.slo_p50_ns = slo_p50_ns
        self.slo_p99_ns = slo_p99_ns
        import random

        # Rank r (0 = heaviest) carries zipf mass (r+1)^-skew; the
        # shuffle decouples tenant index from rank.
        rng = random.Random(seed)
        ranks = list(range(tenants))
        rng.shuffle(ranks)
        self._rank_of = ranks
        self._mass = [(r + 1) ** -skew for r in range(tenants)]

    def _scaled(self, index: int, lo: float, hi: float) -> float:
        """Rank mass mapped linearly into [lo, hi] (rank 0 -> hi)."""
        top = self._mass[0]
        bottom = self._mass[-1]
        mass = self._mass[self._rank_of[index]]
        if top == bottom:
            return hi
        return lo + (hi - lo) * (mass - bottom) / (top - bottom)

    def specs(self) -> list[TenantSpec]:
        """One :class:`TenantSpec` per tenant, deterministic in the seed."""
        width = len(str(self.tenants - 1))
        return [
            TenantSpec(
                name=f"t{i:0{width}d}",
                workload=self.workload,
                weight=round(self._scaled(i, 1.0, 8.0), 4),
                slo_p50_ns=self.slo_p50_ns,
                slo_p99_ns=self.slo_p99_ns,
            )
            for i in range(self.tenants)
        ]

    def footprints(self) -> list[int]:
        """Per-tenant dataset sizes in pages (zipf-scaled into bounds)."""
        return [
            max(
                self.min_footprint,
                int(self._scaled(i, self.min_footprint, self.max_footprint)),
            )
            for i in range(self.tenants)
        ]

    def arrival_weights(self) -> list[float]:
        """Relative probability an arrival targets each tenant."""
        return [self._mass[self._rank_of[i]] for i in range(self.tenants)]

    def build(self) -> list[TenantStream]:
        """Materialise the namespaced :class:`TenantStream` list."""
        from repro.workloads.registry import make_workload

        specs = self.specs()
        footprints = self.footprints()
        return [
            TenantStream(
                i, spec, make_workload(spec.workload, footprints[i], seed=self.seed + i)
            )
            for i, spec in enumerate(specs)
        ]
