"""Interleaving schedulers: merge tenant streams into one served trace.

A scheduler turns N re-iterable :class:`~repro.serve.stream.TenantStream`
objects into a single sequence of ``(tenant_index, WarpAccess)`` pairs on
the simulated-time axis.  The existing runtime replays the merged trace
warp-by-warp; *which* tenant's warp goes next is the entire scheduling
decision, exactly as a GPU serving stack interleaves kernels from
concurrent clients.

Three disciplines:

- ``round-robin`` — ``epoch`` warps per live tenant per cycle; the
  classic fair-share baseline.
- ``weighted-fair`` — deficit-style fairness on *issued bytes*: each
  decision serves the live tenant with the smallest
  ``bytes_issued / weight`` virtual time, so a tenant with weight 2
  streams twice the bytes of a weight-1 peer over any window.
- ``fifo`` — first-come-first-served batch scheduling: admitted streams
  run to completion in arrival order (ties broken by tenant index).
  The no-sharing control the fairness metrics are judged against.

All disciplines honour ``TenantStream.arrival`` (measured in emitted
warps): a stream is admitted once the schedule has emitted at least that
many warps; if nothing else is runnable the next pending arrival is
admitted early (*forced*) rather than stalling the machine.  Every
admission — on-time or forced — is recorded in the scheduler's
:attr:`~_EpochScheduler.admissions` log, so tests and the serving layer
can audit the gate.  For FIFO the gate cannot reorder emissions (both
on-time and forced admission pop the same arrival-sorted queue head), but
the log makes the force-admissions visible instead of silently starting
streams before their arrival.

**Epoch batching** (``epoch`` warps per scheduling decision) amortises
the per-warp decision cost when serving thousands of tenants: a picked
tenant keeps the machine for up to ``epoch`` consecutive warps before
the next decision.  ``epoch=1`` (the default) reproduces the historical
per-warp behaviour byte-for-byte.  Pending arrivals are still checked
between the warps of a batch, so a long epoch cannot delay an admission
past its gate; under weighted-fair a batch also ends early as soon as a
peer falls behind the batch owner's accrued virtual time.

The weighted-fair discipline keeps a **monotonic global virtual clock**
(the largest virtual time ever popped).  A late arrival is seeded at
``max(clock, heap-min)`` — never below the clock — so a newcomer that
finds the heap momentarily empty (mid-batch, or after the previous
cohort drained) cannot restart at ``vt=0`` and monopolise the machine
"catching up" on bytes it never issued.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import ConfigError
from repro.serve.stream import TenantStream
from repro.sim.gpu import WarpAccess

#: Discipline names accepted by :func:`make_scheduler` and the CLI.
SCHEDULER_NAMES = ("round-robin", "weighted-fair", "fifo")


def warp_bytes(warp: WarpAccess, page_size: int) -> int:
    """Bytes a warp instruction touches: unique pages x page size."""
    return len(set(warp.pages)) * page_size


@dataclass(frozen=True)
class Admission:
    """One stream's admission into the schedule (the gate audit trail).

    Attributes:
        tenant: the admitted stream's tenant index.
        emitted: schedule-emitted warp count at the moment of admission.
        forced: True when the stream was admitted *before* its arrival
            because nothing else was runnable (idle machine — matching
            ``_Pending.force_next`` semantics).
    """

    tenant: int
    emitted: int
    forced: bool


class _Pending:
    """Arrival bookkeeping shared by the disciplines."""

    def __init__(self, streams: Sequence[TenantStream]) -> None:
        order = sorted(streams, key=lambda s: (s.arrival, s.index))
        self.waiting: list[TenantStream] = list(order)
        self.emitted = 0
        self.log: list[Admission] = []

    def due(self) -> list[TenantStream]:
        """Pop every stream whose arrival time has been reached."""
        out: list[TenantStream] = []
        while self.waiting and self.waiting[0].arrival <= self.emitted:
            stream = self.waiting.pop(0)
            self.log.append(Admission(stream.index, self.emitted, False))
            out.append(stream)
        return out

    def force_next(self) -> TenantStream | None:
        """Admit the earliest pending stream early (nothing else runnable)."""
        if self.waiting:
            stream = self.waiting.pop(0)
            self.log.append(Admission(stream.index, self.emitted, True))
            return stream
        return None


class _EpochScheduler:
    """Base: epoch validation plus the shared admissions log surface."""

    def __init__(self, epoch: int = 1) -> None:
        if epoch < 1:
            raise ConfigError(f"scheduler epoch must be >= 1, got {epoch}")
        self.epoch = epoch
        #: Admission log of the most recent :meth:`schedule` call (the
        #: list is shared live with the running generator, so it fills
        #: as the schedule is consumed).
        self.admissions: list[Admission] = []


class RoundRobinScheduler(_EpochScheduler):
    """``epoch`` warps per live tenant per cycle (arrivals join at cycle
    boundaries)."""

    name = "round-robin"

    def schedule(
        self, streams: Sequence[TenantStream], page_size: int
    ) -> Iterator[tuple[int, WarpAccess]]:
        pending = _Pending(streams)
        self.admissions = pending.log
        live: list[tuple[int, Iterator[WarpAccess]]] = []
        while live or pending.waiting:
            for stream in pending.due():
                live.append((stream.index, iter(stream)))
            if not live:
                stream = pending.force_next()
                if stream is None:  # pragma: no cover - loop guard
                    break
                live.append((stream.index, iter(stream)))
            survivors: list[tuple[int, Iterator[WarpAccess]]] = []
            for index, it in live:
                drained = False
                for _ in range(self.epoch):
                    try:
                        warp = next(it)
                    except StopIteration:
                        drained = True
                        break
                    pending.emitted += 1
                    yield index, warp
                if not drained:
                    survivors.append((index, it))
            live = survivors


class WeightedFairScheduler(_EpochScheduler):
    """Serve the tenant with the smallest issued-bytes virtual time.

    ``virtual_time(t) = bytes_issued(t) / weight(t)``; a min-heap picks
    the next tenant, so the discipline is O(log N) per decision and
    deterministic (ties break by tenant index).  A monotonic global
    virtual clock — the largest virtual time ever popped — floors the
    seeding of late arrivals, so an admission into a momentarily empty
    heap cannot restart the virtual-time frame at zero and monopolise
    the machine catching up.
    """

    name = "weighted-fair"

    def schedule(
        self, streams: Sequence[TenantStream], page_size: int
    ) -> Iterator[tuple[int, WarpAccess]]:
        pending = _Pending(streams)
        self.admissions = pending.log
        #: heap of (virtual_time, index, iterator, weight)
        heap: list[tuple[float, int, Iterator[WarpAccess], float]] = []
        #: Monotonic global virtual clock: the largest vt ever popped.
        #: Popped vts are non-decreasing (push-backs only grow a popped
        #: vt, and admissions seed at or above the heap minimum), so
        #: whenever the heap is non-empty ``heap-min >= clock`` and the
        #: seed below equals the historical ``heap[0][0]``.
        clock = 0.0

        def admit(stream: TenantStream) -> None:
            # A late arrival starts at the current virtual-time frontier
            # so it cannot monopolise the machine "catching up" on bytes
            # it never intended to issue.  The clock floor matters when
            # the heap is momentarily empty (mid-batch, or between
            # cohorts): without it the newcomer would re-seed at 0.0.
            vt = max(clock, heap[0][0]) if heap else clock
            heapq.heappush(heap, (vt, stream.index, iter(stream), stream.weight))

        while heap or pending.waiting:
            for stream in pending.due():
                admit(stream)
            if not heap:
                stream = pending.force_next()
                if stream is None:  # pragma: no cover - loop guard
                    break
                admit(stream)
            vt, index, it, weight = heapq.heappop(heap)
            clock = max(clock, vt)
            drained = False
            served = 0
            while served < self.epoch:
                if served:
                    # Mid-batch: admissions stay on time, and the batch
                    # ends early once a peer is further behind than the
                    # owner's accrued virtual time.
                    for stream in pending.due():
                        admit(stream)
                    if heap and heap[0][0] < vt:
                        break
                try:
                    warp = next(it)
                except StopIteration:
                    drained = True
                    break
                pending.emitted += 1
                yield index, warp
                vt += warp_bytes(warp, page_size) / weight
                served += 1
            if not drained:
                heapq.heappush(heap, (vt, index, it, weight))


class FifoScheduler(_EpochScheduler):
    """First-come-first-served run-to-completion, gated on arrival.

    Streams join the run queue once the schedule has emitted
    ``arrival`` warps; an idle machine force-admits the earliest pending
    stream instead of stalling.  Because both paths pop the same
    arrival-sorted queue head, and drains run to completion, the gate
    never reorders emissions relative to plain sorted-arrival draining —
    it exists so the admission log tells the truth (a stream starting
    before its arrival is recorded as *forced*, not silently on time).
    Epoch batching is a no-op here: every drain is already maximal.
    """

    name = "fifo"

    def schedule(
        self, streams: Sequence[TenantStream], page_size: int
    ) -> Iterator[tuple[int, WarpAccess]]:
        pending = _Pending(streams)
        self.admissions = pending.log
        queue: deque[TenantStream] = deque()
        while queue or pending.waiting:
            queue.extend(pending.due())
            if not queue:
                stream = pending.force_next()
                if stream is None:  # pragma: no cover - loop guard
                    break
                queue.append(stream)
            stream = queue.popleft()
            for warp in stream:
                pending.emitted += 1
                yield stream.index, warp
                # Streams whose gate opens mid-drain join the queue now,
                # so the admission log stamps the true emitted count.
                queue.extend(pending.due())


_SCHEDULERS = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    WeightedFairScheduler.name: WeightedFairScheduler,
    FifoScheduler.name: FifoScheduler,
}


def make_scheduler(name: str, epoch: int = 1):
    """Instantiate a scheduling discipline by name.

    ``epoch`` is the number of warps a picked tenant may emit per
    scheduling decision; 1 reproduces per-warp scheduling exactly.
    """
    try:
        cls = _SCHEDULERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheduling discipline {name!r}; "
            f"expected one of {SCHEDULER_NAMES}"
        ) from None
    return cls(epoch=epoch)


def merge_streams(
    streams: Iterable[TenantStream],
    discipline: str = "round-robin",
    page_size: int = 65536,
    epoch: int = 1,
) -> Iterator[tuple[int, WarpAccess]]:
    """Convenience: one-shot merged schedule over ``streams``."""
    return make_scheduler(discipline, epoch=epoch).schedule(list(streams), page_size)
