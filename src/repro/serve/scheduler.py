"""Interleaving schedulers: merge tenant streams into one served trace.

A scheduler turns N re-iterable :class:`~repro.serve.stream.TenantStream`
objects into a single sequence of ``(tenant_index, WarpAccess)`` pairs on
the simulated-time axis.  The existing runtime replays the merged trace
warp-by-warp; *which* tenant's warp goes next is the entire scheduling
decision, exactly as a GPU serving stack interleaves kernels from
concurrent clients.

Three disciplines:

- ``round-robin`` — one warp per live tenant per cycle; the classic
  fair-share baseline.
- ``weighted-fair`` — deficit-style fairness on *issued bytes*: each step
  serves the live tenant with the smallest ``bytes_issued / weight``
  virtual time, so a tenant with weight 2 streams twice the bytes of a
  weight-1 peer over any window.
- ``fifo`` — first-come-first-served batch scheduling: streams run to
  completion in arrival order (ties broken by tenant index).  The
  no-sharing control the fairness metrics are judged against.

All disciplines honour ``TenantStream.arrival`` (measured in emitted
warps): a stream is admitted once the schedule has emitted at least that
many warps; if nothing else is runnable the next pending arrival is
admitted early rather than stalling the machine.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Sequence

from repro.errors import ConfigError
from repro.serve.stream import TenantStream
from repro.sim.gpu import WarpAccess

#: Discipline names accepted by :func:`make_scheduler` and the CLI.
SCHEDULER_NAMES = ("round-robin", "weighted-fair", "fifo")


def warp_bytes(warp: WarpAccess, page_size: int) -> int:
    """Bytes a warp instruction touches: unique pages x page size."""
    return len(set(warp.pages)) * page_size


class _Pending:
    """Arrival bookkeeping shared by the disciplines."""

    def __init__(self, streams: Sequence[TenantStream]) -> None:
        order = sorted(streams, key=lambda s: (s.arrival, s.index))
        self.waiting: list[TenantStream] = list(order)
        self.emitted = 0

    def due(self) -> list[TenantStream]:
        """Pop every stream whose arrival time has been reached."""
        out: list[TenantStream] = []
        while self.waiting and self.waiting[0].arrival <= self.emitted:
            out.append(self.waiting.pop(0))
        return out

    def force_next(self) -> TenantStream | None:
        """Admit the earliest pending stream early (nothing else runnable)."""
        if self.waiting:
            return self.waiting.pop(0)
        return None


class RoundRobinScheduler:
    """One warp per live tenant per cycle."""

    name = "round-robin"

    def schedule(
        self, streams: Sequence[TenantStream], page_size: int
    ) -> Iterator[tuple[int, WarpAccess]]:
        pending = _Pending(streams)
        live: list[tuple[int, Iterator[WarpAccess]]] = []
        while live or pending.waiting:
            for stream in pending.due():
                live.append((stream.index, iter(stream)))
            if not live:
                stream = pending.force_next()
                if stream is None:  # pragma: no cover - loop guard
                    break
                live.append((stream.index, iter(stream)))
            survivors: list[tuple[int, Iterator[WarpAccess]]] = []
            for index, it in live:
                try:
                    warp = next(it)
                except StopIteration:
                    continue
                pending.emitted += 1
                yield index, warp
                survivors.append((index, it))
            live = survivors


class WeightedFairScheduler:
    """Serve the tenant with the smallest issued-bytes virtual time.

    ``virtual_time(t) = bytes_issued(t) / weight(t)``; a min-heap picks
    the next tenant, so the discipline is O(log N) per warp and
    deterministic (ties break by tenant index).
    """

    name = "weighted-fair"

    def schedule(
        self, streams: Sequence[TenantStream], page_size: int
    ) -> Iterator[tuple[int, WarpAccess]]:
        pending = _Pending(streams)
        #: heap of (virtual_time, index, iterator, weight)
        heap: list[tuple[float, int, Iterator[WarpAccess], float]] = []

        def admit(stream: TenantStream) -> None:
            # A late arrival starts at the current minimum virtual time so
            # it cannot monopolise the machine "catching up" on bytes it
            # never intended to issue.
            vt = heap[0][0] if heap else 0.0
            heapq.heappush(heap, (vt, stream.index, iter(stream), stream.weight))

        while heap or pending.waiting:
            for stream in pending.due():
                admit(stream)
            if not heap:
                stream = pending.force_next()
                if stream is None:  # pragma: no cover - loop guard
                    break
                admit(stream)
            vt, index, it, weight = heapq.heappop(heap)
            try:
                warp = next(it)
            except StopIteration:
                continue
            pending.emitted += 1
            yield index, warp
            heapq.heappush(heap, (vt + warp_bytes(warp, page_size) / weight, index, it, weight))


class FifoScheduler:
    """First-come-first-served: drain each stream fully, in arrival order."""

    name = "fifo"

    def schedule(
        self, streams: Sequence[TenantStream], page_size: int
    ) -> Iterator[tuple[int, WarpAccess]]:
        for stream in sorted(streams, key=lambda s: (s.arrival, s.index)):
            for warp in stream:
                yield stream.index, warp


_SCHEDULERS = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    WeightedFairScheduler.name: WeightedFairScheduler,
    FifoScheduler.name: FifoScheduler,
}


def make_scheduler(name: str):
    """Instantiate a scheduling discipline by name."""
    try:
        return _SCHEDULERS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown scheduling discipline {name!r}; "
            f"expected one of {SCHEDULER_NAMES}"
        ) from None


def merge_streams(
    streams: Iterable[TenantStream],
    discipline: str = "round-robin",
    page_size: int = 65536,
) -> Iterator[tuple[int, WarpAccess]]:
    """Convenience: one-shot merged schedule over ``streams``."""
    return make_scheduler(discipline).schedule(list(streams), page_size)
