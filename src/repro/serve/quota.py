"""Per-tenant tier frame quotas: budgets, residency accounting, reclaim.

The serving layer's resource-isolation mechanism, mirroring TierBPF-style
migration admission control: each tenant holds a *frame budget* in Tier-1
and Tier-2, and the runtime's victim selection / placement admission is
steered so no tenant can flood a tier at its peers' expense.

Two enforcement modes (plus ``"none"``):

- ``static`` — hard caps.  Budgets are fixed shares of each tier's
  capacity (proportional to scheduling weight unless explicit shares are
  given).  A tenant at its Tier-1 budget evicts one of its *own* pages
  before filling a new one, so its residency can never exceed the budget;
  a tenant at its Tier-2 budget is denied placement (the page bypasses to
  Tier-3).
- ``dynamic`` — static shares plus idle reclaim.  A tenant that has not
  issued an access for ``idle_window`` coalesced accesses donates its
  unused budget to a pool split among the active tenants, so a lone
  active tenant can use (nearly) the whole tier; when an idle tenant
  wakes up, over-budget peers become the preferred eviction victims and
  the shares re-converge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigError
from repro.mem.tier import Tier

#: Quota modes accepted by :class:`QuotaConfig` and the CLI.
QUOTA_MODES = ("none", "static", "dynamic")


@dataclass(frozen=True)
class QuotaConfig:
    """Quota policy knobs for a served run.

    Attributes:
        mode: ``"none"`` | ``"static"`` | ``"dynamic"``.
        tier1_shares / tier2_shares: optional explicit capacity fractions
            per tenant (must be positive; normalised to sum to 1).  When
            None, shares are proportional to the tenants' scheduling
            weights.
        idle_window: coalesced accesses of inactivity after which a
            tenant's budget becomes reclaimable (dynamic mode only).
    """

    mode: str = "none"
    tier1_shares: tuple[float, ...] | None = None
    tier2_shares: tuple[float, ...] | None = None
    idle_window: int = 20_000

    def __post_init__(self) -> None:
        if self.mode not in QUOTA_MODES:
            raise ConfigError(
                f"unknown quota mode {self.mode!r}; expected one of {QUOTA_MODES}"
            )
        if self.idle_window < 1:
            raise ConfigError("idle_window must be >= 1")
        for label, shares in (("tier1", self.tier1_shares), ("tier2", self.tier2_shares)):
            if shares is not None and any(s <= 0 for s in shares):
                raise ConfigError(f"{label}_shares must all be positive")

    @property
    def enabled(self) -> bool:
        return self.mode != "none"


def split_frames(capacity: int, shares: Sequence[float]) -> list[int]:
    """Integer frame budgets from capacity fractions (largest remainder).

    Every tenant gets at least one frame; the budgets never sum to more
    than ``capacity``.  A zero-capacity tier yields all-zero budgets.
    """
    n = len(shares)
    if capacity <= 0 or n == 0:
        return [0] * n
    if capacity < n:
        raise ConfigError(
            f"cannot split {capacity} frames among {n} tenants "
            "(every tenant needs at least one frame)"
        )
    total = sum(shares)
    exact = [capacity * s / total for s in shares]
    budgets = [max(1, int(e)) for e in exact]
    # Largest-remainder top-up of any frames the floors left unassigned.
    leftover = capacity - sum(budgets)
    if leftover > 0:
        order = sorted(range(n), key=lambda i: exact[i] - int(exact[i]), reverse=True)
        for i in order[:leftover]:
            budgets[i] += 1
    while sum(budgets) > capacity:
        # The min-1 floor oversubscribed the tier (very skewed shares on
        # a tiny capacity): shave the largest budget until it fits —
        # terminates because capacity >= n allows all-ones.
        budgets[max(range(n), key=budgets.__getitem__)] -= 1
    return budgets


class OwnedTier(Tier):
    """A :class:`~repro.mem.tier.Tier` that also tracks per-owner residency.

    ``owner_of`` maps a page id to its tenant index (a single shift for
    namespaced pages).  Peak residency per owner is recorded so quota
    invariants ("residency never exceeded the budget") are checkable
    after the fact without per-access assertions.
    """

    def __init__(self, name: str, capacity: int, owner_of: Callable[[int], int]) -> None:
        super().__init__(name, capacity)
        self._owner_of = owner_of
        self._counts: dict[int, int] = {}
        self._peaks: dict[int, int] = {}

    def insert(self, page: int) -> None:
        super().insert(page)
        owner = self._owner_of(page)
        count = self._counts.get(owner, 0) + 1
        self._counts[owner] = count
        if count > self._peaks.get(owner, 0):
            self._peaks[owner] = count

    def remove(self, page: int) -> None:
        super().remove(page)
        owner = self._owner_of(page)
        self._counts[owner] -= 1

    def owner_count(self, owner: int) -> int:
        """Pages of ``owner`` currently resident in this tier."""
        return self._counts.get(owner, 0)

    def peak_owner_count(self, owner: int) -> int:
        """Highest residency ``owner`` ever reached in this tier."""
        return self._peaks.get(owner, 0)

    def owner_counts(self) -> dict[int, int]:
        """Snapshot ``{owner: resident pages}`` (zero entries pruned)."""
        return {o: c for o, c in self._counts.items() if c}


class TierQuotas:
    """Budget arithmetic + activity tracking for one served run.

    One instance serves both tiers; the runtime asks for
    :meth:`tier1_budget` / :meth:`tier2_budget` of the tenant it is about
    to charge and for :meth:`over_budget_tier1` / ``_tier2`` sets when
    hunting eviction victims.
    """

    def __init__(
        self,
        config: QuotaConfig,
        tier1_capacity: int,
        tier2_capacity: int,
        weights: Sequence[float],
    ) -> None:
        self.config = config
        self.tenants = len(weights)
        if self.tenants == 0:
            raise ConfigError("TierQuotas needs at least one tenant")
        t1_shares = config.tier1_shares or tuple(weights)
        t2_shares = config.tier2_shares or tuple(weights)
        if len(t1_shares) != self.tenants or len(t2_shares) != self.tenants:
            raise ConfigError(
                f"quota shares must name all {self.tenants} tenants "
                f"(got {len(t1_shares)} tier1, {len(t2_shares)} tier2)"
            )
        self._t1_static = split_frames(tier1_capacity, t1_shares) if config.enabled else []
        self._t2_static = split_frames(tier2_capacity, t2_shares) if config.enabled else []
        self._tier1_capacity = tier1_capacity
        self._tier2_capacity = tier2_capacity
        #: Last coalesced-access position each tenant was active at
        #: (-inf-ish start: every tenant counts as active until proven idle).
        self._last_active = [0] * self.tenants
        self._now = 0
        #: Tenants whose streams have drained — permanent budget donors.
        self._finished: set[int] = set()

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @property
    def mode(self) -> str:
        return self.config.mode

    # -- activity --------------------------------------------------------
    def note_active(self, tenant: int, position: int) -> None:
        """Record that ``tenant`` issued work at access ``position``."""
        self._last_active[tenant] = position
        if position > self._now:
            self._now = position

    def note_finished(self, tenant: int) -> None:
        """Mark ``tenant``'s stream as drained (its budget is reclaimable)."""
        self._finished.add(tenant)

    def _idle(self, tenant: int) -> bool:
        if tenant in self._finished:
            return True
        return self._now - self._last_active[tenant] > self.config.idle_window

    def active_tenants(self) -> list[int]:
        """Tenants currently considered active (dynamic-mode view).

        May be empty — e.g. after every stream drained.  An empty active
        set means there is no one to donate the idle budgets *to*, and
        every tenant keeps its static share.  (An earlier revision fell
        back to "everyone is active" here, which let each tenant count
        its *own* static share into the donated pool as well: a tenant
        that drained exactly at the ``idle_window`` boundary was both an
        idle donor and an active recipient, and the budgets summed to
        roughly twice the tier's capacity.)
        """
        return [t for t in range(self.tenants) if not self._idle(t)]

    # -- budgets ---------------------------------------------------------
    def _budget(self, static: list[int], tenant: int) -> int:
        if not self.enabled:
            return 1 << 62  # effectively unbounded
        base = static[tenant]
        if self.mode == "static":
            return base
        # dynamic: idle tenants' static budgets pool to the active set.
        # Idle tenants — and everyone, when no tenant is active — keep
        # their static share; only truly active tenants receive a cut of
        # the idle pool, so the budgets of any disjoint donor/recipient
        # split never sum past the tier's capacity.
        active = self.active_tenants()
        if tenant not in active:
            return base
        pool = sum(static[t] for t in range(self.tenants) if self._idle(t))
        return base + pool // len(active)

    def tier1_budget(self, tenant: int) -> int:
        """Effective Tier-1 frame budget of ``tenant`` right now."""
        return self._budget(self._t1_static, tenant)

    def tier2_budget(self, tenant: int) -> int:
        """Effective Tier-2 frame budget of ``tenant`` right now."""
        return self._budget(self._t2_static, tenant)

    def static_tier1_budget(self, tenant: int) -> int:
        return self._t1_static[tenant] if self.enabled else self._tier1_capacity

    def static_tier2_budget(self, tenant: int) -> int:
        return self._t2_static[tenant] if self.enabled else self._tier2_capacity

    # -- victim-hunting helpers -----------------------------------------
    def over_budget_tier1(self, tier: OwnedTier) -> set[int]:
        """Tenants holding more Tier-1 frames than their current budget."""
        if not self.enabled:
            return set()
        return {
            t
            for t, count in tier.owner_counts().items()
            if count > self.tier1_budget(t)
        }

    def over_budget_tier2(self, tier: OwnedTier) -> set[int]:
        """Tenants holding more Tier-2 frames than their current budget."""
        if not self.enabled:
            return set()
        return {
            t
            for t, count in tier.owner_counts().items()
            if count > self.tier2_budget(t)
        }
