"""Open-loop arrival processes on the simulated-nanosecond clock.

Closed-loop serving (the historical ``gmt-serve`` mode) replays each
tenant's stream as fast as the machine drains it — throughput is an
*output*.  Open-loop serving inverts that: requests arrive on their own
clock whether or not the machine keeps up, which is what exposes
capacity cliffs (queues grow without bound past saturation) and makes
"tenants per GPU at a p99 target" a measurable number.

Two processes, both seeded and deterministic (``random.Random``, no
global state):

- :class:`PoissonArrivals` — memoryless arrivals at a constant mean
  rate; the standard open-loop load model.
- :class:`BurstyArrivals` — a two-state Markov-modulated Poisson process
  (MMPP): a *calm* state at the base rate and a *burst* state at
  ``burst_factor`` times the base rate, with exponentially distributed
  dwell times.  Mean rate stays close to the base rate while the bursts
  stress admission control the way real serving traffic does.

Timestamps are integer nanoseconds on the same simulated axis the cost
models use, so arrival gaps compose with modelled service times without
unit juggling.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.errors import ConfigError
from repro.units import SEC

#: Process names accepted by :func:`make_arrival_process` and the CLI.
ARRIVAL_PROCESS_NAMES = ("poisson", "bursty")


class ArrivalProcess:
    """Base: a seeded generator of non-decreasing integer-ns timestamps."""

    name = "abstract"

    def __init__(self, rate_per_s: float, seed: int = 0) -> None:
        if rate_per_s <= 0:
            raise ConfigError(f"arrival rate must be positive, got {rate_per_s}")
        self.rate_per_s = rate_per_s
        self.seed = seed

    def _gaps(self, rng: random.Random) -> Iterator[float]:
        raise NotImplementedError

    def times(self, count: int) -> list[int]:
        """The first ``count`` arrival timestamps (ns), non-decreasing.

        A fresh seeded generator every call: the same process object
        always yields the same schedule (determinism is what makes
        capacity tables reproducible and cacheable).
        """
        if count < 0:
            raise ConfigError(f"arrival count must be >= 0, got {count}")
        rng = random.Random(self.seed)
        gaps = self._gaps(rng)
        out: list[int] = []
        now = 0.0
        for _ in range(count):
            now += next(gaps)
            out.append(int(now))
        return out


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival gaps at a fixed rate."""

    name = "poisson"

    def _gaps(self, rng: random.Random) -> Iterator[float]:
        mean_gap_ns = SEC / self.rate_per_s
        while True:
            yield rng.expovariate(1.0) * mean_gap_ns


class BurstyArrivals(ArrivalProcess):
    """Two-state MMPP: calm at the base rate, bursts at a multiple of it.

    Args:
        rate_per_s: the calm-state arrival rate.
        seed: RNG seed (deterministic schedule per seed).
        burst_factor: rate multiplier while bursting (> 1).
        burst_fraction: long-run fraction of time spent bursting, in
            (0, 1); with ``mean_dwell_s`` it fixes both states' mean
            exponential dwell times.
        mean_dwell_s: mean *burst* dwell time in seconds; the calm dwell
            is derived so the long-run burst fraction comes out right.
    """

    name = "bursty"

    def __init__(
        self,
        rate_per_s: float,
        seed: int = 0,
        burst_factor: float = 8.0,
        burst_fraction: float = 0.1,
        mean_dwell_s: float = 0.05,
    ) -> None:
        super().__init__(rate_per_s, seed)
        if burst_factor <= 1.0:
            raise ConfigError(f"burst_factor must be > 1, got {burst_factor}")
        if not 0.0 < burst_fraction < 1.0:
            raise ConfigError(
                f"burst_fraction must be in (0, 1), got {burst_fraction}"
            )
        if mean_dwell_s <= 0:
            raise ConfigError(f"mean_dwell_s must be positive, got {mean_dwell_s}")
        self.burst_factor = burst_factor
        self.burst_fraction = burst_fraction
        self.mean_dwell_s = mean_dwell_s

    def _gaps(self, rng: random.Random) -> Iterator[float]:
        burst_dwell_ns = self.mean_dwell_s * SEC
        calm_dwell_ns = burst_dwell_ns * (1.0 - self.burst_fraction) / self.burst_fraction
        calm_gap_ns = SEC / self.rate_per_s
        burst_gap_ns = calm_gap_ns / self.burst_factor
        bursting = False
        state_left_ns = rng.expovariate(1.0) * calm_dwell_ns
        while True:
            gap = rng.expovariate(1.0) * (burst_gap_ns if bursting else calm_gap_ns)
            # Consume dwell time; cross as many state boundaries as the
            # gap spans (a long calm gap can straddle a whole burst).
            while gap >= state_left_ns:
                gap -= state_left_ns
                bursting = not bursting
                mean_dwell = burst_dwell_ns if bursting else calm_dwell_ns
                state_left_ns = rng.expovariate(1.0) * mean_dwell
                # Remaining gap rescales to the new state's rate.
                gap *= burst_gap_ns / calm_gap_ns if bursting else calm_gap_ns / burst_gap_ns
            state_left_ns -= gap
            yield gap


def make_arrival_process(
    name: str, rate_per_s: float, seed: int = 0, **kwargs
) -> ArrivalProcess:
    """Instantiate an arrival process by registry name."""
    if name == "poisson":
        return PoissonArrivals(rate_per_s, seed=seed, **kwargs)
    if name == "bursty":
        return BurstyArrivals(rate_per_s, seed=seed, **kwargs)
    raise ConfigError(
        f"unknown arrival process {name!r}; "
        f"expected one of {ARRIVAL_PROCESS_NAMES}"
    )
