"""Tenant-aware runtime: a :class:`GMTRuntime` serving N streams at once.

Three things distinguish a served runtime from the single-stream one:

- **per-tenant accounting** — :class:`SplitStats` mirrors every counter
  increment into the active tenant's private
  :class:`~repro.core.stats.RuntimeStats` slice, so the shared run yields
  both the aggregate numbers and an exact per-tenant decomposition
  (including the cost of evictions a tenant's miss inflicted on others,
  charged to the tenant that caused the work);
- **quota enforcement** — the victim-selection and admission hooks of the
  base eviction pipeline are overridden to honour
  :class:`~repro.serve.quota.TierQuotas`: a tenant at its Tier-1 budget
  evicts its own pages first, over-budget tenants are preferred victims
  when a tier is physically full, and Tier-2 placement is denied to
  tenants over their host-memory budget (migration admission control);
- **tenant-labelled telemetry** — when telemetry is attached, every span
  and miss event carries a ``tenant=<name>`` argument so Perfetto renders
  per-tenant lanes and per-tenant metric registries export distinct
  Prometheus series.

With quotas disabled and a single tenant, every hook degenerates to the
base behaviour and the runtime reproduces the single-stream numbers
exactly (asserted in tests).
"""

from __future__ import annotations

from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime
from repro.core.stats import RuntimeStats
from repro.errors import ConfigError
from repro.mem.page import PageState
from repro.obs.digest import LatencyDigest
from repro.policyzoo.governor import GovernorConfig, MigrationGovernor
from repro.policyzoo.partition import PartitionedPolicy
from repro.policyzoo.registry import make_eviction_policy
from repro.serve.quota import OwnedTier, QuotaConfig, TierQuotas
from repro.serve.stream import owner_of_page

_SPLIT_FIELDS = frozenset(RuntimeStats.counter_names())


class SplitStats(RuntimeStats):
    """RuntimeStats that mirrors counter increments into a tenant slice.

    The hot path keeps its plain ``stats.t1_hits += 1`` writes; this
    subclass intercepts the attribute assignment and applies the delta to
    the active tenant's own :class:`RuntimeStats` as well.  The serving
    loop switches the target with :meth:`split_into` before each warp.
    """

    def split_into(self, target: RuntimeStats | None) -> None:
        """Mirror subsequent counter increments into ``target`` (None stops)."""
        object.__setattr__(self, "_split_target", target)

    def __setattr__(self, name: str, value) -> None:
        if name in _SPLIT_FIELDS:
            target = getattr(self, "_split_target", None)
            if target is not None:
                delta = value - getattr(self, name)
                if delta:
                    setattr(target, name, getattr(target, name) + delta)
        object.__setattr__(self, name, value)

    def record_prediction_outcome(self, predicted: str, actual: str) -> None:
        # resolved/correct counters split through __setattr__; the
        # confusion dict is mutated in place and needs explicit mirroring.
        super().record_prediction_outcome(predicted, actual)
        target = getattr(self, "_split_target", None)
        if target is not None:
            key = (predicted, actual)
            target.confusion[key] = target.confusion.get(key, 0) + 1


class _TenantObsShim:
    """Wraps an attached Telemetry to stamp emissions with the tenant.

    Spans gain a ``tenant=<name>`` argument (distinct Perfetto lanes, see
    :func:`repro.obs.export.chrome_trace_events`); the metrics registry
    and windowing passes straight through.
    """

    __slots__ = ("_obs", "_runtime")

    def __init__(self, obs, runtime: "TenantAwareRuntime") -> None:
        self._obs = obs
        self._runtime = runtime

    def _tenant(self) -> str | None:
        return self._runtime.current_tenant_label()

    def span(self, name: str, cat: str, dur_ns: float, **args) -> None:
        tenant = self._tenant()
        if tenant is not None:
            args["tenant"] = tenant
        self._obs.span(name, cat, dur_ns, **args)

    def instant(self, name: str, cat: str, **args) -> None:
        tenant = self._tenant()
        if tenant is not None:
            args["tenant"] = tenant
        self._obs.instant(name, cat, **args)

    def on_miss(self, page: int, fault_ns: float, source: str) -> None:
        tenant = self._tenant()
        if tenant is None:
            self._obs.on_miss(page, fault_ns, source)
            return
        self._obs.fault_latency.observe(fault_ns)
        self._obs.latency_digest.observe(fault_ns)
        self._runtime.tenant_digests[self._runtime._current].observe(fault_ns)
        self._obs.tracer.record(
            "miss", "access", self._obs.now_ns, fault_ns,
            page=page, src=source, tenant=tenant,
        )

    def tick(self, position: int) -> None:
        self._obs.tick(position)

    def finish(self) -> None:
        self._obs.finish()

    def detach(self) -> None:
        self._obs.detach()


class TenantAwareRuntime(GMTRuntime):
    """Shared GMT hierarchy multiplexing several tenant streams.

    Args:
        config: the shared hierarchy's geometry/policy/platform.
        tenant_names: display names, one per tenant (their length fixes
            the tenant count).
        quota: per-tenant tier budgets (default: no quotas).
        weights: scheduling weights, used as default quota shares.
        policy_factory: forwarded to :class:`GMTRuntime`.
        tier1_policies / tier2_policies: per-tenant eviction policy
            names (``repro.policyzoo`` registry), one entry per tenant;
            ``None`` entries fall back to the shared default for that
            tier.  Passing ``None`` for the whole list keeps the
            pre-zoo shared structure for that tier (byte-identical).
        governor: token-bucket migration admission control
            (:class:`~repro.policyzoo.governor.GovernorConfig`); None
            disables throttling.
    """

    orchestration = "gpu"

    def __init__(
        self,
        config: GMTConfig,
        tenant_names: list[str],
        quota: QuotaConfig | None = None,
        weights: list[float] | None = None,
        policy_factory=None,
        tier1_policies: list[str | None] | None = None,
        tier2_policies: list[str | None] | None = None,
        governor: GovernorConfig | None = None,
    ) -> None:
        if not tenant_names:
            raise ConfigError("TenantAwareRuntime needs at least one tenant")
        if weights is not None and len(weights) != len(tenant_names):
            raise ConfigError("weights must name every tenant")
        for label, policies in (
            ("tier1_policies", tier1_policies),
            ("tier2_policies", tier2_policies),
        ):
            if policies is not None and len(policies) != len(tenant_names):
                raise ConfigError(f"{label} must name every tenant")
        super().__init__(config, policy_factory)
        self.tenant_names = list(tenant_names)
        # Swap in owner-aware tiers (both are empty at this point).
        self.tier1 = OwnedTier("Tier-1", config.tier1_frames, owner_of_page)
        self.tier2 = OwnedTier("Tier-2", config.tier2_frames, owner_of_page)
        # Per-tenant eviction policies: replace the shared replacement
        # structures (still empty here) with one-partition-per-tenant
        # composites.  Each sub-policy gets the full tier capacity —
        # budgets stay the quota layer's job.
        if tier1_policies is not None:
            names = [name or config.tier1_eviction for name in tier1_policies]
            self.t1_clock = PartitionedPolicy(
                [
                    make_eviction_policy(name, config.tier1_frames, tier=1)
                    for name in names
                ],
                owner_of_page,
                names=names,
            )
            self.tier1_policy_names = tuple(names)
        else:
            self.tier1_policy_names = (config.tier1_eviction,) * len(tenant_names)
        if tier2_policies is not None and config.tier2_frames > 0:
            default = config.tier2_eviction or (
                "clock" if self.policy.tier2_uses_clock else "fifo"
            )
            names = [name or default for name in tier2_policies]
            self._t2_order = PartitionedPolicy(
                [
                    make_eviction_policy(name, config.tier2_frames, tier=2)
                    for name in names
                ],
                owner_of_page,
                names=names,
            )
            self.tier2_policy_names = tuple(names)
        else:
            shared = config.tier2_eviction or (
                "clock" if self.policy.tier2_uses_clock else "fifo"
            )
            self.tier2_policy_names = (shared,) * len(tenant_names)
        self.governor = (
            None
            if governor is None
            else MigrationGovernor(governor, len(tenant_names))
        )
        self.quotas = TierQuotas(
            quota or QuotaConfig(),
            tier1_capacity=config.tier1_frames,
            tier2_capacity=config.tier2_frames,
            weights=weights or [1.0] * len(tenant_names),
        )
        self.tenant_stats = [RuntimeStats() for _ in tenant_names]
        #: Per-tenant streaming latency digests, fed by the telemetry
        #: shim on every serviced miss (empty until telemetry attaches —
        #: the unobserved hot path never touches them).
        self.tenant_digests = [LatencyDigest() for _ in tenant_names]
        self._current: int | None = None
        self.obs_extra_labels = dict(self.obs_extra_labels)
        self.obs_extra_labels["tenants"] = str(len(tenant_names))

    # -- stats ----------------------------------------------------------
    def _make_stats(self) -> RuntimeStats:
        return SplitStats()

    # -- tenant switching (driven by the server, per warp) --------------
    def begin_tenant(self, index: int | None) -> None:
        """All subsequent work is issued by (and charged to) ``index``."""
        self._current = index
        if index is None:
            self.stats.split_into(None)
        else:
            self.stats.split_into(self.tenant_stats[index])
            self.quotas.note_active(index, self.stats.coalesced_accesses)

    def finish_tenant(self, index: int) -> None:
        """Mark ``index``'s stream drained (dynamic quotas reclaim it)."""
        self.quotas.note_finished(index)

    @property
    def current_tenant(self) -> int | None:
        return self._current

    def current_tenant_label(self) -> str | None:
        if self._current is None:
            return None
        return self.tenant_names[self._current]

    # -- quota-aware eviction hooks -------------------------------------
    def _tier1_needs_eviction(self) -> bool:
        if self.tier1.full:
            return True
        tenant = self._current
        if tenant is None or not self.quotas.enabled:
            return False
        if (
            self.tier1.owner_count(tenant) >= self.quotas.tier1_budget(tenant)
            and self.tier1.owner_count(tenant) > 0
        ):
            # The filling tenant is at its frame budget: it must free one
            # of its own frames even though the tier has physical room.
            self.stats.quota_evictions += 1
            return True
        return False

    def _next_tier1_victim(self) -> int:
        tenant = self._current
        if tenant is not None and self.quotas.enabled:
            if (
                self.tier1.owner_count(tenant) >= self.quotas.tier1_budget(tenant)
                and self.tier1.owner_count(tenant) > 0
            ):
                victim = self.t1_clock.select_victim_where(
                    lambda p: owner_of_page(p) == tenant
                )
                if victim is not None:
                    return victim
            if self.tier1.full:
                over = self.quotas.over_budget_tier1(self.tier1)
                over.discard(tenant)
                if over:
                    victim = self.t1_clock.select_victim_where(
                        lambda p: owner_of_page(p) in over
                    )
                    if victim is not None:
                        return victim
        return self.t1_clock.select_victim()

    def _admit_tier2(self, state: PageState) -> bool:
        if not self.quotas.enabled or self.tier2.capacity == 0:
            return True
        owner = owner_of_page(state.page)
        return self.tier2.owner_count(owner) < self.quotas.tier2_budget(owner)

    # -- migration governor (TierBPF-style admission control) ------------
    def _admit_demotion(self, state: PageState) -> bool:
        if self.governor is None:
            return True
        # Migrations are charged to the page's owner — the tenant whose
        # data is moving over the interconnect — on the runtime's
        # logical clock (deterministic under the replay engine).
        return self.governor.try_take(
            owner_of_page(state.page), self.stats.coalesced_accesses
        )

    def _promotion_stall_ns(self, page: int) -> float:
        if self.governor is None:
            return 0.0
        if self.governor.try_take(
            owner_of_page(page), self.stats.coalesced_accesses
        ):
            return 0.0
        return self.governor.config.promotion_stall_ns

    def _select_tier2_victim(self) -> int:
        if self.quotas.enabled:
            over = self.quotas.over_budget_tier2(self.tier2)
            if over:
                victim = self._t2_order.select_victim_where(
                    lambda p: owner_of_page(p) in over
                )
                if victim is not None:
                    return victim
        return self._t2_order.select_victim()

    # -- telemetry -------------------------------------------------------
    def attach_telemetry(self, telemetry=None):
        telemetry = super().attach_telemetry(telemetry)
        # Re-wrap the runtime-side sink so spans carry the tenant label.
        self._obs = _TenantObsShim(self._obs, self)
        if telemetry.lifecycle is not None:
            telemetry.lifecycle.tenant_source = self.current_tenant_label
        return telemetry

    def attach_flight_recorder(self, capacity: int | None = 100_000, recorder=None):
        recorder = super().attach_flight_recorder(capacity, recorder)
        # Lifecycle events carry the issuing tenant (per-tenant lanes).
        recorder.tenant_source = self.current_tenant_label
        return recorder
