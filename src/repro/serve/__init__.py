"""Multi-tenant serving layer: concurrent workload streams over one GMT.

The paper evaluates GMT one application at a time; this package models
the production question — many concurrent workloads contending for one
Tier-1/Tier-2/Tier-3 hierarchy — on the simulated-time axis:

- :mod:`repro.serve.stream` — tenant identity and page-id namespacing
  (tenants never alias pages);
- :mod:`repro.serve.scheduler` — interleaving disciplines (round-robin,
  weighted-fair by issued bytes, FIFO-arrival) merging the streams into
  one trace the existing runtime replays;
- :mod:`repro.serve.quota` — per-tenant Tier-1/Tier-2 frame budgets
  (static caps, or dynamic with idle reclaim) enforced through the
  runtime's victim-selection and admission hooks;
- :mod:`repro.serve.runtime` — the tenant-aware runtime: per-tenant
  counter slices (:class:`SplitStats`), quota-steered eviction, and
  ``tenant=``-labelled telemetry;
- :mod:`repro.serve.server` — the front door: :class:`TenantServer`
  replays a mix and reports per-tenant results, slowdowns vs solo runs,
  and Jain-fairness summaries.

Per-tenant eviction policies (:mod:`repro.policyzoo`) plug in through
``TenantSpec(tier1_policy=..., tier2_policy=...)`` or the server-wide
``TenantServer(tier1_policy=..., tier2_policy=...)`` defaults, and a
:class:`~repro.policyzoo.governor.GovernorConfig` passed as
``governor=`` rate-limits each tenant's tier migrations.

CLI: ``gmt-serve --tenants bfs,pagerank --policy reuse`` (or
``python -m repro.serve``).
"""

from repro.policyzoo import (
    EVICTION_POLICY_NAMES,
    GovernorConfig,
    MigrationGovernor,
    PartitionedPolicy,
)
from repro.serve.quota import QUOTA_MODES, OwnedTier, QuotaConfig, TierQuotas, split_frames
from repro.serve.runtime import SplitStats, TenantAwareRuntime
from repro.serve.scheduler import (
    SCHEDULER_NAMES,
    FifoScheduler,
    RoundRobinScheduler,
    WeightedFairScheduler,
    make_scheduler,
    merge_streams,
)
from repro.serve.server import (
    ServeResult,
    TenantResult,
    TenantServer,
    build_tenants,
)
from repro.serve.stream import (
    NAMESPACE_BITS,
    TenantSpec,
    TenantStream,
    namespace_base,
    owner_of_page,
)

__all__ = [
    "EVICTION_POLICY_NAMES",
    "NAMESPACE_BITS",
    "QUOTA_MODES",
    "SCHEDULER_NAMES",
    "FifoScheduler",
    "GovernorConfig",
    "MigrationGovernor",
    "OwnedTier",
    "PartitionedPolicy",
    "QuotaConfig",
    "RoundRobinScheduler",
    "ServeResult",
    "SplitStats",
    "TenantAwareRuntime",
    "TenantResult",
    "TenantServer",
    "TenantSpec",
    "TenantStream",
    "TierQuotas",
    "WeightedFairScheduler",
    "build_tenants",
    "make_scheduler",
    "merge_streams",
    "namespace_base",
    "owner_of_page",
    "split_frames",
]
