"""Multi-tenant serving layer: concurrent workload streams over one GMT.

The paper evaluates GMT one application at a time; this package models
the production question — many concurrent workloads contending for one
Tier-1/Tier-2/Tier-3 hierarchy — on the simulated-time axis:

- :mod:`repro.serve.stream` — tenant identity and page-id namespacing
  (tenants never alias pages), plus :class:`TenantPopulation` for
  service-scale zipf-skewed fleets;
- :mod:`repro.serve.scheduler` — interleaving disciplines (round-robin,
  weighted-fair by issued bytes, FIFO-arrival) merging the streams into
  one trace the existing runtime replays, with epoch-batched decisions
  and an auditable admissions log;
- :mod:`repro.serve.arrivals` — seeded open-loop arrival processes
  (Poisson, bursty/MMPP) on the simulated-ns clock;
- :mod:`repro.serve.quota` — per-tenant Tier-1/Tier-2 frame budgets
  (static caps, or dynamic with idle reclaim) enforced through the
  runtime's victim-selection and admission hooks;
- :mod:`repro.serve.runtime` — the tenant-aware runtime: per-tenant
  counter slices (:class:`SplitStats`), quota-steered eviction, and
  ``tenant=``-labelled telemetry;
- :mod:`repro.serve.server` — the closed-loop front door:
  :class:`TenantServer` replays a mix and reports per-tenant results,
  slowdowns vs solo runs, and Jain-fairness summaries;
- :mod:`repro.serve.openloop` — the open-loop service simulator:
  :class:`OpenLoopServer` drives Poisson/bursty request arrivals through
  pressure-triggered admission control and epoch-batched weighted-fair
  drain, reporting request-latency percentiles and shed rates.

Per-tenant eviction policies (:mod:`repro.policyzoo`) plug in through
``TenantSpec(tier1_policy=..., tier2_policy=...)`` or the server-wide
``TenantServer(tier1_policy=..., tier2_policy=...)`` defaults, and a
:class:`~repro.policyzoo.governor.GovernorConfig` passed as
``governor=`` rate-limits each tenant's tier migrations.

CLI: ``gmt-serve --tenants bfs,pagerank --policy reuse`` (or
``python -m repro.serve``); open-loop mode via ``gmt-serve
--open-loop 1000 --arrival-rate 2000``.
"""

from repro.policyzoo import (
    EVICTION_POLICY_NAMES,
    GovernorConfig,
    MigrationGovernor,
    PartitionedPolicy,
)
from repro.serve.arrivals import (
    ARRIVAL_PROCESS_NAMES,
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    make_arrival_process,
)
from repro.serve.openloop import (
    AdmissionController,
    OpenLoopConfig,
    OpenLoopResult,
    OpenLoopServer,
)
from repro.serve.quota import QUOTA_MODES, OwnedTier, QuotaConfig, TierQuotas, split_frames
from repro.serve.runtime import SplitStats, TenantAwareRuntime
from repro.serve.scheduler import (
    SCHEDULER_NAMES,
    Admission,
    FifoScheduler,
    RoundRobinScheduler,
    WeightedFairScheduler,
    make_scheduler,
    merge_streams,
)
from repro.serve.server import (
    ServeResult,
    TenantResult,
    TenantServer,
    build_tenants,
)
from repro.serve.stream import (
    NAMESPACE_BITS,
    TenantPopulation,
    TenantSpec,
    TenantStream,
    namespace_base,
    owner_of_page,
)

__all__ = [
    "ARRIVAL_PROCESS_NAMES",
    "EVICTION_POLICY_NAMES",
    "NAMESPACE_BITS",
    "QUOTA_MODES",
    "SCHEDULER_NAMES",
    "Admission",
    "AdmissionController",
    "ArrivalProcess",
    "BurstyArrivals",
    "FifoScheduler",
    "GovernorConfig",
    "MigrationGovernor",
    "OpenLoopConfig",
    "OpenLoopResult",
    "OpenLoopServer",
    "OwnedTier",
    "PartitionedPolicy",
    "PoissonArrivals",
    "QuotaConfig",
    "RoundRobinScheduler",
    "ServeResult",
    "SplitStats",
    "TenantAwareRuntime",
    "TenantPopulation",
    "TenantResult",
    "TenantServer",
    "TenantSpec",
    "TenantStream",
    "TierQuotas",
    "WeightedFairScheduler",
    "build_tenants",
    "make_arrival_process",
    "make_scheduler",
    "merge_streams",
    "namespace_base",
    "owner_of_page",
    "split_frames",
]
