"""Serving experiment: a bfs+pagerank+hotspot mix across disciplines/quotas.

The paper evaluates GMT one application at a time; this experiment asks
the production question instead — what happens when several workloads
contend for one hierarchy?  It serves the same three-tenant mix under
every scheduling discipline x quota mode combination and compares:

- makespan of the whole mix,
- per-tenant slowdown versus a solo replay of the same stream,
- fairness (min/max slowdown and Jain's index over normalised service).

The solo baselines are their own cells, replayed once and shared across
all combinations (they depend only on the config, not on the discipline
or quotas).
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.engine import Cell
from repro.experiments.harness import ExperimentResult, default_config
from repro.experiments.spec import ExperimentSpec
from repro.units import format_time

#: The served mix: a latency-sensitive graph traversal, an iterative
#: high-reuse kernel, and a streaming-ish stencil — three reuse profiles
#: fighting over the same Tier-1/Tier-2 frames.
MIX = ("bfs", "pagerank", "hotspot")


@lru_cache(maxsize=8)
def _streams(mix: tuple, config):
    """Per-process stream cache: building tenants regenerates workloads,
    which is the expensive part — every cell in this module shares it."""
    from repro.serve import build_tenants

    return build_tenants(list(mix), config)


def solo_cell(config, mix: tuple, index: int) -> float:
    """Cell body: solo elapsed time (ns) of one tenant's stream."""
    from repro.serve import TenantServer

    streams = _streams(tuple(mix), config)
    probe = TenantServer(config, streams)
    return probe.solo_run(streams[index]).elapsed_ns


def combo_cell(config, mix: tuple, discipline: str, mode: str):
    """Cell body: one discipline x quota-mode served run (no solo
    baselines — those are separate, shared cells)."""
    from repro.serve import QuotaConfig, TenantServer

    streams = _streams(tuple(mix), config)
    server = TenantServer(
        config, streams, discipline=discipline, quota=QuotaConfig(mode=mode)
    )
    return server.run(solo_baselines=False)


def _solo(config, index: int) -> Cell:
    return Cell.make(
        "repro.experiments.serve_mix:solo_cell",
        label=f"{MIX[index]}/solo",
        config=config,
        mix=MIX,
        index=index,
    )


def _combo(config, discipline: str, mode: str) -> Cell:
    return Cell.make(
        "repro.experiments.serve_mix:combo_cell",
        label=f"serve {discipline}/{mode}",
        config=config,
        mix=MIX,
        discipline=discipline,
        mode=mode,
    )


def _combinations():
    from repro.serve import QUOTA_MODES, SCHEDULER_NAMES

    return [(d, m) for d in SCHEDULER_NAMES for m in QUOTA_MODES]


def _cells(scale):
    config = default_config(scale)
    cells = [_solo(config, i) for i in range(len(MIX))]
    cells += [_combo(config, d, m) for d, m in _combinations()]
    return cells


def _reduce(results, scale):
    config = default_config(scale)
    solo_ns = {i: results[_solo(config, i)] for i in range(len(MIX))}

    headers = ["discipline", "quotas", "makespan"]
    headers += [f"{name} slowdown" for name in MIX]
    headers += ["min", "max", "Jain"]
    rows: list[list[object]] = []
    outcomes: dict[tuple[str, str], object] = {}

    for discipline, mode in _combinations():
        outcome = results[_combo(config, discipline, mode)]
        # The combo cells skip solo baselines (they are shared cells);
        # graft them back so slowdown/fairness read as before.
        for position, tenant in enumerate(outcome.tenants):
            tenant.solo_ns = solo_ns[position]
        outcomes[(discipline, mode)] = outcome
        fairness = outcome.fairness()
        row: list[object] = [
            discipline,
            mode,
            format_time(outcome.elapsed_ns),
        ]
        row += [f"{t.slowdown:.2f}x" for t in outcome.tenants]
        row += [
            f"{fairness['min_slowdown']:.2f}x",
            f"{fairness['max_slowdown']:.2f}x",
            f"{fairness['jain_index']:.3f}",
        ]
        rows.append(row)

    notes = [
        "slowdown = shared completion time / solo elapsed time of the same stream",
        "Jain's index over normalised service (1/slowdown); 1.0 = perfectly fair",
        "static quotas cap each tenant's resident frames; dynamic reclaims idle tenants' shares",
    ]
    return [
        ExperimentResult(
            name="serve_mix",
            title=(
                f"Serving {'+'.join(MIX)} on one GMT-Reuse hierarchy: "
                "discipline x quota sweep"
            ),
            headers=headers,
            rows=rows,
            notes=notes,
            extras={"outcomes": outcomes, "solo_ns": solo_ns},
        )
    ]


SPEC = ExperimentSpec(
    name="serve_mix",
    title="Multi-tenant discipline x quota sweep",
    cells=_cells,
    reduce=_reduce,
)
