"""Serving experiment: a bfs+pagerank+hotspot mix across disciplines/quotas.

The paper evaluates GMT one application at a time; this experiment asks
the production question instead — what happens when several workloads
contend for one hierarchy?  It serves the same three-tenant mix under
every scheduling discipline x quota mode combination and compares:

- makespan of the whole mix,
- per-tenant slowdown versus a solo replay of the same stream,
- fairness (min/max slowdown and Jain's index over normalised service).

The solo baselines are replayed once and shared across all combinations
(they depend only on the config, not on the discipline or quotas).
"""

from __future__ import annotations

from repro.core.config import DEFAULT_SCALE
from repro.experiments.harness import ExperimentResult, default_config
from repro.serve import (
    QUOTA_MODES,
    SCHEDULER_NAMES,
    QuotaConfig,
    TenantServer,
    build_tenants,
)
from repro.units import format_time

#: The served mix: a latency-sensitive graph traversal, an iterative
#: high-reuse kernel, and a streaming-ish stencil — three reuse profiles
#: fighting over the same Tier-1/Tier-2 frames.
MIX = ("bfs", "pagerank", "hotspot")


def run(scale: int = DEFAULT_SCALE) -> list[ExperimentResult]:
    config = default_config(scale)
    streams = build_tenants(list(MIX), config)

    # Solo baselines once, shared by every combination below.
    probe = TenantServer(config, streams)
    solo_ns = {s.index: probe.solo_run(s).elapsed_ns for s in streams}

    headers = ["discipline", "quotas", "makespan"]
    headers += [f"{s.name} slowdown" for s in streams]
    headers += ["min", "max", "Jain"]
    rows: list[list[object]] = []
    outcomes: dict[tuple[str, str], object] = {}

    for discipline in SCHEDULER_NAMES:
        for mode in QUOTA_MODES:
            server = TenantServer(
                config,
                streams,
                discipline=discipline,
                quota=QuotaConfig(mode=mode),
            )
            outcome = server.run(solo_ns=solo_ns)
            outcomes[(discipline, mode)] = outcome
            fairness = outcome.fairness()
            row: list[object] = [
                discipline,
                mode,
                format_time(outcome.elapsed_ns),
            ]
            row += [f"{t.slowdown:.2f}x" for t in outcome.tenants]
            row += [
                f"{fairness['min_slowdown']:.2f}x",
                f"{fairness['max_slowdown']:.2f}x",
                f"{fairness['jain_index']:.3f}",
            ]
            rows.append(row)

    notes = [
        "slowdown = shared completion time / solo elapsed time of the same stream",
        "Jain's index over normalised service (1/slowdown); 1.0 = perfectly fair",
        "static quotas cap each tenant's resident frames; dynamic reclaims idle tenants' shares",
    ]
    return [
        ExperimentResult(
            name="serve_mix",
            title=(
                f"Serving {'+'.join(MIX)} on one GMT-Reuse hierarchy: "
                "discipline x quota sweep"
            ),
            headers=headers,
            rows=rows,
            notes=notes,
            extras={"outcomes": outcomes, "solo_ns": solo_ns},
        )
    ]
