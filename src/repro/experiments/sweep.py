"""Generic configuration sweeps — build your own sensitivity study.

The paper's section 3.5 sweeps (over-subscription, Tier-2:Tier-1 ratio,
Tier-1 size) are instances of one pattern: vary a knob, rerun the same
apps through a runtime pair, report speedups.  :func:`sweep_config`
generalises it to *any* :class:`~repro.core.config.GMTConfig` field (and,
via dotted ``platform.<field>`` names, any platform constant):

>>> result = sweep_config(
...     "platform.ssd_read_latency_ns",
...     [80e3, 130e3, 200e3],
...     apps=("srad", "hotspot"),
... )
>>> print(result.to_text())
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.metrics import arithmetic_mean
from repro.core.config import DEFAULT_SCALE, GMTConfig
from repro.errors import ConfigError
from repro.experiments.engine import Engine
from repro.experiments.harness import (
    ExperimentResult,
    app_label,
    default_config,
    replay_on_trace,
)


def apply_override(config: GMTConfig, field: str, value) -> GMTConfig:
    """Return ``config`` with ``field`` set to ``value``.

    ``field`` is a GMTConfig field name, or ``platform.<name>`` for a
    :class:`~repro.sim.latency.PlatformModel` constant.
    """
    if field.startswith("platform."):
        inner = field[len("platform.") :]
        if inner not in {f.name for f in _platform_fields()}:
            raise ConfigError(f"unknown platform field {inner!r}")
        return replace(config, platform=replace(config.platform, **{inner: value}))
    if field not in {f.name for f in _config_fields()}:
        raise ConfigError(f"unknown config field {field!r}")
    return replace(config, **{field: value})


def _config_fields():
    import dataclasses

    return dataclasses.fields(GMTConfig)


def _platform_fields():
    import dataclasses

    from repro.sim.latency import PlatformModel

    return dataclasses.fields(PlatformModel)


def sweep_config(
    field: str,
    values: list,
    apps: tuple[str, ...] = ("srad", "pagerank", "hotspot"),
    kind: str = "reuse",
    baseline_kind: str = "bam",
    scale: int = DEFAULT_SCALE,
    vary_baseline: bool = True,
    engine: Engine | None = None,
) -> ExperimentResult:
    """Speedup of ``kind`` over ``baseline_kind`` across ``values``.

    Args:
        field: config field (or ``platform.<name>``) to vary.
        values: the sweep points.
        apps: Table 2 apps to run (the trace is held fixed per app).
        vary_baseline: if True the baseline is re-run per value (the knob
            affects it too, e.g. a platform constant); if False the
            baseline uses the unmodified config (policy-only knobs).
        engine: optional :class:`~repro.experiments.engine.Engine` — the
            sweep's replays are engine cells, so ``Engine(jobs=N)`` runs
            the whole grid in parallel and a cache-backed engine makes
            repeated sweeps near-free.

    Returns:
        An :class:`ExperimentResult` with one row per sweep value and a
        per-app speedup column, plus row means; ``extras["means"]`` maps
        value -> mean speedup.
    """
    if not values:
        raise ConfigError("sweep needs at least one value")
    base = default_config(scale)
    engine = engine if engine is not None else Engine()

    def cells_for(value):
        config = apply_override(base, field, value)
        baseline_config = config if vary_baseline else base
        return {
            app: (
                replay_on_trace(app, baseline_kind, baseline_config, base),
                replay_on_trace(app, kind, config, base),  # fixed traces
            )
            for app in apps
        }

    grid = {value: cells_for(value) for value in values}
    all_cells = [c for per_app in grid.values() for pair in per_app.values() for c in pair]
    results = engine.run_cells(all_cells, group=f"sweep-{field}")

    rows: list[list[object]] = []
    means: dict[object, float] = {}
    for value in values:
        speedups = []
        row: list[object] = [value]
        for app in apps:
            baseline_cell, result_cell = grid[value][app]
            s = results[result_cell].speedup_over(results[baseline_cell])
            speedups.append(s)
            row.append(s)
        means[value] = arithmetic_mean(speedups)
        row.append(means[value])
        rows.append(row)
    return ExperimentResult(
        name=f"sweep-{field.replace('.', '-')}",
        title=f"Sweep: {field} (speedup of {kind} over {baseline_kind})",
        headers=[field] + [app_label(a) for a in apps] + ["mean"],
        rows=rows,
        extras={"means": means, "field": field, "values": list(values)},
    )
