"""CLI entry point: regenerate any (or every) paper table/figure.

Usage::

    python -m repro.experiments fig8 fig9 --scale 256
    python -m repro.experiments all
    gmt-experiments table2
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from repro.core.config import DEFAULT_SCALE

EXPERIMENTS = (
    "table2",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "extensions",
    "serve_mix",
)


def run_experiment(name: str, scale: int) -> list:
    """Import and run one experiment module; returns its results."""
    if name not in EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {name!r}; choose from: {', '.join(EXPERIMENTS)}"
        )
    module = importlib.import_module(f"repro.experiments.{name}")
    return module.run(scale=scale)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gmt-experiments",
        description="Regenerate the GMT paper's tables and figures",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment names ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help=f"byte-scale divisor vs the paper's platform (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=None,
        help="export per-replay telemetry (Perfetto trace, Prometheus "
        "snapshot, window stream) for every uncached run into DIR",
    )
    args = parser.parse_args(argv)

    if args.telemetry_dir is not None:
        from repro.experiments.harness import set_telemetry_dir

        set_telemetry_dir(args.telemetry_dir)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    for name in names:
        start = time.time()
        results = run_experiment(name, args.scale)
        for result in results:
            print(result.to_text())
            print()
        print(f"[{name} completed in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
