"""CLI entry point: regenerate any (or every) paper table/figure.

Usage::

    python -m repro.experiments fig8 fig9 --scale 256
    python -m repro.experiments all --jobs 8
    gmt-experiments table2 --no-cache

Experiments are registered declaratively: every module under
``repro.experiments`` exports an
:class:`~repro.experiments.spec.ExperimentSpec`, and the CLI executes its
cells on the :mod:`~repro.experiments.engine` — in parallel with
``--jobs N``, backed by the content-addressed on-disk result cache
(``--cache-dir``, ``--no-cache``, ``--force``).  Interrupted ``all``
runs are resumable: completed cells are served from the cache.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from repro.core.config import DEFAULT_SCALE
from repro.experiments.engine import Engine, ResultCache
from repro.experiments.spec import ExperimentSpec, run_spec

#: Registry of experiment names — each maps to a module exporting SPEC.
EXPERIMENTS = (
    "table2",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "extensions",
    "serve_mix",
    "isolation",
    "capacity",
)


def get_spec(name: str) -> ExperimentSpec:
    """The registered :class:`ExperimentSpec` for ``name``.

    Raises ``SystemExit`` for unknown names (CLI contract).
    """
    if name not in EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {name!r}; choose from: {', '.join(EXPERIMENTS)}"
        )
    module = importlib.import_module(f"repro.experiments.{name}")
    return module.SPEC


def run_experiment(name: str, scale: int, engine: Engine | None = None) -> list:
    """Run one experiment through the engine; returns its results."""
    return run_spec(get_spec(name), scale=scale, engine=engine)


def _progress_printer(line: str) -> None:
    print(line, file=sys.stderr)


def _drain_anomalies(spool_dir: str, seen: set[str]) -> list[dict]:
    """New findings spooled since the last drain (see
    ``repro.experiments.harness.set_anomaly_scan``); ``seen`` carries the
    raw lines already reported so each experiment prints only its own."""
    import json
    from pathlib import Path

    findings: list[dict] = []
    for path in sorted(Path(spool_dir).glob("*.anomalies.jsonl")):
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            continue
        for line in lines:
            if line and line not in seen:
                seen.add(line)
                findings.append(json.loads(line))
    return findings


def _anomaly_summary(name: str, findings: list[dict]) -> str:
    if not findings:
        return f"[{name}] anomaly scan: no findings in newly executed cells"
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding["rule"]] = by_rule.get(finding["rule"], 0) + 1
    rules = ", ".join(f"{rule}={count}" for rule, count in sorted(by_rule.items()))
    lines = [f"[{name}] anomaly scan: {len(findings)} finding(s) ({rules})"]
    for finding in sorted(
        findings, key=lambda f: (f["app"], f["kind"], f["window"], f["rule"])
    ):
        lines.append(f"  {finding['app']}/{finding['kind']}: {finding['message']}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gmt-experiments",
        description="Regenerate the GMT paper's tables and figures",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment names ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help=f"byte-scale divisor vs the paper's platform (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for cell execution (default 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="on-disk result cache location (default ~/.cache/gmt-results, "
        "or $GMT_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this run",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="re-execute every cell even when cached (results are re-stored)",
    )
    parser.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=None,
        help="export per-replay telemetry (Perfetto trace, Prometheus "
        "snapshot, window stream) for every uncached run into DIR",
    )
    parser.add_argument(
        "--telemetry-lifecycle",
        action="store_true",
        help="with --telemetry-dir: also record the page-lifecycle "
        "flight recorder per replay and export <app>-<kind>.lifecycle.jsonl "
        "(query with gmt-why --from)",
    )
    parser.add_argument(
        "--check-every",
        type=int,
        metavar="N",
        default=None,
        help="run the conformance audit (structural invariants + stats "
        "identities, see gmt-check) every N coalesced accesses on every "
        "uncached replay; a violation fails the experiment",
    )
    parser.add_argument(
        "--anomaly-scan",
        action="store_true",
        help="attach windowed telemetry to every uncached replay and scan "
        "its window stream for thrash / bypass-storm / latency-spike "
        "anomalies; findings are summarised per experiment (cached cells "
        "are reused as-is and contribute no findings — use --force to "
        "rescan everything)",
    )
    parser.add_argument(
        "--anomaly-window",
        type=int,
        metavar="N",
        default=10_000,
        help="snapshot interval (coalesced accesses) for --anomaly-scan "
        "windows (default 10000)",
    )
    parser.add_argument(
        "--anomaly-thrash",
        type=float,
        metavar="F",
        default=0.5,
        help="flag a window when Tier-1 evictions per access exceed F "
        "(default 0.5)",
    )
    parser.add_argument(
        "--anomaly-bypass",
        type=float,
        metavar="F",
        default=0.75,
        help="flag a window when the fraction of Tier-1 evictions that "
        "bypassed Tier-2 exceeds F (default 0.75)",
    )
    parser.add_argument(
        "--anomaly-spike",
        type=float,
        metavar="F",
        default=3.0,
        help="flag a window whose mean fault latency exceeds F x the "
        "trailing mean (default 3.0)",
    )
    from repro.core.config import ENGINE_NAMES

    parser.add_argument(
        "--engine",
        default=None,
        choices=list(ENGINE_NAMES),
        help="replay engine for every uncached cell: 'scalar' (reference "
        "loop), 'vector' (byte-identical batch engine), or 'auto' "
        "(vector whenever telemetry/periodic checks are off). "
        "Default: the config's engine ('auto')",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append this run to the run ledger "
        "(benchmarks/results/ledger.jsonl or $GMT_LEDGER_PATH)",
    )
    args = parser.parse_args(argv)

    if args.telemetry_lifecycle and args.telemetry_dir is None:
        parser.error("--telemetry-lifecycle needs --telemetry-dir")
    if args.telemetry_dir is not None:
        from repro.experiments.harness import set_telemetry_dir

        set_telemetry_dir(args.telemetry_dir, lifecycle=args.telemetry_lifecycle)
    if args.check_every is not None:
        if args.check_every < 1:
            parser.error("--check-every must be >= 1")
        from repro.experiments.harness import set_check_every

        set_check_every(args.check_every)
    if args.engine is not None:
        from repro.experiments.harness import set_engine

        set_engine(args.engine)
    anomaly = None
    if args.anomaly_scan:
        import tempfile

        from repro.errors import GMTError
        from repro.experiments.harness import set_anomaly_scan
        from repro.obs.anomaly import AnomalyDetector

        try:  # validate thresholds up front, not inside a pool worker
            AnomalyDetector(
                thrash_evictions_per_access=args.anomaly_thrash,
                bypass_fraction=args.anomaly_bypass,
                latency_spike_factor=args.anomaly_spike,
            )
        except GMTError as exc:
            parser.error(str(exc))
        if args.anomaly_window < 1:
            parser.error("--anomaly-window must be >= 1")
        anomaly = {
            "spool_dir": tempfile.mkdtemp(prefix="gmt-anomalies-"),
            "window": args.anomaly_window,
            "thrash": args.anomaly_thrash,
            "bypass": args.anomaly_bypass,
            "spike": args.anomaly_spike,
        }
        set_anomaly_scan(
            anomaly["spool_dir"],
            window=anomaly["window"],
            thrash=anomaly["thrash"],
            bypass=anomaly["bypass"],
            spike=anomaly["spike"],
        )

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    # Validate every name up-front so a typo fails before hours of work.
    specs = {name: get_spec(name) for name in names}

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    engine = Engine(
        jobs=args.jobs,
        cache=cache,
        force=args.force,
        progress=_progress_printer,
        telemetry_dir=args.telemetry_dir,
        telemetry_lifecycle=args.telemetry_lifecycle,
        check_every=args.check_every,
        engine=args.engine,
        anomaly=anomaly,
    )

    failures: dict[str, Exception] = {}
    anomaly_seen: set[str] = set()
    anomaly_total = 0
    run_start = time.time()
    for name in names:
        start = time.time()
        try:
            results = run_spec(specs[name], scale=args.scale, engine=engine)
        except KeyboardInterrupt:
            print(
                f"\n[interrupted during {name}; completed cells are cached — "
                "rerun the same command to resume]",
                file=sys.stderr,
            )
            raise
        except Exception as exc:  # collect, keep going, fail at the end
            failures[name] = exc
            print(f"[{name} FAILED: {type(exc).__name__}: {exc}]\n", file=sys.stderr)
            continue
        for result in results:
            print(result.to_text())
            print()
        if anomaly is not None:
            findings = _drain_anomalies(anomaly["spool_dir"], anomaly_seen)
            anomaly_total += len(findings)
            print(_anomaly_summary(name, findings))
        print(f"[{name} completed in {time.time() - start:.1f}s]\n")

    print(f"[engine] {engine.stats.summary()}")
    if not args.no_ledger:
        from repro.core.factory import resolve_engine_reason
        from repro.experiments.harness import default_config
        from repro.obs.ledger import record_run

        # The resolution every GMT replay cell sees under the current
        # instrumentation flags (baseline runtimes follow the same rule).
        resolved, reason = resolve_engine_reason(
            args.engine,
            default_config(args.scale),
            recorder=args.telemetry_lifecycle,
            checks=args.check_every is not None,
            telemetry=args.telemetry_dir is not None or anomaly is not None,
        )
        record_run(
            "gmt-experiments",
            wall_s=time.time() - run_start,
            params={
                "experiments": sorted(names),
                "scale": args.scale,
                "engine_reason": reason,
            },
            metrics={
                "experiments": len(names),
                "failures": len(failures),
                "cells_executed": engine.stats.executed,
                **({"anomaly_findings": anomaly_total} if anomaly is not None else {}),
            },
            engine=resolved,
        )
    if anomaly is not None:
        from repro.experiments.harness import set_anomaly_scan

        set_anomaly_scan(None)  # don't leak the spool into later in-process use
    if failures:
        summary = ", ".join(
            f"{name} ({type(exc).__name__})" for name, exc in failures.items()
        )
        print(
            f"[{len(failures)}/{len(names)} experiments failed: {summary}]",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
