"""The declarative experiment protocol: ``SPEC = ExperimentSpec(...)``.

An experiment is two pure functions around a set of cells:

- ``cells(scale) -> [Cell, ...]`` — the independent work units (see
  :mod:`repro.experiments.engine`); overlapping specs may emit the same
  cells, which the engine deduplicates and caches across experiments.
- ``reduce(results, scale) -> [ExperimentResult, ...]`` — folds the cell
  values into the paper's tables/figures.  ``results`` is a
  :class:`CellResults` indexed by the same :class:`Cell` objects, so the
  reduce step rebuilds cells through the very helpers that emitted them.

Every experiment module exports ``SPEC``; regenerate through
:func:`run_spec`, :func:`repro.experiments.runner.run_experiment`, or the
``gmt-experiments`` CLI.  (The PR-3-era ``run(scale=...)`` module shims
are gone.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.config import DEFAULT_SCALE
from repro.errors import ConfigError
from repro.experiments.engine import Cell, Engine


@dataclass(frozen=True)
class ExperimentSpec:
    """A declaratively described experiment.

    Attributes:
        name: registry key (``"fig8"``, ``"table2"``, ...).
        cells: ``scale -> sequence of cells`` (pure; no side effects).
        reduce: folds a :class:`CellResults` into ``ExperimentResult``s.
        title: one-line description for ``--list`` style output.
    """

    name: str
    cells: Callable[[int], Sequence[Cell]]
    reduce: Callable[["CellResults", int], list]
    title: str = ""


class CellResults(Mapping):
    """Cell-indexed view of an engine run's values."""

    def __init__(self, values: dict[Cell, object]) -> None:
        self._values = values

    def __getitem__(self, cell: Cell):
        try:
            return self._values[cell]
        except KeyError:
            raise ConfigError(
                f"reduce asked for a cell the spec never emitted: {cell!r}"
            ) from None

    def __iter__(self):
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)


def run_spec(
    spec: ExperimentSpec,
    scale: int = DEFAULT_SCALE,
    engine: Engine | None = None,
) -> list:
    """Execute ``spec`` at ``scale`` and return its reduced results.

    With no ``engine``, cells run serially with in-process memoisation
    only — the exact behaviour of the old per-module ``run()``.  Pass an
    :class:`~repro.experiments.engine.Engine` for parallel execution and
    the on-disk cache.
    """
    engine = engine if engine is not None else Engine()
    cells = list(spec.cells(scale))
    values = engine.run_cells(cells, group=spec.name)
    return spec.reduce(CellResults(values), scale)
