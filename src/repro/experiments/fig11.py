"""Figure 11: speedups over BaM at over-subscription factor 4.

Paper section 3.5: "This was achieved by doubling the dataset size for
non-graph applications, and reducing the Tier-1/Tier-2 capacity by half
for graph applications."  Both routes land at the same factor; speedups
shrink (more of the working set is SSD-bound) but GMT-Reuse stays ahead
(paper averages: 1.23 / 1.03 / 1.14 for Reuse / TierOrder / Random).
"""

from __future__ import annotations

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.harness import (
    ExperimentResult,
    app_label,
    default_config,
    replay,
)
from repro.experiments.spec import ExperimentSpec
from repro.workloads.registry import GRAPH_WORKLOADS, WORKLOAD_NAMES

POLICIES = ("tier-order", "random", "reuse")


def _app_config(app: str, scale: int):
    """(config, oversubscription) for one app — the two routes to 4x."""
    if app in GRAPH_WORKLOADS:
        # Same dataset, half the memory: footprint(oversub=4, half
        # tiers) equals footprint(oversub=2, full tiers).
        return default_config(scale * 2), 4.0
    # Same memory, double the dataset.
    return default_config(scale), 4.0


def _cells(scale):
    cells = []
    for app in WORKLOAD_NAMES:
        cfg, oversub = _app_config(app, scale)
        for kind in ("bam",) + POLICIES:
            cells.append(replay(app, kind, cfg, oversubscription=oversub))
    return cells


def _reduce(results, scale):
    rows: list[list[object]] = []
    speedups: dict[str, list[float]] = {p: [] for p in POLICIES}
    for app in WORKLOAD_NAMES:
        cfg, oversub = _app_config(app, scale)
        bam = results[replay(app, "bam", cfg, oversubscription=oversub)]
        row: list[object] = [app_label(app)]
        for policy in POLICIES:
            s = results[
                replay(app, policy, cfg, oversubscription=oversub)
            ].speedup_over(bam)
            speedups[policy].append(s)
            row.append(s)
        rows.append(row)

    means = {p: arithmetic_mean(speedups[p]) for p in POLICIES}
    rows.append(["Average"] + [means[p] for p in POLICIES])
    return [
        ExperimentResult(
            name="fig11",
            title="Figure 11: speedup over BaM at over-subscription factor 4",
            headers=["app", "GMT-TierOrder", "GMT-Random", "GMT-Reuse"],
            rows=rows,
            notes=["paper averages: TierOrder 1.03, Random 1.14, Reuse 1.23"],
            extras={"speedups": speedups, "means": means},
        )
    ]


SPEC = ExperimentSpec(
    name="fig11",
    title="Speedups at over-subscription factor 4",
    cells=_cells,
    reduce=_reduce,
)
