"""Parallel, cache-aware experiment engine.

The evaluation loop decomposes every table/figure into independent
**cells** — one :class:`Cell` per workload x policy x scale x platform
combination — and this module executes them:

- :class:`Cell` names a pure, importable function plus its (picklable)
  keyword arguments; executing the same cell twice always produces the
  same value, so cells are safe to cache and to farm out to worker
  processes.
- :func:`cell_key` derives a stable content hash of (function path,
  canonicalised parameters — including the full
  :class:`~repro.core.config.GMTConfig` — and a code-version salt).
  Overlapping sweeps (fig8/fig9/fig10/fig14 share most of their replay
  matrix) therefore collapse onto the same keys.
- :class:`ResultCache` is the content-addressed on-disk store
  (``~/.cache/gmt-results`` by default, override with ``GMT_CACHE_DIR``).
  Interrupted ``gmt-experiments all`` runs resume from it: completed
  cells are never re-executed.
- :class:`Engine` runs the missing cells — serially or on a
  ``ProcessPoolExecutor`` (``jobs > 1``) with deterministic seeding (all
  randomness flows from the seeds already inside each cell's params) —
  and emits per-cell progress plus cache hit/miss counters through a
  :class:`repro.obs.MetricsRegistry`.

The parallel path is bit-equal to the serial path: cells are pure
functions of their parameters, and reduction order is fixed by the cell
list, not by completion order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigError

#: Bumped whenever the cell/result encoding changes incompatibly.
SCHEMA_VERSION = "gmt-cells-v1"

#: Default on-disk cache location (``GMT_CACHE_DIR`` overrides).
DEFAULT_CACHE_DIR = "~/.cache/gmt-results"


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Cell:
    """One independent unit of experimental work.

    Attributes:
        fn: dotted path ``"package.module:function"`` of a top-level
            function; workers import it, so it must not be a closure.
        params: keyword arguments as a sorted tuple of ``(name, value)``
            pairs.  Values must be picklable and hashable (str, numbers,
            tuples, frozen dataclasses such as ``GMTConfig``).
        label: human-readable progress label; excluded from identity.
    """

    fn: str
    params: tuple = ()
    label: str = field(default="", compare=False)

    @classmethod
    def make(cls, fn: str, label: str = "", **params) -> "Cell":
        """Build a cell with canonically ordered params."""
        if ":" not in fn:
            raise ConfigError(f"cell fn must be 'module:function', got {fn!r}")
        return cls(fn=fn, params=tuple(sorted(params.items())), label=label)

    def kwargs(self) -> dict:
        return dict(self.params)

    def __repr__(self) -> str:  # keep progress lines short
        return f"Cell({self.label or self.fn})"


def _canonical(value):
    """A JSON-encodable, deterministic view of a cell parameter value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {"__dataclass__": type(value).__qualname__}
        for f in dataclasses.fields(value):
            out[f.name] = _canonical(getattr(value, f.name))
        return out
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, float):
        return repr(value)  # full precision, distinguishes 1.0 from 1
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


_code_salt_cache: str | None = None


def code_salt() -> str:
    """Hash of every ``repro`` source file — the cache's code-version salt.

    Any edit to the package invalidates all cached cells, so a stale
    cache can never mask a code change.  ``GMT_CACHE_SALT`` overrides
    (useful for tests and for pinning across installs).
    """
    global _code_salt_cache
    override = os.environ.get("GMT_CACHE_SALT")
    if override:
        return override
    if _code_salt_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256(SCHEMA_VERSION.encode())
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
        _code_salt_cache = digest.hexdigest()[:16]
    return _code_salt_cache


def cell_key(cell: Cell, salt: str | None = None) -> str:
    """Stable content hash identifying ``cell``'s value."""
    payload = {
        "schema": SCHEMA_VERSION,
        "salt": salt if salt is not None else code_salt(),
        "fn": cell.fn,
        "params": _canonical(dict(cell.params)),
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()


def execute_cell(cell: Cell):
    """Import and run one cell (also the worker-process entry point)."""
    module_name, _, func_name = cell.fn.partition(":")
    fn = getattr(importlib.import_module(module_name), func_name)
    return fn(**cell.kwargs())


def _worker_init(
    telemetry_dir: str | None,
    telemetry_lifecycle: bool = False,
    check_every: int | None = None,
    engine: str | None = None,
    anomaly: dict | None = None,
) -> None:
    if telemetry_dir:
        from repro.experiments.harness import set_telemetry_dir

        set_telemetry_dir(telemetry_dir, lifecycle=telemetry_lifecycle)
    if check_every is not None:
        from repro.experiments.harness import set_check_every

        set_check_every(check_every)
    if engine is not None:
        from repro.experiments.harness import set_engine

        set_engine(engine)
    if anomaly is not None:
        from repro.experiments.harness import set_anomaly_scan

        set_anomaly_scan(
            anomaly["spool_dir"],
            window=anomaly["window"],
            thrash=anomaly["thrash"],
            bypass=anomaly["bypass"],
            spike=anomaly["spike"],
        )


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
_MISS = object()


class ResultCache:
    """Content-addressed pickle store: one file per cell key.

    Keys are hex digests from :func:`cell_key`; entries live at
    ``<root>/<key[:2]>/<key>.pkl``.  Writes are atomic (tempfile +
    rename) so a killed sweep never leaves a torn entry, and corrupt or
    unreadable entries read as misses.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        if root is None:
            root = os.environ.get("GMT_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root).expanduser()

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """The cached value, or the module-level ``_MISS`` sentinel."""
        try:
            with open(self.path(key), "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return _MISS

    def put(self, key: str, value) -> bool:
        """Store ``value``; returns False if it cannot be pickled."""
        target = self.path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        try:
            payload = pickle.dumps(value)
        except Exception:
            return False
        fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, target)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
_registry = None


def engine_registry():
    """The engine's :class:`~repro.obs.MetricsRegistry` (process-wide).

    Counters: ``engine_cells_total``, ``engine_memo_hits_total``,
    ``engine_disk_hits_total``, ``engine_cells_executed_total``,
    ``engine_cell_failures_total``.
    """
    global _registry
    if _registry is None:
        from repro.obs import MetricsRegistry

        _registry = MetricsRegistry(const_labels={"component": "experiment-engine"})
        _registry.counter("engine_cells_total", "cells requested across all runs")
        _registry.counter("engine_memo_hits_total", "cells served from the in-process memo")
        _registry.counter("engine_disk_hits_total", "cells served from the on-disk cache")
        _registry.counter("engine_cells_executed_total", "cells actually executed")
        _registry.counter("engine_cell_failures_total", "cell executions that raised")
    return _registry


@dataclass
class EngineStats:
    """Hit/miss accounting for one :class:`Engine` (cumulative)."""

    cells: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    executed: int = 0
    failures: int = 0

    @property
    def hits(self) -> int:
        return self.memo_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.cells if self.cells else 0.0

    def summary(self) -> str:
        return (
            f"cells={self.cells} memo_hits={self.memo_hits} "
            f"disk_hits={self.disk_hits} executed={self.executed} "
            f"hit_rate={self.hit_rate:.2f}"
        )


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
#: Process-wide memo shared by every Engine (unless one is given its
#: own): figures sharing cells within one process pay for them once,
#: matching the old harness-level run cache.
_GLOBAL_MEMO: dict[str, object] = {}


def clear_memo() -> None:
    """Drop the process-wide cell memo (tests use this for isolation)."""
    _GLOBAL_MEMO.clear()


class Engine:
    """Executes cells with memoisation, disk caching and parallelism.

    Args:
        jobs: worker processes; 1 (the default) runs in-process.
        cache: a :class:`ResultCache`, or None for no disk cache.
        force: re-execute cells even when cached (results still stored).
        memo: in-process memo dict; None shares the process-wide memo.
        progress: optional callable receiving one line per cell event.
        telemetry_dir: forwarded to pool workers so uncached replays
            export telemetry exactly like the serial path.
        telemetry_lifecycle: also record/export the page-lifecycle
            flight recorder per replay (needs ``telemetry_dir``).
        check_every: forwarded to pool workers so uncached replays run
            periodic conformance audits (see
            ``repro.experiments.harness.set_check_every``) exactly like
            the serial path.
        engine: forwarded to pool workers so uncached replays honour the
            process-wide replay-engine request (see
            ``repro.experiments.harness.set_engine``) exactly like the
            serial path.
        anomaly: forwarded to pool workers so uncached replays run the
            windowed anomaly scan and spool findings (see
            ``repro.experiments.harness.set_anomaly_scan``) exactly like
            the serial path.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        force: bool = False,
        memo: dict | None = None,
        progress: Callable[[str], None] | None = None,
        telemetry_dir: str | None = None,
        telemetry_lifecycle: bool = False,
        check_every: int | None = None,
        engine: str | None = None,
        anomaly: dict | None = None,
    ) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.force = force
        self.memo = _GLOBAL_MEMO if memo is None else memo
        self.progress = progress
        self.telemetry_dir = telemetry_dir
        self.telemetry_lifecycle = telemetry_lifecycle
        self.check_every = check_every
        self.engine = engine
        self.anomaly = anomaly
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    def _emit(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    def run_cells(self, cells: Sequence[Cell], group: str = "") -> dict[Cell, object]:
        """Execute ``cells`` (deduplicated), returning ``{cell: value}``.

        Cached cells are served from the memo, then the disk cache;
        the rest run serially or on the process pool.  The mapping
        preserves first-seen cell order.
        """
        registry = engine_registry()
        salt = code_salt()
        unique: dict[Cell, str] = {}
        for cell in cells:
            if cell not in unique:
                unique[cell] = cell_key(cell, salt=salt)

        results: dict[Cell, object] = {}
        pending: list[Cell] = []
        for cell, key in unique.items():
            self.stats.cells += 1
            registry.get("engine_cells_total").inc()
            if not self.force:
                if key in self.memo:
                    results[cell] = self.memo[key]
                    self.stats.memo_hits += 1
                    registry.get("engine_memo_hits_total").inc()
                    continue
                if self.cache is not None:
                    value = self.cache.get(key)
                    if value is not _MISS:
                        self.memo[key] = value
                        results[cell] = value
                        self.stats.disk_hits += 1
                        registry.get("engine_disk_hits_total").inc()
                        continue
            pending.append(cell)

        if pending:
            tag = f"{group} " if group else ""
            self._emit(
                f"[{tag}engine] {len(pending)}/{len(unique)} cells to run "
                f"({len(unique) - len(pending)} cached), jobs={self.jobs}"
            )
            for index, (cell, value) in enumerate(self._execute(pending), 1):
                key = unique[cell]
                self.memo[key] = value
                if self.cache is not None:
                    self.cache.put(key, value)
                results[cell] = value
                self.stats.executed += 1
                registry.get("engine_cells_executed_total").inc()
                self._emit(f"[{tag}{index}/{len(pending)}] ran {cell.label or cell.fn}")

        # Preserve first-seen order for deterministic reduction.
        return {cell: results[cell] for cell in unique}

    def _execute(self, pending: list[Cell]) -> Iterable[tuple[Cell, object]]:
        if self.jobs > 1 and len(pending) > 1:
            workers = min(self.jobs, len(pending))
            try:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_worker_init,
                    initargs=(
                        self.telemetry_dir,
                        self.telemetry_lifecycle,
                        self.check_every,
                        self.engine,
                        self.anomaly,
                    ),
                ) as pool:
                    yield from self._consume(pending, pool.map(execute_cell, pending))
                    return
            except (OSError, PermissionError) as exc:
                # Sandboxes without process spawning fall back to serial.
                self._emit(f"[engine] process pool unavailable ({exc}); running serially")
        yield from self._consume(pending, map(execute_cell, pending))

    def _consume(self, pending, values) -> Iterable[tuple[Cell, object]]:
        iterator = iter(values)
        for cell in pending:
            try:
                value = next(iterator)
            except StopIteration:  # pragma: no cover - map length mismatch
                raise
            except Exception:
                self.stats.failures += 1
                engine_registry().get("engine_cell_failures_total").inc()
                raise
            yield cell, value


def run_cells(
    cells: Sequence[Cell],
    jobs: int = 1,
    cache: ResultCache | None = None,
    force: bool = False,
    engine: Engine | None = None,
) -> list:
    """Convenience wrapper: execute ``cells``, return values in order."""
    engine = engine if engine is not None else Engine(jobs=jobs, cache=cache, force=force)
    results = engine.run_cells(list(cells))
    return [results[cell] for cell in cells]
