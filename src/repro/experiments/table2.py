"""Table 2: the application suite and its measured characteristics.

Reuse % of a page and total I/O demand, measured from each workload's
trace.  Total I/O is reported both at the simulation scale and re-scaled
to the paper's byte scale (x ``scale``) for side-by-side comparison with
Table 2's GB column.
"""

from __future__ import annotations

from repro.experiments.engine import Cell
from repro.experiments.harness import ExperimentResult, default_config, get_workload
from repro.experiments.spec import ExperimentSpec
from repro.units import GiB
from repro.workloads.registry import WORKLOAD_NAMES, workload_class

#: Table 2's published values, for the paper-vs-measured notes.
PAPER_REUSE_PERCENT = {
    "lavamd": 1.17,
    "pathfinder": 19.47,
    "bfs": 32.86,
    "multivectoradd": 40.0,
    "srad": 83.38,
    "backprop": 93.54,
    "pagerank": 90.42,
    "sssp": 79.96,
    "hotspot": 81.33,
}

PAPER_TOTAL_IO_GB = {
    "lavamd": 168,
    "pathfinder": 202,
    "bfs": 87,
    "multivectoradd": 267,
    "srad": 270,
    "backprop": 6823,
    "pagerank": 349,
    "sssp": 239,
    "hotspot": 1492,
}


def characterize_cell(app, config) -> dict[str, float]:
    """Cell body: trace characterisation scalars for one application."""
    from repro.analysis.characterize import characterize_workload

    workload = get_workload(app, config)
    ch = characterize_workload(workload)
    return {
        "reuse_percent": ch.reuse_percent,
        "total_io_bytes": ch.total_io_bytes(config.page_size),
    }


def _characterize(app, config) -> Cell:
    return Cell.make(
        "repro.experiments.table2:characterize_cell",
        label=f"{app}/characterize",
        app=app,
        config=config,
    )


def _cells(scale):
    config = default_config(scale)
    return [_characterize(app, config) for app in WORKLOAD_NAMES]


def _reduce(results, scale):
    config = default_config(scale)
    rows: list[list[object]] = []
    measured: dict[str, dict[str, float]] = {}
    for app in WORKLOAD_NAMES:
        ch = results[_characterize(app, config)]
        io_gb_paper_scale = ch["total_io_bytes"] * scale / GiB
        measured[app] = {
            "reuse_percent": ch["reuse_percent"],
            "io_gb_paper_scale": io_gb_paper_scale,
        }
        rows.append(
            [
                workload_class(app).name,
                workload_class(app).description,
                ch["reuse_percent"],
                PAPER_REUSE_PERCENT[app],
                io_gb_paper_scale,
                PAPER_TOTAL_IO_GB[app],
            ]
        )
    return [
        ExperimentResult(
            name="table2",
            title="Table 2: applications and their characteristics",
            headers=[
                "app",
                "description",
                "reuse% (measured)",
                "reuse% (paper)",
                "IO GB (measured, rescaled)",
                "IO GB (paper)",
            ],
            rows=rows,
            extras={"measured": measured},
        )
    ]


SPEC = ExperimentSpec(
    name="table2",
    title="Application suite characteristics",
    cells=_cells,
    reduce=_reduce,
)
