"""Experiment harness: one module per paper table/figure.

Every module exports a declarative
:class:`~repro.experiments.spec.ExperimentSpec` — ``cells(scale)``
enumerates the independent replays the experiment needs and
``reduce(results, scale)`` folds them into the rows/series the paper
reports (see DESIGN.md's per-experiment index).  The package-level CLI
executes the cells on the :mod:`~repro.experiments.engine` and prints
the tables::

    python -m repro.experiments fig8 --scale 256
    python -m repro.experiments all --jobs 8

Cells are deduplicated and cached: once per process (figures sharing
the same runs — 8, 9, 10, 14 — pay for them once) and, through the
CLI's content-addressed on-disk cache, across processes too, which
makes interrupted ``all`` runs resumable.  The legacy per-module
``run(scale=...)`` entry points still work but raise
``DeprecationWarning``; use :func:`~repro.experiments.spec.run_spec`.
"""

from repro.experiments.engine import Cell, Engine, EngineStats, ResultCache, run_cells
from repro.experiments.harness import (
    ExperimentResult,
    default_config,
    run_app,
    run_matrix,
)
from repro.experiments.spec import CellResults, ExperimentSpec, run_spec

__all__ = [
    "Cell",
    "CellResults",
    "Engine",
    "EngineStats",
    "ExperimentResult",
    "ExperimentSpec",
    "ResultCache",
    "default_config",
    "run_app",
    "run_cells",
    "run_matrix",
    "run_spec",
]
