"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(scale=...) -> ExperimentResult`` regenerating
the rows/series the paper reports (see DESIGN.md's per-experiment index),
and the package-level CLI prints them::

    python -m repro.experiments fig8 --scale 256
    python -m repro.experiments all

Results within one process are cached by (config, app, runtime), so
figures sharing the same runs (8, 9, 10, 14) pay for them once.
"""

from repro.experiments.harness import (
    ExperimentResult,
    default_config,
    run_app,
    run_matrix,
)

__all__ = ["ExperimentResult", "default_config", "run_app", "run_matrix"]
