"""Shared experiment machinery: configs, cached runs, result containers.

The paper's evaluation replays each application through four runtimes
(BaM, GMT-TierOrder, GMT-Random, GMT-Reuse) and, for Figure 14, HMM.
:func:`run_matrix` performs those replays with process-level caching so
every figure built on the same geometry reuses the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis.report import render_table
from repro.baselines.bam import BamRuntime
from repro.baselines.hmm import HmmRuntime
from repro.core.config import DEFAULT_SCALE, ENGINE_NAMES, GMTConfig, PAPER_OVERSUBSCRIPTION
from repro.core.factory import make_runtime
from repro.core.runtime import GMTRuntime, RunResult
from repro.errors import ConfigError
from repro.workloads.registry import WORKLOAD_NAMES, make_workload, normalize_name
from repro.workloads.trace import Workload

#: Runtime kinds accepted by :func:`run_app`.
RUNTIME_KINDS = ("bam", "tier-order", "random", "reuse", "hmm", "dragon")

#: Display names matching the paper's figures.
RUNTIME_LABELS = {
    "bam": "BaM",
    "tier-order": "GMT-TierOrder",
    "random": "GMT-Random",
    "reuse": "GMT-Reuse",
    "hmm": "HMM",
    "dragon": "Dragon",
}

_workload_cache: dict[tuple, Workload] = {}
_run_cache: dict[tuple, RunResult] = {}

#: When set (see :func:`set_telemetry_dir`), every *uncached* replay runs
#: with telemetry attached and exports its trace/metrics files here.
_telemetry_dir: str | None = None
#: When additionally True, replays record the page-lifecycle flight
#: recorder and export ``<app>-<kind>.lifecycle.jsonl`` too.
_telemetry_lifecycle: bool = False


#: When set (see :func:`set_anomaly_scan`), every *uncached* replay runs
#: with windowed telemetry attached and its window stream is scanned for
#: thrash / bypass-storm / latency-spike anomalies; findings are spooled
#: as JSONL into ``_anomaly["spool_dir"]`` (one file per worker process,
#: so pool workers and the serial path converge on the same directory).
_anomaly: dict | None = None

#: When set (see :func:`set_check_every`), every *uncached* replay runs
#: with periodic conformance checking enabled at this cadence.
_check_every: int | None = None

#: When set (see :func:`set_engine`), overrides every config's ``engine``
#: for runtimes built through :func:`build_runtime` (the ``--engine``
#: flag's process-wide plumbing, like :func:`set_check_every`).
_engine_override: str | None = None


def set_engine(engine: str | None) -> None:
    """Force the replay engine for every subsequent :func:`build_runtime`
    call (None restores per-config selection).  Both engines produce
    byte-identical results — this steers performance only."""
    global _engine_override
    if engine is not None and engine not in ENGINE_NAMES:
        raise ConfigError(f"engine must be one of {ENGINE_NAMES}, got {engine!r}")
    _engine_override = engine


def get_engine() -> str | None:
    """The process-wide engine override (see :func:`set_engine`)."""
    return _engine_override


def set_check_every(every: int | None) -> None:
    """Audit every uncached replay mid-run, each ``every`` coalesced
    accesses (None disables).  The audit is
    :func:`repro.check.identities.assert_conformant` — structural
    invariants plus the stats-identity catalogue — and a violation aborts
    the replay with :class:`~repro.errors.ConformanceError`.  Like
    telemetry, this only affects replays that actually execute; cached
    results are reused as-is.
    """
    global _check_every
    _check_every = every


def _apply_runtime_checks(runtime: GMTRuntime) -> GMTRuntime:
    if _check_every is not None:
        runtime.enable_periodic_checks(_check_every)
    return runtime


def _with_footprint_bound(config: GMTConfig, workload: Workload) -> GMTConfig:
    """Tell the prefetcher where the workload's address space ends."""
    if config.prefetch_degree > 0 and config.footprint_pages is None:
        return replace(config, footprint_pages=workload.footprint_pages)
    return config


def set_telemetry_dir(path: str | None, lifecycle: bool = False) -> None:
    """Enable per-replay telemetry export under ``path`` (None disables).

    Each uncached replay writes ``<app>-<kind>.trace.json`` (Perfetto),
    ``<app>-<kind>.prom`` (Prometheus text) and, when windows were cut,
    ``<app>-<kind>.windows.jsonl`` into the directory.  With
    ``lifecycle=True`` the page-lifecycle flight recorder also runs and
    ``<app>-<kind>.lifecycle.jsonl`` is written (feed it to
    ``gmt-why --from``).  Cached replays are reused as-is and produce no
    new files, so enable this *before* the first figure touches the
    geometry of interest (or call :func:`clear_caches` first).
    """
    global _telemetry_dir, _telemetry_lifecycle
    _telemetry_dir = path
    _telemetry_lifecycle = bool(lifecycle) and path is not None


def set_anomaly_scan(
    spool_dir: str | None,
    window: int = 10_000,
    thrash: float = 0.5,
    bypass: float = 0.75,
    spike: float = 3.0,
) -> None:
    """Scan every *uncached* replay's window stream for anomalies
    (None disables).

    Enables windowed telemetry (interval ``window``) on each replay even
    without :func:`set_telemetry_dir`, runs
    :class:`~repro.obs.anomaly.AnomalyDetector` over the stream after the
    run, and appends one JSON line per finding to
    ``<spool_dir>/<pid>.anomalies.jsonl`` — per-process files, so the
    same spool directory works from :class:`~repro.experiments.engine.
    Engine` pool workers and the serial path alike.  Like telemetry,
    cached replays are reused as-is and contribute no findings.
    """
    global _anomaly
    if spool_dir is None:
        _anomaly = None
        return
    if window < 1:
        raise ConfigError(f"anomaly window must be >= 1, got {window}")
    _anomaly = {
        "spool_dir": spool_dir,
        "window": int(window),
        "thrash": float(thrash),
        "bypass": float(bypass),
        "spike": float(spike),
    }


def get_anomaly_scan() -> dict | None:
    """The process-wide anomaly-scan settings (see :func:`set_anomaly_scan`)."""
    return _anomaly


def _attach_run_telemetry(runtime: GMTRuntime, app: str, kind: str):
    if _telemetry_dir is None and _anomaly is None:
        return None
    from repro.obs import Telemetry

    telemetry = Telemetry(
        labels={"app": normalize_name(app), "kind": kind},
        lifecycle=_telemetry_lifecycle,
        window=_anomaly["window"] if _anomaly is not None else 10_000,
    )
    runtime.attach_telemetry(telemetry)
    return telemetry


def _spool_anomalies(telemetry, app: str, kind: str) -> None:
    import json
    import os

    from repro.obs.anomaly import AnomalyDetector

    detector = AnomalyDetector(
        thrash_evictions_per_access=_anomaly["thrash"],
        bypass_fraction=_anomaly["bypass"],
        latency_spike_factor=_anomaly["spike"],
    )
    findings = detector.scan_and_annotate(telemetry)
    if not findings:
        return
    os.makedirs(_anomaly["spool_dir"], exist_ok=True)
    path = os.path.join(_anomaly["spool_dir"], f"{os.getpid()}.anomalies.jsonl")
    with open(path, "a", encoding="utf-8") as fh:
        for finding in findings:
            fh.write(
                json.dumps(
                    {
                        "app": normalize_name(app),
                        "kind": kind,
                        "rule": finding.rule,
                        "window": finding.window,
                        "position": finding.position,
                        "value": finding.value,
                        "threshold": finding.threshold,
                        "message": str(finding),
                    },
                    sort_keys=True,
                )
                + "\n"
            )


def _export_run_telemetry(telemetry, app: str, kind: str) -> None:
    import os

    from repro.obs.export import write_chrome_trace, write_jsonl, write_prometheus

    os.makedirs(_telemetry_dir, exist_ok=True)
    stem = os.path.join(_telemetry_dir, f"{normalize_name(app)}-{kind}")
    write_chrome_trace(f"{stem}.trace.json", {telemetry.name: telemetry.tracer})
    write_prometheus(f"{stem}.prom", telemetry.registry)
    windows = telemetry.windows()
    if windows:
        write_jsonl(f"{stem}.windows.jsonl", windows)
    if telemetry.lifecycle is not None and len(telemetry.lifecycle):
        from repro.obs.lifecycle import write_lifecycle_jsonl

        write_lifecycle_jsonl(
            f"{stem}.lifecycle.jsonl",
            telemetry.lifecycle.events(),
            extra={"app": normalize_name(app), "runtime": kind},
        )


@dataclass
class ExperimentResult:
    """A regenerated table/figure: headers + rows + free-form notes."""

    name: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)
    #: Free-form side data for tests (means, per-app series, ...).
    extras: dict[str, object] = field(default_factory=dict)

    def to_text(self) -> str:
        text = render_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return text

    def to_csv(self) -> str:
        """Comma-separated rendering (header row first)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def to_json(self) -> str:
        """JSON rendering: name/title/headers/rows/notes (extras omitted —
        they may hold non-serialisable analysis objects)."""
        import json

        return json.dumps(
            {
                "name": self.name,
                "title": self.title,
                "headers": self.headers,
                "rows": self.rows,
                "notes": self.notes,
            },
            default=str,
        )


def default_config(scale: int = DEFAULT_SCALE, **overrides) -> GMTConfig:
    """The section 3.1 geometry at ``1/scale`` bytes, with a sampling
    window proportional to the scaled Tier-1 size."""
    config = GMTConfig.paper_default(scale=scale, **overrides)
    sample_target = max(1_000, config.tier1_frames * 20)
    return replace(
        config,
        sample_target=sample_target,
        sample_batch=max(100, sample_target // 10),
    )


def build_runtime(
    kind: str, config: GMTConfig, engine: str | None = None
) -> GMTRuntime:
    """Instantiate one of the comparison runtimes over ``config``.

    The replay engine resolves ``engine`` (explicit argument) over
    :func:`set_engine` (process-wide ``--engine`` plumbing) over
    ``config.engine``.  Windowed telemetry export and the anomaly scan
    are batch-capable, so ``"auto"`` stays on the vector engine for
    them; only the page-lifecycle flight recorder
    (:func:`set_telemetry_dir` with ``lifecycle=True``) and periodic
    conformance checking (:func:`set_check_every`) — genuinely
    per-access consumers — demote it to scalar.
    """
    if engine is None:
        engine = _engine_override
    recorder = _telemetry_lifecycle
    checks = _check_every is not None
    telemetry = _telemetry_dir is not None or _anomaly is not None
    if kind == "bam":
        runtime_cls: type[GMTRuntime] = BamRuntime
    elif kind == "hmm":
        runtime_cls = HmmRuntime
    elif kind == "dragon":
        from repro.baselines.dragon import DragonRuntime

        runtime_cls = DragonRuntime
    elif kind in ("tier-order", "random", "reuse", "dueling"):
        runtime_cls = GMTRuntime
        config = config.with_policy(kind)
    else:
        raise ConfigError(
            f"unknown runtime kind {kind!r}; expected one of {RUNTIME_KINDS}"
        )
    return make_runtime(
        config,
        runtime_cls=runtime_cls,
        engine=engine,
        recorder=recorder,
        checks=checks,
        telemetry=telemetry,
    )


def get_workload(
    app: str,
    config: GMTConfig,
    oversubscription: float = PAPER_OVERSUBSCRIPTION,
    seed: int = 0,
    **kwargs,
) -> Workload:
    """Cached workload instance (graph generation is the expensive part)."""
    key = (
        normalize_name(app),
        config.working_set_frames(oversubscription),
        seed,
        tuple(sorted(kwargs.items())),
    )
    workload = _workload_cache.get(key)
    if workload is None:
        workload = make_workload(app, config, oversubscription, seed=seed, **kwargs)
        _workload_cache[key] = workload
    return workload


def run_app(
    app: str,
    kind: str,
    config: GMTConfig,
    oversubscription: float = PAPER_OVERSUBSCRIPTION,
    seed: int = 0,
) -> RunResult:
    """Replay ``app`` through runtime ``kind`` (cached per process).

    Note that the *workload footprint* is sized from ``config`` (Tier-1 +
    Tier-2 frames x oversubscription) even for BaM, which then runs it
    with Tier-2 disabled — exactly the paper's setup.
    """
    key = (normalize_name(app), kind, config, oversubscription, seed)
    result = _run_cache.get(key)
    if result is None:
        workload = get_workload(app, config, oversubscription, seed=seed)
        runtime = build_runtime(kind, _with_footprint_bound(config, workload))
        _apply_runtime_checks(runtime)
        telemetry = _attach_run_telemetry(runtime, app, kind)
        result = runtime.run(workload)
        if telemetry is not None:
            if _anomaly is not None:
                _spool_anomalies(telemetry, app, kind)
            if _telemetry_dir is not None:
                _export_run_telemetry(telemetry, app, kind)
        _run_cache[key] = result
    return result


def run_app_with_footprint(
    app: str,
    kind: str,
    config: GMTConfig,
    footprint_pages: int,
    seed: int = 0,
) -> RunResult:
    """Replay ``app`` at an explicit footprint through runtime ``kind``.

    Used by sweeps that vary the *memory geometry* while holding the
    dataset fixed (Figure 12's Tier-2:Tier-1 ratio sweep).
    """
    key = (normalize_name(app), kind, config, "footprint", footprint_pages, seed)
    result = _run_cache.get(key)
    if result is None:
        wkey = (normalize_name(app), footprint_pages, seed, ())
        workload = _workload_cache.get(wkey)
        if workload is None:
            workload = make_workload(app, footprint_pages, seed=seed)
            _workload_cache[wkey] = workload
        runtime = build_runtime(kind, _with_footprint_bound(config, workload))
        _apply_runtime_checks(runtime)
        result = runtime.run(workload)
        _run_cache[key] = result
    return result


def run_matrix(
    config: GMTConfig,
    apps: tuple[str, ...] = WORKLOAD_NAMES,
    kinds: tuple[str, ...] = ("bam", "tier-order", "random", "reuse"),
    oversubscription: float = PAPER_OVERSUBSCRIPTION,
    seed: int = 0,
) -> dict[str, dict[str, RunResult]]:
    """All ``apps`` x ``kinds`` runs: ``{app: {kind: RunResult}}``."""
    return {
        app: {
            kind: run_app(app, kind, config, oversubscription, seed) for kind in kinds
        }
        for app in apps
    }


def clear_caches() -> None:
    """Drop cached workloads, runs and engine memo (test isolation)."""
    from repro.experiments.engine import clear_memo

    _workload_cache.clear()
    _run_cache.clear()
    clear_memo()


# ----------------------------------------------------------------------
# Engine cells: the canonical cell builders every experiment spec uses.
# Building cells through these helpers (rather than Cell.make directly)
# normalises the parameters, so overlapping sweeps — fig8/fig9/fig10/
# fig14 share most of their replay matrix — collapse onto identical
# cache keys.
# ----------------------------------------------------------------------
def replay_cell(
    app: str,
    kind: str,
    config: GMTConfig,
    oversubscription: float = PAPER_OVERSUBSCRIPTION,
    seed: int = 0,
) -> RunResult:
    """Cell body: one app x runtime replay (see :func:`run_app`)."""
    return run_app(app, kind, config, oversubscription, seed)


def replay_footprint_cell(
    app: str, kind: str, config: GMTConfig, footprint_pages: int, seed: int = 0
) -> RunResult:
    """Cell body: replay at an explicit footprint (Figure 12 sweeps)."""
    return run_app_with_footprint(app, kind, config, footprint_pages, seed)


def replay_on_trace_cell(
    app: str,
    kind: str,
    config: GMTConfig,
    trace_config: GMTConfig,
    oversubscription: float = PAPER_OVERSUBSCRIPTION,
    seed: int = 0,
) -> RunResult:
    """Cell body: run ``kind`` under ``config`` on the trace generated
    from ``trace_config`` — sweeps that vary a knob while holding the
    dataset fixed (SSD scaling, model validation, sweep_config)."""
    workload = get_workload(app, trace_config, oversubscription, seed=seed)
    runtime = build_runtime(kind, _with_footprint_bound(config, workload))
    return _apply_runtime_checks(runtime).run(workload)


def oracle_cell(
    app: str,
    config: GMTConfig,
    oversubscription: float = PAPER_OVERSUBSCRIPTION,
    seed: int = 0,
) -> RunResult:
    """Cell body: the Belady-style perfect-prediction upper bound."""
    from repro.core.oracle import run_with_oracle

    workload = get_workload(app, config, oversubscription, seed=seed)
    return run_with_oracle(config, workload)


def replay(
    app: str,
    kind: str,
    config: GMTConfig,
    oversubscription: float = PAPER_OVERSUBSCRIPTION,
    seed: int = 0,
):
    """The canonical replay :class:`~repro.experiments.engine.Cell`."""
    from repro.experiments.engine import Cell

    app = normalize_name(app)
    return Cell.make(
        "repro.experiments.harness:replay_cell",
        label=f"{app}/{kind}",
        app=app,
        kind=kind,
        config=config,
        oversubscription=float(oversubscription),
        seed=int(seed),
    )


def replay_with_footprint(
    app: str, kind: str, config: GMTConfig, footprint_pages: int, seed: int = 0
):
    """Replay cell at an explicit footprint."""
    from repro.experiments.engine import Cell

    app = normalize_name(app)
    return Cell.make(
        "repro.experiments.harness:replay_footprint_cell",
        label=f"{app}/{kind}@{footprint_pages}p",
        app=app,
        kind=kind,
        config=config,
        footprint_pages=int(footprint_pages),
        seed=int(seed),
    )


def replay_on_trace(
    app: str,
    kind: str,
    config: GMTConfig,
    trace_config: GMTConfig,
    oversubscription: float = PAPER_OVERSUBSCRIPTION,
    seed: int = 0,
):
    """Replay cell with the trace pinned to ``trace_config``."""
    from repro.experiments.engine import Cell

    app = normalize_name(app)
    return Cell.make(
        "repro.experiments.harness:replay_on_trace_cell",
        label=f"{app}/{kind}(fixed-trace)",
        app=app,
        kind=kind,
        config=config,
        trace_config=trace_config,
        oversubscription=float(oversubscription),
        seed=int(seed),
    )


def oracle_replay(
    app: str,
    config: GMTConfig,
    oversubscription: float = PAPER_OVERSUBSCRIPTION,
    seed: int = 0,
):
    """Oracle (perfect-prediction) replay cell."""
    from repro.experiments.engine import Cell

    app = normalize_name(app)
    return Cell.make(
        "repro.experiments.harness:oracle_cell",
        label=f"{app}/oracle",
        app=app,
        config=config,
        oversubscription=float(oversubscription),
        seed=int(seed),
    )


def app_label(app: str) -> str:
    """Table 2 capitalisation for a registry key."""
    from repro.workloads.registry import workload_class

    return workload_class(app).name
