"""Figure 9: GMT-Reuse's tier-prediction accuracy per application.

A prediction resolves when its page returns to Tier-1 and the actual
remaining VTD reveals the "correct" tier (section 2.1.3, step 2).  The
paper's accuracies are high for the high-reuse applications (Srad,
Backprop) and near-useless for LavaMD, whose single pass builds no
history — both properties this harness checks.
"""

from __future__ import annotations

from repro.experiments.harness import (
    ExperimentResult,
    app_label,
    default_config,
    replay,
)
from repro.experiments.spec import ExperimentSpec
from repro.workloads.registry import WORKLOAD_NAMES


def _cells(scale):
    config = default_config(scale)
    return [replay(app, "reuse", config) for app in WORKLOAD_NAMES]


def _reduce(results, scale):
    config = default_config(scale)
    rows: list[list[object]] = []
    accuracies: dict[str, float] = {}
    for app in WORKLOAD_NAMES:
        stats = results[replay(app, "reuse", config)].stats
        accuracies[app] = stats.prediction_accuracy
        rows.append(
            [
                app_label(app),
                stats.prediction_accuracy,
                stats.resolved_predictions,
                stats.predictions_made,
                stats.fallback_placements,
            ]
        )
    return [
        ExperimentResult(
            name="fig9",
            title="Figure 9: GMT-Reuse prediction accuracy",
            headers=["app", "accuracy", "resolved", "predictions", "fallbacks"],
            rows=rows,
            extras={"accuracies": accuracies},
        )
    ]


SPEC = ExperimentSpec(
    name="fig9",
    title="GMT-Reuse prediction accuracy per application",
    cells=_cells,
    reduce=_reduce,
)
