"""Isolation experiment: adversarial tenant pairs, shared vs per-tenant
eviction policies, migration governor on/off.

cache_ext's motivating result is that one replacement policy cannot fit
every tenant — a policy that is right for a zipf-skewed key-value tenant
is wrong for a cyclic scan, and in a *shared* structure the scan's pages
evict the zipf tenant's hot set.  TierBPF's is that policy alone is not
enough: a thrashing tenant also monopolises the migration links.  This
experiment reproduces both effects on the serving layer:

- **pairs** — two adversarial mixes: a cyclic scan (MRU-friendly,
  clock-hostile) against a zipf key-value tenant (LFU-friendly), and a
  low-reuse BFS thrasher against a steady high-reuse hotspot kernel;
- **modes** — the same pair served four ways: one shared clock
  (baseline), shared clock + static quotas, per-tenant policies +
  quotas, and per-tenant policies + quotas + the migration governor;
- **reduction** — per-tenant slowdown vs solo and Jain's fairness index,
  one table per pair.

Solo baselines are shared cells (they depend only on the config).
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.engine import Cell
from repro.experiments.harness import ExperimentResult, default_config
from repro.experiments.spec import ExperimentSpec
from repro.units import format_time

#: pair name -> ((tenant, workload, tier1_policy, tier2_policy), ...).
#: The per-tenant policies are what the "split" modes assign; shared
#: modes ignore them and run everything on one clock.
PAIRS: dict[str, tuple[tuple[str, str, str, str], ...]] = {
    "scan-vs-zipf": (
        ("scan", "streaming", "mru", "mru"),
        ("zipf", "keyvalue", "lfu", "lfu"),
    ),
    "thrash-vs-steady": (
        ("thrash", "bfs", "s3fifo", "s3fifo"),
        ("steady", "hotspot", "mglru", "mglru"),
    ),
}

#: Serving modes, in presentation order.
MODES = ("shared", "shared+quota", "split+quota", "split+quota+governor")

#: pair name -> (tokens_per_1k_accesses, burst, promotion_stall_ns).
#: The governor bucket is sized per pair, TierBPF-style: the thrash
#: pair's migration monopoly wants a tight bucket, while the scan pair
#: has no monopoly to police — a right-sized bucket there is loose
#: enough to stay inert (zero throttles) rather than starve the very
#: tenant it would be protecting.
GOVERNORS: dict[str, tuple[float, float, float]] = {
    "scan-vs-zipf": (800.0, 48.0, 8000.0),
    "thrash-vs-steady": (50.0, 16.0, 25000.0),
}


def _specs(pair: str, split: bool):
    from repro.serve import TenantSpec

    return [
        TenantSpec(
            name=name,
            workload=workload,
            tier1_policy=t1 if split else None,
            tier2_policy=t2 if split else None,
        )
        for name, workload, t1, t2 in PAIRS[pair]
    ]


@lru_cache(maxsize=32)
def _streams(pair: str, split: bool, config):
    """Per-process stream cache (workload generation dominates)."""
    from repro.serve import build_tenants

    return build_tenants(_specs(pair, split), config)


def solo_cell(config, pair: str, index: int) -> float:
    """Cell body: solo elapsed time (ns) of one tenant's stream."""
    from repro.serve import TenantServer

    streams = _streams(pair, False, config)
    probe = TenantServer(config, streams)
    return probe.solo_run(streams[index]).elapsed_ns


def mode_cell(config, pair: str, mode: str):
    """Cell body: one pair served under one isolation mode."""
    from repro.serve import GovernorConfig, QuotaConfig, TenantServer

    split = mode.startswith("split")
    streams = _streams(pair, split, config)
    governor = None
    if "governor" in mode:
        rate, burst, stall = GOVERNORS[pair]
        governor = GovernorConfig(
            tokens_per_1k_accesses=rate,
            burst=burst,
            promotion_stall_ns=stall,
        )
    server = TenantServer(
        config,
        streams,
        quota=QuotaConfig(mode="static") if "quota" in mode else None,
        governor=governor,
    )
    return server.run(solo_baselines=False)


def _solo(config, pair: str, index: int) -> Cell:
    tenant = PAIRS[pair][index][0]
    return Cell.make(
        "repro.experiments.isolation:solo_cell",
        label=f"{pair}/{tenant}/solo",
        config=config,
        pair=pair,
        index=index,
    )


def _mode(config, pair: str, mode: str) -> Cell:
    return Cell.make(
        "repro.experiments.isolation:mode_cell",
        label=f"{pair}/{mode}",
        config=config,
        pair=pair,
        mode=mode,
    )


def _cells(scale):
    config = default_config(scale)
    cells = []
    for pair in PAIRS:
        cells += [_solo(config, pair, i) for i in range(len(PAIRS[pair]))]
        cells += [_mode(config, pair, mode) for mode in MODES]
    return cells


def _reduce(results, scale):
    config = default_config(scale)
    tables = []
    fairness_by_key: dict[tuple[str, str], dict] = {}
    outcomes: dict[tuple[str, str], object] = {}
    for pair, members in PAIRS.items():
        solo_ns = {
            i: results[_solo(config, pair, i)] for i in range(len(members))
        }
        headers = ["mode", "makespan"]
        headers += [f"{name} slowdown" for name, *_ in members]
        headers += ["Jain", "throttled"]
        rows: list[list[object]] = []
        for mode in MODES:
            outcome = results[_mode(config, pair, mode)]
            for position, tenant in enumerate(outcome.tenants):
                tenant.solo_ns = solo_ns[position]
            outcomes[(pair, mode)] = outcome
            fairness = outcome.fairness()
            fairness_by_key[(pair, mode)] = fairness
            throttled = sum(
                t.stats.migration_throttled for t in outcome.tenants
            )
            row: list[object] = [mode, format_time(outcome.elapsed_ns)]
            row += [f"{t.slowdown:.2f}x" for t in outcome.tenants]
            row += [f"{fairness['jain_index']:.3f}", throttled]
            rows.append(row)
        policies = ", ".join(
            f"{name}: {t1}/{t2}" for name, _, t1, t2 in members
        )
        tables.append(
            ExperimentResult(
                name=f"isolation/{pair}",
                title=f"Isolation — {pair} (split policies: {policies})",
                headers=headers,
                rows=rows,
                notes=[
                    "slowdown = shared completion time / solo elapsed time",
                    "Jain's index over normalised service (1/slowdown); "
                    "1.0 = perfectly fair",
                    "split modes give each tenant its own eviction policy "
                    "instance; the governor rate-limits per-tenant tier "
                    "migrations (token bucket, sized per pair: "
                    f"{GOVERNORS[pair][0]:.0f} tokens/1k accesses, "
                    f"burst {GOVERNORS[pair][1]:.0f})",
                ],
                extras={
                    "pair": pair,
                    "fairness": {
                        mode: fairness_by_key[(pair, mode)] for mode in MODES
                    },
                    "outcomes": {
                        mode: outcomes[(pair, mode)] for mode in MODES
                    },
                    "solo_ns": solo_ns,
                },
            )
        )
    return tables


SPEC = ExperimentSpec(
    name="isolation",
    title="Per-tenant policy + governor isolation vs shared baseline",
    cells=_cells,
    reduce=_reduce,
)
