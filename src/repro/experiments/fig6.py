"""Figure 6: comparing Tier-1<->Tier-2 transfer schemes (section 2.3).

- Figure 6(a): transfer efficiency vs number of non-contiguous pages for
  cudaMemcpyAsync (DMA) and warp zero-copy; the crossover sits around 8
  pages, which is where Hybrid-XT puts its threshold.
- Figure 6(b): delivered bandwidth across zipf skews for DMA, zero-copy,
  and Hybrid-{8,16,32}T.  Warps draw page addresses from a zipf
  distribution; a software cache (FIFO over Tier-1-like capacity) decides
  which lanes miss, and missing pages of a small window of warps are
  transferred as one batch whose helping-thread count is the number of
  faulting lanes.  Hybrid-32T should track the best engine everywhere —
  it is what GMT ships with.
"""

from __future__ import annotations

from repro.experiments.engine import Cell
from repro.experiments.harness import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.sim.transfer import (
    DmaEngine,
    TransferEngine,
    ZeroCopyEngine,
    make_engine,
)
from repro.units import GiB, PAGE_SIZE, SEC
from repro.workloads.synthetic import ZipfAccessGenerator

PAGE_COUNTS = (1, 2, 4, 6, 8, 12, 16, 24, 32, 64)
SKEWS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)

#: The Figure 6(b) engine line-up as ``make_engine`` specs.
ENGINE_SPECS = ("dma", "zero-copy", "hybrid-8t", "hybrid-16t", "hybrid-32t")


def crossover_pages(
    dma: DmaEngine, zero_copy: ZeroCopyEngine, limit: int = 1024
) -> int | None:
    """Smallest batch size at which zero-copy beats DMA (None if never)."""
    for n in range(1, limit + 1):
        if zero_copy.transfer_time_ns(n) < dma.transfer_time_ns(n):
            return n
    return None


def zipf_delivered_bandwidth(
    engine: TransferEngine,
    skew: float,
    footprint_pages: int = 4096,
    cache_frames: int = 1024,
    num_warps: int = 3000,
    window_warps: int = 3,
    seed: int = 7,
) -> float:
    """Delivered transfer bandwidth (bytes/s) of the Figure 6(b) microbench."""
    generator = ZipfAccessGenerator(
        footprint_pages, num_warps, skew, lanes=32, seed=seed
    )
    cache: dict[int, None] = {}  # FIFO over insertion order
    total_bytes = 0
    total_ns = 0.0
    window_missing: dict[int, None] = {}
    faulting_lanes = 0
    warps_in_window = 0

    def flush() -> None:
        nonlocal total_bytes, total_ns, window_missing, faulting_lanes, warps_in_window
        if window_missing:
            threads = max(1, min(32, faulting_lanes))
            total_ns += engine.transfer_time_ns(len(window_missing), threads)
            total_bytes += len(window_missing) * PAGE_SIZE
            for page in window_missing:
                if len(cache) >= cache_frames:
                    cache.pop(next(iter(cache)))
                cache[page] = None
        window_missing = {}
        faulting_lanes = 0
        warps_in_window = 0

    for warp in generator:
        for page in warp.pages:
            if page not in cache and page not in window_missing:
                window_missing[page] = None
                faulting_lanes += 1
            elif page in window_missing:
                faulting_lanes += 1
        warps_in_window += 1
        if warps_in_window >= window_warps:
            flush()
    flush()
    if total_ns == 0:
        return 0.0
    return total_bytes / (total_ns / SEC)


def bandwidth_cell(engine_spec: str, skew: float, seed: int = 7) -> float:
    """Cell body: delivered GiB/s of one engine at one zipf skew."""
    return zipf_delivered_bandwidth(make_engine(engine_spec), skew, seed=seed) / GiB


def _bandwidth(engine_spec: str, skew: float) -> Cell:
    return Cell.make(
        "repro.experiments.fig6:bandwidth_cell",
        label=f"{engine_spec}@zipf{skew}",
        engine_spec=engine_spec,
        skew=float(skew),
        seed=7,
    )


def _cells(scale):
    del scale  # the transfer microbenchmarks are scale-independent
    return [_bandwidth(spec, skew) for skew in SKEWS for spec in ENGINE_SPECS]


def _reduce(results, scale):
    del scale
    dma = DmaEngine()
    zero_copy = ZeroCopyEngine()

    eff_rows: list[list[object]] = []
    for n in PAGE_COUNTS:
        eff_rows.append(
            [
                n,
                dma.efficiency(n) / GiB,
                zero_copy.efficiency(n) / GiB,
            ]
        )
    cross = crossover_pages(dma, zero_copy)
    fig6a = ExperimentResult(
        name="fig6a",
        title="Figure 6(a): transfer efficiency (GiB/s) vs non-contiguous pages",
        headers=["pages", "cudaMemcpyAsync", "zero-copy"],
        rows=eff_rows,
        notes=[f"zero-copy overtakes DMA at {cross} pages (paper: ~8)"],
        extras={"crossover": cross},
    )

    names = [make_engine(spec).name for spec in ENGINE_SPECS]
    bw_rows: list[list[object]] = []
    series: dict[str, list[float]] = {name: [] for name in names}
    for skew in SKEWS:
        row: list[object] = [skew]
        for spec, name in zip(ENGINE_SPECS, names):
            bw = results[_bandwidth(spec, skew)]
            series[name].append(bw)
            row.append(bw)
        bw_rows.append(row)
    fig6b = ExperimentResult(
        name="fig6b",
        title="Figure 6(b): delivered bandwidth (GiB/s) for zipf page accesses",
        headers=["skew"] + names,
        rows=bw_rows,
        notes=["paper: Hybrid-32T does (or is close to) the best across skews"],
        extras={"series": series},
    )
    return [fig6a, fig6b]


SPEC = ExperimentSpec(
    name="fig6",
    title="Transfer engine microbenchmarks",
    cells=_cells,
    reduce=_reduce,
)
