"""Figure 4: the empirical basis of GMT-Reuse (MultiVectorAdd, PageRank).

- Figure 4(a): VTD vs exact reuse distance is near-linear for both apps —
  the justification for using VTD as a cheap RD proxy (Eq. 2).  We report
  the Pearson r and the fitted slope/offset.
- Figure 4(b): MultiVectorAdd pages see the *same* RRD at every Tier-1
  eviction ("we can use the actual RRD from the (i-1)-th eviction to
  predict the RRD for the i-th eviction").
- Figure 4(c): PageRank RRDs are correlated but *alternate* between two
  values, which is what motivates the 2-level (rather than 1-level)
  history behind the Markov predictor.

Per-page eviction series are classified as constant / alternating / other
and the fractions reported.
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments.engine import Cell
from repro.experiments.harness import ExperimentResult, default_config, get_workload
from repro.experiments.spec import ExperimentSpec

APPS = ("multivectoradd", "pagerank")

#: Relative spread below which successive RRDs count as "the same value".
_CONSTANT_TOLERANCE = 0.15


def classify_series(series: list[int], tolerance: float = _CONSTANT_TOLERANCE) -> str:
    """Label an eviction-RRD series 'constant', 'alternating', or 'other'."""
    if len(series) < 3:
        return "other"
    if _is_flat(series, tolerance):
        return "constant"
    evens = series[0::2]
    odds = series[1::2]
    if len(evens) >= 2 and len(odds) >= 2:
        if _is_flat(evens, tolerance) and _is_flat(odds, tolerance):
            return "alternating"
    return "other"


def _is_flat(values: list[int], tolerance: float) -> bool:
    lo, hi = min(values), max(values)
    center = (lo + hi) / 2
    if center == 0:
        return hi == 0
    return (hi - lo) / center <= tolerance


def eviction_series_fractions(
    workload, tier1_frames: int, min_evictions: int = 3
) -> dict[str, float]:
    """Fractions of pages whose eviction-RRD series is constant /
    alternating / other (pages with >= ``min_evictions`` resolved RRDs)."""
    from repro.analysis.characterize import collect_eviction_rrds

    analysis = collect_eviction_rrds(workload, tier1_frames)
    per_page: dict[int, list[int]] = defaultdict(list)
    for page, rrd in analysis.rrds:
        per_page[page].append(rrd)
    labels = [
        classify_series(series)
        for series in per_page.values()
        if len(series) >= min_evictions
    ]
    if not labels:
        return {"constant": 0.0, "alternating": 0.0, "other": 0.0, "pages": 0}
    total = len(labels)
    return {
        "constant": labels.count("constant") / total,
        "alternating": labels.count("alternating") / total,
        "other": labels.count("other") / total,
        "pages": total,
    }


def correlation_cell(app, config) -> dict[str, float]:
    """Cell body: Figure 4(a) VTD-vs-RD correlation scalars."""
    from repro.analysis.characterize import vtd_rd_correlation

    # Instrumented runs characterise the application's intrinsic
    # pattern, so the in-flight-warp jitter is disabled.
    workload = get_workload(app, config, jitter_warps=0)
    corr = vtd_rd_correlation(workload, max_samples=50_000)
    return {
        "name": workload.name,
        "samples": corr.samples,
        "pearson_r": corr.pearson_r,
        "m": corr.model.m,
        "b": corr.model.b,
    }


def series_cell(app, config) -> dict[str, object]:
    """Cell body: Figure 4(b/c) per-page eviction-RRD pattern fractions."""
    workload = get_workload(app, config, jitter_warps=0)
    return {
        "name": workload.name,
        "fractions": eviction_series_fractions(workload, config.tier1_frames),
    }


def _corr(app, config) -> Cell:
    return Cell.make(
        "repro.experiments.fig4:correlation_cell",
        label=f"{app}/vtd-rd-corr",
        app=app,
        config=config,
    )


def _series(app, config) -> Cell:
    return Cell.make(
        "repro.experiments.fig4:series_cell",
        label=f"{app}/rrd-series",
        app=app,
        config=config,
    )


def _cells(scale):
    config = default_config(scale)
    return [_corr(app, config) for app in APPS] + [
        _series(app, config) for app in APPS
    ]


def _reduce(results, scale):
    config = default_config(scale)

    corr_rows: list[list[object]] = []
    correlations: dict[str, float] = {}
    for app in APPS:
        corr = results[_corr(app, config)]
        correlations[app] = corr["pearson_r"]
        corr_rows.append(
            [corr["name"], corr["samples"], corr["pearson_r"], corr["m"], corr["b"]]
        )
    fig4a = ExperimentResult(
        name="fig4a",
        title="Figure 4(a): VTD vs reuse distance (linear correlation)",
        headers=["app", "samples", "pearson r", "slope m", "offset b"],
        rows=corr_rows,
        notes=["paper: 'good correlation (linear in fact) between VTD and RD'"],
        extras={"correlations": correlations},
    )

    series_rows: list[list[object]] = []
    series_fracs: dict[str, dict[str, float]] = {}
    for app in APPS:
        cell = results[_series(app, config)]
        fr = cell["fractions"]
        series_fracs[app] = fr
        series_rows.append(
            [
                cell["name"],
                fr["pages"],
                100 * fr["constant"],
                100 * fr["alternating"],
                100 * fr["other"],
            ]
        )
    fig4bc = ExperimentResult(
        name="fig4bc",
        title="Figure 4(b/c): per-page RRD patterns across Tier-1 evictions",
        headers=["app", "pages", "constant %", "alternating %", "other %"],
        rows=series_rows,
        notes=[
            "paper: MultiVectorAdd RRDs constant per page; PageRank RRDs alternate",
        ],
        extras={"series_fractions": series_fracs},
    )
    return [fig4a, fig4bc]


SPEC = ExperimentSpec(
    name="fig4",
    title="VTD/RD correlation and eviction-RRD patterns",
    cells=_cells,
    reduce=_reduce,
)
