"""Figure 8: the headline result (Tier-1 = "16 GB", Tier-2 = 4x, oversub 2).

- Figure 8(a): speedup of GMT-TierOrder / GMT-Random / GMT-Reuse over BaM
  per application.  Paper averages: 1.07 / 1.24 / 1.50.
- Figure 8(b): SSD I/O of each policy relative to BaM (the mechanism
  behind the speedups: Tier-2 hits avoid SSD transfers).
"""

from __future__ import annotations

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.harness import (
    ExperimentResult,
    app_label,
    default_config,
    replay,
)
from repro.experiments.spec import ExperimentSpec
from repro.workloads.registry import WORKLOAD_NAMES

POLICIES = ("tier-order", "random", "reuse")


def _cells(scale):
    config = default_config(scale)
    return [
        replay(app, kind, config)
        for app in WORKLOAD_NAMES
        for kind in ("bam",) + POLICIES
    ]


def _reduce(results, scale):
    config = default_config(scale)

    speedup_rows: list[list[object]] = []
    io_rows: list[list[object]] = []
    speedups: dict[str, list[float]] = {p: [] for p in POLICIES}
    io_ratios: dict[str, list[float]] = {p: [] for p in POLICIES}

    for app in WORKLOAD_NAMES:
        bam = results[replay(app, "bam", config)]
        srow: list[object] = [app_label(app)]
        iorow: list[object] = [app_label(app)]
        for policy in POLICIES:
            result = results[replay(app, policy, config)]
            s = result.speedup_over(bam)
            speedups[policy].append(s)
            srow.append(s)
            ratio = (
                result.stats.ssd_page_ios / bam.stats.ssd_page_ios
                if bam.stats.ssd_page_ios
                else 0.0
            )
            io_ratios[policy].append(ratio)
            iorow.append(ratio)
        speedup_rows.append(srow)
        io_rows.append(iorow)

    means = {p: arithmetic_mean(speedups[p]) for p in POLICIES}
    speedup_rows.append(["Average"] + [means[p] for p in POLICIES])
    io_rows.append(["Average"] + [arithmetic_mean(io_ratios[p]) for p in POLICIES])

    headers = ["app", "GMT-TierOrder", "GMT-Random", "GMT-Reuse"]
    fig8a = ExperimentResult(
        name="fig8a",
        title="Figure 8(a): speedup over BaM (Tier-1=16GB eq., Tier-2=4x, oversub=2)",
        headers=headers,
        rows=speedup_rows,
        notes=[
            "paper averages: TierOrder 1.07, Random 1.24, Reuse 1.50",
            f"measured averages: TierOrder {means['tier-order']:.2f}, "
            f"Random {means['random']:.2f}, Reuse {means['reuse']:.2f}",
        ],
        extras={"speedups": speedups, "means": means},
    )
    fig8b = ExperimentResult(
        name="fig8b",
        title="Figure 8(b): SSD I/O relative to BaM (lower is better)",
        headers=headers,
        rows=io_rows,
        extras={"io_ratios": io_ratios},
    )
    return [fig8a, fig8b]


SPEC = ExperimentSpec(
    name="fig8",
    title="Headline speedups and SSD I/O vs BaM",
    cells=_cells,
    reduce=_reduce,
)
