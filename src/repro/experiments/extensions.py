"""Extension studies beyond the paper's figures.

Three questions the paper raises but does not quantify, answered with the
same harness:

- **Oracle gap** — how far is GMT-Reuse from its own upper bound (perfect
  RVTD knowledge + converged regression, see :mod:`repro.core.oracle`)?
  Section 2.1.3 positions GMT-Reuse as an approximation of Belady's OPT;
  this measures the remaining approximation error.
- **SSD scaling** — BaM scales across SSD arrays; how many drives until
  the SSD stops being the bottleneck and Tier-2 stops mattering?  (The
  paper's platform has a single Gen3 x4 drive.)
- **Prefetching** — section 2 keeps movement demand-based "as in BaM";
  what happens if a UVM-style sequential prefetcher is added?  (Answer:
  in the bandwidth-bound regime it only inflates SSD traffic.)

Run with ``python -m repro.experiments extensions``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.metrics import arithmetic_mean
from repro.core.config import DEFAULT_SCALE
from repro.experiments.harness import (
    ExperimentResult,
    app_label,
    default_config,
    oracle_replay,
    replay,
    replay_on_trace,
)
from repro.experiments.spec import ExperimentSpec, run_spec

#: Apps with enough reuse for the oracle comparison to be interesting.
ORACLE_APPS = ("multivectoradd", "srad", "backprop", "pagerank", "hotspot")
SSD_COUNTS = (1, 2, 4, 8)
PREFETCH_APPS = ("pathfinder", "hotspot", "bfs")
SSD_SCALING_APPS = ("srad", "backprop", "hotspot", "pagerank")
MODEL_VALIDATION_APPS = ("lavamd", "multivectoradd", "srad", "pagerank", "hotspot")


# ----------------------------------------------------------------------
# Oracle gap
# ----------------------------------------------------------------------
def _oracle_cells(scale):
    config = default_config(scale)
    cells = []
    for app in ORACLE_APPS:
        cells.append(replay(app, "bam", config))
        cells.append(replay(app, "reuse", config))
        cells.append(oracle_replay(app, config))
    return cells


def _oracle_reduce(results, scale):
    config = default_config(scale)
    rows: list[list[object]] = []
    gaps: dict[str, float] = {}
    for app in ORACLE_APPS:
        bam = results[replay(app, "bam", config)]
        reuse = results[replay(app, "reuse", config)]
        oracle = results[oracle_replay(app, config)]
        s_reuse = reuse.speedup_over(bam)
        s_oracle = oracle.speedup_over(bam)
        gaps[app] = s_oracle / s_reuse
        rows.append([app_label(app), s_reuse, s_oracle, gaps[app]])
    rows.append(["Average", "-", "-", arithmetic_mean(list(gaps.values()))])
    return [
        ExperimentResult(
            name="ext-oracle",
            title="Extension: GMT-Reuse vs its perfect-prediction oracle (speedup over BaM)",
            headers=["app", "GMT-Reuse", "oracle", "oracle/reuse"],
            rows=rows,
            notes=[
                "oracle = exact future RVTD + whole-trace Eq. 2 fit; same tiers,"
                " heuristic, and transfer machinery",
                "a ratio near 1 means prediction error is not the limiter",
            ],
            extras={"gaps": gaps},
        )
    ]


ORACLE_SPEC = ExperimentSpec(
    name="ext-oracle", cells=_oracle_cells, reduce=_oracle_reduce
)


def run_oracle_gap(scale: int = DEFAULT_SCALE) -> ExperimentResult:
    return run_spec(ORACLE_SPEC, scale=scale)[0]


# ----------------------------------------------------------------------
# SSD scaling
# ----------------------------------------------------------------------
def _ssd_configs(scale):
    base = default_config(scale)
    return base, {
        count: replace(base, platform=base.platform.with_ssd_array(count))
        for count in SSD_COUNTS
    }


def _ssd_cells(scale):
    base, configs = _ssd_configs(scale)
    return [
        replay_on_trace(app, kind, configs[count], base)  # same traces everywhere
        for count in SSD_COUNTS
        for app in SSD_SCALING_APPS
        for kind in ("bam", "reuse")
    ]


def _ssd_reduce(results, scale):
    base, configs = _ssd_configs(scale)
    rows: list[list[object]] = []
    means: dict[int, float] = {}
    for count in SSD_COUNTS:
        config = configs[count]
        speedups = []
        bottlenecks = set()
        for app in SSD_SCALING_APPS:
            bam = results[replay_on_trace(app, "bam", config, base)]
            reuse = results[replay_on_trace(app, "reuse", config, base)]
            speedups.append(reuse.speedup_over(bam))
            bottlenecks.add(reuse.breakdown.bottleneck)
        means[count] = arithmetic_mean(speedups)
        rows.append([count, means[count], ", ".join(sorted(bottlenecks))])
    return [
        ExperimentResult(
            name="ext-ssd-scaling",
            title="Extension: GMT-Reuse speedup over BaM vs SSD array size",
            headers=["SSDs", "mean speedup (4 high-reuse apps)", "GMT bottlenecks"],
            rows=rows,
            notes=[
                "Tier-2's value comes from relieving the SSD; enough drives"
                " shift the bottleneck and shrink the gap"
            ],
            extras={"means": means},
        )
    ]


SSD_SPEC = ExperimentSpec(
    name="ext-ssd-scaling", cells=_ssd_cells, reduce=_ssd_reduce
)


def run_ssd_scaling(scale: int = DEFAULT_SCALE) -> ExperimentResult:
    return run_spec(SSD_SPEC, scale=scale)[0]


# ----------------------------------------------------------------------
# Prefetch study
# ----------------------------------------------------------------------
def _prefetch_cells(scale):
    base = default_config(scale)
    pf_config = replace(base, prefetch_degree=4)
    cells = []
    for app in PREFETCH_APPS:
        cells.append(replay(app, "reuse", base))
        cells.append(replay(app, "reuse", pf_config))
    return cells


def _prefetch_reduce(results, scale):
    base = default_config(scale)
    pf_config = replace(base, prefetch_degree=4)
    rows: list[list[object]] = []
    deltas: dict[str, float] = {}
    for app in PREFETCH_APPS:
        plain = results[replay(app, "reuse", base)]
        prefetch = results[replay(app, "reuse", pf_config)]
        stats = prefetch.stats
        deltas[app] = prefetch.elapsed_ns / plain.elapsed_ns
        rows.append(
            [
                app_label(app),
                deltas[app],
                stats.prefetches_issued,
                stats.prefetch_accuracy,
                stats.ssd_page_reads / max(1, plain.stats.ssd_page_reads),
            ]
        )
    return [
        ExperimentResult(
            name="ext-prefetch",
            title="Extension: adding a sequential prefetcher to GMT-Reuse (degree 4)",
            headers=["app", "time vs no-prefetch", "issued", "accuracy", "SSD reads ratio"],
            rows=rows,
            notes=[
                "in the SSD-bandwidth-bound regime prefetching trades latency"
                " (plentiful, thanks to fault parallelism) for bandwidth"
                " (scarce) — demand-only movement, as the paper chose, wins"
            ],
            extras={"time_ratios": deltas},
        )
    ]


PREFETCH_SPEC = ExperimentSpec(
    name="ext-prefetch", cells=_prefetch_cells, reduce=_prefetch_reduce
)


def run_prefetch_study(scale: int = DEFAULT_SCALE) -> ExperimentResult:
    return run_spec(PREFETCH_SPEC, scale=scale)[0]


# ----------------------------------------------------------------------
# Model validation
# ----------------------------------------------------------------------
def _model_configs(scale):
    base = default_config(scale)
    return {"analytic": base, "queueing": replace(base, time_model="queueing")}


def _model_cells(scale):
    configs = _model_configs(scale)
    return [
        replay(app, kind, config)
        for app in MODEL_VALIDATION_APPS
        for config in configs.values()
        for kind in ("bam", "reuse")
    ]


def _model_reduce(results, scale):
    """Analytic (roofline) vs queueing time model, same runs.

    Where bandwidth binds (the paper's single-SSD platform) the two agree
    almost exactly — validating the roofline's "maximum of bottlenecks"
    assumption.  For the CPU-orchestrated HMM, whose handler slots queue,
    the queueing model shows the *extra* serialization the roofline's
    averaged fault term understates.
    """
    configs = _model_configs(scale)
    rows: list[list[object]] = []
    ratios: dict[str, float] = {}
    for app in MODEL_VALIDATION_APPS:
        speeds = {}
        for label, config in configs.items():
            bam = results[replay(app, "bam", config)]
            reuse = results[replay(app, "reuse", config)]
            speeds[label] = reuse.speedup_over(bam)
        ratios[app] = speeds["queueing"] / speeds["analytic"]
        rows.append(
            [app_label(app), speeds["analytic"], speeds["queueing"], ratios[app]]
        )
    return [
        ExperimentResult(
            name="ext-model-validation",
            title="Extension: analytic vs queueing time model (GMT-Reuse speedup over BaM)",
            headers=["app", "analytic", "queueing", "queueing/analytic"],
            rows=rows,
            notes=[
                "agreement validates the roofline model on the paper's"
                " bandwidth-bound platform"
            ],
            extras={"ratios": ratios},
        )
    ]


MODEL_SPEC = ExperimentSpec(
    name="ext-model-validation", cells=_model_cells, reduce=_model_reduce
)


def run_model_validation(scale: int = DEFAULT_SCALE) -> ExperimentResult:
    return run_spec(MODEL_SPEC, scale=scale)[0]


# ----------------------------------------------------------------------
# Combined spec
# ----------------------------------------------------------------------
_SUBSPECS = (ORACLE_SPEC, SSD_SPEC, PREFETCH_SPEC, MODEL_SPEC)


def _cells(scale):
    cells = []
    for sub in _SUBSPECS:
        cells.extend(sub.cells(scale))
    return cells


def _reduce(results, scale):
    out = []
    for sub in _SUBSPECS:
        out.extend(sub.reduce(results, scale))
    return out


SPEC = ExperimentSpec(
    name="extensions",
    title="Oracle gap, SSD scaling, prefetching, model validation",
    cells=_cells,
    reduce=_reduce,
)
