"""Extension studies beyond the paper's figures.

Three questions the paper raises but does not quantify, answered with the
same harness:

- **Oracle gap** — how far is GMT-Reuse from its own upper bound (perfect
  RVTD knowledge + converged regression, see :mod:`repro.core.oracle`)?
  Section 2.1.3 positions GMT-Reuse as an approximation of Belady's OPT;
  this measures the remaining approximation error.
- **SSD scaling** — BaM scales across SSD arrays; how many drives until
  the SSD stops being the bottleneck and Tier-2 stops mattering?  (The
  paper's platform has a single Gen3 x4 drive.)
- **Prefetching** — section 2 keeps movement demand-based "as in BaM";
  what happens if a UVM-style sequential prefetcher is added?  (Answer:
  in the bandwidth-bound regime it only inflates SSD traffic.)

Run with ``python -m repro.experiments extensions``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.metrics import arithmetic_mean
from repro.core.config import DEFAULT_SCALE
from repro.core.oracle import run_with_oracle
from repro.core.runtime import GMTRuntime
from repro.experiments.harness import (
    ExperimentResult,
    app_label,
    build_runtime,
    default_config,
    get_workload,
    run_app,
)
from repro.workloads.registry import WORKLOAD_NAMES

#: Apps with enough reuse for the oracle comparison to be interesting.
ORACLE_APPS = ("multivectoradd", "srad", "backprop", "pagerank", "hotspot")
SSD_COUNTS = (1, 2, 4, 8)
PREFETCH_APPS = ("pathfinder", "hotspot", "bfs")


def run_oracle_gap(scale: int = DEFAULT_SCALE) -> ExperimentResult:
    config = default_config(scale)
    rows: list[list[object]] = []
    gaps: dict[str, float] = {}
    for app in ORACLE_APPS:
        workload = get_workload(app, config)
        bam = run_app(app, "bam", config)
        reuse = run_app(app, "reuse", config)
        oracle = run_with_oracle(config, workload)
        s_reuse = reuse.speedup_over(bam)
        s_oracle = oracle.speedup_over(bam)
        gaps[app] = s_oracle / s_reuse
        rows.append([app_label(app), s_reuse, s_oracle, gaps[app]])
    rows.append(
        ["Average", "-", "-", arithmetic_mean(list(gaps.values()))]
    )
    return ExperimentResult(
        name="ext-oracle",
        title="Extension: GMT-Reuse vs its perfect-prediction oracle (speedup over BaM)",
        headers=["app", "GMT-Reuse", "oracle", "oracle/reuse"],
        rows=rows,
        notes=[
            "oracle = exact future RVTD + whole-trace Eq. 2 fit; same tiers,"
            " heuristic, and transfer machinery",
            "a ratio near 1 means prediction error is not the limiter",
        ],
        extras={"gaps": gaps},
    )


def run_ssd_scaling(scale: int = DEFAULT_SCALE) -> ExperimentResult:
    base = default_config(scale)
    rows: list[list[object]] = []
    means: dict[int, float] = {}
    apps = ("srad", "backprop", "hotspot", "pagerank")
    for count in SSD_COUNTS:
        config = replace(base, platform=base.platform.with_ssd_array(count))
        speedups = []
        bottlenecks = set()
        for app in apps:
            workload = get_workload(app, base)  # same traces at every count
            bam = build_runtime("bam", config).run(workload)
            reuse = build_runtime("reuse", config).run(workload)
            speedups.append(reuse.speedup_over(bam))
            bottlenecks.add(reuse.breakdown.bottleneck)
        means[count] = arithmetic_mean(speedups)
        rows.append([count, means[count], ", ".join(sorted(bottlenecks))])
    return ExperimentResult(
        name="ext-ssd-scaling",
        title="Extension: GMT-Reuse speedup over BaM vs SSD array size",
        headers=["SSDs", "mean speedup (4 high-reuse apps)", "GMT bottlenecks"],
        rows=rows,
        notes=[
            "Tier-2's value comes from relieving the SSD; enough drives"
            " shift the bottleneck and shrink the gap"
        ],
        extras={"means": means},
    )


def run_prefetch_study(scale: int = DEFAULT_SCALE) -> ExperimentResult:
    base = default_config(scale)
    rows: list[list[object]] = []
    deltas: dict[str, float] = {}
    for app in PREFETCH_APPS:
        workload = get_workload(app, base)
        plain = GMTRuntime(base).run(workload)
        pf_config = replace(base, prefetch_degree=4)
        prefetch = GMTRuntime(pf_config).run(workload)
        stats = prefetch.stats
        deltas[app] = prefetch.elapsed_ns / plain.elapsed_ns
        rows.append(
            [
                app_label(app),
                deltas[app],
                stats.prefetches_issued,
                stats.prefetch_accuracy,
                stats.ssd_page_reads / max(1, plain.stats.ssd_page_reads),
            ]
        )
    return ExperimentResult(
        name="ext-prefetch",
        title="Extension: adding a sequential prefetcher to GMT-Reuse (degree 4)",
        headers=["app", "time vs no-prefetch", "issued", "accuracy", "SSD reads ratio"],
        rows=rows,
        notes=[
            "in the SSD-bandwidth-bound regime prefetching trades latency"
            " (plentiful, thanks to fault parallelism) for bandwidth"
            " (scarce) — demand-only movement, as the paper chose, wins"
        ],
        extras={"time_ratios": deltas},
    )


def run_model_validation(scale: int = DEFAULT_SCALE) -> ExperimentResult:
    """Analytic (roofline) vs queueing time model, same runs.

    Where bandwidth binds (the paper's single-SSD platform) the two agree
    almost exactly — validating the roofline's "maximum of bottlenecks"
    assumption.  For the CPU-orchestrated HMM, whose handler slots queue,
    the queueing model shows the *extra* serialization the roofline's
    averaged fault term understates.
    """
    base = default_config(scale)
    queueing = replace(base, time_model="queueing")
    rows: list[list[object]] = []
    ratios: dict[str, float] = {}
    apps = ("lavamd", "multivectoradd", "srad", "pagerank", "hotspot")
    for app in apps:
        workload = get_workload(app, base)
        speeds = {}
        for label, config in (("analytic", base), ("queueing", queueing)):
            bam = build_runtime("bam", config).run(workload)
            reuse = build_runtime("reuse", config).run(workload)
            speeds[label] = reuse.speedup_over(bam)
        ratios[app] = speeds["queueing"] / speeds["analytic"]
        rows.append(
            [app_label(app), speeds["analytic"], speeds["queueing"], ratios[app]]
        )
    return ExperimentResult(
        name="ext-model-validation",
        title="Extension: analytic vs queueing time model (GMT-Reuse speedup over BaM)",
        headers=["app", "analytic", "queueing", "queueing/analytic"],
        rows=rows,
        notes=[
            "agreement validates the roofline model on the paper's"
            " bandwidth-bound platform"
        ],
        extras={"ratios": ratios},
    )


def run(scale: int = DEFAULT_SCALE) -> list[ExperimentResult]:
    return [
        run_oracle_gap(scale),
        run_ssd_scaling(scale),
        run_prefetch_study(scale),
        run_model_validation(scale),
    ]
