"""``python -m repro.experiments`` — see :mod:`repro.experiments.runner`."""

import sys

from repro.experiments.runner import main

sys.exit(main())
