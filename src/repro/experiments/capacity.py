"""Capacity experiment: tenants-per-GPU vs p99 latency and shed rate.

The repo's capacity-planning headline.  A zipf-skewed
:class:`~repro.serve.stream.TenantPopulation` is swept over fleet sizes
— 64 up to 2048 tenants on one shared hierarchy — under an open-loop
Poisson request stream whose aggregate rate scales with the fleet, so
per-tenant demand is constant and the only moving part is contention.
Each point reports:

- request-latency p50/p99 (completion − arrival on the simulated clock),
- the shed rate (arrivals rejected by admission control: the pressure
  detector plus a fixed backlog cap),
- tenants violating the fleet p99 SLO,
- the ``admission-conservation`` identity inputs (arrived = admitted +
  shed), audited per cell before the result is accepted.

Every cell is deterministic in its seed: same command, same table, and
a warm cache re-executes nothing.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, default_config
from repro.experiments.engine import Cell
from repro.experiments.spec import ExperimentSpec
from repro.units import format_time

#: Fleet sizes swept (the acceptance point is the >= 1k-tenant row).
TENANT_COUNTS = (64, 256, 1024, 2048)

#: Per-tenant open-loop demand (requests per simulated second); the
#: aggregate arrival rate is this times the fleet size.
RATE_PER_TENANT = 64.0

#: Arrivals simulated per tenant (more = tighter percentiles, slower).
REQUESTS_PER_TENANT = 4

#: Admission backlog cap (requests queued machine-wide).
MAX_BACKLOG = 256

#: Fleet-wide p99 request-latency SLO (ns) for the violation column.
SLO_P99_NS = 5_000_000.0


def capacity_cell(config, tenants: int, seed: int) -> dict:
    """Cell body: one open-loop fleet-size point, reduced to scalars."""
    from repro.check.identities import assert_conformant, audit_split
    from repro.errors import ConformanceError
    from repro.serve import OpenLoopConfig, OpenLoopServer, TenantPopulation

    population = TenantPopulation(tenants, seed=seed, slo_p99_ns=SLO_P99_NS)
    loop = OpenLoopConfig(
        requests=REQUESTS_PER_TENANT * tenants,
        arrival_rate_per_s=RATE_PER_TENANT * tenants,
        seed=seed,
        max_backlog=MAX_BACKLOG,
    )
    server = OpenLoopServer(config, population, loop)
    outcome = server.run()
    assert_conformant(server.runtime)  # admission-conservation included
    violations = audit_split(server.runtime.stats, server.runtime.tenant_stats)
    if violations:
        raise ConformanceError(violations)
    return {
        "tenants": tenants,
        "arrived": outcome.arrived,
        "admitted": outcome.admitted,
        "shed": outcome.shed,
        "completed": outcome.completed,
        "shed_rate": outcome.shed_rate,
        "p50_ns": outcome.p50_ns,
        "p99_ns": outcome.p99_ns,
        "makespan_ns": outcome.makespan_ns,
        "slo_violating": outcome.slo_violating_tenants(),
        "pressure_findings": outcome.pressure_findings,
    }


def _cell(config, tenants: int) -> Cell:
    return Cell.make(
        "repro.experiments.capacity:capacity_cell",
        label=f"capacity/{tenants}t",
        config=config,
        tenants=tenants,
        seed=0,
    )


def _cells(scale):
    config = default_config(scale)
    return [_cell(config, n) for n in TENANT_COUNTS]


def _reduce(results, scale):
    config = default_config(scale)
    headers = [
        "tenants", "arrivals", "admitted", "shed", "shed rate",
        "req p50", "req p99", "SLO p99 viol.", "makespan",
    ]
    rows: list[list[object]] = []
    points = []
    for tenants in TENANT_COUNTS:
        record = results[_cell(config, tenants)]
        points.append(record)
        rows.append(
            [
                record["tenants"],
                record["arrived"],
                record["admitted"],
                record["shed"],
                f"{record['shed_rate']:.1%}",
                "-" if record["p50_ns"] is None else format_time(record["p50_ns"]),
                "-" if record["p99_ns"] is None else format_time(record["p99_ns"]),
                f"{record['slo_violating']}/{record['tenants']}",
                format_time(record["makespan_ns"]),
            ]
        )
    notes = [
        f"open-loop Poisson arrivals at {RATE_PER_TENANT:g} req/s per tenant, "
        f"{REQUESTS_PER_TENANT} requests per tenant",
        "request latency = completion - arrival on the simulated clock",
        f"admission control: pressure anomalies + a {MAX_BACKLOG}-request "
        "backlog cap; arrived == admitted + shed audited per cell",
        f"SLO column: tenants whose request p99 exceeds "
        f"{format_time(SLO_P99_NS)}",
    ]
    return [
        ExperimentResult(
            name="capacity",
            title="Tenants per GPU: open-loop p99 and shed-rate capacity curves",
            headers=headers,
            rows=rows,
            notes=notes,
            extras={"points": points},
        )
    ]


SPEC = ExperimentSpec(
    name="capacity",
    title="Open-loop tenants-per-GPU capacity curves",
    cells=_cells,
    reduce=_reduce,
)
