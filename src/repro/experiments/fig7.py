"""Figure 7: remaining-reuse-distance distributions per application.

For every application, where do reuses fall relative to the Tier-1 and
Tier-1+Tier-2 capacity lines?  This is the paper's explanatory figure: it
assigns each app its "Low/Medium/High reuse, Tier-N bias" category used
throughout section 3.3.

Reported per app: reuse %, and the Eq. 1 class fractions of (a) all
finite-distance reuses (the access view) and (b) RRDs at simulated Tier-1
clock evictions (the eviction view the predictor acts on).
"""

from __future__ import annotations

from repro.experiments.engine import Cell
from repro.experiments.harness import ExperimentResult, default_config, get_workload
from repro.experiments.spec import ExperimentSpec
from repro.reuse.classifier import ReuseClass
from repro.workloads.registry import WORKLOAD_NAMES, workload_class


def classes_cell(app, config) -> dict[str, object]:
    """Cell body: reuse % and S/M/L class fractions (both views)."""
    from repro.analysis.characterize import (
        characterize_workload,
        collect_access_rds,
        collect_eviction_rrds,
    )

    # Instrumented characterisation runs in program order (the
    # in-flight-warp jitter is an execution effect, not an application
    # property), matching the paper's instrumented runs.
    workload = get_workload(app, config, jitter_warps=0)
    ch = characterize_workload(workload)
    access = collect_access_rds(workload, config.tier1_frames, config.tier2_frames)
    evict = collect_eviction_rrds(workload, config.tier1_frames, config.tier2_frames)
    return {
        "reuse_percent": ch.reuse_percent,
        "access": access.class_fractions(),
        "evict": evict.class_fractions(),
    }


def _classes(app, config) -> Cell:
    return Cell.make(
        "repro.experiments.fig7:classes_cell",
        label=f"{app}/rrd-classes",
        app=app,
        config=config,
    )


def _cells(scale):
    config = default_config(scale)
    return [_classes(app, config) for app in WORKLOAD_NAMES]


def _reduce(results, scale):
    config = default_config(scale)
    rows: list[list[object]] = []
    fractions: dict[str, dict[ReuseClass, float]] = {}
    for app in WORKLOAD_NAMES:
        cell = results[_classes(app, config)]
        af = cell["access"]
        ef = cell["evict"]
        fractions[app] = af
        rows.append(
            [
                workload_class(app).name,
                cell["reuse_percent"],
                100 * af[ReuseClass.SHORT],
                100 * af[ReuseClass.MEDIUM],
                100 * af[ReuseClass.LONG],
                100 * ef[ReuseClass.SHORT],
                100 * ef[ReuseClass.MEDIUM],
                100 * ef[ReuseClass.LONG],
            ]
        )
    return [
        ExperimentResult(
            name="fig7",
            title=(
                "Figure 7: RRD distribution per app (S/M/L = Eq. 1 classes; "
                "access view and Tier-1-eviction view)"
            ),
            headers=[
                "app",
                "reuse%",
                "acc S%",
                "acc M%",
                "acc L%",
                "evict S%",
                "evict M%",
                "evict L%",
            ],
            rows=rows,
            extras={"access_fractions": fractions},
        )
    ]


SPEC = ExperimentSpec(
    name="fig7",
    title="RRD class distributions per application",
    cells=_cells,
    reduce=_reduce,
)
