"""Figure 10: the costs a Tier-2 introduces (section 3.4).

- Figure 10(a): *wasteful* Tier-2 lookups (the page was not there) as a
  percentage of Tier-1 misses.  GMT-Reuse should have the fewest;
  GMT-TierOrder "does quite bad on this metric".
- Figure 10(b): Tier-1->Tier-2 placements and Tier-2->Tier-1 fetches as a
  percentage of BaM's GPU<->SSD transfers.  A policy places well when the
  two halves of its bar match (placements get reused).
"""

from __future__ import annotations

from repro.experiments.harness import (
    ExperimentResult,
    app_label,
    default_config,
    replay,
)
from repro.experiments.spec import ExperimentSpec
from repro.workloads.registry import WORKLOAD_NAMES

POLICIES = ("tier-order", "random", "reuse")


def _cells(scale):
    config = default_config(scale)
    return [
        replay(app, kind, config)
        for app in WORKLOAD_NAMES
        for kind in ("bam",) + POLICIES
    ]


def _reduce(results, scale):
    config = default_config(scale)

    wasteful_rows: list[list[object]] = []
    traffic_rows: list[list[object]] = []
    wasteful: dict[str, list[float]] = {p: [] for p in POLICIES}

    for app in WORKLOAD_NAMES:
        bam_transfers = results[replay(app, "bam", config)].stats.ssd_page_ios
        wrow: list[object] = [app_label(app)]
        trow: list[object] = [app_label(app)]
        for policy in POLICIES:
            stats = results[replay(app, policy, config)].stats
            frac = 100.0 * stats.wasteful_lookup_fraction
            wasteful[policy].append(frac)
            wrow.append(frac)
            if bam_transfers:
                trow.append(100.0 * stats.t2_placements / bam_transfers)
                trow.append(100.0 * stats.t2_fetches / bam_transfers)
            else:
                trow.extend([0.0, 0.0])
        wasteful_rows.append(wrow)
        traffic_rows.append(trow)

    fig10a = ExperimentResult(
        name="fig10a",
        title="Figure 10(a): wasteful Tier-2 lookups (% of Tier-1 misses)",
        headers=["app", "GMT-TierOrder", "GMT-Random", "GMT-Reuse"],
        rows=wasteful_rows,
        extras={"wasteful": wasteful},
    )
    fig10b = ExperimentResult(
        name="fig10b",
        title=(
            "Figure 10(b): Tier-1->Tier-2 placements / Tier-2->Tier-1 fetches "
            "(% of BaM SSD transfers)"
        ),
        headers=[
            "app",
            "TO place", "TO fetch",
            "Rand place", "Rand fetch",
            "Reuse place", "Reuse fetch",
        ],
        rows=traffic_rows,
    )
    return [fig10a, fig10b]


SPEC = ExperimentSpec(
    name="fig10",
    title="Tier-2 overheads: wasteful lookups and placement traffic",
    cells=_cells,
    reduce=_reduce,
)
