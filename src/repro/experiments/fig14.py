"""Figure 14 (+ section 3.6): the GPU-orchestration argument.

Speedup of HMM and GMT-Reuse over BaM per application.  The paper's
findings, all checked here:

- BaM outperforms HMM despite HMM's Tier-2 ("a GPU-orchestrated transfer
  is much more critical than a CPU-intervened approach");
- GMT-Reuse beats both (50 % over BaM, 357 % over HMM on average);
- even an "optimistic" HMM granted GMT-Reuse's hit rates loses to
  GMT-Reuse by ~90 % — orchestration alone decides that much.
"""

from __future__ import annotations

from repro.analysis.metrics import arithmetic_mean
from repro.baselines.hmm import optimistic_hmm_breakdown
from repro.experiments.harness import (
    ExperimentResult,
    app_label,
    default_config,
    replay,
)
from repro.experiments.spec import ExperimentSpec
from repro.workloads.registry import WORKLOAD_NAMES

KINDS = ("bam", "hmm", "reuse")


def _cells(scale):
    config = default_config(scale)
    return [replay(app, kind, config) for app in WORKLOAD_NAMES for kind in KINDS]


def _reduce(results, scale):
    config = default_config(scale)

    rows: list[list[object]] = []
    hmm_speedups: list[float] = []
    reuse_speedups: list[float] = []
    reuse_over_hmm: list[float] = []
    reuse_over_optimistic: list[float] = []
    for app in WORKLOAD_NAMES:
        bam = results[replay(app, "bam", config)]
        hmm = results[replay(app, "hmm", config)]
        reuse = results[replay(app, "reuse", config)]
        optimistic_ns = optimistic_hmm_breakdown(reuse, config).elapsed_ns
        hmm_speedups.append(hmm.speedup_over(bam))
        reuse_speedups.append(reuse.speedup_over(bam))
        reuse_over_hmm.append(hmm.elapsed_ns / reuse.elapsed_ns)
        reuse_over_optimistic.append(optimistic_ns / reuse.elapsed_ns)
        rows.append(
            [
                app_label(app),
                hmm_speedups[-1],
                reuse_speedups[-1],
                reuse_over_hmm[-1],
                reuse_over_optimistic[-1],
            ]
        )

    means = {
        "hmm_over_bam": arithmetic_mean(hmm_speedups),
        "reuse_over_bam": arithmetic_mean(reuse_speedups),
        "reuse_over_hmm": arithmetic_mean(reuse_over_hmm),
        "reuse_over_optimistic_hmm": arithmetic_mean(reuse_over_optimistic),
    }
    rows.append(
        [
            "Average",
            means["hmm_over_bam"],
            means["reuse_over_bam"],
            means["reuse_over_hmm"],
            means["reuse_over_optimistic_hmm"],
        ]
    )
    return [
        ExperimentResult(
            name="fig14",
            title="Figure 14: HMM and GMT-Reuse speedup over BaM (+ section 3.6)",
            headers=[
                "app",
                "HMM/BaM",
                "GMT-Reuse/BaM",
                "GMT-Reuse/HMM",
                "GMT-Reuse/optimistic-HMM",
            ],
            rows=rows,
            notes=[
                "paper averages: GMT-Reuse 1.50x BaM, 4.57x HMM, "
                "1.90x optimistic-HMM; BaM > HMM",
            ],
            extras={"means": means},
        )
    ]


SPEC = ExperimentSpec(
    name="fig14",
    title="GPU vs CPU orchestration (HMM comparison)",
    cells=_cells,
    reduce=_reduce,
)
