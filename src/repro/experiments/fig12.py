"""Figure 12: GMT-Reuse speedup over BaM across Tier-2:Tier-1 ratios.

Paper caption: "Ratios = 2 (16GB, 32GB); 4 (16GB, 64GB); and 8 (16GB,
128GB)".  The dataset is held fixed (the ratio-4 geometry's
over-subscription-2 working set) while host memory grows; "speedups will
increase since there is scope for a larger working set to be accommodated
in Tier-2", most for Tier-2-biased applications.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.harness import (
    ExperimentResult,
    app_label,
    default_config,
    replay_with_footprint,
)
from repro.experiments.spec import ExperimentSpec
from repro.workloads.registry import WORKLOAD_NAMES

RATIOS = (2, 4, 8)


def _geometry(scale):
    base = default_config(scale)
    # Dataset fixed at the default geometry's working set.
    footprint = base.working_set_frames()
    configs = {
        ratio: replace(base, tier2_frames=base.tier1_frames * ratio)
        for ratio in RATIOS
    }
    return footprint, configs


def _cells(scale):
    footprint, configs = _geometry(scale)
    return [
        replay_with_footprint(app, kind, configs[ratio], footprint)
        for app in WORKLOAD_NAMES
        for ratio in RATIOS
        for kind in ("bam", "reuse")
    ]


def _reduce(results, scale):
    footprint, configs = _geometry(scale)
    rows: list[list[object]] = []
    series: dict[int, list[float]] = {r: [] for r in RATIOS}
    for app in WORKLOAD_NAMES:
        row: list[object] = [app_label(app)]
        for ratio in RATIOS:
            cfg = configs[ratio]
            bam = results[replay_with_footprint(app, "bam", cfg, footprint)]
            reuse = results[replay_with_footprint(app, "reuse", cfg, footprint)]
            s = reuse.speedup_over(bam)
            series[ratio].append(s)
            row.append(s)
        rows.append(row)

    return [
        ExperimentResult(
            name="fig12",
            title=(
                "Figure 12: GMT-Reuse speedup over BaM, Tier-2:Tier-1 ratio "
                "in {2, 4, 8} (fixed dataset)"
            ),
            headers=["app", "ratio=2", "ratio=4", "ratio=8"],
            rows=rows,
            extras={"series": series},
        )
    ]


SPEC = ExperimentSpec(
    name="fig12",
    title="Tier-2:Tier-1 ratio sensitivity (fixed dataset)",
    cells=_cells,
    reduce=_reduce,
)
