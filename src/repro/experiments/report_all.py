"""Generate the full paper-vs-measured report in one call.

``generate_report`` runs every experiment (all tables/figures plus the
extension studies), renders them into a single markdown document with the
configuration header, and optionally writes it to disk — the artifact you
attach to a reproduction claim:

>>> from repro.experiments.report_all import generate_report
>>> text = generate_report(scale=256, path="report.md")

or from the shell::

    python -m repro.experiments all          # tables to stdout
    gmt-report --scale 256 -o report.md      # one markdown document
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.core.config import DEFAULT_SCALE
from repro.experiments.engine import Engine, ResultCache
from repro.experiments.harness import default_config
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.units import format_bytes


def _header(scale: int) -> str:
    config = default_config(scale)
    platform = config.platform
    lines = [
        "# GMT reproduction report",
        "",
        f"- byte scale: 1/{scale} of the paper's platform",
        f"- Tier-1: {config.tier1_frames} frames "
        f"({format_bytes(config.tier1_frames * config.page_size)})",
        f"- Tier-2: {config.tier2_frames} frames "
        f"({format_bytes(config.tier2_frames * config.page_size)})",
        f"- working set (oversubscription 2): "
        f"{config.working_set_frames()} pages",
        f"- SSD: {platform.ssd_read_latency_ns / 1e3:.0f} us read latency, "
        f"{format_bytes(platform.ssd_read_bandwidth)}/s",
        f"- host fetch: {platform.host_fetch_latency_ns / 1e3:.0f} us; "
        f"Tier-2 lookup: {platform.tier2_lookup_ns:.0f} ns",
        "",
        "Shape-fidelity reproduction; see EXPERIMENTS.md for the",
        "paper-vs-measured discussion and known deviations.",
        "",
    ]
    return "\n".join(lines)


def generate_report(
    scale: int = DEFAULT_SCALE,
    path: str | Path | None = None,
    experiments: tuple[str, ...] | None = None,
    engine: Engine | None = None,
) -> str:
    """Run ``experiments`` (default: all) and return the markdown report.

    Writes to ``path`` when given.  Results are cached per process (and,
    when ``engine`` carries a :class:`ResultCache`, on disk), so a
    report after a benchmark session is nearly free.
    """
    names = experiments if experiments is not None else EXPERIMENTS
    sections = [_header(scale)]
    for name in names:
        start = time.time()
        results = run_experiment(name, scale, engine=engine)
        body = "\n\n".join(f"```\n{r.to_text()}\n```" for r in results)
        sections.append(
            f"## {name}\n\n{body}\n\n*regenerated in {time.time() - start:.1f}s*\n"
        )
    text = "\n".join(sections)
    if path is not None:
        Path(path).write_text(text)
    return text


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``gmt-report``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="gmt-report", description="Generate the full reproduction report"
    )
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    parser.add_argument("-o", "--output", default=None, help="write markdown here")
    parser.add_argument(
        "--experiments",
        nargs="*",
        default=None,
        help=f"subset to run (default all: {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, help="worker processes for cells"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="on-disk result cache location"
    )
    args = parser.parse_args(argv)
    engine = Engine(
        jobs=args.jobs,
        cache=None if args.no_cache else ResultCache(args.cache_dir),
    )
    text = generate_report(
        scale=args.scale,
        path=args.output,
        experiments=tuple(args.experiments) if args.experiments else None,
        engine=engine,
    )
    if args.output is None:
        print(text)
    else:
        print(f"report written to {args.output}")
    return 0
