"""Figure 13: larger Tier-1 ("32 GB") and datasets, non-graph applications.

Paper section 3.5: with Tier-1 doubled to 32 GB (Tier-2 = 128 GB, 4x) and
datasets grown to keep over-subscription at 2, "GMT-Reuse continues to
deliver a 45% speedup compared to the baseline (beating GMT-Random and
GMT-TierOrder, by 20% and 35%, respectively)".
"""

from __future__ import annotations

from repro.analysis.metrics import arithmetic_mean
from repro.core.config import PAPER_TIER1_BYTES
from repro.experiments.harness import (
    ExperimentResult,
    app_label,
    default_config,
    replay,
)
from repro.experiments.spec import ExperimentSpec
from repro.workloads.registry import GRAPH_WORKLOADS, WORKLOAD_NAMES

POLICIES = ("tier-order", "random", "reuse")

NON_GRAPH_APPS = tuple(a for a in WORKLOAD_NAMES if a not in GRAPH_WORKLOADS)


def _config(scale):
    return default_config(scale, tier1_bytes=2 * PAPER_TIER1_BYTES)


def _cells(scale):
    config = _config(scale)
    return [
        replay(app, kind, config)
        for app in NON_GRAPH_APPS
        for kind in ("bam",) + POLICIES
    ]


def _reduce(results, scale):
    config = _config(scale)
    rows: list[list[object]] = []
    speedups: dict[str, list[float]] = {p: [] for p in POLICIES}
    for app in NON_GRAPH_APPS:
        bam = results[replay(app, "bam", config)]
        row: list[object] = [app_label(app)]
        for policy in POLICIES:
            s = results[replay(app, policy, config)].speedup_over(bam)
            speedups[policy].append(s)
            row.append(s)
        rows.append(row)

    means = {p: arithmetic_mean(speedups[p]) for p in POLICIES}
    rows.append(["Average"] + [means[p] for p in POLICIES])
    return [
        ExperimentResult(
            name="fig13",
            title=(
                "Figure 13: speedup over BaM, Tier-1=32GB eq. (Tier-2=4x, "
                "oversub=2), non-graph applications"
            ),
            headers=["app", "GMT-TierOrder", "GMT-Random", "GMT-Reuse"],
            rows=rows,
            notes=["paper: GMT-Reuse average 1.45, ahead of Random/TierOrder"],
            extras={"speedups": speedups, "means": means},
        )
    ]


SPEC = ExperimentSpec(
    name="fig13",
    title="Doubled Tier-1 geometry, non-graph applications",
    cells=_cells,
    reduce=_reduce,
)
