"""``gmt-bench`` — record & gate performance baselines.

Replays a small fixed matrix of (workload, runtime) cells and captures
two families of numbers per cell:

- **simulated metrics** — modelled elapsed ns, SSD traffic, hit/miss
  counters.  These are fully deterministic for a given (scale, seed), so
  the gate compares them with a *strict* tolerance: any drift means the
  simulator's behaviour changed.
- **wall-clock** — host seconds spent replaying the cell.  Noisy by
  nature (CI machines, thermal state), so it is compared with a
  *generous* multiplicative tolerance and only catches order-of-magnitude
  slowdowns (an accidental O(n^2) in the hot loop, a debug recorder left
  enabled by default).

Workflow::

    gmt-bench --out benchmarks/BENCH_baseline.json        # record
    gmt-bench --check --baseline benchmarks/BENCH_baseline.json

``--check`` exits non-zero when any cell regresses, printing one line
per violated budget.  CI runs the check on every push (the ``bench-gate``
job); refresh the committed baseline in the same PR as an intentional
performance or behaviour change.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

#: Module-level clock hook so tests can inject artificial slowdown
#: (monkeypatching ``time.perf_counter`` directly would skew pytest
#: itself; patching ``repro.bench._clock`` only affects the bench).
_clock = time.perf_counter

#: The fixed cell matrix: small enough for CI, wide enough to cover the
#: BaM baseline and the full reuse pipeline on two access patterns.
DEFAULT_CELLS: tuple[tuple[str, str], ...] = (
    ("hotspot", "bam"),
    ("hotspot", "reuse"),
    ("bfs", "bam"),
    ("bfs", "reuse"),
)


def _zoo_cells() -> tuple[tuple[str, str, str], ...]:
    from repro.policyzoo.registry import ZOO_POLICY_NAMES

    return tuple(("hotspot", "reuse", pol) for pol in ZOO_POLICY_NAMES)


#: Informational cells: the reuse pipeline with each policy-zoo eviction
#: policy substituted at both tiers.  Recorded in the baseline (cell id
#: ``hotspot/reuse+<policy>``) so the zoo's behaviour is visible in the
#: bench table and its *presence* is gated, but the metric budgets are
#: not: zoo cells carry ``informational: true`` and may drift as
#: policies are tuned.
ZOO_CELLS: tuple[tuple[str, str, str], ...] = _zoo_cells()

#: Per-engine throughput cells: each spec is replayed once per engine and
#: recorded as ``<id>@<engine>`` with ``informational: true`` — presence
#: is gated (the cells must still run), the metrics are not (wall-clock
#: throughput is machine-dependent).  ``kvhot`` is the hit-dominated
#: regime the vector engine exists for: a zipf-served KV store whose hot
#: set is Tier-1 resident, so the stream is long runs of Tier-1 hits.
#: ``hotspot`` is the opposite (a thrashing, miss-dominated stream) and
#: documents the vector engine's bounded worst case.
ENGINE_CELLS: tuple[dict, ...] = (
    {"id": "hotspot/reuse", "app": "hotspot", "kind": "reuse"},
    {
        "id": "kvhot/reuse",
        "app": "keyvalue",
        "kind": "reuse",
        "oversubscription": 0.15,
        "workload_kwargs": {"lookups": 200_000},
    },
    # The same hit-dominated regime with windowed telemetry (snapshots,
    # latency digest, counter tracks) attached: the batch observer
    # pipeline (repro.obs.batch) keeps the vector engine on its bulk hit
    # path, so instrumented runs must stay an order of magnitude faster
    # than scalar (--assert-vector-telemetry-speedup gates it in CI).
    # The longer trace amortises the GMT-Reuse sampling warmup, which
    # replays scalar on both engines.
    {
        "id": "kvhot/reuse+obs",
        "app": "keyvalue",
        "kind": "reuse",
        "oversubscription": 0.15,
        "workload_kwargs": {"lookups": 600_000},
        "telemetry": True,
    },
)

#: Open-loop serving cell: a 1k-tenant zipf fleet under Poisson arrivals
#: with admission control — the ``capacity`` experiment's knee point,
#: recorded as one informational cell (``serve/openloop-1k``) so the
#: baseline documents service-scale throughput and shed behaviour.
#: Presence is gated, the metrics are not (wall-clock dependent, and the
#: admission trajectory may shift as pressure thresholds are tuned).
OPENLOOP_CELL: dict = {
    "id": "serve/openloop-1k",
    "tenants": 1024,
    "requests": 4096,
    "arrival_rate_per_s": 65536.0,
    "max_backlog": 256,
}

#: Deterministic per-cell metrics captured from the replay.  Checked
#: with the strict tolerance.
SIM_METRICS = (
    "elapsed_ns",
    "ssd_io_bytes",
    "t1_hits",
    "t1_misses",
    "ssd_page_reads",
    "ssd_page_writes",
)

BASELINE_VERSION = 2


def run_cell(
    app: str,
    kind: str,
    scale: int,
    seed: int,
    tier1_policy: str | None = None,
    tier2_policy: str | None = None,
    engine: str | None = None,
    oversubscription: float | None = None,
    workload_kwargs: dict | None = None,
    telemetry: bool = False,
) -> dict:
    """Replay one cell and return its metric record (wall_s last).

    ``tier1_policy`` / ``tier2_policy`` substitute a policy-zoo eviction
    policy at the respective tier (see ``EVICTION_POLICY_NAMES``).
    ``engine`` picks the replay engine (``ENGINE_NAMES``; default scalar
    via the harness).  For vector replays the workload's flat trace is
    materialized *before* the clock starts, so ``accesses_per_sec``
    measures replay throughput, not trace generation.  With ``telemetry``
    a windowed :class:`~repro.obs.Telemetry` (snapshots + latency digest)
    is attached before the clock starts, so the cell measures
    *instrumented* replay throughput; the record then carries the live
    ``engine_reason`` alongside the resolved engine.

    Every replay ends with the full conformance audit
    (:func:`repro.check.identities.assert_conformant`): a baseline
    recorded from a run that violates the stats identities would gate
    future runs against garbage, so the bench refuses to produce one.
    """
    from repro.check.identities import assert_conformant
    from repro.experiments.harness import build_runtime, default_config, get_workload

    config = default_config(scale)
    if tier1_policy is not None or tier2_policy is not None:
        from dataclasses import replace

        config = replace(
            config,
            tier1_eviction=tier1_policy or config.tier1_eviction,
            tier2_eviction=tier2_policy or config.tier2_eviction,
        )
    if oversubscription is None:
        workload = get_workload(app, config, seed=seed, **(workload_kwargs or {}))
    else:
        workload = get_workload(
            app, config, oversubscription, seed=seed, **(workload_kwargs or {})
        )
    runtime = build_runtime(kind, config, engine=engine)
    if telemetry:
        from repro.obs import Telemetry

        runtime.attach_telemetry(Telemetry())
    if runtime.engine_name == "vector":
        from repro.core.vector import materialize_trace

        materialize_trace(workload)
    start = _clock()
    result = runtime.run(workload)
    wall_s = _clock() - start
    assert_conformant(runtime)
    accesses = result.stats.coalesced_accesses
    resolved_engine, engine_reason = runtime.engine_resolution()
    record = {
        "engine": resolved_engine,
        **({"engine_reason": engine_reason} if telemetry else {}),
        "elapsed_ns": float(result.elapsed_ns),
        "ssd_io_bytes": float(result.ssd_io_bytes),
        "t1_hits": float(result.stats.t1_hits),
        "t1_misses": float(result.stats.t1_misses),
        "ssd_page_reads": float(result.stats.ssd_page_reads),
        "ssd_page_writes": float(result.stats.ssd_page_writes),
        "wall_s": wall_s,
        # Host-side replay throughput: noisy like wall_s, recorded for
        # the run ledger's trend trajectory (never strictly gated).
        "accesses_per_sec": accesses / wall_s if wall_s > 0 else 0.0,
    }
    return record


def run_openloop_cell(scale: int, seed: int, spec: dict) -> dict:
    """Serve one open-loop fleet cell and return its metric record.

    Drives :class:`~repro.serve.openloop.OpenLoopServer` over a
    :class:`~repro.serve.stream.TenantPopulation` of ``spec["tenants"]``
    synthetic tenants and reports the serving-side metrics (arrivals,
    shed, request p99) alongside the usual replay counters.  Audited
    like every other cell — ``admission-conservation`` included.
    """
    from repro.check.identities import assert_conformant
    from repro.experiments.harness import default_config
    from repro.serve import OpenLoopConfig, OpenLoopServer, TenantPopulation

    config = default_config(scale)
    population = TenantPopulation(spec["tenants"], seed=seed)
    loop = OpenLoopConfig(
        requests=spec["requests"],
        arrival_rate_per_s=spec["arrival_rate_per_s"],
        seed=seed,
        max_backlog=spec.get("max_backlog"),
    )
    server = OpenLoopServer(config, population, loop)
    start = _clock()
    outcome = server.run()
    wall_s = _clock() - start
    assert_conformant(server.runtime)
    stats = server.runtime.stats
    accesses = stats.coalesced_accesses
    return {
        "engine": server.engine_resolution()[0],
        "elapsed_ns": float(outcome.makespan_ns),
        "ssd_io_bytes": float(stats.io_bytes(config.page_size)),
        "t1_hits": float(stats.t1_hits),
        "t1_misses": float(stats.t1_misses),
        "ssd_page_reads": float(stats.ssd_page_reads),
        "ssd_page_writes": float(stats.ssd_page_writes),
        "requests_arrived": float(outcome.arrived),
        "requests_shed": float(outcome.shed),
        "shed_rate": outcome.shed_rate,
        **({"req_p99_ns": outcome.p99_ns} if outcome.p99_ns is not None else {}),
        "wall_s": wall_s,
        "accesses_per_sec": accesses / wall_s if wall_s > 0 else 0.0,
    }


def run_bench(
    cells: tuple[tuple[str, str], ...] = DEFAULT_CELLS,
    scale: int = 4096,
    seed: int = 0,
    zoo: tuple[tuple[str, str, str], ...] = (),
    engine_cells: tuple[dict, ...] = (),
    engine: str | None = None,
    openloop_cells: tuple[dict, ...] = (),
) -> dict:
    """Replay every cell; returns the baseline document (JSON-ready).

    ``zoo`` entries are ``(app, kind, policy)`` triples replayed with the
    policy substituted at both tiers and recorded as informational cells
    (the CLI passes :data:`ZOO_CELLS`).

    ``engine_cells`` specs (the CLI passes :data:`ENGINE_CELLS`) are each
    replayed once per replay engine and recorded as ``<id>@scalar`` /
    ``<id>@vector`` informational cells, so the baseline documents both
    engines' ``accesses_per_sec`` side by side.

    ``engine`` overrides the replay engine of the *gated* cells (default
    scalar, the reference loop — keeps the wall budgets comparable
    across baselines).

    ``openloop_cells`` specs (the CLI passes ``(OPENLOOP_CELL,)``) are
    open-loop serving runs recorded as informational cells.
    """
    doc = {
        "version": BASELINE_VERSION,
        "scale": scale,
        "seed": seed,
        "cells": {},
    }
    for app, kind in cells:
        doc["cells"][f"{app}/{kind}"] = run_cell(
            app, kind, scale, seed, engine=engine or "scalar"
        )
    for app, kind, pol in zoo:
        record = run_cell(
            app, kind, scale, seed, tier1_policy=pol, tier2_policy=pol,
            engine=engine or "scalar",
        )
        record["informational"] = True
        doc["cells"][f"{app}/{kind}+{pol}"] = record
    for spec in engine_cells:
        for eng in ("scalar", "vector"):
            record = run_cell(
                spec["app"],
                spec["kind"],
                scale,
                seed,
                engine=eng,
                oversubscription=spec.get("oversubscription"),
                workload_kwargs=spec.get("workload_kwargs"),
                telemetry=spec.get("telemetry", False),
            )
            record["informational"] = True
            doc["cells"][f"{spec['id']}@{eng}"] = record
    for spec in openloop_cells:
        record = run_openloop_cell(scale, seed, spec)
        record["informational"] = True
        doc["cells"][spec["id"]] = record
    return doc


def compare(
    baseline: dict,
    current: dict,
    tolerance: float = 0.01,
    wall_tolerance: float = 5.0,
) -> list[str]:
    """Budgets violated by ``current`` vs ``baseline`` (empty = pass).

    Simulated metrics may drift by at most ``tolerance`` (relative, both
    directions — a silent *improvement* in a deterministic metric is
    still an unexplained behaviour change).  ``wall_s`` may grow by at
    most a factor of ``1 + wall_tolerance`` and never fails on getting
    faster.

    Cells whose baseline record carries ``informational: true`` (the
    policy-zoo cells) are only checked for *presence*: they must still
    run, but their metrics are not budgets.
    """
    problems: list[str] = []
    if baseline.get("scale") != current.get("scale") or baseline.get(
        "seed"
    ) != current.get("seed"):
        problems.append(
            "baseline geometry mismatch: recorded at "
            f"scale={baseline.get('scale')} seed={baseline.get('seed')}, "
            f"checking at scale={current.get('scale')} seed={current.get('seed')}"
        )
        return problems
    for cell, base in baseline.get("cells", {}).items():
        cur = current.get("cells", {}).get(cell)
        if cur is None:
            problems.append(f"{cell}: missing from current run")
            continue
        if base.get("informational"):
            continue
        for metric in SIM_METRICS:
            want, got = base.get(metric), cur.get(metric)
            if want is None or got is None:
                continue
            limit = tolerance * max(abs(want), 1.0)
            if abs(got - want) > limit:
                problems.append(
                    f"{cell}: {metric} drifted {want:g} -> {got:g} "
                    f"(tolerance {tolerance:.2%})"
                )
        want, got = base.get("wall_s"), cur.get("wall_s")
        if want is not None and got is not None:
            ceiling = want * (1.0 + wall_tolerance)
            if got > ceiling and got - want > 0.05:  # ignore micro-run jitter
                problems.append(
                    f"{cell}: wall_s regressed {want:.3f}s -> {got:.3f}s "
                    f"(budget {ceiling:.3f}s = baseline x{1.0 + wall_tolerance:g})"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``gmt-bench``."""
    parser = argparse.ArgumentParser(
        prog="gmt-bench",
        description="Record or check the perf-regression baseline",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the recorded baseline JSON to PATH",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against --baseline and exit 1 on regression",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default="benchmarks/BENCH_baseline.json",
        help="baseline file for --check (default: benchmarks/BENCH_baseline.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.01,
        help="relative drift allowed on simulated metrics (default 0.01)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=5.0,
        help="allowed wall-clock growth factor minus one (default 5.0 "
        "= fail beyond 6x the baseline)",
    )
    parser.add_argument(
        "--scale", type=int, default=4096, help="byte-scale divisor (default 4096)"
    )
    parser.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    parser.add_argument(
        "--trend",
        action="store_true",
        help="analyse the run ledger instead of replaying: compare the "
        "latest runs against the rolling median and exit 1 on "
        "sustained drift",
    )
    parser.add_argument(
        "--trend-window",
        type=int,
        default=8,
        help="rolling-median baseline size for --trend (default 8)",
    )
    parser.add_argument(
        "--trend-threshold",
        type=float,
        default=0.25,
        help="relative deviation that counts as drift for --trend "
        "(default 0.25)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append this run to the run ledger "
        "(benchmarks/results/ledger.jsonl or $GMT_LEDGER_PATH)",
    )
    from repro.core.config import ENGINE_NAMES

    parser.add_argument(
        "--engine",
        default=None,
        choices=list(ENGINE_NAMES),
        help="replay engine for the gated cells (default: scalar, the "
        "reference loop; the per-engine @scalar/@vector cells always "
        "run both)",
    )
    parser.add_argument(
        "--assert-vector-speedup",
        type=float,
        metavar="FACTOR",
        default=None,
        help="exit 1 unless the vector engine reaches FACTOR x the "
        "scalar accesses/sec on the kvhot hit-dominated cell "
        "(CI smoke: 5; the recorded baselines show 10x+)",
    )
    parser.add_argument(
        "--assert-vector-telemetry-speedup",
        type=float,
        metavar="FACTOR",
        default=None,
        help="exit 1 unless the vector engine reaches FACTOR x the "
        "scalar accesses/sec on the kvhot cell with windowed telemetry "
        "attached (the batch observer pipeline; CI smoke: 10)",
    )
    args = parser.parse_args(argv)

    if args.trend:
        from repro.obs.ledger import config_hash, format_trend, ledger_path, read_ledger

        params = {
            "cells": sorted(
                [f"{app}/{kind}" for app, kind in DEFAULT_CELLS]
                + [f"{app}/{kind}+{pol}" for app, kind, pol in ZOO_CELLS]
                + [
                    f"{spec['id']}@{eng}"
                    for spec in ENGINE_CELLS
                    for eng in ("scalar", "vector")
                ]
                + [OPENLOOP_CELL["id"]]
            ),
            "scale": args.scale,
            "seed": args.seed,
        }
        entries = read_ledger(tool="gmt-bench", config=config_hash(params))
        report, drifts = format_trend(
            entries,
            metrics=("wall_s", "accesses_per_sec", "elapsed_ns"),
            window=args.trend_window,
            threshold=args.trend_threshold,
        )
        print(report)
        if not entries:
            print(f"(ledger: {ledger_path()})")
            return 2
        if drifts:
            print(f"FAIL: {len(drifts)} metric(s) drifting on the ledger")
            return 1
        print("PASS: no sustained drift on the ledger")
        return 0

    doc = run_bench(
        scale=args.scale,
        seed=args.seed,
        zoo=ZOO_CELLS,
        engine_cells=ENGINE_CELLS,
        engine=args.engine,
        openloop_cells=(OPENLOOP_CELL,),
    )
    width = max(len(cell) for cell in doc["cells"])
    for cell, record in doc["cells"].items():
        tag = "  [informational]" if record.get("informational") else ""
        print(
            f"{cell:>{width}}: elapsed {record['elapsed_ns'] / 1e6:10.2f} ms (simulated), "
            f"wall {record['wall_s'] * 1e3:8.1f} ms, "
            f"{record['accesses_per_sec'] / 1e3:8.1f} kacc/s{tag}"
        )

    if args.assert_vector_speedup is not None:
        cells = doc["cells"]
        scalar_aps = cells["kvhot/reuse@scalar"]["accesses_per_sec"]
        vector_aps = cells["kvhot/reuse@vector"]["accesses_per_sec"]
        speedup = vector_aps / scalar_aps if scalar_aps > 0 else 0.0
        print(
            f"vector-vs-scalar on kvhot/reuse: {speedup:.1f}x "
            f"({vector_aps / 1e3:.0f} vs {scalar_aps / 1e3:.0f} kacc/s)"
        )
        if speedup < args.assert_vector_speedup:
            print(
                f"FAIL: vector speedup {speedup:.1f}x below required "
                f"{args.assert_vector_speedup:g}x"
            )
            return 1

    if args.assert_vector_telemetry_speedup is not None:
        cells = doc["cells"]
        scalar_aps = cells["kvhot/reuse+obs@scalar"]["accesses_per_sec"]
        vector_aps = cells["kvhot/reuse+obs@vector"]["accesses_per_sec"]
        speedup = vector_aps / scalar_aps if scalar_aps > 0 else 0.0
        print(
            f"vector-vs-scalar with telemetry on kvhot/reuse+obs: "
            f"{speedup:.1f}x ({vector_aps / 1e3:.0f} vs "
            f"{scalar_aps / 1e3:.0f} kacc/s, vector engine: "
            f"{cells['kvhot/reuse+obs@vector'].get('engine_reason', '-')})"
        )
        if speedup < args.assert_vector_telemetry_speedup:
            print(
                f"FAIL: instrumented vector speedup {speedup:.1f}x below "
                f"required {args.assert_vector_telemetry_speedup:g}x"
            )
            return 1

    if args.check:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            print(f"gmt-bench: baseline not found: {args.baseline}", file=sys.stderr)
            return 2
        problems = compare(
            baseline,
            doc,
            tolerance=args.tolerance,
            wall_tolerance=args.wall_tolerance,
        )
        if problems:
            print(f"FAIL: {len(problems)} budget(s) violated vs {args.baseline}")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"PASS: all cells within budget vs {args.baseline}")

    if args.out is not None:
        import os

        parent = os.path.dirname(args.out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote baseline to {args.out}")

    if not args.no_ledger:
        from repro.obs.ledger import record_run

        cells = doc["cells"]
        wall_s = sum(c["wall_s"] for c in cells.values())
        accesses = sum(c["accesses_per_sec"] * c["wall_s"] for c in cells.values())
        record_run(
            "gmt-bench",
            wall_s=wall_s,
            engine=args.engine or "scalar",
            params={"cells": sorted(cells), "scale": args.scale, "seed": args.seed},
            accesses_per_sec=accesses / wall_s if wall_s > 0 else 0.0,
            metrics={
                "elapsed_ns": sum(c["elapsed_ns"] for c in cells.values()),
                "ssd_io_bytes": sum(c["ssd_io_bytes"] for c in cells.values()),
                "t1_misses": sum(c["t1_misses"] for c in cells.values()),
            },
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    sys.exit(main())
