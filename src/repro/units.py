"""Size and time units used throughout the GMT reproduction.

The paper manages memory at a fixed 64 KB page granularity (the NVIDIA UVM
default) and reports latencies in nanoseconds/microseconds.  All simulated
time in this package is kept in *nanoseconds* as plain floats, and all sizes
in *bytes* as plain ints; these helpers exist so call sites read like the
paper ("``4 * GiB``", "``130 * USEC``") instead of raw powers of two.
"""

from __future__ import annotations

# --- sizes (bytes) ---------------------------------------------------------

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

#: GMT's unit of placement/movement (paper section 2, "Granularity").
PAGE_SIZE: int = 64 * KiB

# --- time (nanoseconds) ----------------------------------------------------

NSEC: float = 1.0
USEC: float = 1_000.0
MSEC: float = 1_000_000.0
SEC: float = 1_000_000_000.0


def pages_for_bytes(num_bytes: int, page_size: int = PAGE_SIZE) -> int:
    """Number of pages needed to hold ``num_bytes`` (rounded up)."""
    if num_bytes < 0:
        raise ValueError(f"negative size: {num_bytes}")
    return -(-num_bytes // page_size)


def bytes_for_pages(num_pages: int, page_size: int = PAGE_SIZE) -> int:
    """Total bytes occupied by ``num_pages`` whole pages."""
    if num_pages < 0:
        raise ValueError(f"negative page count: {num_pages}")
    return num_pages * page_size


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count, e.g. ``format_bytes(64 * GiB) == '64.0 GiB'``."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_time(ns: float) -> str:
    """Human-readable duration from nanoseconds, e.g. ``'130.0 us'``."""
    if abs(ns) < USEC:
        return f"{ns:.1f} ns"
    if abs(ns) < MSEC:
        return f"{ns / USEC:.1f} us"
    if abs(ns) < SEC:
        return f"{ns / MSEC:.1f} ms"
    return f"{ns / SEC:.3f} s"
