"""NVMe SSD model with GPU-resident queue-pair parallelism (the BaM model).

BaM (paper section 1) "allocate[s] NVMe queues in GPU memory ... Through
these memory mapped queues, GPU threads directly send NVMe I/O commands,
which SSD controllers can act upon, without requiring the host as an
intermediary".  The performance-relevant properties of that design are:

- per-command device latency (~130 us for a 64 KB read on the Gen3 x4
  970 EVO Plus, section 3.4);
- deep queueing: up to ``queue_depth`` commands overlap, so *throughput*
  rather than latency governs saturated phases;
- a device bandwidth ceiling.

``batch_time_ns`` prices a burst of concurrent commands under exactly
those three constraints; the byte/command counters feed Figure 8(b)'s I/O
comparison and Table 2's total-I/O column.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError
from repro.units import SEC


class NvmeSSD:
    """Latency/bandwidth/queue-depth model of one NVMe SSD."""

    def __init__(
        self,
        read_latency_ns: float,
        write_latency_ns: float,
        read_bandwidth: float,
        write_bandwidth: float,
        queue_depth: int,
    ) -> None:
        if min(read_latency_ns, write_latency_ns) < 0:
            raise SimulationError("NVMe latencies must be non-negative")
        if min(read_bandwidth, write_bandwidth) <= 0:
            raise SimulationError("NVMe bandwidths must be positive")
        if queue_depth < 1:
            raise SimulationError(f"queue_depth must be >= 1, got {queue_depth}")
        self.read_latency_ns = read_latency_ns
        self.write_latency_ns = write_latency_ns
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth
        self.queue_depth = queue_depth
        self.reads = 0
        self.writes = 0
        self.read_bytes = 0
        self.write_bytes = 0
        #: Optional per-command hook ``observer(num_bytes, write)`` for
        #: telemetry; None is the null-sink fast path.
        self.observer = None

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def total_commands(self) -> int:
        return self.reads + self.writes

    def record_read(self, num_bytes: int) -> None:
        """Account one read command of ``num_bytes``."""
        self._check(num_bytes)
        self.reads += 1
        self.read_bytes += num_bytes
        if self.observer is not None:
            self.observer(num_bytes, False)

    def record_write(self, num_bytes: int) -> None:
        """Account one write command of ``num_bytes``."""
        self._check(num_bytes)
        self.writes += 1
        self.write_bytes += num_bytes
        if self.observer is not None:
            self.observer(num_bytes, True)

    def batch_time_ns(self, commands: int, bytes_per_command: int, write: bool = False) -> float:
        """Completion time of ``commands`` concurrent same-size commands.

        Commands issue in waves of ``queue_depth``; each wave costs one
        device latency, and the whole batch additionally respects the
        bandwidth ceiling: ``max(latency * ceil(n/qd), bytes / bandwidth)``.
        """
        if commands < 0:
            raise SimulationError(f"negative command count: {commands}")
        if commands == 0:
            return 0.0
        self._check(bytes_per_command)
        latency = self.write_latency_ns if write else self.read_latency_ns
        bandwidth = self.write_bandwidth if write else self.read_bandwidth
        waves = math.ceil(commands / self.queue_depth)
        wire = commands * bytes_per_command / bandwidth * SEC
        return max(waves * latency, wire)

    def busy_time_ns(self) -> float:
        """Device-bandwidth lower bound on execution time for the recorded
        traffic (reads and writes share the device)."""
        return (
            self.read_bytes / self.read_bandwidth
            + self.write_bytes / self.write_bandwidth
        ) * SEC

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.read_bytes = 0
        self.write_bytes = 0

    @staticmethod
    def _check(num_bytes: int) -> None:
        if num_bytes < 0:
            raise SimulationError(f"negative I/O size: {num_bytes}")
