"""SIMT front end: warps and per-warp access coalescing.

Workload generators emit :class:`WarpAccess` records — the (up to) 32
per-lane page references a warp issues in one memory instruction.  As on
real hardware (and as the paper's VTD counter assumes: "a counter that is
updated on each coalesced access (across threads of a warp)", section
2.1.3), lanes touching the same 64 KB page coalesce into a single page
access before reaching the memory hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError

from repro.sim.transfer import WARP_SIZE


@dataclass(frozen=True)
class WarpAccess:
    """One warp-wide memory instruction.

    Attributes:
        pages: per-lane page ids (1..32 entries; lanes masked off by
            divergence simply do not appear).
        write: whether the instruction is a store (dirties its pages).
    """

    pages: tuple[int, ...]
    write: bool = False

    def __post_init__(self) -> None:
        if not self.pages:
            raise TraceError("a warp access needs at least one active lane")
        if len(self.pages) > WARP_SIZE:
            raise TraceError(
                f"a warp has at most {WARP_SIZE} lanes, got {len(self.pages)}"
            )
        if any(p < 0 for p in self.pages):
            raise TraceError(f"negative page id in warp access: {self.pages}")

    @property
    def lanes(self) -> int:
        """Number of active lanes."""
        return len(self.pages)


def coalesce(warp: WarpAccess) -> list[int]:
    """Unique pages of a warp access, in first-lane order.

    Each returned page becomes one coalesced access: one VTD clock tick,
    one hierarchy lookup, at most one fault.
    """
    seen: set[int] = set()
    unique: list[int] = []
    for page in warp.pages:
        if page not in seen:
            seen.add(page)
            unique.append(page)
    return unique


def warp_of(pages: list[int] | tuple[int, ...], write: bool = False) -> WarpAccess:
    """Convenience constructor used heavily by workload generators."""
    return WarpAccess(pages=tuple(pages), write=write)
