"""Tier-1 <-> Tier-2 transfer engines (paper section 2.3, Figure 6).

The paper weighs two mechanisms for GPU memory <-> host memory movement:

- ``cudaMemcpyAsync`` — "the DMA is employed to move data between them,
  initiated by a single GPU thread".  Each *non-contiguous* page needs its
  own copy descriptor and the single DMA engine serializes them, so cost
  grows linearly with a per-call overhead per page.
- *zero-copy* — "several GPU threads (typically in a warp) directly employ
  load-store instructions on pinned CPU memory".  Throughput scales with
  the number of threads lending their load/store slots, but the pages must
  first be pinned "(to avoid replacement) before the zero-copy is
  performed", a fixed overhead that small transfers cannot amortise.

Figure 6(a) shows the crossover at ~8 non-contiguous pages; Hybrid-XT
"uses zero-copy only when (a) the number of pages to be transferred
exceeds 8 ... and (b) we can employ at least 'X' threads in a warp",
with Hybrid-32T the overall winner (Figure 6(b)) and the engine GMT uses.

Default constants are fitted to place the crossover at 8 pages with the
platform's PCIe generation; they are constructor arguments so Figure 6's
sweeps (and sensitivity tests) can move them.
"""

from __future__ import annotations

import abc

from repro.errors import SimulationError
from repro.units import GiB, PAGE_SIZE, SEC, USEC

#: Threads in a warp on every CUDA GPU; the maximum X for Hybrid-XT.
WARP_SIZE = 32


class TransferEngine(abc.ABC):
    """Prices the movement of a batch of non-contiguous 64 KB pages."""

    name: str = "abstract"
    #: Optional batch hook ``observer(num_pages, mechanism)`` feeding the
    #: telemetry batch-size histogram; None is the null-sink fast path.
    observer = None

    @abc.abstractmethod
    def transfer_time_ns(
        self, num_pages: int, available_threads: int = WARP_SIZE, page_size: int = PAGE_SIZE
    ) -> float:
        """Time to move ``num_pages`` non-contiguous pages when
        ``available_threads`` warp lanes can help with the copy."""

    @abc.abstractmethod
    def mechanism(self, num_pages: int, available_threads: int = WARP_SIZE) -> str:
        """Which underlying mechanism ('dma' or 'zero-copy') would move
        this batch — what Hybrid-XT actually decides."""

    def efficiency(
        self, num_pages: int, available_threads: int = WARP_SIZE, page_size: int = PAGE_SIZE
    ) -> float:
        """Delivered bytes/second for the batch (Figure 6(a)'s y-axis)."""
        time_ns = self.transfer_time_ns(num_pages, available_threads, page_size)
        if time_ns <= 0:
            return 0.0
        return num_pages * page_size / (time_ns / SEC)

    @staticmethod
    def _validate(num_pages: int, available_threads: int) -> None:
        if num_pages < 0:
            raise SimulationError(f"negative page count: {num_pages}")
        if not 1 <= available_threads <= WARP_SIZE:
            raise SimulationError(
                f"available_threads must be in 1..{WARP_SIZE}, got {available_threads}"
            )


class DmaEngine(TransferEngine):
    """``cudaMemcpyAsync``: per-descriptor overhead, serialized on one DMA."""

    name = "cudaMemcpyAsync"

    def __init__(
        self, call_overhead_ns: float = 1.5 * USEC, bandwidth: float = 10.0 * GiB
    ) -> None:
        if call_overhead_ns < 0 or bandwidth <= 0:
            raise SimulationError("invalid DMA engine constants")
        self.call_overhead_ns = call_overhead_ns
        self.bandwidth = bandwidth

    def transfer_time_ns(
        self, num_pages: int, available_threads: int = WARP_SIZE, page_size: int = PAGE_SIZE
    ) -> float:
        self._validate(num_pages, available_threads)
        if self.observer is not None:
            self.observer(num_pages, "dma")
        per_page = self.call_overhead_ns + page_size / self.bandwidth * SEC
        return num_pages * per_page

    def mechanism(self, num_pages: int, available_threads: int = WARP_SIZE) -> str:
        return "dma"


class ZeroCopyEngine(TransferEngine):
    """Warp load/store on pinned host memory: pin once, copy in parallel.

    Effective copy bandwidth scales with the participating threads, up to
    the full-warp peak; the pinning overhead is paid per batch.
    """

    name = "zero-copy"

    def __init__(
        self, pin_overhead_ns: float = 36.0 * USEC, warp_bandwidth: float = 20.0 * GiB
    ) -> None:
        if pin_overhead_ns < 0 or warp_bandwidth <= 0:
            raise SimulationError("invalid zero-copy engine constants")
        self.pin_overhead_ns = pin_overhead_ns
        self.warp_bandwidth = warp_bandwidth

    def copy_bandwidth(self, available_threads: int) -> float:
        """Delivered load/store bandwidth with ``available_threads`` lanes."""
        return self.warp_bandwidth * available_threads / WARP_SIZE

    def transfer_time_ns(
        self, num_pages: int, available_threads: int = WARP_SIZE, page_size: int = PAGE_SIZE
    ) -> float:
        self._validate(num_pages, available_threads)
        if self.observer is not None:
            self.observer(num_pages, "zero-copy")
        if num_pages == 0:
            return 0.0
        wire = num_pages * page_size / self.copy_bandwidth(available_threads) * SEC
        return self.pin_overhead_ns + wire

    def mechanism(self, num_pages: int, available_threads: int = WARP_SIZE) -> str:
        return "zero-copy"


class HybridEngine(TransferEngine):
    """Hybrid-XT: zero-copy only for batches of >= ``page_threshold`` pages
    *and* >= ``min_threads`` helping lanes; DMA otherwise.

    ``HybridEngine(min_threads=32)`` is the paper's Hybrid-32T, GMT's
    production engine.
    """

    def __init__(
        self,
        min_threads: int = WARP_SIZE,
        page_threshold: int = 8,
        dma: DmaEngine | None = None,
        zero_copy: ZeroCopyEngine | None = None,
    ) -> None:
        if not 1 <= min_threads <= WARP_SIZE:
            raise SimulationError(f"min_threads must be in 1..{WARP_SIZE}")
        if page_threshold < 1:
            raise SimulationError(f"page_threshold must be >= 1, got {page_threshold}")
        self.min_threads = min_threads
        self.page_threshold = page_threshold
        self.dma = dma or DmaEngine()
        self.zero_copy = zero_copy or ZeroCopyEngine()
        self.name = f"Hybrid-{min_threads}T"

    def mechanism(self, num_pages: int, available_threads: int = WARP_SIZE) -> str:
        self._validate(num_pages, available_threads)
        use_zero_copy = num_pages >= self.page_threshold and available_threads >= self.min_threads
        return "zero-copy" if use_zero_copy else "dma"

    def transfer_time_ns(
        self, num_pages: int, available_threads: int = WARP_SIZE, page_size: int = PAGE_SIZE
    ) -> float:
        mechanism = self.mechanism(num_pages, available_threads)
        if self.observer is not None:
            self.observer(num_pages, mechanism)
        if mechanism == "zero-copy":
            return self.zero_copy.transfer_time_ns(num_pages, available_threads, page_size)
        return self.dma.transfer_time_ns(num_pages, available_threads, page_size)


def make_engine(name: str) -> TransferEngine:
    """Build an engine from a spec string.

    Accepted: ``"dma"``, ``"zero-copy"``, ``"hybrid-8t"``, ``"hybrid-16t"``,
    ``"hybrid-32t"`` (case-insensitive).
    """
    key = name.strip().lower()
    if key in ("dma", "cudamemcpyasync"):
        return DmaEngine()
    if key in ("zero-copy", "zerocopy", "zc"):
        return ZeroCopyEngine()
    if key.startswith("hybrid-") and key.endswith("t"):
        try:
            threads = int(key[len("hybrid-") : -1])
        except ValueError:
            raise SimulationError(f"unknown transfer engine: {name!r}") from None
        return HybridEngine(min_threads=threads)
    raise SimulationError(f"unknown transfer engine: {name!r}")
