"""Queueing-based execution-time model (higher-fidelity alternative).

The default :class:`~repro.sim.cost.CostModel` prices a run as the maximum
of four pipeline bottlenecks — a roofline view that is fast and explains
*why* a runtime is slow, but ignores transient queueing (bursts of faults
colliding on NVMe command slots, PCIe serialization between fetches and
evictions, idle gaps when the access stream has no misses).

:class:`QueueingModel` replays the same per-access information through an
explicit service network in virtual time:

- the GPU issues coalesced accesses ``gpu_access_ns`` apart (hits never
  stall the stream — other warps keep running);
- a miss occupies one of ``fault_concurrency`` *fault slots* from issue to
  data arrival (the warps parked on faults);
- SSD commands occupy one of ``nvme_queue_depth`` command slots and pay
  the device latency;
- bandwidth (SSD, PCIe) follows a fluid (processor-sharing) model: every
  transfer sees its own wire time, and each link's aggregate busy time
  floors the makespan.

Everything is computed in a single forward pass (heaps for slot pools,
O(log slots) per miss), so the model can run the full evaluation suite.
The `extensions` model-validation study checks the two models agree on
speedups where bandwidth binds and quantifies the queueing corrections
where latency binds.
"""

from __future__ import annotations

import heapq

from repro.errors import SimulationError
from repro.sim.latency import PlatformModel
from repro.units import SEC


class SlotPool:
    """k-server FIFO queue: requests take the earliest free slot."""

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise SimulationError(f"slot pool needs >= 1 slot, got {slots}")
        self.slots = slots
        self._free_at = [0.0] * slots
        heapq.heapify(self._free_at)

    def admit(self, ready_ns: float) -> float:
        """Earliest start time for work that is ready at ``ready_ns``.

        The caller must follow up with :meth:`release` for the same
        request once its finish time is known.
        """
        earliest = heapq.heappop(self._free_at)
        return max(ready_ns, earliest)

    def release(self, finish_ns: float) -> None:
        heapq.heappush(self._free_at, finish_ns)

    @property
    def earliest_free_ns(self) -> float:
        return self._free_at[0]


class FluidLink:
    """A shared link/device under the fluid (processor-sharing) model.

    Each transfer experiences its own wire time immediately
    (``bytes / bandwidth``), and the link's aggregate utilization becomes
    a lower bound on the makespan: total busy time can never exceed
    wall-clock time.  This avoids the head-of-line artefacts a strict
    FIFO cursor suffers when completion chains of different depths submit
    transfers with non-monotone ready times, while still charging every
    byte against the shared capacity.
    """

    def __init__(self, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth = bandwidth
        self._busy_ns = 0.0

    def transfer(self, ready_ns: float, num_bytes: int) -> float:
        """Account a transfer ready at ``ready_ns``; returns finish time."""
        if num_bytes < 0:
            raise SimulationError(f"negative transfer: {num_bytes}")
        wire = num_bytes / self.bandwidth * SEC
        self._busy_ns += wire
        return ready_ns + wire

    @property
    def busy_ns(self) -> float:
        """Aggregate wire time served — the link's makespan floor."""
        return self._busy_ns


class QueueingModel:
    """Virtual-time replay of the access stream through the service network.

    The runtime drives it with one call per coalesced access
    (:meth:`on_hit` / :meth:`on_miss`); :attr:`makespan_ns` afterwards is
    the simulated execution time.
    """

    def __init__(
        self,
        platform: PlatformModel,
        page_size: int,
        fault_concurrency: int,
        extra_fault_ns: float = 0.0,
        t2_move_ns: float = 0.0,
        ssd_read_bandwidth: float | None = None,
        ssd_write_bandwidth: float | None = None,
    ) -> None:
        self.platform = platform
        self.page_size = page_size
        self._arrival_ns = 0.0
        self._makespan_ns = 0.0
        self._fault_slots = SlotPool(fault_concurrency)
        self._nvme_slots = SlotPool(platform.nvme_queue_depth)
        self._ssd_read = FluidLink(ssd_read_bandwidth or platform.ssd_read_bandwidth)
        self._ssd_write = FluidLink(ssd_write_bandwidth or platform.ssd_write_bandwidth)
        self._pcie = FluidLink(platform.pcie_bandwidth)
        self._extra_fault_ns = extra_fault_ns
        self._t2_move_ns = t2_move_ns

    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> float:
        """The issue cursor (how far the GPU has pushed the stream)."""
        return self._arrival_ns

    @property
    def makespan_ns(self) -> float:
        """Completion time of the latest event, floored by every shared
        link's aggregate utilization (the fluid-bandwidth constraint).

        Reads and writes share the SSD device, so their busy times add."""
        return max(
            self._makespan_ns,
            self._arrival_ns,
            self._pcie.busy_ns,
            self._ssd_read.busy_ns + self._ssd_write.busy_ns,
        )

    def _advance_arrival(self) -> float:
        self._arrival_ns += self.platform.gpu_access_ns
        return self._arrival_ns

    # ------------------------------------------------------------------
    def on_hit(self) -> None:
        """A Tier-1 hit: consumes issue bandwidth, stalls nothing."""
        self._advance_arrival()

    def on_hits(self, count: int) -> None:
        """Retire ``count`` consecutive Tier-1 hits at once.

        Byte-identical to ``count`` calls to :meth:`on_hit`: the arrival
        cursor advances through the same sequence of float roundings
        (see :func:`repro.sim.cost.sequential_float_sum`), and hits touch
        no other model state.
        """
        from repro.sim.cost import sequential_float_sum

        self._arrival_ns = sequential_float_sum(
            self._arrival_ns, self.platform.gpu_access_ns, count
        )

    def on_miss(
        self,
        tier2_lookup: bool,
        tier2_hit: bool,
        writeback: bool = False,
        tier2_place: bool = False,
        tier2_evict: bool = False,
    ) -> float:
        """A demand miss with its eviction side effects; returns its
        completion time."""
        arrival = self._advance_arrival()
        start = self._fault_slots.admit(arrival)
        t = start + self._extra_fault_ns
        if tier2_lookup:
            t += self.platform.tier2_lookup_ns

        if tier2_hit:
            # Fetch the page from host memory over PCIe.
            t = self._pcie.transfer(t, self.page_size)
            t += self.platform.host_fetch_latency_ns + self._t2_move_ns
        else:
            # Fetch from the SSD through an NVMe command slot.
            cmd_start = self._nvme_slots.admit(t)
            finish = self._ssd_read.transfer(
                cmd_start + self.platform.ssd_read_latency_ns, self.page_size
            )
            self._nvme_slots.release(finish)
            t = finish

        # Eviction work on the critical path (synchronous orchestration).
        # The faulting warp waits for the victim's frame to be *handed
        # over* — command issue plus device latency — but outbound data
        # drains through staging buffers, so its wire time occupies the
        # device/link without blocking the chain (inbound fetches above,
        # by contrast, block until the data arrives).
        if tier2_evict:
            t += self.platform.tier2_eviction_ns
        if writeback:
            cmd_start = self._nvme_slots.admit(t)
            t = cmd_start + self.platform.ssd_write_latency_ns
            self._nvme_slots.release(t)
            self._ssd_write.transfer(t, self.page_size)
        if tier2_place:
            t += self._t2_move_ns
            self._pcie.transfer(t, self.page_size)

        self._fault_slots.release(t)
        if t > self._makespan_ns:
            self._makespan_ns = t
        return t

    def on_background_io(self, num_bytes: int, write: bool = False) -> None:
        """Traffic not on any miss's critical path (async evictions,
        prefetches): occupies device bandwidth only."""
        cursor = self._ssd_write if write else self._ssd_read
        cursor.transfer(self._arrival_ns, num_bytes)

    def on_background_pcie(self, num_bytes: int) -> None:
        """A Tier-1<->Tier-2 move off every miss's critical path (async or
        prefetch-triggered Tier-2 placements): occupies PCIe bandwidth
        only, like :meth:`on_background_io` does for the SSD."""
        self._pcie.transfer(self._arrival_ns, num_bytes)

    # ------------------------------------------------------------------
    # conservation probes (read-only; see repro.check.identities)
    # ------------------------------------------------------------------
    @property
    def ssd_read_busy_ns(self) -> float:
        """Aggregate SSD read wire time served so far."""
        return self._ssd_read.busy_ns

    @property
    def ssd_write_busy_ns(self) -> float:
        """Aggregate SSD write wire time served so far."""
        return self._ssd_write.busy_ns

    @property
    def pcie_busy_ns(self) -> float:
        """Aggregate PCIe wire time served so far."""
        return self._pcie.busy_ns
