"""Execution-time model: max of the pipeline's bottlenecks.

A GPU application over-subscribing its memory runs as a deep pipeline:
thousands of warps compute while others are parked on faults, and the
PCIe link and SSD stream data underneath.  Execution time is therefore
governed by whichever resource saturates first, not by the sum of all
latencies — the roofline view BaM's own evaluation takes.  The model
tracks four terms and reports their maximum:

- *compute*: per-coalesced-access GPU work (the floor when data fits);
- *fault latency*: the sum of critical-path miss latencies, divided by the
  fault-level parallelism the orchestrator sustains.  This is where GPU
  orchestration (BaM/GMT, thousands of in-flight faults) beats CPU
  orchestration (HMM, a few host cores) — same latencies, far smaller
  divisor for the GPU;
- *link/device busy time*: bandwidth floors from the PCIe link and SSD
  byte counters.

The breakdown is exposed so experiment reports can show *why* a runtime is
fast or slow, not just the total.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


def sequential_float_sum(base: float, step: float, count: int) -> float:
    """``base`` after ``count`` sequential ``+= step`` operations.

    Bit-for-bit identical to the Python loop: ``np.add.accumulate`` is
    defined as the sequential recurrence ``r[i] = r[i-1] + a[i]``, so its
    last element carries the exact same intermediate roundings.  (Do NOT
    substitute ``np.add.reduce``/``np.sum`` here — those use pairwise
    summation, which rounds differently.)  The vectorized replay engine
    relies on this to keep float accumulators byte-identical to the
    scalar engine's.
    """
    if count <= 0:
        return base
    arr = np.empty(count + 1, dtype=np.float64)
    arr[0] = base
    arr[1:] = step
    return float(np.add.accumulate(arr)[-1])


@dataclass
class CostBreakdown:
    """The four bottleneck terms (ns) and the resulting elapsed time.

    ``measured_ns``, when set, overrides the roofline maximum with a
    measured makespan (the queueing time model,
    :mod:`repro.sim.queueing`); the four terms remain available as the
    explanatory breakdown.
    """

    compute_ns: float
    fault_ns: float
    pcie_ns: float
    ssd_ns: float
    measured_ns: float | None = None

    @property
    def elapsed_ns(self) -> float:
        if self.measured_ns is not None:
            return self.measured_ns
        return max(self.compute_ns, self.fault_ns, self.pcie_ns, self.ssd_ns)

    @property
    def bottleneck(self) -> str:
        """Name of the dominating term."""
        terms = {
            "compute": self.compute_ns,
            "fault-latency": self.fault_ns,
            "pcie": self.pcie_ns,
            "ssd": self.ssd_ns,
        }
        return max(terms, key=terms.get)  # type: ignore[arg-type]


class CostModel:
    """Accumulates compute and fault-latency time for one run.

    Args:
        fault_concurrency: in-flight faults the orchestrator sustains
            (GPU-orchestrated: hundreds; CPU-orchestrated: a few).
    """

    def __init__(self, fault_concurrency: int) -> None:
        if fault_concurrency < 1:
            raise SimulationError(
                f"fault_concurrency must be >= 1, got {fault_concurrency}"
            )
        self.fault_concurrency = fault_concurrency
        self._compute_ns = 0.0
        self._fault_latency_ns = 0.0

    @property
    def compute_ns(self) -> float:
        return self._compute_ns

    @property
    def fault_latency_ns(self) -> float:
        """Undivided sum of critical-path fault latencies."""
        return self._fault_latency_ns

    def add_compute(self, ns: float) -> None:
        if ns < 0:
            raise SimulationError(f"negative compute time: {ns}")
        self._compute_ns += ns

    def add_compute_batch(self, ns: float, count: int) -> None:
        """Charge ``count`` identical compute steps of ``ns`` each.

        Equivalent — to the last bit — to ``count`` calls to
        :meth:`add_compute` (see :func:`sequential_float_sum`).
        """
        if ns < 0:
            raise SimulationError(f"negative compute time: {ns}")
        self._compute_ns = sequential_float_sum(self._compute_ns, ns, count)

    def add_fault_latency(self, ns: float) -> None:
        """Add one fault's critical-path latency (lookup + fetch + ...)."""
        if ns < 0:
            raise SimulationError(f"negative fault latency: {ns}")
        self._fault_latency_ns += ns

    def breakdown(self, pcie_busy_ns: float = 0.0, ssd_busy_ns: float = 0.0) -> CostBreakdown:
        """Combine the accumulated terms with device busy times."""
        if pcie_busy_ns < 0 or ssd_busy_ns < 0:
            raise SimulationError("device busy times must be non-negative")
        return CostBreakdown(
            compute_ns=self._compute_ns,
            fault_ns=self._fault_latency_ns / self.fault_concurrency,
            pcie_ns=pcie_busy_ns,
            ssd_ns=ssd_busy_ns,
        )
