"""Simulated platform substituting for the paper's A100 + Xeon + NVMe testbed.

The reproduction is trace-driven: workloads produce the page-access stream
a GPU kernel would generate, and these models price every data movement
with the paper's measured constants (section 3.4: SSD fetch ~130 us, host
fetch ~50 us, Tier-2 lookup ~50 ns) plus device bandwidth/parallelism
limits.  See DESIGN.md section 2 for the substitution rationale.

- :mod:`repro.sim.latency` — the platform constant sheet;
- :mod:`repro.sim.pcie` — PCIe link bandwidth/traffic accounting;
- :mod:`repro.sim.nvme` — NVMe SSD with queue-pair parallelism (BaM model);
- :mod:`repro.sim.transfer` — Tier-1<->Tier-2 engines: cudaMemcpyAsync DMA,
  warp zero-copy, and Hybrid-XT (paper section 2.3, Fig. 6);
- :mod:`repro.sim.gpu` — SIMT warps and per-warp access coalescing;
- :mod:`repro.sim.cost` — the max-of-bottlenecks execution-time model.
"""

from repro.sim.cost import CostModel
from repro.sim.gpu import WarpAccess, coalesce
from repro.sim.latency import PlatformModel
from repro.sim.nvme import NvmeSSD
from repro.sim.pcie import PCIeLink
from repro.sim.transfer import (
    DmaEngine,
    HybridEngine,
    TransferEngine,
    ZeroCopyEngine,
    make_engine,
)

__all__ = [
    "CostModel",
    "DmaEngine",
    "HybridEngine",
    "NvmeSSD",
    "PCIeLink",
    "PlatformModel",
    "TransferEngine",
    "WarpAccess",
    "ZeroCopyEngine",
    "coalesce",
    "make_engine",
]
