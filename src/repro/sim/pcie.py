"""PCIe link model: traffic accounting plus analytic transfer times.

The link connects GPU memory to both host memory and the SSD (Table 1:
PCIe Gen3 x16 to the host, Gen3 x4 to the SSD).  Figure 10(b)'s
"more PCIe bus transfers" cost of Tier-2 policies is exactly the byte
accounting this class keeps.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.units import SEC, format_bytes


class PCIeLink:
    """Bandwidth-limited link with per-direction byte counters.

    Directions follow CUDA convention: *h2d* host-to-device (GPU reads
    host memory / fetch from Tier-2), *d2h* device-to-host (evictions into
    Tier-2).
    """

    def __init__(self, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth = bandwidth  # bytes per second
        self.h2d_bytes = 0
        self.d2h_bytes = 0
        self.h2d_transfers = 0
        self.d2h_transfers = 0
        #: Optional per-transfer size hook (telemetry histogram); None is
        #: the null-sink fast path — one attribute check per transfer.
        self.observer = None

    @property
    def total_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes

    @property
    def total_transfers(self) -> int:
        return self.h2d_transfers + self.d2h_transfers

    def record_h2d(self, num_bytes: int) -> None:
        """Account a host->GPU transfer (Tier-2 -> Tier-1 fetch)."""
        self._check(num_bytes)
        self.h2d_bytes += num_bytes
        self.h2d_transfers += 1
        if self.observer is not None:
            self.observer(num_bytes)

    def record_d2h(self, num_bytes: int) -> None:
        """Account a GPU->host transfer (Tier-1 -> Tier-2 placement)."""
        self._check(num_bytes)
        self.d2h_bytes += num_bytes
        self.d2h_transfers += 1
        if self.observer is not None:
            self.observer(num_bytes)

    def wire_time_ns(self, num_bytes: int) -> float:
        """Pure serialization time of ``num_bytes`` on the link."""
        self._check(num_bytes)
        return num_bytes / self.bandwidth * SEC

    def busy_time_ns(self) -> float:
        """Total time the link must have been busy for the recorded bytes —
        the link's contribution to the execution-time lower bound."""
        return self.total_bytes / self.bandwidth * SEC

    def reset(self) -> None:
        self.h2d_bytes = 0
        self.d2h_bytes = 0
        self.h2d_transfers = 0
        self.d2h_transfers = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PCIeLink(h2d={format_bytes(self.h2d_bytes)}, "
            f"d2h={format_bytes(self.d2h_bytes)})"
        )

    @staticmethod
    def _check(num_bytes: int) -> None:
        if num_bytes < 0:
            raise SimulationError(f"negative transfer size: {num_bytes}")
