"""Named platform presets and calibration helpers.

:data:`PAPER_PLATFORM` encodes Table 1's testbed with section 3.4's
measured latencies — the default everywhere.  The other presets let users
ask "what would GMT do on *my* box" without hunting datasheets; each
documents its provenance.  :func:`calibrate` builds a platform from a
user's own microbenchmark numbers, validating units and plausibility.
"""

from __future__ import annotations

from dataclasses import fields, replace

from repro.errors import ConfigError
from repro.sim.latency import PlatformModel
from repro.units import GiB, USEC

#: Table 1: A100-40GB PCIe, Xeon Gold 6226, Samsung 970 EVO Plus (Gen3 x4),
#: PCIe Gen3 x16 — with the section 3.4 measured latencies.
PAPER_PLATFORM = PlatformModel()

#: A PCIe Gen4 refresh of the same shape: A100/H100-class GPU on Gen4 x16
#: (~24 GiB/s practical) with a Gen4 x4 SSD (980 Pro-class: ~7/5 GiB/s,
#: ~90 us random 64 KiB read under load).
GEN4_PLATFORM = replace(
    PAPER_PLATFORM,
    pcie_bandwidth=24.0 * GiB,
    ssd_read_bandwidth=7.0 * GiB,
    ssd_write_bandwidth=5.0 * GiB,
    ssd_read_latency_ns=90.0 * USEC,
    ssd_write_latency_ns=20.0 * USEC,
    host_fetch_latency_ns=35.0 * USEC,
)

#: Coherent-interconnect direction (Grace-Hopper/CXL-ish): host memory a
#: few hundred ns away over a ~100 GiB/s link.  Tier-2 lookups and fetches
#: become dramatically cheaper; SSDs unchanged (Gen4 x4).
COHERENT_LINK_PLATFORM = replace(
    GEN4_PLATFORM,
    pcie_bandwidth=100.0 * GiB,
    host_fetch_latency_ns=2.0 * USEC,
    tier2_lookup_ns=25.0,
)

PLATFORM_PRESETS: dict[str, PlatformModel] = {
    "paper": PAPER_PLATFORM,
    "gen4": GEN4_PLATFORM,
    "coherent": COHERENT_LINK_PLATFORM,
}


def get_platform(name: str) -> PlatformModel:
    """Look up a preset by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in PLATFORM_PRESETS:
        raise ConfigError(
            f"unknown platform {name!r}; presets: {', '.join(PLATFORM_PRESETS)}"
        )
    return PLATFORM_PRESETS[key]


def calibrate(base: PlatformModel | str = "paper", **measured) -> PlatformModel:
    """Build a platform from measured numbers on top of a preset.

    Args:
        base: preset name or an existing :class:`PlatformModel`.
        **measured: any PlatformModel field, e.g.
            ``calibrate(ssd_read_latency_ns=95_000, pcie_bandwidth=20*GiB)``.

    Raises:
        ConfigError: unknown field names or invalid values (validation is
            PlatformModel's own).
    """
    if isinstance(base, str):
        base = get_platform(base)
    valid = {f.name for f in fields(PlatformModel)}
    unknown = set(measured) - valid
    if unknown:
        raise ConfigError(
            f"unknown platform fields: {', '.join(sorted(unknown))}; "
            f"valid: {', '.join(sorted(valid))}"
        )
    return replace(base, **measured)
