"""Platform constant sheet for the simulated testbed.

Defaults reproduce the paper's measurements on the Table 1 platform
(A100-40GB PCIe Gen3 x16, Xeon Gold 6226, Samsung 970 EVO Plus Gen3 x4):

- section 3.4: "Retrieving a page from host memory is faster (around 50 us)
  than retrieving it from the SSD (around 130 us)"; an unsuccessful Tier-2
  lookup "adds to latencies (around 50 ns) in the critical path".
- Device datasheets: ~3.5 GB/s sequential read for the 970 EVO Plus and
  ~12 GB/s practical for PCIe Gen3 x16.
- ``gpu_fault_concurrency`` models the thousands of GPU threads that fault
  concurrently (BaM's core advantage); ``host_fault_concurrency`` and
  ``host_fault_overhead_ns`` model the few host cores + host software stack
  that serialize CPU-orchestrated designs (Dragon/HMM), per section 3.6.

Every constant is a dataclass field, so sensitivity studies and unit tests
can build alternative platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.units import GiB, NSEC, USEC


@dataclass(frozen=True)
class PlatformModel:
    """All latency/bandwidth/parallelism constants of the simulated testbed."""

    # --- critical-path latencies (ns) -----------------------------------
    ssd_read_latency_ns: float = 130.0 * USEC
    ssd_write_latency_ns: float = 30.0 * USEC
    host_fetch_latency_ns: float = 50.0 * USEC
    tier2_lookup_ns: float = 50.0 * NSEC
    #: Cost of evicting a page out of Tier-2 to make room: the GPU runs
    #: the replacement mechanism over host-resident metadata (several PCIe
    #: round trips), unmaps the page and frees its slot.  Section 2.1.1
    #: lists "the additional cost of a replacement mechanism for host
    #: memory" among GMT-TierOrder's drawbacks — this is that cost.
    tier2_eviction_ns: float = 8.0 * USEC
    #: Per coalesced access compute/issue cost on the GPU (hit path).
    gpu_access_ns: float = 200.0 * NSEC

    # --- bandwidths (bytes/second) ---------------------------------------
    pcie_bandwidth: float = 12.0 * GiB  # practical Gen3 x16
    ssd_read_bandwidth: float = 3.5 * GiB  # 970 EVO Plus sequential read
    ssd_write_bandwidth: float = 3.3 * GiB

    # --- parallelism ------------------------------------------------------
    #: In-flight demand misses the GPU sustains (warps parked on faults).
    gpu_fault_concurrency: int = 128
    #: NVMe queue depth reachable from GPU-resident queues (BaM).
    nvme_queue_depth: int = 256

    # --- CPU-orchestrated (HMM/Dragon) overheads --------------------------
    #: Concurrent faults the host software stack services (limited cores).
    host_fault_concurrency: int = 6
    #: Host software cost per fault: interrupt, driver, page-cache lookup,
    #: page-table update, TLB shootdown.
    host_fault_overhead_ns: float = 60.0 * USEC
    #: Effective SSD bandwidth via the host page cache (4 KiB-granular
    #: faults, readahead waste, kernel copies) is far below the raw device
    #: bandwidth BaM's GPU-resident NVMe queues sustain.
    host_pagecache_ssd_bandwidth: float = 1.0 * GiB

    def __post_init__(self) -> None:
        positive_fields = (
            "ssd_read_latency_ns",
            "ssd_write_latency_ns",
            "host_fetch_latency_ns",
            "pcie_bandwidth",
            "ssd_read_bandwidth",
            "ssd_write_bandwidth",
            "gpu_fault_concurrency",
            "nvme_queue_depth",
            "host_fault_concurrency",
            "host_pagecache_ssd_bandwidth",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ConfigError(f"PlatformModel.{name} must be positive")
        for name in (
            "tier2_lookup_ns",
            "tier2_eviction_ns",
            "gpu_access_ns",
            "host_fault_overhead_ns",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"PlatformModel.{name} must be non-negative")

    def with_ssd_array(self, num_ssds: int) -> "PlatformModel":
        """Platform with ``num_ssds`` SSDs striped behind the NVMe layer.

        BaM's design explicitly scales across SSD arrays (its GPU-resident
        queues address many drives); aggregate bandwidth and queue depth
        scale with the drive count while per-command latency stays fixed.
        Used by the SSD-scaling extension study: as drives are added the
        SSD stops being the bottleneck and Tier-2's value shrinks.
        """
        if num_ssds < 1:
            raise ConfigError(f"num_ssds must be >= 1, got {num_ssds}")
        return replace(
            self,
            ssd_read_bandwidth=self.ssd_read_bandwidth * num_ssds,
            ssd_write_bandwidth=self.ssd_write_bandwidth * num_ssds,
            nvme_queue_depth=self.nvme_queue_depth * num_ssds,
        )
