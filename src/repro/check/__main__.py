"""``python -m repro.check`` == ``gmt-check``."""

import sys

from repro.check.cli import main

sys.exit(main())
