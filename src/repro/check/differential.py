"""Differential conformance: one trace, every runtime, every identity.

:func:`run_conformance` replays one workload through the comparison
runtimes (GMT-Reuse/TierOrder/Random, BaM, HMM by default), audits each
against the identity catalogue (:mod:`repro.check.identities`), then runs
the cross-runtime and metamorphic checks:

- **cross-runtime-trace** — all runtimes must observe the identical
  coalesced access stream (policies decide placement, never the trace);
- **scalar-vs-vector** — every runtime kind replayed through both replay
  engines (the scalar reference loop and the SoA batch engine,
  :mod:`repro.core.vector`) must be counter-identical byte for byte,
  including the modelled ``elapsed_ns``;
- **telemetry-parity** — every runtime kind replayed through both
  engines *with windowed telemetry attached* must produce byte-equal
  windowed-snapshot streams, latency-digest buckets, Perfetto counter
  tracks and anomaly findings (the batch observer pipeline of
  :mod:`repro.obs.batch` under audit);
- **metamorphic-degenerate-bam** — GMT with ``tier2_frames=0`` and the
  tier-order policy must be counter-identical to the BaM baseline;
- **metamorphic-determinism** — a second replay from the same seed must
  reproduce the first byte for byte;
- **metamorphic-solo-serve** — serving a single tenant through
  :mod:`repro.serve` must reproduce the plain single-stream replay.

:data:`INJECTIONS` hosts seeded corruptions (a page resident in two
tiers, a drifted counter, a dropped writeback) used to prove the net
actually catches what it claims to — ``gmt-check --inject`` must exit
non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines.bam import BamRuntime
from repro.core.config import PAPER_OVERSUBSCRIPTION, GMTConfig
from repro.core.runtime import GMTRuntime
from repro.errors import ConfigError
from repro.experiments.harness import (
    RUNTIME_KINDS,
    RUNTIME_LABELS,
    build_runtime,
    default_config,
    get_workload,
)
from repro.check.identities import (
    Violation,
    audit_runtime,
    audit_split,
    audit_stats,
)

#: The default differential matrix: the paper's three GMT policies plus
#: both orchestration baselines.
DEFAULT_RUNTIMES: tuple[str, ...] = ("bam", "tier-order", "random", "reuse", "hmm")


# ----------------------------------------------------------------------
# seeded corruptions (self-test: the net must catch these)
# ----------------------------------------------------------------------
def _inject_dup_resident(runtime: GMTRuntime) -> str:
    """Make one page resident in both tiers (migration-state corruption)."""
    t2_page = next(iter(runtime.tier2), None)
    if t2_page is None:
        raise ConfigError(
            "dup-resident needs a Tier-2 resident page; run a 3-tier "
            "runtime (not bam) with enough trace to populate Tier-2"
        )
    t1_page = next(iter(runtime.tier1))
    runtime.tier1.remove(t1_page)
    runtime.tier1.insert(t2_page)
    return f"page {t2_page} now resident in Tier-1 and Tier-2"


def _inject_stats_drift(runtime: GMTRuntime) -> str:
    """Phantom hit: the kind of double-count a refactor introduces."""
    runtime.stats.t1_hits += 1
    return "t1_hits incremented without an access"


def _inject_lost_writeback(runtime: GMTRuntime) -> str:
    """Drop one writeback from the books (silent data-loss accounting)."""
    if runtime.stats.ssd_page_writes == 0:
        raise ConfigError(
            "lost-writeback needs at least one recorded writeback; use a "
            "trace with dirty evictions"
        )
    runtime.stats.ssd_page_writes -= 1
    return "one ssd_page_write erased"


def _inject_vector_desync(runtime: GMTRuntime) -> str:
    """Corrupt the vector engine's SoA tier column for a Tier-1 resident
    page (the exact failure mode a buggy batch path would produce: the
    dense arrays and the tier structures disagreeing about a page)."""
    from repro.core.vector import VectorEngineMixin
    from repro.mem.page import PageLocation

    if not isinstance(runtime, VectorEngineMixin):
        raise ConfigError(
            "vector-desync corrupts the SoA page store; run with "
            "--engine vector"
        )
    page = next(iter(runtime.tier1), None)
    if page is None:
        raise ConfigError(
            "vector-desync needs a Tier-1 resident page; use a trace "
            "that leaves Tier-1 populated"
        )
    runtime._vstore.loc[page] = PageLocation.TIER2.value
    return f"store.loc[{page}] rewritten to TIER2 while Tier-1 resident"


def _inject_ghost_leak(runtime: GMTRuntime) -> str:
    """Overflow an S3-FIFO ghost queue past its bound (history-structure
    leak — the kind of bug an unbounded dict would hide forever)."""
    from repro.policyzoo.partition import PartitionedPolicy
    from repro.policyzoo.s3fifo import S3FifoReplacement

    structures = []
    for candidate in (runtime.t1_clock, runtime._t2_order):
        if isinstance(candidate, S3FifoReplacement):
            structures.append(candidate)
        elif isinstance(candidate, PartitionedPolicy):
            structures.extend(
                p for p in candidate.policies
                if isinstance(p, S3FifoReplacement)
            )
    if not structures:
        raise ConfigError(
            "ghost-leak needs an S3-FIFO eviction structure; run with "
            "--tier1-policy s3fifo (or --tier2-policy s3fifo)"
        )
    target = structures[0]
    # Stuff synthetic never-resident page ids straight into the ghost
    # dict, bypassing the bounded _remember_ghost path.
    base = 1 << 60
    overflow = target.ghost_bound + 2 - len(target._ghost)
    for i in range(max(overflow, 1)):
        target._ghost[base + i] = None
    return (
        f"ghost queue stuffed to {len(target._ghost)} entries "
        f"(bound {target.ghost_bound})"
    )


def _inject_window_desync(telemetry) -> str:
    """Shift the vector replay's windowed-snapshot baseline (the exact
    corruption a buggy batch-splitting path would produce: batches
    retired across a window boundary without cutting the snapshot).

    Unlike the other injections this perturbs *telemetry* rather than a
    runtime, so :func:`run_conformance` applies it inside the
    telemetry-parity check — on the vector side only, between attach and
    replay — instead of after a replay."""
    snap = telemetry.snapshotter
    shift = max(1, snap.interval // 4)
    snap.rebaseline(snap._last_position + shift)
    return f"vector snapshot baseline shifted by {shift} accesses"


INJECTIONS = {
    "dup-resident": _inject_dup_resident,
    "stats-drift": _inject_stats_drift,
    "lost-writeback": _inject_lost_writeback,
    "ghost-leak": _inject_ghost_leak,
    "vector-desync": _inject_vector_desync,
    "window-desync": _inject_window_desync,
}


# ----------------------------------------------------------------------
# report containers
# ----------------------------------------------------------------------
@dataclass
class RunReport:
    """One runtime's replay and audit outcome."""

    kind: str
    label: str
    elapsed_ns: float
    stats: dict
    violations: list[Violation] = field(default_factory=list)


@dataclass
class CheckReport:
    """Everything one :func:`run_conformance` invocation established."""

    app: str
    scale: int
    seed: int
    runs: list[RunReport] = field(default_factory=list)
    #: (context, violation): context is a runtime label or check name.
    violations: list[tuple[str, Violation]] = field(default_factory=list)
    checks_run: list[str] = field(default_factory=list)
    injected: str | None = None
    #: Eviction-policy substitution under test (None = the defaults).
    tier1_policy: str | None = None
    tier2_policy: str | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, context: str, violations) -> None:
        for violation in violations:
            self.violations.append((context, violation))

    def summary_lines(self) -> list[str]:
        lines = [
            f"gmt-check {self.app} (scale {self.scale}, seed {self.seed}): "
            f"{len(self.runs)} runtime(s), {len(self.checks_run)} check "
            f"group(s)"
            + (
                f", eviction: t1={self.tier1_policy or 'clock'}"
                f"/t2={self.tier2_policy or 'default'}"
                if (self.tier1_policy or self.tier2_policy)
                else ""
            )
            + (f", injected corruption: {self.injected}" if self.injected else "")
        ]
        for run in self.runs:
            status = "FAIL" if run.violations else "ok"
            lines.append(
                f"  [{status}] {run.label}: "
                f"{run.stats['coalesced_accesses']:.0f} accesses, "
                f"{run.stats['t1_misses']:.0f} misses, "
                f"elapsed {run.elapsed_ns / 1e6:.2f} ms"
            )
        if self.violations:
            lines.append(f"{len(self.violations)} violation(s):")
            lines.extend(f"  - [{ctx}] {v}" for ctx, v in self.violations)
        else:
            lines.append("all identities hold")
        return lines


# ----------------------------------------------------------------------
# the differential harness
# ----------------------------------------------------------------------
def _audited_replay(kind: str, config: GMTConfig, workload, check_every,
                    engine: str | None = None):
    runtime = build_runtime(kind, config, engine=engine)
    if check_every is not None:
        runtime.enable_periodic_checks(check_every)
    result = runtime.run(workload)
    return runtime, result


def run_conformance(
    app: str,
    scale: int,
    oversubscription: float = PAPER_OVERSUBSCRIPTION,
    seed: int = 0,
    runtimes: tuple[str, ...] = DEFAULT_RUNTIMES,
    check_every: int | None = None,
    prefetch_degree: int = 0,
    time_model: str = "bottleneck",
    metamorphic: bool = True,
    serve: bool = True,
    inject: str | None = None,
    tier1_policy: str | None = None,
    tier2_policy: str | None = None,
    engine: str | None = None,
    engines: bool = True,
    telemetry: bool = True,
    telemetry_window: int = 1_997,
) -> CheckReport:
    """Replay ``app`` through ``runtimes`` and audit everything.

    Args:
        app: Table 2 workload name.
        scale: byte-scale divisor (trace and geometry size).
        oversubscription: working set over Tier-1+Tier-2 capacity.
        seed: trace RNG seed.
        runtimes: runtime kinds to replay (see ``RUNTIME_KINDS``).
        check_every: also run the audit *during* each replay, every this
            many coalesced accesses (None = post-run only).
        prefetch_degree: sequential prefetch window — non-zero exercises
            the prefetch/eviction accounting paths.
        time_model: "bottleneck" or "queueing"; the queueing model adds
            the link-conservation identities to the audit.
        metamorphic: run the degenerate-BaM and determinism checks.
        serve: run the 1-tenant-serve-equals-solo check (plus the
            tenant-slice conservation audit).
        inject: name from :data:`INJECTIONS` — corrupt the *first listed
            3-tier runtime* after its replay and before its audit, to
            prove detection end-to-end.
        tier1_policy / tier2_policy: substitute a :mod:`repro.policyzoo`
            eviction policy at the given tier for *every* runtime in the
            matrix (None keeps the defaults).  All identities — and the
            metamorphic checks, including degenerate-BaM — must hold for
            every zoo member.
        engine: replay engine for the audited replays (``ENGINE_NAMES``;
            None = scalar, the reference loop — pass ``"vector"`` to
            audit the batch engine's structures directly, which the
            ``vector-desync`` injection requires).
        engines: run the ``scalar-vs-vector`` differential — every
            runtime kind replayed through both engines must be
            counter-identical, byte for byte, including the modelled
            ``elapsed_ns``.
        telemetry: run the ``telemetry-parity`` differential — every
            runtime kind replayed through both engines with windowed
            telemetry attached must produce byte-equal window streams,
            latency-digest buckets, counter tracks and anomaly findings.
            The ``window-desync`` injection perturbs the vector side of
            this check and must be caught.
        telemetry_window: snapshot interval for the telemetry-parity
            replays (a prime by default, so vector hit batches straddle
            window boundaries rather than aligning with them).

    Periodic checking is disabled for the metamorphic re-runs (the first
    pass already audited the trace; the re-runs only compare outcomes).
    """
    for kind in runtimes:
        if kind not in RUNTIME_KINDS:
            raise ConfigError(
                f"unknown runtime kind {kind!r}; expected one of {RUNTIME_KINDS}"
            )
    if inject is not None and inject not in INJECTIONS:
        raise ConfigError(
            f"unknown injection {inject!r}; expected one of "
            f"{tuple(INJECTIONS)}"
        )

    config = default_config(
        scale, prefetch_degree=prefetch_degree, time_model=time_model
    )
    if tier1_policy is not None:
        config = replace(config, tier1_eviction=tier1_policy)
    if tier2_policy is not None:
        config = replace(config, tier2_eviction=tier2_policy)
    workload = get_workload(app, config, oversubscription, seed=seed)
    if prefetch_degree > 0:
        # The satellite fix under test: the prefetcher must know where
        # the workload's address space ends.
        config = replace(config, footprint_pages=workload.footprint_pages)

    report = CheckReport(
        app=app, scale=scale, seed=seed,
        tier1_policy=tier1_policy, tier2_policy=tier2_policy,
    )
    inject_target = None
    desync_target = None
    if inject == "window-desync":
        # Telemetry injection: applied inside the telemetry-parity check
        # (vector side, between attach and replay), not after a replay.
        if not telemetry:
            raise ConfigError(
                "window-desync perturbs the telemetry-parity check; "
                "don't disable it"
            )
        desync_target = runtimes[0]
    elif inject is not None:
        three_tier = [k for k in runtimes if k != "bam"]
        if not three_tier and inject == "dup-resident":
            raise ConfigError("dup-resident needs a 3-tier runtime in --runtimes")
        inject_target = (three_tier or list(runtimes))[0]

    # The audited replays default to the scalar reference loop; an
    # explicit engine request audits that engine's structures instead.
    replay_engine = engine if engine is not None else "scalar"

    report.checks_run.append("per-runtime-audit")
    results = {}
    for kind in runtimes:
        runtime, result = _audited_replay(
            kind, config, workload, check_every, replay_engine
        )
        if kind == inject_target:
            report.injected = f"{inject} into {RUNTIME_LABELS[kind]}: " + (
                INJECTIONS[inject](runtime)
            )
        violations = audit_runtime(runtime)
        run = RunReport(
            kind=kind,
            label=RUNTIME_LABELS[kind],
            elapsed_ns=result.elapsed_ns,
            stats=result.stats.as_dict(),
            violations=violations,
        )
        report.runs.append(run)
        report.add(run.label, violations)
        results[kind] = result

    # -- cross-runtime: the trace is policy-independent -----------------
    report.checks_run.append("cross-runtime-trace")
    reference_kind = runtimes[0]
    reference = results[reference_kind]
    for kind in runtimes[1:]:
        for metric in ("warp_instructions", "coalesced_accesses"):
            got = getattr(results[kind].stats, metric)
            want = getattr(reference.stats, metric)
            if got != want:
                report.add(
                    "cross-runtime",
                    [
                        Violation(
                            "cross-runtime-trace",
                            f"{RUNTIME_LABELS[kind]} saw {metric}={got}, "
                            f"{RUNTIME_LABELS[reference_kind]} saw {want}",
                        )
                    ],
                )

    # -- scalar vs vector: the engines must be byte-identical ------------
    if engines:
        report.checks_run.append("scalar-vs-vector")
        for kind in runtimes:
            if replay_engine == "scalar":
                left = results[kind]
            else:
                left = build_runtime(kind, config, engine="scalar").run(workload)
            right = build_runtime(kind, config, engine="vector").run(workload)
            report.add(
                "scalar-vs-vector",
                _diff_counters(
                    "scalar-vs-vector",
                    left,
                    right,
                    f"{RUNTIME_LABELS[kind]}@scalar",
                    f"{RUNTIME_LABELS[kind]}@vector",
                ),
            )

    # -- telemetry parity: instrumented replays must agree byte for byte -
    if telemetry:
        report.checks_run.append("telemetry-parity")
        for kind in runtimes:
            violations, note = check_telemetry_parity(
                kind,
                config,
                workload,
                window=telemetry_window,
                corrupt=_inject_window_desync if kind == desync_target else None,
            )
            report.add("telemetry-parity", violations)
            if note is not None:
                report.injected = (
                    f"window-desync into {RUNTIME_LABELS[kind]}@vector: {note}"
                )

    if metamorphic:
        report.checks_run.append("metamorphic-degenerate-bam")
        report.add("metamorphic", check_degenerate_bam(config, workload))
        report.checks_run.append("metamorphic-determinism")
        determinism_kind = "reuse" if "reuse" in runtimes else runtimes[0]
        report.add(
            "metamorphic", check_determinism(determinism_kind, config, workload)
        )
    if serve:
        report.checks_run.append("metamorphic-solo-serve")
        report.add("serve", check_solo_serve(app, config, oversubscription, seed))
    return report


# ----------------------------------------------------------------------
# metamorphic checks (importable individually by tests)
# ----------------------------------------------------------------------
def _diff_counters(name: str, left, right, left_label: str, right_label: str):
    """Counter-level equality between two RunResults."""
    violations = []
    for counter in type(left.stats).counter_names():
        lhs = getattr(left.stats, counter)
        rhs = getattr(right.stats, counter)
        if lhs != rhs:
            violations.append(
                Violation(
                    name,
                    f"{counter}: {left_label}={lhs} vs {right_label}={rhs}",
                )
            )
    if left.elapsed_ns != right.elapsed_ns:
        violations.append(
            Violation(
                name,
                f"elapsed_ns: {left_label}={left.elapsed_ns!r} vs "
                f"{right_label}={right.elapsed_ns!r}",
            )
        )
    return violations


def _first_divergence(left: list, right: list) -> str:
    """Human-oriented pointer at the first differing element."""
    if len(left) != len(right):
        return f"{len(left)} vs {len(right)} entries"
    for i, (lhs, rhs) in enumerate(zip(left, right)):
        if lhs != rhs:
            if isinstance(lhs, dict) and isinstance(rhs, dict):
                keys = sorted(
                    k
                    for k in set(lhs) | set(rhs)
                    if lhs.get(k) != rhs.get(k)
                )
                return f"entry {i} differs in {', '.join(map(str, keys))}"
            return f"entry {i}: {lhs!r} vs {rhs!r}"
    return "identical"  # pragma: no cover - callers check inequality first


def check_telemetry_parity(
    kind: str,
    config: GMTConfig,
    workload,
    window: int = 1_997,
    corrupt=None,
) -> tuple[list[Violation], str | None]:
    """Both engines, instrumented: every telemetry surface must agree.

    Replays ``kind`` through the scalar and vector engines with a
    :class:`~repro.obs.Telemetry` attached (snapshot interval
    ``window``) and demands byte-equality of the windowed-snapshot
    stream, the latency-digest buckets, the Perfetto counter tracks
    derived from the windows, the anomaly-scan findings, and — as in
    the plain engine differential — every stats counter plus the
    modelled ``elapsed_ns``.

    ``corrupt`` (the ``window-desync`` injection) is applied to the
    *vector* side's telemetry between attach and replay; returns the
    injection's description as the second element (None when not
    injected).
    """
    from repro.obs import AnomalyDetector, Telemetry
    from repro.obs.export import counter_track_events

    label = RUNTIME_LABELS[kind]
    note = None
    runs: dict[str, tuple] = {}
    for eng in ("scalar", "vector"):
        runtime = build_runtime(kind, config, engine=eng)
        telemetry = Telemetry(window=window)
        runtime.attach_telemetry(telemetry)
        if eng == "vector" and corrupt is not None:
            note = corrupt(telemetry)
        result = runtime.run(workload)
        runs[eng] = (result, telemetry)
    violations = _diff_counters(
        "telemetry-parity",
        runs["scalar"][0],
        runs["vector"][0],
        f"{label}@scalar",
        f"{label}@vector",
    )
    ts, tv = runs["scalar"][1], runs["vector"][1]
    ws, wv = ts.windows(), tv.windows()
    detector = AnomalyDetector()
    for surface, left, right in (
        ("window stream", ws, wv),
        ("latency-digest buckets", [ts.latency_digest.to_dict()],
         [tv.latency_digest.to_dict()]),
        ("counter tracks", counter_track_events(0, ws),
         counter_track_events(0, wv)),
        ("anomaly findings", [str(a) for a in detector.scan(ws)],
         [str(a) for a in detector.scan(wv)]),
    ):
        if left != right:
            violations.append(
                Violation(
                    "telemetry-parity",
                    f"{label}: {surface} diverges between engines "
                    f"({_first_divergence(left, right)})",
                )
            )
    return violations, note


def check_degenerate_bam(config: GMTConfig, workload) -> list[Violation]:
    """GMT(tier2_frames=0, tier-order) must equal BaM on the same trace."""
    degenerate = GMTRuntime(
        replace(config, tier2_frames=0, policy="tier-order")
    ).run(workload)
    bam = BamRuntime(config).run(workload)
    return _diff_counters(
        "metamorphic-degenerate-bam", degenerate, bam, "GMT(t2=0)", "BaM"
    )


def check_determinism(kind: str, config: GMTConfig, workload) -> list[Violation]:
    """Two fresh replays of the same (config, workload) must be identical."""
    first = build_runtime(kind, config).run(workload)
    second = build_runtime(kind, config).run(workload)
    return _diff_counters(
        "metamorphic-determinism", first, second, "run-1", "run-2"
    )


def check_solo_serve(
    app: str,
    config: GMTConfig,
    oversubscription: float = PAPER_OVERSUBSCRIPTION,
    seed: int = 0,
) -> list[Violation]:
    """1-tenant serving must reproduce the single-stream replay, and the
    tenant slices must conserve the aggregate counters."""
    from repro.serve import TenantServer, build_tenants

    workload = get_workload(app, config, oversubscription, seed=seed)
    solo = GMTRuntime(config).run(workload)
    streams = build_tenants([app], config, oversubscription=oversubscription,
                            seed=seed)
    server = TenantServer(config, streams)
    outcome = server.run(solo_baselines=False)
    violations = _diff_counters(
        "metamorphic-solo-serve", outcome.result, solo, "served", "solo"
    )
    violations.extend(
        audit_split(server.runtime.stats, server.runtime.tenant_stats)
    )
    violations.extend(audit_stats(server.runtime.stats))
    return violations
