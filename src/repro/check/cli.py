"""``gmt-check`` — the differential conformance harness, as a command.

Examples::

    gmt-check hotspot --scale 8192                  # full default matrix
    gmt-check bfs --scale 8192 --prefetch-degree 2  # exercise prefetching
    gmt-check bfs --time-model queueing             # + link conservation
    gmt-check hotspot --check-every 500             # audit mid-replay too
    gmt-check hotspot --inject dup-resident         # must exit non-zero
    gmt-check --list                                # identity catalogue

Exit status: 0 when every identity holds, 1 on any violation (including
the deliberately injected ones — that is the self-test), 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import DEFAULT_SCALE
from repro.errors import GMTError


def _build_parser() -> argparse.ArgumentParser:
    from repro.check.differential import DEFAULT_RUNTIMES, INJECTIONS
    from repro.experiments.harness import RUNTIME_KINDS
    from repro.policyzoo.registry import EVICTION_POLICY_NAMES
    from repro.workloads.registry import WORKLOAD_NAMES

    parser = argparse.ArgumentParser(
        prog="gmt-check",
        description="Differential conformance: replay one trace through "
        "every runtime and audit the stats-identity catalogue",
    )
    parser.add_argument(
        "workload",
        nargs="?",
        choices=sorted(WORKLOAD_NAMES),
        help="Table 2 application (omit with --list)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the identity catalogue and exit",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help=f"byte-scale divisor vs the paper's platform (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--oversubscription",
        type=float,
        default=2.0,
        help="working set / (Tier-1 + Tier-2) capacity (default 2)",
    )
    parser.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    parser.add_argument(
        "--runtimes",
        nargs="+",
        default=list(DEFAULT_RUNTIMES),
        choices=list(RUNTIME_KINDS),
        help=f"runtimes to replay (default: {' '.join(DEFAULT_RUNTIMES)})",
    )
    parser.add_argument(
        "--check-every",
        type=int,
        metavar="N",
        default=None,
        help="also audit every N coalesced accesses during each replay "
        "(default: post-run audit only)",
    )
    parser.add_argument(
        "--prefetch-degree",
        type=int,
        default=0,
        help="sequential prefetch window; >0 exercises the "
        "prefetch/eviction accounting paths (default 0)",
    )
    parser.add_argument(
        "--time-model",
        default="bottleneck",
        choices=["bottleneck", "queueing"],
        help="execution-time model; 'queueing' adds the link-conservation "
        "identities (default: bottleneck)",
    )
    from repro.core.config import ENGINE_NAMES

    parser.add_argument(
        "--engine",
        choices=list(ENGINE_NAMES),
        default=None,
        help="replay engine for the audited replays (default: scalar, "
        "the reference loop; 'vector' audits the batch engine's "
        "structures — required by --inject vector-desync)",
    )
    parser.add_argument(
        "--no-engines",
        action="store_true",
        help="skip the scalar-vs-vector engine differential",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="skip the telemetry-parity differential (instrumented "
        "scalar-vs-vector: window streams, digest buckets, counter "
        "tracks and anomaly findings must be byte-equal)",
    )
    parser.add_argument(
        "--telemetry-window",
        type=int,
        metavar="N",
        default=1_997,
        help="snapshot interval for the telemetry-parity replays "
        "(default 1997 — a prime, so vector batches straddle window "
        "boundaries)",
    )
    parser.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="skip the degenerate-BaM and determinism checks",
    )
    parser.add_argument(
        "--no-serve",
        action="store_true",
        help="skip the 1-tenant-serve-equals-solo check",
    )
    parser.add_argument(
        "--inject",
        choices=sorted(INJECTIONS),
        default=None,
        help="corrupt the first 3-tier runtime after its replay — the "
        "audit must then FAIL (detection self-test)",
    )
    parser.add_argument(
        "--tier1-policy",
        choices=list(EVICTION_POLICY_NAMES),
        default=None,
        help="substitute this eviction policy at Tier-1 for every "
        "runtime in the matrix (default: clock)",
    )
    parser.add_argument(
        "--tier2-policy",
        choices=list(EVICTION_POLICY_NAMES),
        default=None,
        help="substitute this eviction policy at Tier-2 (default: the "
        "placement policy's historical order — clock or fifo)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``gmt-check``."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        from repro.check.identities import CATALOG

        width = max(len(name) for name, _ in CATALOG)
        for name, description in CATALOG:
            print(f"{name:<{width}}  {description}")
        return 0
    if args.workload is None:
        parser.error("a workload is required (or --list)")
    if args.check_every is not None and args.check_every < 1:
        parser.error("--check-every must be >= 1")

    from repro.check.differential import run_conformance

    try:
        report = run_conformance(
            args.workload,
            scale=args.scale,
            oversubscription=args.oversubscription,
            seed=args.seed,
            runtimes=tuple(args.runtimes),
            check_every=args.check_every,
            prefetch_degree=args.prefetch_degree,
            time_model=args.time_model,
            metamorphic=not args.no_metamorphic,
            serve=not args.no_serve,
            inject=args.inject,
            tier1_policy=args.tier1_policy,
            tier2_policy=args.tier2_policy,
            engine=args.engine,
            engines=not args.no_engines,
            telemetry=not args.no_telemetry,
            telemetry_window=args.telemetry_window,
        )
    except GMTError as exc:
        print(f"gmt-check: {exc}", file=sys.stderr)
        return 2
    for line in report.summary_lines():
        print(line)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    sys.exit(main())
