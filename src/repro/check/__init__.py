"""Conformance checking: stats identities, differential and metamorphic
replays, seeded-corruption self-tests (the ``gmt-check`` CLI).

Quick use::

    from repro.check import audit_runtime, assert_conformant
    violations = audit_runtime(runtime)      # [] when everything holds

    from repro.check import run_conformance
    report = run_conformance("bfs", scale=8192)
    assert report.ok, report.summary_lines()

See :mod:`repro.check.identities` for the catalogue and
``docs/conformance.md`` for the derivations.
"""

from repro.check.differential import (
    DEFAULT_RUNTIMES,
    INJECTIONS,
    CheckReport,
    RunReport,
    check_degenerate_bam,
    check_determinism,
    check_solo_serve,
    run_conformance,
)
from repro.check.identities import (
    CATALOG,
    CATALOG_NAMES,
    Violation,
    assert_conformant,
    audit_runtime,
    audit_split,
    audit_stats,
)

__all__ = [
    "CATALOG",
    "CATALOG_NAMES",
    "CheckReport",
    "DEFAULT_RUNTIMES",
    "INJECTIONS",
    "RunReport",
    "Violation",
    "assert_conformant",
    "audit_runtime",
    "audit_split",
    "audit_stats",
    "check_degenerate_bam",
    "check_determinism",
    "check_solo_serve",
    "run_conformance",
]
