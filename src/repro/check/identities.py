"""The stats-identity catalogue: what must hold after *any* replay.

The paper's evaluation is counter-level (wasteful lookups, SSD traffic,
writebacks — Figs. 8–10), so the reproduction's credibility rests on the
counters being self-consistent.  This module collects identities that
hold for **every** runtime and policy — they follow from the structure of
the access/eviction pipeline, not from any placement decision:

- every coalesced access either hits or misses Tier-1;
- every Tier-2 lookup is either useful or wasteful, and every useful
  lookup becomes exactly one PCIe fetch;
- every miss is filled from Tier-2 or the SSD, and every SSD read beyond
  the demand fills is a prefetch;
- every Tier-1 eviction either lands in Tier-2, writes back dirty data,
  or discards a clean page — nothing vanishes;
- resident-page counts are conserved (fills minus evictions);
- the device models (NVMe, PCIe, the queueing network's fluid links)
  agree with the runtime counters byte for byte.

:func:`audit_stats` checks the pure-counter identities on a
:class:`~repro.core.stats.RuntimeStats`; :func:`audit_runtime` adds the
structural and cross-component checks that need the live runtime;
:func:`assert_conformant` raises :class:`~repro.errors.ConformanceError`
on any violation.  The same auditor backs periodic checking
(``GMTRuntime.enable_periodic_checks``), the ``gmt-check`` CLI, the
``gmt-bench`` gate and the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import RuntimeStats
from repro.errors import ConformanceError, SimulationError
from repro.units import SEC

#: Relative tolerance for float conservation checks (accumulated wire
#: times); integer identities are compared exactly.
FLOAT_RTOL = 1e-6

#: The catalogue — name and plain-language statement of every identity,
#: in audit order.  ``gmt-check --list`` and docs/conformance.md render
#: this table; the audit functions below implement it.
CATALOG: tuple[tuple[str, str], ...] = (
    ("access-conservation",
     "t1_hits + t1_misses == coalesced_accesses"),
    ("t2-lookup-partition",
     "t2_lookups == t2_hits + t2_wasteful_lookups"),
    ("t2-fetch-is-hit",
     "t2_fetches == t2_hits (every useful lookup promotes exactly once)"),
    ("miss-fill-sources",
     "t1_misses == t2_hits + ssd_page_reads - prefetches_issued "
     "(every miss fills from Tier-2 or the SSD; extra SSD reads are "
     "prefetches)"),
    ("writeback-conservation",
     "ssd_page_writes == (t1_evictions - t2_placements - clean_discards)"
     " + (t2_evictions - t2_clean_evictions) — dirty evictions on the "
     "bypass and Tier-2-evict paths, nothing else, reach the SSD"),
    ("prefetch-partition",
     "prefetch_hits + prefetch_wasted <= prefetches_issued (exact once "
     "still-resident prefetched pages are added; see prefetch-exact)"),
    ("prediction-accounting",
     "correct_predictions <= resolved_predictions and the confusion "
     "matrix sums to resolved_predictions"),
    ("admission-conservation",
     "open-loop serving: requests_arrived == requests_admitted + "
     "requests_shed, and requests_completed <= requests_admitted (every "
     "arrival is admitted or shed, nothing else completes) — all four "
     "are zero outside an open-loop run"),
    ("counter-positivity",
     "every counter is >= 0"),
    ("structural",
     "check_invariants(): tier capacities respected, no page resident "
     "in two tiers, page-table locations match tier membership"),
    ("eviction-structural",
     "each tier's eviction policy tracks exactly the tier's resident "
     "pages, and the policy's own check_integrity() invariants hold "
     "(S3-FIFO ghost bound / small-main disjointness, generation "
     "consistency, ...)"),
    ("tier1-occupancy",
     "len(tier1) == t1_misses + prefetches_issued - t1_evictions"),
    ("tier2-occupancy",
     "len(tier2) == t2_placements - t2_fetches - t2_evictions"),
    ("prefetch-exact",
     "prefetches_issued == prefetch_hits + prefetch_wasted + "
     "still-resident prefetched pages (all of which sit in Tier-1)"),
    ("ssd-parity",
     "the NVMe device model counted exactly ssd_page_reads reads and "
     "ssd_page_writes writes"),
    ("pcie-parity",
     "the PCIe link counted exactly t2_fetches H2D and t2_placements "
     "D2H transfers"),
    ("footprint-bound",
     "with config.footprint_pages set, no page id at or past the bound "
     "ever enters the page table (the prefetcher must not fabricate "
     "pages the workload cannot touch)"),
    ("queueing-read-conservation",
     "queueing model: SSD read-link busy time == ssd_page_reads x the "
     "page's wire time"),
    ("queueing-write-conservation",
     "queueing model: SSD write-link busy time == ssd_page_writes x the "
     "page's wire time (catches writebacks that bypass the time model)"),
    ("queueing-pcie-conservation",
     "queueing model: PCIe-link busy time == (t2_hits + t2_placements) "
     "x the page's wire time"),
    ("tenant-split-conservation",
     "multi-tenant serving: per-tenant counter slices sum to the "
     "aggregate for every counter"),
    # -- differential / metamorphic checks (repro.check.differential) --
    ("cross-runtime-trace",
     "every runtime replaying the same trace sees the same "
     "warp_instructions and coalesced_accesses — policies may not "
     "change the access stream"),
    ("metamorphic-degenerate-bam",
     "GMT with tier2_frames=0 and the tier-order policy is "
     "counter-identical to the BaM baseline on the same trace"),
    ("metamorphic-determinism",
     "replaying the same trace twice from the same seed yields "
     "identical counters and elapsed time"),
    ("metamorphic-solo-serve",
     "a 1-tenant serve run reproduces the single-stream replay's "
     "counters and elapsed time exactly"),
    ("scalar-vs-vector",
     "the vectorized replay engine produces byte-identical counters and "
     "elapsed time to the scalar runtime on every trace"),
    ("telemetry-parity",
     "with windowed telemetry attached, both replay engines produce "
     "byte-equal window streams, latency-digest buckets, counter tracks "
     "and anomaly findings"),
)

CATALOG_NAMES = tuple(name for name, _ in CATALOG)


@dataclass(frozen=True)
class Violation:
    """One violated identity, with the numbers that broke it."""

    identity: str
    message: str

    def __post_init__(self) -> None:
        if self.identity not in CATALOG_NAMES:
            raise SimulationError(
                f"violation references unknown identity {self.identity!r}"
            )

    def __str__(self) -> str:
        return f"{self.identity}: {self.message}"


class _Auditor:
    """Accumulates violations; one helper per comparison flavour."""

    def __init__(self) -> None:
        self.violations: list[Violation] = []

    def equal(self, identity: str, lhs, rhs, detail: str) -> None:
        if lhs != rhs:
            self.violations.append(
                Violation(identity, f"{detail}: {lhs} != {rhs}")
            )

    def close(self, identity: str, lhs: float, rhs: float, detail: str) -> None:
        if abs(lhs - rhs) > FLOAT_RTOL * max(abs(lhs), abs(rhs), 1.0):
            self.violations.append(
                Violation(identity, f"{detail}: {lhs!r} != {rhs!r}")
            )

    def require(self, identity: str, condition: bool, detail: str) -> None:
        if not condition:
            self.violations.append(Violation(identity, detail))


def audit_stats(stats: RuntimeStats) -> list[Violation]:
    """Pure-counter identities — no runtime needed, any policy, any tier
    geometry.  Returns the (possibly empty) violation list."""
    a = _Auditor()
    a.equal(
        "access-conservation",
        stats.t1_hits + stats.t1_misses,
        stats.coalesced_accesses,
        f"t1_hits({stats.t1_hits}) + t1_misses({stats.t1_misses}) vs "
        f"coalesced_accesses",
    )
    a.equal(
        "t2-lookup-partition",
        stats.t2_lookups,
        stats.t2_hits + stats.t2_wasteful_lookups,
        f"t2_lookups vs t2_hits({stats.t2_hits}) + "
        f"t2_wasteful_lookups({stats.t2_wasteful_lookups})",
    )
    a.equal(
        "t2-fetch-is-hit",
        stats.t2_fetches,
        stats.t2_hits,
        "t2_fetches vs t2_hits",
    )
    a.equal(
        "miss-fill-sources",
        stats.t1_misses,
        stats.t2_hits + stats.ssd_page_reads - stats.prefetches_issued,
        f"t1_misses vs t2_hits({stats.t2_hits}) + "
        f"ssd_page_reads({stats.ssd_page_reads}) - "
        f"prefetches_issued({stats.prefetches_issued})",
    )
    t1_writebacks = stats.t1_evictions - stats.t2_placements - stats.clean_discards
    t2_writebacks = stats.t2_evictions - stats.t2_clean_evictions
    a.equal(
        "writeback-conservation",
        stats.ssd_page_writes,
        t1_writebacks + t2_writebacks,
        f"ssd_page_writes vs bypass-path dirty({t1_writebacks}) + "
        f"tier2-evict-path dirty({t2_writebacks})",
    )
    a.require(
        "prefetch-partition",
        stats.prefetch_hits + stats.prefetch_wasted <= stats.prefetches_issued,
        f"prefetch_hits({stats.prefetch_hits}) + "
        f"prefetch_wasted({stats.prefetch_wasted}) > "
        f"prefetches_issued({stats.prefetches_issued})",
    )
    a.require(
        "prediction-accounting",
        stats.correct_predictions <= stats.resolved_predictions,
        f"correct_predictions({stats.correct_predictions}) > "
        f"resolved_predictions({stats.resolved_predictions})",
    )
    a.equal(
        "prediction-accounting",
        sum(stats.confusion.values()),
        stats.resolved_predictions,
        "confusion-matrix total vs resolved_predictions",
    )
    a.equal(
        "admission-conservation",
        stats.requests_arrived,
        stats.requests_admitted + stats.requests_shed,
        f"requests_arrived vs requests_admitted({stats.requests_admitted}) "
        f"+ requests_shed({stats.requests_shed})",
    )
    a.require(
        "admission-conservation",
        stats.requests_completed <= stats.requests_admitted,
        f"requests_completed({stats.requests_completed}) > "
        f"requests_admitted({stats.requests_admitted})",
    )
    for name in stats.counter_names():
        value = getattr(stats, name)
        a.require(
            "counter-positivity",
            value >= 0,
            f"{name} is negative: {value}",
        )
    return a.violations


def _audit_queueing(a: _Auditor, runtime) -> None:
    model = runtime._queueing
    if model is None:
        return
    page_size = runtime.config.page_size
    stats = runtime.stats
    # The model's fluid links are the authority on bandwidth: baselines
    # override the SSD bandwidths at construction (HMM's page cache).
    read_wire = page_size / model._ssd_read.bandwidth * SEC
    write_wire = page_size / model._ssd_write.bandwidth * SEC
    pcie_wire = page_size / model._pcie.bandwidth * SEC
    a.close(
        "queueing-read-conservation",
        model.ssd_read_busy_ns,
        stats.ssd_page_reads * read_wire,
        f"read-link busy vs ssd_page_reads({stats.ssd_page_reads}) x wire",
    )
    a.close(
        "queueing-write-conservation",
        model.ssd_write_busy_ns,
        stats.ssd_page_writes * write_wire,
        f"write-link busy vs ssd_page_writes({stats.ssd_page_writes}) x wire",
    )
    a.close(
        "queueing-pcie-conservation",
        model.pcie_busy_ns,
        (stats.t2_hits + stats.t2_placements) * pcie_wire,
        f"pcie-link busy vs (t2_hits({stats.t2_hits}) + "
        f"t2_placements({stats.t2_placements})) x wire",
    )


def audit_runtime(runtime) -> list[Violation]:
    """The full audit: counter identities plus everything that needs the
    live runtime (structure, occupancy conservation, device parity, the
    footprint bound, queueing-link conservation).

    Works on any :class:`~repro.core.runtime.GMTRuntime` — baselines and
    the tenant-aware serving runtime included.
    """
    a = _Auditor()
    a.violations.extend(audit_stats(runtime.stats))
    try:
        runtime.check_invariants()
    except SimulationError as exc:
        a.violations.append(Violation("structural", str(exc)))

    stats = runtime.stats
    a.equal(
        "tier1-occupancy",
        len(runtime.tier1),
        stats.t1_misses + stats.prefetches_issued - stats.t1_evictions,
        f"resident Tier-1 pages vs t1_misses({stats.t1_misses}) + "
        f"prefetches_issued({stats.prefetches_issued}) - "
        f"t1_evictions({stats.t1_evictions})",
    )
    a.equal(
        "tier2-occupancy",
        len(runtime.tier2),
        stats.t2_placements - stats.t2_fetches - stats.t2_evictions,
        f"resident Tier-2 pages vs t2_placements({stats.t2_placements}) - "
        f"t2_fetches({stats.t2_fetches}) - t2_evictions({stats.t2_evictions})",
    )

    # Eviction-policy bookkeeping must mirror tier membership exactly,
    # and any zoo policy with self-checks (ghost bound, generation
    # consistency, ...) gets them audited here.
    for label, tier, structure in (
        ("Tier-1", runtime.tier1, getattr(runtime, "t1_clock", None)),
        ("Tier-2", runtime.tier2, getattr(runtime, "_t2_order", None)),
    ):
        if structure is None:
            continue
        tracked = set(structure.pages())
        resident = set(tier)
        a.require(
            "eviction-structural",
            tracked == resident,
            f"{label} eviction policy tracks {len(tracked)} pages but the "
            f"tier holds {len(resident)} "
            f"(policy-only: {sorted(tracked - resident)[:3]}, "
            f"tier-only: {sorted(resident - tracked)[:3]})",
        )
        check = getattr(structure, "check_integrity", None)
        if check is not None:
            try:
                check()
            except SimulationError as exc:
                a.violations.append(Violation("eviction-structural", str(exc)))

    resident_prefetched = 0
    t1_pages = set(runtime.tier1)
    for state in runtime.page_table:
        if state.prefetched:
            resident_prefetched += 1
            a.require(
                "prefetch-exact",
                state.page in t1_pages,
                f"page {state.page} carries the prefetched flag outside Tier-1",
            )
    a.equal(
        "prefetch-exact",
        stats.prefetches_issued,
        stats.prefetch_hits + stats.prefetch_wasted + resident_prefetched,
        f"prefetches_issued vs prefetch_hits({stats.prefetch_hits}) + "
        f"prefetch_wasted({stats.prefetch_wasted}) + "
        f"still-resident({resident_prefetched})",
    )

    a.equal("ssd-parity", runtime.ssd.reads, stats.ssd_page_reads,
            "NvmeSSD.reads vs ssd_page_reads")
    a.equal("ssd-parity", runtime.ssd.writes, stats.ssd_page_writes,
            "NvmeSSD.writes vs ssd_page_writes")
    a.equal("pcie-parity", runtime.pcie.h2d_transfers, stats.t2_fetches,
            "PCIeLink.h2d_transfers vs t2_fetches")
    a.equal("pcie-parity", runtime.pcie.d2h_transfers, stats.t2_placements,
            "PCIeLink.d2h_transfers vs t2_placements")

    bound = runtime.config.footprint_pages
    if bound is not None:
        out_of_range = sorted(
            state.page for state in runtime.page_table if state.page >= bound
        )
        a.require(
            "footprint-bound",
            not out_of_range,
            f"pages past the {bound}-page footprint entered the page "
            f"table: {out_of_range[:5]}"
            + ("..." if len(out_of_range) > 5 else ""),
        )

    _audit_queueing(a, runtime)
    return a.violations


def audit_split(aggregate: RuntimeStats, slices) -> list[Violation]:
    """Serve-layer conservation: tenant slices must sum to the aggregate
    for every counter (the mirroring in ``SplitStats`` may not lose or
    double-count an increment)."""
    a = _Auditor()
    slices = list(slices)
    for name in RuntimeStats.counter_names():
        a.equal(
            "tenant-split-conservation",
            sum(getattr(s, name) for s in slices),
            getattr(aggregate, name),
            f"sum of tenant {name} slices vs aggregate",
        )
    return a.violations


def assert_conformant(runtime) -> None:
    """Raise :class:`ConformanceError` if any identity is violated."""
    violations = audit_runtime(runtime)
    if violations:
        raise ConformanceError(violations)
