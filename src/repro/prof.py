"""``repro.prof`` — phase-attributed wall-clock profiler for replays.

The replay hot path is pure Python, and ROADMAP item 1 (the vectorized
struct-of-arrays core) needs to prove *where* its speedup comes from.
This module attributes host wall-clock time to the runtime's named
phases:

==================  ====================================================
phase               what it covers
==================  ====================================================
``trace-gen``       generating/iterating the workload's warp stream
``dispatch``        warp decomposition (:meth:`GMTRuntime.access_warp`)
``access``          the coalesced access path's own bookkeeping
``page-table``      :meth:`PageTable.lookup`
``reuse-policy``    VTD clock, policy ``on_access``/``choose``/fills
``victim-select``   Tier-1 clock sweep / Tier-2 order victim nomination
``eviction``        the eviction pipeline outside its wrapped leaves
``writeback``       dirty-page SSD writeback accounting
``prefetch``        the sequential prefetcher
``device-model``    PCIe/NVMe byte accounting and the queueing model
``stats-obs``       telemetry/flight-recorder emission overhead
==================  ====================================================

Attribution is *exclusive* (self-time): each clock delta is charged to
the innermost active phase only, so the phase totals sum to
(approximately) the replay wall time and the ``stack -> self seconds``
map renders directly as a collapsed-stack flamegraph (``flamegraph.pl``
/ speedscope both read the format).

Two engines share that output schema:

``sampled`` (default)
    A daemon thread wakes every ``interval`` seconds, snapshots the
    profiled thread's Python frames (``sys._current_frames``), maps
    frame code objects to phases via a table built at attach time, and
    charges the elapsed wall to the innermost phase.  Nothing on the
    runtime is touched, so the enabled overhead is a few percent —
    the replay hot path makes ~15 phase-boundary calls per access,
    far too many for per-call timing to stay inside the <15% budget.

``exact``
    Enter/exit hooks: phase-boundary methods are wrapped (instance
    attributes, restored at detach) to append ``(phase, t)`` events
    that a bulk drain folds into the same per-phase tables.
    Deterministic — with an injected clock the attribution is
    bit-exact — but the per-call clock reads cost roughly another
    replay on default-scale configs.  Use it for unit tests and for
    precise call counts, not for overhead-sensitive measurement.

Profiling is **off by default and costs nothing when off** — the same
``self._prof is None`` discipline as the flight recorder, except here
"off" is even cheaper: a non-profiled runtime is not instrumented at
all (no wrappers, no sampler), so it executes the original methods
with zero extra checks.  ``runtime._prof`` only marks the attachment
(and guards double-attach).

Quick start::

    from repro.prof import profile_replay

    runtime = build_runtime("reuse", config)
    prof, result = profile_replay(runtime, workload)
    print(prof.format_top())
    prof.write_collapsed("profile.folded")      # flamegraph.pl input

or, from the shell::

    gmt-prof hotspot --runtime reuse --scale 4096 --json-out before.json
    # ... change the code ...
    gmt-prof hotspot --runtime reuse --scale 4096 --json-out after.json
    gmt-prof --compare before.json after.json
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator

from repro.errors import ConfigError, SimulationError

#: The named phases (docs table above).  ``format_top`` orders unknown
#: phases after these, so custom wrap sites are allowed.
PHASES = (
    "trace-gen",
    "dispatch",
    "access",
    "page-table",
    "reuse-policy",
    "victim-select",
    "eviction",
    "writeback",
    "prefetch",
    "device-model",
    "stats-obs",
)

PROFILE_VERSION = 1


class ThroughputMeter:
    """Wall-clock accesses/sec meter with periodic samples.

    ``tick(position)`` stamps ``(position, wall_s since start)`` at most
    every ``interval`` position units; :meth:`rate` reads the recent
    rate, :meth:`overall` the whole-run rate.
    """

    def __init__(self, interval: int = 1000, clock: Callable[[], float] = time.perf_counter) -> None:
        if interval < 1:
            raise ConfigError(f"interval must be >= 1, got {interval}")
        self.interval = interval
        self.clock = clock
        self.samples: list[tuple[int, float]] = []
        self._t0: float | None = None
        self._base = 0

    def start(self, position: int = 0) -> None:
        self._t0 = self.clock()
        self._base = position
        self.samples = [(position, 0.0)]

    def tick(self, position: int) -> None:
        if self._t0 is None:
            self.start(position)
            return
        if position - self.samples[-1][0] >= self.interval:
            self.samples.append((position, self.clock() - self._t0))

    def rate(self, window: int = 5) -> float:
        """Accesses/sec over the most recent ``window`` samples."""
        if len(self.samples) < 2:
            return self.overall()
        tail = self.samples[-window - 1 :]
        positions = tail[-1][0] - tail[0][0]
        seconds = tail[-1][1] - tail[0][1]
        return positions / seconds if seconds > 0 else 0.0

    def overall(self) -> float:
        """Accesses/sec across the whole metered run so far."""
        if self._t0 is None:
            return 0.0
        elapsed = self.clock() - self._t0
        position = self.samples[-1][0] if self.samples else self._base
        return (position - self._base) / elapsed if elapsed > 0 else 0.0


class PhaseProfiler:
    """Exclusive-time phase profiler over one runtime's replay.

    Args:
        mode: ``"sampled"`` (frame-sampling thread, default) or
            ``"exact"`` (enter/exit event hooks; deterministic but
            roughly doubles replay cost on default-scale configs).
        interval: sampling period in seconds (sampled mode).
        clock: injectable time source (seconds; default
            ``time.perf_counter``).
        throughput_interval: sampling cadence of the embedded
            :class:`ThroughputMeter` (coalesced accesses).
    """

    def __init__(
        self,
        mode: str = "sampled",
        interval: float = 0.001,
        clock: Callable[[], float] = time.perf_counter,
        throughput_interval: int = 1000,
    ) -> None:
        if mode not in ("sampled", "exact"):
            raise ConfigError(f"mode must be 'sampled' or 'exact', got {mode!r}")
        if interval <= 0:
            raise ConfigError(f"interval must be positive, got {interval}")
        self.mode = mode
        self.interval = interval
        self.clock = clock
        #: Exclusive (self) seconds per phase.
        self.self_s: dict[str, float] = defaultdict(float)
        #: Per-phase event counts: wrapped calls in exact mode, sampler
        #: hits in sampled mode.
        self.calls: dict[str, int] = defaultdict(int)
        #: Collapsed stacks: ``"access;page-table" -> exclusive seconds``.
        self.stacks: dict[str, float] = defaultdict(float)
        self.throughput = ThroughputMeter(interval=throughput_interval, clock=clock)
        #: Total replay wall seconds (set by :meth:`run`).
        self.wall_s = 0.0
        #: Coalesced accesses replayed under :meth:`run`.
        self.accesses = 0
        self._stack: list[str] = []
        #: Parallel stack of pre-joined ``;``-paths (avoids a join per
        #: charge when draining).
        self._paths: list[str] = []
        self._mark = 0.0
        #: Raw boundary events ``(phase | _EXIT, t)``.  The hot path only
        #: appends here — all stack walking and charging happens in bulk
        #: in :meth:`_drain`, keeping per-call overhead to two clock
        #: reads and two list appends.
        self._events: list[tuple[object, float]] = []
        #: Drain threshold bounding event-buffer memory (~64 MB worst
        #: case).  Mid-run drains leave their own cost unattributed
        #: rather than mis-charging it to whatever phase was running.
        self._drain_at = 1 << 20
        #: Manual phase markers (sampled mode): the sampler prepends
        #: these outside whatever the frame walk finds.
        self._manual: list[str] = []
        #: ``(obj, attr, original)`` restore records; ``original`` is the
        #: :data:`_CLASS_ATTR` sentinel when the wrap shadowed a class
        #: method (restore = remove the instance shadow).
        self._wrapped: list[tuple[object, str, object]] = []
        self._runtime = None
        # --- sampled-mode state -------------------------------------
        #: ``code object -> phase`` lookup the sampler walks frames with.
        self._code_phases: dict[object, str] = {}
        self._sampler: threading.Thread | None = None
        self._stop: threading.Event | None = None
        self._target_tid: int | None = None

    # ------------------------------------------------------------------
    # phase stack
    # ------------------------------------------------------------------
    def enter(self, phase: str) -> None:
        """Push a manual ``phase``.  Exact mode records a timestamped
        event; sampled mode just marks the phase as active so the
        sampler attributes wall to it."""
        if self.mode == "exact":
            self._events.append((phase, self.clock()))
        else:
            self._manual.append(phase)

    def exit(self) -> None:
        """Pop the innermost manual phase."""
        if self.mode == "exact":
            events = self._events
            events.append((_EXIT, self.clock()))
            if len(events) >= self._drain_at:
                self._drain()
        else:
            self._manual.pop()

    def _drain(self) -> None:
        """Fold the raw event buffer into per-phase exclusive times.

        Each inter-event interval is charged to the phase that was
        innermost during it; intervals outside any phase stay
        unattributed (they count against :attr:`coverage`).
        """
        events = self._events
        if not events:
            return
        mark = self._mark
        stack = self._stack
        paths = self._paths
        self_s = self.self_s
        stacks = self.stacks
        calls = self.calls
        for tag, t in events:
            if stack:
                dt = t - mark
                self_s[stack[-1]] += dt
                stacks[paths[-1]] += dt
            if tag is _EXIT:
                stack.pop()
                paths.pop()
            else:
                calls[tag] += 1
                paths.append(paths[-1] + ";" + tag if paths else tag)
                stack.append(tag)
            mark = t
        events.clear()
        # Skip the wall the drain itself consumed: advancing the mark to
        # "now" leaves it unattributed instead of charging it to the
        # phase that happened to be on top of the stack.
        self._mark = self.clock()

    # ------------------------------------------------------------------
    # instrumentation (attach wraps instance attributes; detach restores)
    # ------------------------------------------------------------------
    def _wrap(self, obj: object, attr: str, phase: str) -> None:
        fn = getattr(obj, attr, None)
        if fn is None:
            return
        if attr in vars(obj):
            # Already an instance attribute: either another profiler's
            # wrapper (refused at attach) or a runtime that stores bound
            # callables directly — wrap it the same way, but remember to
            # restore the *original* value instead of deleting.
            original = vars(obj)[attr]
            self._wrapped.append((obj, attr, original))
        else:
            self._wrapped.append((obj, attr, _CLASS_ATTR))

        # The wrapper is the enabled-overhead hot path: two clock reads
        # and two appends per call, everything else closure-captured.
        events = self._events
        clock = self.clock
        drain_at = self._drain_at
        drain = self._drain

        def wrapped(*args, **kwargs):
            events.append((phase, clock()))
            try:
                return fn(*args, **kwargs)
            finally:
                events.append((_EXIT, clock()))
                if len(events) >= drain_at:
                    drain()

        wrapped.__wrapped__ = fn  # introspection/debugging
        setattr(obj, attr, wrapped)

    def attach(self, runtime) -> "PhaseProfiler":
        """Instrument ``runtime``'s phase boundaries (one runtime per
        profiler; raises if either side is already attached).

        Exact mode wraps the boundary methods; sampled mode builds the
        code-object table and starts the sampler thread (which samples
        only the attaching thread)."""
        if self._runtime is not None:
            raise ConfigError("PhaseProfiler is already attached to a runtime")
        if getattr(runtime, "_prof", None) is not None:
            raise ConfigError("runtime already has an attached profiler")
        self._runtime = runtime
        runtime._prof = self
        if self.mode == "sampled":
            self._register_sites(runtime)
            self._target_tid = threading.get_ident()
            self._stop = threading.Event()
            self._sampler = threading.Thread(
                target=self._sample_loop, name="gmt-prof-sampler", daemon=True
            )
            self._sampler.start()
            return self

        for obj, attr, phase in _phase_sites(runtime):
            self._wrap(obj, attr, phase)
        return self

    def _register_sites(self, runtime) -> None:
        """Build the sampled-mode ``code object -> phase`` table from the
        same site list exact mode wraps."""
        for obj, attr, phase in _phase_sites(runtime):
            fn = getattr(obj, attr, None)
            code = getattr(fn, "__code__", None)
            if code is not None:
                self._code_phases[code] = phase

    def _sample_loop(self) -> None:
        """Sampler thread body: every ``interval``, walk the profiled
        thread's frames innermost-out, map code objects to phases, and
        charge the elapsed wall to the innermost matching phase.

        Samples with no matching frame (and no manual phase) are left
        unattributed — they count against :attr:`coverage`, which is
        exactly the honest outcome for time spent outside the runtime.
        """
        clock = self.clock
        stop = self._stop
        interval = self.interval
        tid = self._target_tid
        code_phases = self._code_phases
        self_s = self.self_s
        stacks = self.stacks
        calls = self.calls
        manual = self._manual
        last = clock()
        while not stop.wait(interval):
            now = clock()
            dt = now - last
            last = now
            frame = sys._current_frames().get(tid)
            phases: list[str] = []  # innermost-first, adjacent dups folded
            while frame is not None:
                phase = code_phases.get(frame.f_code)
                if phase is not None and (not phases or phases[-1] != phase):
                    phases.append(phase)
                frame = frame.f_back
            phases.reverse()
            if manual:
                phases = list(manual) + phases
            if not phases:
                continue
            leaf = phases[-1]
            self_s[leaf] += dt
            stacks[";".join(phases)] += dt
            calls[leaf] += 1

    def detach(self) -> None:
        """Stop sampling / restore every wrapped attribute; the profile
        data stays."""
        if self._sampler is not None:
            self._stop.set()
            self._sampler.join()
            self._sampler = None
            self._stop = None
            self._target_tid = None
        self._drain()
        for obj, attr, original in self._wrapped:
            if original is _CLASS_ATTR:
                vars(obj).pop(attr, None)
            else:
                setattr(obj, attr, original)
        self._wrapped.clear()
        if self._runtime is not None:
            self._runtime._prof = None
            self._runtime = None

    # ------------------------------------------------------------------
    # driving a replay
    # ------------------------------------------------------------------
    def run(self, runtime, trace: Iterable) -> "object":
        """Attach, replay ``trace`` with trace-generation timed as its own
        phase, detach; returns the runtime's :class:`RunResult`."""
        self.attach(runtime)
        accesses0 = runtime.stats.coalesced_accesses
        stats = runtime.stats
        meter = self.throughput
        meter.start(accesses0)
        iterator = iter(trace)
        if self.mode == "sampled":
            # A generator-backed workload shows up in the frame walk as
            # its own code object; tag it so iteration time lands in
            # "trace-gen" instead of going unattributed.
            gen_code = getattr(iterator, "gi_code", None)
            if gen_code is not None:
                self._code_phases[gen_code] = "trace-gen"
        t0 = self.clock()
        self._mark = t0
        try:
            if self.mode == "sampled":
                for warp in iterator:
                    runtime.access_warp(warp)
                    meter.tick(stats.coalesced_accesses)
            else:
                while True:
                    self.enter("trace-gen")
                    try:
                        warp = next(iterator)
                    except StopIteration:
                        break
                    finally:
                        self.exit()
                    runtime.access_warp(warp)
                    meter.tick(stats.coalesced_accesses)
        finally:
            self.wall_s += self.clock() - t0
            self.accesses += runtime.stats.coalesced_accesses - accesses0
            if runtime._obs is not None:
                runtime._obs.finish()
            self.detach()
        return runtime.result()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def attributed_s(self) -> float:
        """Seconds attributed to named phases (sum of self-times)."""
        self._drain()
        return sum(self.self_s.values())

    @property
    def coverage(self) -> float:
        """Fraction of the replay wall attributed to named phases."""
        if self.wall_s <= 0:
            return 0.0
        return min(1.0, self.attributed_s / self.wall_s)

    @property
    def accesses_per_sec(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.accesses / self.wall_s

    def report(self) -> dict:
        """JSON-ready profile document (the ``gmt-prof --json-out`` body
        and the ``--compare`` input)."""
        self._drain()
        return {
            "version": PROFILE_VERSION,
            "mode": self.mode,
            "interval_s": self.interval if self.mode == "sampled" else None,
            "wall_s": self.wall_s,
            "accesses": self.accesses,
            "accesses_per_sec": self.accesses_per_sec,
            "attributed_s": self.attributed_s,
            "coverage": self.coverage,
            "phases": {
                name: {"self_s": self.self_s.get(name, 0.0), "calls": self.calls.get(name, 0)}
                for name in sorted(self.self_s, key=_phase_order)
            },
            "stacks": dict(sorted(self.stacks.items())),
        }

    def format_top(self, limit: int | None = None) -> str:
        return format_top(self.report(), limit=limit)

    def collapsed_lines(self) -> list[str]:
        return collapsed_lines(self.report())

    def write_collapsed(self, path: str) -> int:
        """Write collapsed-stack lines (flamegraph.pl / speedscope input);
        returns the line count."""
        lines = self.collapsed_lines()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        return len(lines)


#: Sentinel marking a wrap that shadowed a class-level attribute.
_CLASS_ATTR = object()

#: Sentinel event tag marking a phase exit in the raw event buffer.
_EXIT = object()


def _phase_sites(runtime):
    """Yield ``(obj, attr, phase)`` phase-boundary sites of ``runtime``.

    The single source of truth for both engines: exact mode wraps each
    site, sampled mode registers each site's code object.
    """
    yield runtime, "access_warp", "dispatch"
    yield runtime, "access", "access"
    yield runtime.page_table, "lookup", "page-table"
    yield runtime.vts, "observe_access", "reuse-policy"
    for name in ("on_access", "choose", "on_tier1_fill", "on_evicted"):
        yield runtime.policy, name, "reuse-policy"
    for selector in (runtime.t1_clock, runtime._t2_order):
        yield selector, "select_victim", "victim-select"
        yield selector, "select_victim_where", "victim-select"
    yield runtime, "_ensure_tier1_frame", "eviction"
    yield runtime, "_evict_from_tier2", "eviction"
    yield runtime, "_writeback_if_dirty", "writeback"
    yield runtime, "_prefetch_after", "prefetch"
    yield runtime.ssd, "record_read", "device-model"
    yield runtime.ssd, "record_write", "device-model"
    yield runtime.pcie, "record_h2d", "device-model"
    yield runtime.pcie, "record_d2h", "device-model"
    queueing = runtime._queueing_model()
    if queueing is not None:
        for name in ("on_hit", "on_miss", "on_background_io", "on_background_pcie"):
            yield queueing, name, "device-model"
    if runtime._obs is not None:
        for name in ("tick", "span", "instant", "on_miss"):
            yield runtime._obs, name, "stats-obs"
    if runtime._flight is not None:
        yield runtime._flight, "emit", "stats-obs"


def _phase_order(name: str):
    try:
        return (0, PHASES.index(name))
    except ValueError:
        return (1, name)


@contextmanager
def profile(runtime) -> Iterator[PhaseProfiler]:
    """Context manager: profile arbitrary driving of ``runtime``.

    >>> with profile(runtime) as prof:
    ...     runtime.run(workload)
    >>> print(prof.format_top())

    Unlike :func:`profile_replay` the trace-generation cost is not
    separable (the caller owns the loop), so it shows up as unattributed
    wall; prefer :func:`profile_replay` for full replays.
    """
    prof = PhaseProfiler()
    prof.attach(runtime)
    accesses0 = runtime.stats.coalesced_accesses
    t0 = prof.clock()
    try:
        yield prof
    finally:
        prof.wall_s += prof.clock() - t0
        prof.accesses += runtime.stats.coalesced_accesses - accesses0
        prof.detach()


def profile_replay(runtime, workload, profiler: PhaseProfiler | None = None):
    """Replay ``workload`` through ``runtime`` under a profiler.

    Returns ``(profiler, run_result)``.
    """
    prof = profiler if profiler is not None else PhaseProfiler()
    result = prof.run(runtime, workload)
    return prof, result


# ----------------------------------------------------------------------
# report rendering / diffing (pure functions over profile documents)
# ----------------------------------------------------------------------
def format_top(doc: dict, limit: int | None = None) -> str:
    """Per-phase top table of a profile document."""
    from repro.analysis.report import render_table

    wall = doc.get("wall_s", 0.0)
    sampled = doc.get("mode", "exact") == "sampled"
    phases = doc.get("phases", {})
    ordered = sorted(phases.items(), key=lambda kv: -kv[1]["self_s"])
    if limit is not None:
        ordered = ordered[:limit]
    rows = []
    for name, rec in ordered:
        self_s = rec["self_s"]
        calls = rec["calls"]
        # ns/call only means something when calls are real call counts
        # (exact mode); in sampled mode the count is sampler hits.
        per_call = f"{self_s / calls * 1e9:10.0f}" if calls and not sampled else "-"
        rows.append(
            [
                name,
                f"{self_s * 1e3:10.2f}",
                f"{self_s / wall:7.1%}" if wall > 0 else "-",
                calls,
                per_call,
            ]
        )
    title = (
        f"phase profile ({doc.get('mode', 'exact')}): wall {wall * 1e3:.1f} ms, "
        f"{doc.get('accesses', 0)} accesses, "
        f"{doc.get('accesses_per_sec', 0.0):,.0f} accesses/s, "
        f"{doc.get('coverage', 0.0):.1%} attributed"
    )
    count_col = "samples" if sampled else "calls"
    return render_table(
        ["phase", "self ms", "% wall", count_col, "ns/call"], rows, title=title
    )


def collapsed_lines(doc: dict, scale: float = 1e6) -> list[str]:
    """Collapsed-stack lines (``stack value``) from a profile document.

    Values are exclusive microseconds (integers — the flamegraph toolchain
    expects integer sample counts).
    """
    lines = []
    for stack, seconds in sorted(doc.get("stacks", {}).items()):
        value = round(seconds * scale)
        if value > 0:
            lines.append(f"{stack} {value}")
    return lines


def diff_profiles(before: dict, after: dict) -> str:
    """Human-readable phase-by-phase diff of two profile documents.

    The table shows where wall-clock moved: negative deltas are phases
    the ``after`` profile made cheaper.  The headline reports the
    throughput change — the number a perf PR quotes.
    """
    from repro.analysis.report import render_table

    names = sorted(
        set(before.get("phases", {})) | set(after.get("phases", {})),
        key=_phase_order,
    )
    rows = []
    for name in names:
        b = before.get("phases", {}).get(name, {"self_s": 0.0, "calls": 0})
        a = after.get("phases", {}).get(name, {"self_s": 0.0, "calls": 0})
        delta = a["self_s"] - b["self_s"]
        ratio = (a["self_s"] / b["self_s"]) if b["self_s"] > 0 else float("inf")
        rows.append(
            [
                name,
                f"{b['self_s'] * 1e3:10.2f}",
                f"{a['self_s'] * 1e3:10.2f}",
                f"{delta * 1e3:+10.2f}",
                "-" if b["self_s"] <= 0 else f"x{ratio:.2f}",
            ]
        )
    rows.sort(key=lambda r: float(r[3]))
    before_rate = before.get("accesses_per_sec", 0.0)
    after_rate = after.get("accesses_per_sec", 0.0)
    speedup = after_rate / before_rate if before_rate > 0 else float("inf")
    title = (
        f"profile diff: {before_rate:,.0f} -> {after_rate:,.0f} accesses/s "
        f"({speedup:.2f}x throughput)"
    )
    return render_table(["phase", "before ms", "after ms", "delta ms", "ratio"], rows, title=title)


def load_profile(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "phases" not in doc:
        raise SimulationError(f"{path}: not a gmt-prof profile document")
    return doc


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """Entry point for ``gmt-prof``."""
    parser = argparse.ArgumentParser(
        prog="gmt-prof",
        description="Phase-attributed wall-clock profile of one replay",
    )
    parser.add_argument(
        "workload", nargs="?", default=None, help="Table 2 application to replay"
    )
    parser.add_argument(
        "--runtime",
        default="reuse",
        help="runtime kind to profile (default: reuse)",
    )
    parser.add_argument("--scale", type=int, default=4096,
                        help="byte-scale divisor (default 4096)")
    parser.add_argument("--oversubscription", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--exact", action="store_true",
        help="use the deterministic enter/exit engine instead of frame "
        "sampling (precise call counts, but roughly doubles replay cost)",
    )
    parser.add_argument(
        "--interval-ms", type=float, default=1.0, metavar="MS",
        help="sampling period in milliseconds (default 1.0; sampled mode)",
    )
    parser.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the N most expensive phases",
    )
    parser.add_argument(
        "--json-out", metavar="PATH", default=None,
        help="write the profile document (feeds --compare)",
    )
    parser.add_argument(
        "--collapsed-out", metavar="PATH", default=None,
        help="write collapsed stacks (flamegraph.pl / speedscope input)",
    )
    parser.add_argument(
        "--compare", nargs=2, metavar=("BEFORE", "AFTER"), default=None,
        help="diff two saved profile documents instead of replaying",
    )
    parser.add_argument(
        "--min-coverage", type=float, default=None, metavar="FRAC",
        help="exit 1 unless at least FRAC of replay wall-clock was "
        "attributed to named phases (CI smoke assertion)",
    )
    args = parser.parse_args(argv)

    if args.compare is not None:
        before, after = (load_profile(p) for p in args.compare)
        print(diff_profiles(before, after))
        return 0
    if args.workload is None:
        parser.error("need a workload to replay (or --compare BEFORE AFTER)")

    from repro.experiments.harness import (
        RUNTIME_KINDS,
        build_runtime,
        default_config,
        get_workload,
    )

    if args.runtime not in RUNTIME_KINDS:
        parser.error(f"unknown runtime {args.runtime!r}; choose from {RUNTIME_KINDS}")
    config = default_config(args.scale)
    workload = get_workload(
        args.workload, config, oversubscription=args.oversubscription, seed=args.seed
    )
    runtime = build_runtime(args.runtime, config)
    profiler = PhaseProfiler(
        mode="exact" if args.exact else "sampled",
        interval=args.interval_ms / 1e3,
    )
    prof, _result = profile_replay(runtime, workload, profiler=profiler)
    print(prof.format_top(limit=args.top))

    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(prof.report(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote profile to {args.json_out}")
    if args.collapsed_out is not None:
        count = prof.write_collapsed(args.collapsed_out)
        print(f"wrote {count} collapsed stacks to {args.collapsed_out}")
    if args.min_coverage is not None and prof.coverage < args.min_coverage:
        print(
            f"gmt-prof: coverage {prof.coverage:.1%} below required "
            f"{args.min_coverage:.1%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    sys.exit(main())
