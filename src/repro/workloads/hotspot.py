"""Hotspot: thermal simulation, iterations over a grid (Rodinia).

Table 2 shape: **81.33 % page reuse** but RRDs 100 % in the Tier-3 class —
every iteration sweeps the temperature and power grids in the same order,
so each page recurs only after the *entire* working set (twice GPU+host
capacity at the default geometry).  Left to its prediction alone,
GMT-Reuse would bypass host memory entirely; section 2.2's 80 %
Tier-3-bias heuristic instead force-places evictions into Tier-2, cutting
SSD accesses by 73 % and yielding a 125 % speedup (section 3.3, "High
Reuse, Tier-3 Bias").  This workload exists to exercise exactly that
heuristic.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import TraceError
from repro.sim.gpu import WarpAccess
from repro.workloads.trace import Workload, stream_warps


class HotspotWorkload(Workload):
    """Fixed-order iterations over temperature + power grids."""

    name = "Hotspot"
    description = "Thermal simulation, iterations on a grid (Rodinia)"

    def __init__(
        self,
        footprint_pages: int,
        iterations: int = 12,
        grid_fraction: float = 0.86,
        seed: int = 0,
    ) -> None:
        super().__init__(footprint_pages, seed)
        if iterations < 1:
            raise TraceError(f"iterations must be >= 1, got {iterations}")
        if not 0.0 < grid_fraction <= 1.0:
            raise TraceError(f"grid_fraction must be in (0, 1]: {grid_fraction}")
        self.iterations = iterations
        grid_pages = max(2, int(footprint_pages * grid_fraction))
        # Temperature and power arrays of equal size.
        self.array_pages = grid_pages // 2
        self.cold_pages = footprint_pages - 2 * self.array_pages

    def generate(self) -> Iterator[WarpAccess]:
        temp_base = self.cold_pages
        power_base = temp_base + self.array_pages
        # One-time configuration data (floorplan, constants).
        if self.cold_pages:
            yield from stream_warps(range(self.cold_pages), pages_per_warp=2)
        for _ in range(self.iterations):
            for i in range(self.array_pages):
                # Read the power density for this grid slice...
                yield WarpAccess(pages=(power_base + i,))
                # ...and update the temperatures in place (read-modify-write
                # of the same page is one coalesced touch per iteration).
                yield WarpAccess(pages=(temp_base + i,), write=True)
