"""BFS: breadth-first search over an RMAT graph (BaM suite, GAP-Kron).

Table 2 shape: ~33 % page reuse, Tier-2-biased RRDs.  A real
level-synchronous BFS is executed: each level reads the frontier's
distance pages and the edge pages spanned by its adjacency lists, then
writes the discovered neighbours' distance pages.  Vertex-property pages
recur level after level (medium distances); most edge pages are touched
in one or two expansion levels only.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.sim.gpu import WarpAccess
from repro.workloads.graph_common import GraphWorkload, gather_neighbors
from repro.workloads.trace import stream_warps


class BFSWorkload(GraphWorkload):
    """Level-synchronous BFS from the highest-degree vertex."""

    name = "BFS"
    description = "Graph traversal, data-dependent vertex/edge accesses (BaM)"

    def generate(self) -> Iterator[WarpAccess]:
        graph = self.graph
        pages = self.page_map
        dist = np.full(graph.num_vertices, -1, dtype=np.int32)
        source = self.highest_degree_vertex()
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        while frontier.size:
            level += 1
            # Read the frontier's own property pages (distance/state).
            yield from stream_warps(
                pages.vertex_pages_array(frontier, array=0).tolist(), pages_per_warp=2
            )
            # Read the edge pages its adjacency lists span.
            starts = graph.offsets[frontier]
            ends = graph.offsets[frontier + 1]
            edge_pages = pages.edge_pages_for_ranges(starts, ends)
            yield from stream_warps(edge_pages.tolist(), pages_per_warp=2)
            # Visit neighbours: check + update their distance pages.
            neighbors = np.unique(gather_neighbors(graph, frontier))
            if neighbors.size == 0:
                break
            unvisited = neighbors[dist[neighbors] < 0]
            touched = pages.vertex_pages_array(neighbors, array=1)
            yield from stream_warps(touched.tolist(), write=True, pages_per_warp=2)
            dist[unvisited] = level
            frontier = unvisited.astype(np.int64)
