"""Capture and replay of warp traces (compressed npz format).

Trace generation can dominate experiment time (graph construction, jitter
shuffling), and reproducing a bug needs the *exact* access stream.  This
module serialises any workload's warp stream to a compact compressed file
and replays it as a first-class :class:`~repro.workloads.trace.Workload`:

>>> from repro.workloads.capture import save_trace, load_trace
>>> summary = save_trace(make_workload("srad", config), "srad.npz")
>>> replay = load_trace("srad.npz")
>>> GMTRuntime(config).run(replay)   # identical to running the original

Format (npz): ``pages`` (int64, all lanes concatenated), ``lengths``
(int32 lanes per warp), ``writes`` (bool per warp), ``meta`` (JSON string
with name/description/footprint).
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.sim.gpu import WarpAccess
from repro.workloads.trace import Workload

_FORMAT_VERSION = 1


def save_trace(workload: Workload, path: str | Path) -> dict:
    """Serialise ``workload``'s full warp stream to ``path``.

    Returns a summary dict (warps, coalesced accesses, bytes on disk).
    """
    pages: list[int] = []
    lengths: list[int] = []
    writes: list[bool] = []
    for warp in workload:
        pages.extend(warp.pages)
        lengths.append(len(warp.pages))
        writes.append(warp.write)
    if not lengths:
        raise TraceError(f"workload {workload.name!r} produced an empty trace")
    meta = {
        "version": _FORMAT_VERSION,
        "name": workload.name,
        "description": workload.description,
        "footprint_pages": workload.footprint_pages,
        "seed": workload.seed,
    }
    path = Path(path)
    np.savez_compressed(
        path,
        pages=np.asarray(pages, dtype=np.int64),
        lengths=np.asarray(lengths, dtype=np.int32),
        writes=np.asarray(writes, dtype=bool),
        meta=np.array(json.dumps(meta)),
    )
    return {
        "warps": len(lengths),
        "lane_accesses": len(pages),
        "bytes": path.stat().st_size,
        "path": str(path),
    }


class RecordedWorkload(Workload):
    """A workload replayed from a captured trace file."""

    def __init__(self, pages: np.ndarray, lengths: np.ndarray, writes: np.ndarray, meta: dict) -> None:
        super().__init__(int(meta["footprint_pages"]), int(meta.get("seed", 0)))
        self.name = meta["name"]
        self.description = meta.get("description", "")
        self._pages = pages
        self._starts = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=self._starts[1:])
        self._writes = writes
        if self._starts[-1] != len(pages):
            raise TraceError("corrupt trace: lane counts do not match pages")

    @property
    def num_warps(self) -> int:
        return len(self._writes)

    def generate(self) -> Iterator[WarpAccess]:
        pages = self._pages
        starts = self._starts
        writes = self._writes
        for i in range(len(writes)):
            lanes = pages[starts[i] : starts[i + 1]]
            yield WarpAccess(
                pages=tuple(int(p) for p in lanes), write=bool(writes[i])
            )


def load_trace(path: str | Path) -> RecordedWorkload:
    """Load a trace captured with :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no trace file at {path}")
    with np.load(path, allow_pickle=False) as data:
        try:
            meta = json.loads(str(data["meta"]))
            pages = data["pages"]
            lengths = data["lengths"]
            writes = data["writes"]
        except KeyError as missing:
            raise TraceError(f"corrupt trace file {path}: missing {missing}") from None
    version = meta.get("version")
    if version != _FORMAT_VERSION:
        raise TraceError(
            f"trace {path} has format version {version}; expected {_FORMAT_VERSION}"
        )
    return RecordedWorkload(pages=pages, lengths=lengths, writes=writes, meta=meta)
