"""Registry of the paper's nine applications (Table 2), keyed by name.

:func:`make_workload` sizes a workload from a :class:`~repro.core.config.GMTConfig`
and an over-subscription factor, matching the paper's setup where the
working set is ``oversubscription x (Tier-1 + Tier-2)``.
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import GMTConfig, PAPER_OVERSUBSCRIPTION
from repro.errors import ConfigError
from repro.workloads.backprop import BackpropWorkload
from repro.workloads.bfs import BFSWorkload
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.lavamd import LavaMDWorkload
from repro.workloads.multivectoradd import MultiVectorAddWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.pathfinder import PathfinderWorkload
from repro.workloads.srad import SradWorkload
from repro.workloads.sssp import SSSPWorkload
from repro.workloads.synthetic import KeyValueWorkload, StreamingWorkload
from repro.workloads.trace import JitteredWorkload, Workload

#: Cap on the default in-flight-warp reordering window (see
#: :class:`~repro.workloads.trace.JitteredWorkload`); roughly the number
#: of warps a saturated SM complex keeps resident.
DEFAULT_JITTER_WARPS = 1536


def default_jitter_window(footprint_pages: int) -> int:
    """Default reordering window for a given footprint.

    Scales with the dataset (an eighth of the footprint in warps) up to
    the hardware-ish cap, so scaled-down experiments keep the same
    *relative* reordering rather than being fully randomised.
    """
    return max(8, min(DEFAULT_JITTER_WARPS, footprint_pages // 8))

_REGISTRY: dict[str, type[Workload]] = {
    "lavamd": LavaMDWorkload,
    "pathfinder": PathfinderWorkload,
    "bfs": BFSWorkload,
    "multivectoradd": MultiVectorAddWorkload,
    "srad": SradWorkload,
    "backprop": BackpropWorkload,
    "pagerank": PageRankWorkload,
    "sssp": SSSPWorkload,
    "hotspot": HotspotWorkload,
}

#: Table 2 order (the paper's nine applications only).
WORKLOAD_NAMES: tuple[str, ...] = tuple(_REGISTRY)

#: Additional workloads beyond the paper's suite (controls / user demos);
#: accepted by :func:`make_workload`, excluded from the paper experiments.
_EXTRA_REGISTRY: dict[str, type[Workload]] = {
    "streaming": StreamingWorkload,
    "keyvalue": KeyValueWorkload,
}
EXTRA_WORKLOAD_NAMES: tuple[str, ...] = tuple(_EXTRA_REGISTRY)

_REGISTRY.update(_EXTRA_REGISTRY)

#: Applications whose over-subscription the paper varies by resizing the
#: *tiers* rather than the dataset (section 3.5: "reducing the
#: Tier-1/Tier-2 capacity by half for graph applications").
GRAPH_WORKLOADS: frozenset[str] = frozenset({"bfs", "pagerank", "sssp"})


def normalize_name(name: str) -> str:
    """Canonical registry key for a Table 2 application name."""
    key = name.strip().lower().replace("-", "").replace("_", "").replace(" ", "")
    if key not in _REGISTRY:
        raise ConfigError(
            f"unknown workload {name!r}; known: {', '.join(WORKLOAD_NAMES)}"
        )
    return key


def workload_class(name: str) -> type[Workload]:
    """The workload class registered under ``name``."""
    return _REGISTRY[normalize_name(name)]


def make_workload(
    name: str,
    config: GMTConfig | int,
    oversubscription: float = PAPER_OVERSUBSCRIPTION,
    seed: int = 0,
    jitter_warps: int | None = None,
    **kwargs,
) -> Workload:
    """Build a Table 2 workload sized for ``config``.

    Args:
        name: Table 2 application name (case/punctuation-insensitive).
        config: a :class:`GMTConfig` (footprint = oversubscription x
            (Tier-1 + Tier-2) frames, the paper's definition) or a raw
            footprint in pages.
        oversubscription: the paper's over-subscription factor (default 2).
        seed: trace RNG seed.
        jitter_warps: in-flight-warp reordering window; ``None`` picks
            :func:`default_jitter_window`, 0 disables (see
            :class:`~repro.workloads.trace.JitteredWorkload`).
        **kwargs: forwarded to the workload class (iterations, epochs, ...).
    """
    cls = workload_class(name)
    if isinstance(config, GMTConfig):
        footprint = config.working_set_frames(oversubscription)
    else:
        footprint = int(config)
    workload = cls(footprint_pages=footprint, seed=seed, **kwargs)
    if jitter_warps is None:
        jitter_warps = default_jitter_window(footprint)
    if jitter_warps:
        return JitteredWorkload(workload, window=jitter_warps)
    return workload


def workload_table() -> list[dict[str, str]]:
    """Name/description rows in Table 2 order (for reports and docs)."""
    return [
        {"name": _REGISTRY[key].name, "description": _REGISTRY[key].description}
        for key in WORKLOAD_NAMES
    ]


_FACTORY_TYPE = Callable[..., Workload]
