"""LavaMD: particle simulation with neighbor-box accesses (Rodinia).

Table 2 shape: **1.17 % page reuse**, Tier-1-biased RRDs, 168 GB total I/O
(~one pass over the dataset).  Each box's particle data is streamed through
exactly once (read-modify-write in place); only a small parameter region —
charges/constants shared by every box — is re-accessed, and always at tiny
reuse distances.  Section 3.3 notes GMT-Reuse can even *lose* slightly here
because one pass builds almost no eviction history; the trace preserves
that property (most pages are evicted exactly once, unresolved).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import TraceError
from repro.sim.gpu import WarpAccess
from repro.workloads.trace import Workload, stream_warps


class LavaMDWorkload(Workload):
    """One pass over per-box particle pages + a hot parameter region."""

    name = "LavaMD"
    description = "Particle simulation, neighbor accesses (Rodinia)"

    def __init__(
        self,
        footprint_pages: int,
        box_pages: int = 16,
        param_fraction: float = 0.012,
        seed: int = 0,
    ) -> None:
        super().__init__(footprint_pages, seed)
        if box_pages < 1:
            raise TraceError(f"box_pages must be >= 1, got {box_pages}")
        if not 0.0 < param_fraction < 1.0:
            raise TraceError(f"param_fraction must be in (0, 1): {param_fraction}")
        self.param_pages = max(1, int(footprint_pages * param_fraction))
        self.box_pages = box_pages
        data_pages = footprint_pages - self.param_pages
        self.num_boxes = max(1, data_pages // box_pages)
        # Parameter pages are partitioned per spatial neighbourhood: boxes
        # of one neighbourhood cycle through their group's pages, so the
        # (rare) reuse happens at short distances — ~1 % of the footprint,
        # well inside any realistic Tier-1 (Figure 7's Tier-1 bias).
        target_reuse_pages = max(1, footprint_pages // 100)
        self.param_group_pages = max(
            1, min(self.param_pages, target_reuse_pages // (box_pages + 1))
        )
        groups = -(-self.param_pages // self.param_group_pages)
        self.boxes_per_neighborhood = max(1, -(-self.num_boxes // groups))

    def generate(self) -> Iterator[WarpAccess]:
        data_base = self.param_pages
        group_size = self.param_group_pages
        for box in range(self.num_boxes):
            # Each warp first loads its neighbourhood's shared parameters...
            group = box // self.boxes_per_neighborhood
            group_base = (group * group_size) % self.param_pages
            param_page = group_base + box % group_size
            yield WarpAccess(pages=(min(param_page, self.param_pages - 1),))
            # ...then streams the box's particles, updating them in place.
            first = data_base + box * self.box_pages
            yield from stream_warps(
                range(first, first + self.box_pages), write=True, pages_per_warp=2
            )
