"""Workload trace generators for the paper's nine applications (Table 2).

Each workload reproduces the *memory-access shape* of its application —
reuse percentage, remaining-reuse-distance bias, read/write mix — at the
configured footprint, since those are the properties the paper's Figure 7
uses to explain every result.  Graph workloads (BFS, PageRank, SSSP) run
real algorithms over a synthetic RMAT/Kronecker graph standing in for
GAP-Kron (see DESIGN.md section 2).

Use :func:`make_workload` / :data:`WORKLOAD_NAMES` for the paper's suite,
or instantiate the classes directly with custom parameters.
"""

from repro.workloads.registry import WORKLOAD_NAMES, make_workload, workload_table
from repro.workloads.synthetic import ZipfAccessGenerator
from repro.workloads.trace import Workload, stream_warps

__all__ = [
    "WORKLOAD_NAMES",
    "Workload",
    "ZipfAccessGenerator",
    "make_workload",
    "stream_warps",
    "workload_table",
]
