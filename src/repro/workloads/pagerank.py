"""PageRank over an RMAT graph (BaM suite, GAP-Kron).

Table 2 shape: **90.42 % page reuse** with RRDs overwhelmingly in the
Tier-3 class — every iteration sweeps all rank and edge pages, so each
recurs only after the whole working set.  Figure 4(c) shows per-page RRDs
*alternating* between two values across evictions; that arises here
because consecutive iterations process the edge list in opposite
directions (a common scheduling artefact), so a page touched late in one
sweep is touched early in the next.  The 2-level Markov history is
exactly what captures this.

Each edge page access is paired with the rank page of a vertex actually
referenced by that page (a real gather), so hub pages are hotter than
cold ones, as the power-law degree distribution dictates.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import TraceError
from repro.sim.gpu import WarpAccess
from repro.workloads.graph_common import GraphWorkload
from repro.workloads.trace import stream_warps


class PageRankWorkload(GraphWorkload):
    """Iterated full-graph rank propagation, alternating sweep direction."""

    name = "PageRank"
    description = "Graph algorithm, data-dependent vertex/edge accesses (BaM)"

    def __init__(
        self,
        footprint_pages: int,
        iterations: int = 5,
        cold_fraction: float = 0.10,
        seed: int = 0,
        scale: int | None = None,
        graph=None,
    ) -> None:
        super().__init__(footprint_pages, seed, scale, graph=graph)
        if iterations < 1:
            raise TraceError(f"iterations must be >= 1, got {iterations}")
        if not 0.0 <= cold_fraction < 1.0:
            raise TraceError(f"cold_fraction must be in [0, 1): {cold_fraction}")
        self.iterations = iterations
        self.cold_fraction = cold_fraction

    def _per_edge_page_gathers(self) -> np.ndarray:
        """For each edge page, the rank page of its first CSR target —
        the data-dependent gather that accompanies reading that page."""
        graph = self.graph
        pages = self.page_map
        first_slots = np.arange(0, graph.num_edges, pages.edges_per_page)
        first_targets = graph.targets[first_slots].astype(np.int64)
        return first_targets // pages.vertices_per_page  # rank array 0 pages

    def generate(self) -> Iterator[WarpAccess]:
        pages = self.page_map
        gather_pages = self._per_edge_page_gathers()
        edge_base = pages.num_property_arrays * pages.vertex_array_pages
        num_edge_pages = pages.edge_pages
        rank_pages = pages.vertex_array_pages

        # One-time graph-loading metadata (degrees, offsets construction):
        # read once and never again, matching Table 2's ~90 % page reuse.
        cold_base = pages.total_pages
        cold_pages = int(pages.total_pages * self.cold_fraction / (1 - self.cold_fraction))
        yield from stream_warps(
            range(cold_base, cold_base + cold_pages), pages_per_warp=2
        )

        for iteration in range(self.iterations):
            reverse = iteration % 2 == 1
            order = range(num_edge_pages - 1, -1, -1) if reverse else range(num_edge_pages)
            for i in order:
                # Read the edge page and gather a referenced vertex's rank.
                yield WarpAccess(pages=(edge_base + i, int(gather_pages[i])))
            # Write the next-rank array (property array 1), same direction.
            next_rank = range(rank_pages, 2 * rank_pages)
            sweep = reversed(next_rank) if reverse else next_rank
            yield from stream_warps(sweep, write=True, pages_per_warp=2)
            # Read the current-rank array (property array 0).
            cur = range(rank_pages)
            sweep = reversed(cur) if reverse else cur
            yield from stream_warps(sweep, pages_per_warp=2)
