"""Synthetic access-pattern building blocks and the zipf microbenchmark.

The zipf generator reproduces the section 2.3 microbenchmark: "all GPU
threads repeatedly generate page addresses drawn from a zipf distribution
[36].  The skewness of the distribution is varied from 0 to 1 — controlling
how many unique pages are requested (higher skew implies fewer distinct
pages)" (Figure 6(b)).
"""

from __future__ import annotations

import random
from collections.abc import Iterator

import numpy as np

from repro.errors import TraceError
from repro.sim.gpu import WarpAccess
from repro.sim.transfer import WARP_SIZE
from repro.workloads.trace import Workload


def zipf_weights(num_pages: int, skew: float) -> np.ndarray:
    """Normalised zipf(``skew``) probabilities over ``num_pages`` ranks.

    ``skew=0`` degenerates to uniform; ``skew=1`` is classic zipf.
    """
    if num_pages <= 0:
        raise TraceError(f"num_pages must be positive, got {num_pages}")
    if skew < 0:
        raise TraceError(f"skew must be non-negative, got {skew}")
    ranks = np.arange(1, num_pages + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


class ZipfAccessGenerator(Workload):
    """Warps of lanes drawing page addresses from a zipf distribution."""

    name = "zipf"
    description = "Microbenchmark: warp lanes draw zipf-distributed pages"

    def __init__(
        self,
        footprint_pages: int,
        num_warps: int,
        skew: float,
        lanes: int = WARP_SIZE,
        write_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(footprint_pages, seed)
        if num_warps <= 0:
            raise TraceError(f"num_warps must be positive, got {num_warps}")
        if not 1 <= lanes <= WARP_SIZE:
            raise TraceError(f"lanes must be in 1..{WARP_SIZE}, got {lanes}")
        if not 0.0 <= write_fraction <= 1.0:
            raise TraceError(f"write_fraction must be in [0, 1]: {write_fraction}")
        self.num_warps = num_warps
        self.skew = skew
        self.lanes = lanes
        self.write_fraction = write_fraction

    def generate(self) -> Iterator[WarpAccess]:
        rng = np.random.default_rng(self.seed)
        weights = zipf_weights(self.footprint_pages, self.skew)
        # Page ranks are shuffled so "popular" pages are scattered in the
        # address space, as graph/hash workloads exhibit.
        page_of_rank = rng.permutation(self.footprint_pages)
        draws = rng.choice(
            self.footprint_pages, size=(self.num_warps, self.lanes), p=weights
        )
        writes = rng.random(self.num_warps) < self.write_fraction
        for row, is_write in zip(draws, writes):
            yield WarpAccess(
                pages=tuple(int(page_of_rank[r]) for r in row), write=bool(is_write)
            )


class StreamingWorkload(Workload):
    """Pure sequential streaming (STREAM-like): every page touched once.

    The zero-reuse baseline: no tiering policy can help, so all runtimes
    should collapse to BaM-like behaviour (modulo dirty-page parking).
    Useful as a control in tests and sensitivity studies.
    """

    name = "Streaming"
    description = "Sequential single-pass stream (no reuse; control workload)"

    def __init__(
        self, footprint_pages: int, write_fraction: float = 0.5, seed: int = 0
    ) -> None:
        super().__init__(footprint_pages, seed)
        if not 0.0 <= write_fraction <= 1.0:
            raise TraceError(f"write_fraction must be in [0, 1]: {write_fraction}")
        self.write_fraction = write_fraction

    def generate(self) -> Iterator[WarpAccess]:
        write_every = (
            int(1 / self.write_fraction) if self.write_fraction > 0 else 0
        )
        for i in range(0, self.footprint_pages, 2):
            pages = tuple(
                p for p in (i, i + 1) if p < self.footprint_pages
            )
            write = bool(write_every) and (i // 2) % write_every == 0
            yield WarpAccess(pages=pages, write=write)


class KeyValueWorkload(Workload):
    """A KV store under zipf-skewed point lookups with periodic compaction.

    Serving systems show exactly the mix GMT targets: a hot set with
    short/medium reuse distances (the zipf head) over a long tail that is
    effectively streaming, punctuated by compaction sweeps that touch
    everything in order.  Not part of the paper's suite — provided for
    users evaluating GMT-style tiering on serving workloads.
    """

    name = "KeyValue"
    description = "Zipf-skewed KV lookups with periodic compaction sweeps"

    def __init__(
        self,
        footprint_pages: int,
        lookups: int | None = None,
        skew: float = 0.9,
        compaction_every: int = 4000,
        seed: int = 0,
    ) -> None:
        super().__init__(footprint_pages, seed)
        if skew < 0:
            raise TraceError(f"skew must be non-negative, got {skew}")
        if compaction_every < 1:
            raise TraceError(f"compaction_every must be >= 1: {compaction_every}")
        self.lookups = lookups if lookups is not None else footprint_pages * 4
        if self.lookups < 1:
            raise TraceError(f"lookups must be >= 1: {self.lookups}")
        self.skew = skew
        self.compaction_every = compaction_every

    def generate(self) -> Iterator[WarpAccess]:
        rng = np.random.default_rng(self.seed)
        weights = zipf_weights(self.footprint_pages, self.skew)
        page_of_rank = rng.permutation(self.footprint_pages)
        draws = rng.choice(self.footprint_pages, size=self.lookups, p=weights)
        writes = rng.random(self.lookups) < 0.1  # updates
        issued = 0
        for rank, write in zip(draws, writes):
            yield WarpAccess(pages=(int(page_of_rank[rank]),), write=bool(write))
            issued += 1
            if issued % self.compaction_every == 0:
                # Compaction: read-modify-write sweep over the whole store.
                for page in range(0, self.footprint_pages, 2):
                    pages = tuple(
                        p for p in (page, page + 1) if p < self.footprint_pages
                    )
                    yield WarpAccess(pages=pages, write=True)


def sweep(start: int, count: int, reverse: bool = False) -> Iterator[int]:
    """Sequential page-id sweep over [start, start+count), optionally
    reversed — the building block of every streaming kernel."""
    if count < 0:
        raise TraceError(f"negative sweep length: {count}")
    pages = range(start + count - 1, start - 1, -1) if reverse else range(start, start + count)
    yield from pages


def strided_sample(
    start: int, count: int, fraction: float, rng: random.Random
) -> list[int]:
    """A reproducible pseudo-random subset of a page range.

    Used by frontier-driven workloads (SSSP) where each round touches a
    data-dependent subset of the vertex/edge space.
    """
    if not 0.0 <= fraction <= 1.0:
        raise TraceError(f"fraction must be in [0, 1]: {fraction}")
    take = int(count * fraction)
    if take <= 0:
        return []
    picks = rng.sample(range(start, start + count), take)
    picks.sort()
    return picks
