"""Pathfinder: dynamic programming, row-by-row iteration (Rodinia).

Table 2 shape: **19.47 % page reuse**, RRDs 99.99 % within Tier-1.  Row
``r``'s result depends on row ``r-1``'s: the wide input grid (4 pages of
weights per result page) is streamed once, while each freshly written
result row is re-read one row later — a reuse distance of a few row-widths,
far inside GPU memory.  The Tier-2 benefit (25 % in the paper) comes not
from Tier-2 *hits* but from dirty result rows being retired to host memory
instead of the SSD.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import TraceError
from repro.sim.gpu import WarpAccess
from repro.workloads.trace import Workload, stream_warps


class PathfinderWorkload(Workload):
    """Row-by-row DP over a grid 4x wider than its result rows."""

    name = "Pathfinder"
    description = "Dynamic programming, row-by-row iteration (Rodinia)"

    #: Input-grid pages consumed per result-row page.
    GRID_RATIO = 4

    def __init__(self, footprint_pages: int, row_pages: int = 8, seed: int = 0) -> None:
        super().__init__(footprint_pages, seed)
        if row_pages < 1:
            raise TraceError(f"row_pages must be >= 1, got {row_pages}")
        self.row_pages = row_pages
        pages_per_row = (self.GRID_RATIO + 1) * row_pages
        self.num_rows = max(2, footprint_pages // pages_per_row)

    def generate(self) -> Iterator[WarpAccess]:
        grid_pages_per_row = self.GRID_RATIO * self.row_pages
        grid_base = 0
        result_base = self.num_rows * grid_pages_per_row

        def result_row(r: int) -> range:
            first = result_base + r * self.row_pages
            return range(first, first + self.row_pages)

        for row in range(self.num_rows):
            # Stream this row's slice of the input grid (touched once).
            first = grid_base + row * grid_pages_per_row
            yield from stream_warps(
                range(first, first + grid_pages_per_row), pages_per_warp=2
            )
            if row > 0:
                # Re-read the previous row's result (the DP dependency).
                yield from stream_warps(result_row(row - 1), pages_per_warp=2)
            # Write this row's result.
            yield from stream_warps(result_row(row), write=True, pages_per_warp=2)
