"""Edge-list graph I/O — run the graph workloads on real datasets.

The paper evaluates BFS/PageRank/SSSP on GAP-Kron; users reproducing on
their own graphs (SNAP-style edge lists, Graph500 outputs) can load them
here and hand the CSR to any :class:`~repro.workloads.graph_common.GraphWorkload`
subclass via its ``graph=`` parameter:

>>> graph = load_csr("soc-live.txt")
>>> workload = PageRankWorkload(footprint_pages=0, graph=graph)

Formats: whitespace- or comma-separated ``src dst`` pairs, one edge per
line; ``#``- or ``%``-prefixed comment lines ignored (covers SNAP and
Matrix-Market-ish headers).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.workloads.kron import CSRGraph, build_csr

_COMMENT_PREFIXES = ("#", "%")


def load_edge_list(path: str | Path) -> np.ndarray:
    """Parse ``path`` into an (E, 2) int64 edge array.

    Raises:
        TraceError: missing file, no edges, malformed lines, or negative
            vertex ids.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no edge-list file at {path}")
    src: list[int] = []
    dst: list[int] = []
    with path.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith(_COMMENT_PREFIXES):
                continue
            parts = text.replace(",", " ").split()
            if len(parts) < 2:
                raise TraceError(f"{path}:{line_no}: expected 'src dst', got {text!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                raise TraceError(
                    f"{path}:{line_no}: non-integer endpoint in {text!r}"
                ) from None
            if u < 0 or v < 0:
                raise TraceError(f"{path}:{line_no}: negative vertex id in {text!r}")
            src.append(u)
            dst.append(v)
    if not src:
        raise TraceError(f"{path}: no edges found")
    return np.column_stack([np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)])


def save_edge_list(edges: np.ndarray, path: str | Path, header: str | None = None) -> None:
    """Write an (E, 2) edge array as a plain ``src dst`` text file."""
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise TraceError(f"edges must be (E, 2), got shape {edges.shape}")
    path = Path(path)
    with path.open("w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in edges:
            handle.write(f"{int(u)} {int(v)}\n")


def load_csr(path: str | Path, num_vertices: int | None = None) -> CSRGraph:
    """Load an edge list and build its CSR (vertex count inferred unless
    given)."""
    edges = load_edge_list(path)
    if num_vertices is None:
        num_vertices = int(edges.max()) + 1
    return build_csr(edges, num_vertices=num_vertices)
