"""MultiVectorAdd: linear algebra with a repeatedly accessed output (BaM).

Table 2 shape: medium page reuse, Tier-2-biased RRDs.  The kernel computes
``C = C + A_k + B`` over K input vectors: each pass streams one fresh input
``A_k`` while re-reading the shared operand ``B`` and accumulating into
``C``.  Between consecutive passes, a ``B``/``C`` page sees roughly
``3 * vector_pages`` distinct pages — beyond GPU memory but within
GPU+host capacity at the paper's geometry, which is why section 3.3 calls
MultiVectorAdd out as the case where GMT-TierOrder's FIFO-like behaviour
fails ("newly inserted pages into Tier-2 evict pages that will be
least-furthest in the future") while GMT-Reuse gains 40 %.

Figure 4(b) additionally uses this workload to show per-page RRDs that are
*identical at every eviction* — a direct consequence of the fixed-stride
pass structure, preserved here.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import TraceError
from repro.sim.gpu import WarpAccess
from repro.workloads.trace import Workload, stream_warps


class MultiVectorAddWorkload(Workload):
    """K passes of ``C += A_k + B`` over equal-length vectors."""

    name = "MultiVectorAdd"
    description = "Linear algebra, output vector repeatedly accessed (BaM)"

    def __init__(self, footprint_pages: int, num_inputs: int = 5, seed: int = 0) -> None:
        super().__init__(footprint_pages, seed)
        if num_inputs < 1:
            raise TraceError(f"num_inputs must be >= 1, got {num_inputs}")
        self.num_inputs = num_inputs
        # num_inputs input vectors + shared B + output C.
        self.vector_pages = max(1, footprint_pages // (num_inputs + 2))

    def generate(self) -> Iterator[WarpAccess]:
        vp = self.vector_pages
        b_base = self.num_inputs * vp
        c_base = b_base + vp
        # Initialise the output vector (one write sweep).
        yield from stream_warps(range(c_base, c_base + vp), write=True, pages_per_warp=2)
        for k in range(self.num_inputs):
            a_base = k * vp
            for i in range(vp):
                # Lanes read A_k[i] and B[i], then accumulate into C[i].
                yield WarpAccess(pages=(a_base + i, b_base + i))
                yield WarpAccess(pages=(c_base + i,), write=True)
