"""Synthetic Kronecker (RMAT) graphs — the GAP-Kron stand-in.

The paper's graph workloads (BFS, PageRank, SSSP, from the BaM suite) run
over GAP-Kron [15], a Graph500-style RMAT graph.  Without the original
multi-hundred-GB dataset we generate RMAT graphs with the Graph500
parameters (a=0.57, b=0.19, c=0.19, d=0.05), which preserve what matters
for memory tiering: power-law degree skew (a few hub pages are hot) and
unstructured, data-dependent access order.

:class:`GraphPageMap` lays the CSR arrays out over 64 KB pages.  The
*elements-per-page* knobs are deliberately configurable: scaled-down
experiments shrink elements-per-page instead of the graph's structure, so
the page-level access pattern keeps its shape at a tractable trace length
(DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError


@dataclass(frozen=True)
class CSRGraph:
    """Compressed-sparse-row directed graph."""

    offsets: np.ndarray  # int64[V + 1]
    targets: np.ndarray  # int32[E]

    @property
    def num_vertices(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        return len(self.targets)

    def neighbors(self, vertex: int) -> np.ndarray:
        return self.targets[self.offsets[vertex] : self.offsets[vertex + 1]]

    def out_degree(self, vertex: int) -> int:
        return int(self.offsets[vertex + 1] - self.offsets[vertex])


def rmat_edges(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> np.ndarray:
    """Generate ``edge_factor * 2**scale`` RMAT edges (Graph500 defaults).

    Returns an ``(E, 2)`` int array of (src, dst) pairs, possibly with
    duplicates and self-loops, exactly as the generator specifies.
    """
    if scale < 1 or scale > 30:
        raise TraceError(f"scale must be in 1..30, got {scale}")
    if edge_factor < 1:
        raise TraceError(f"edge_factor must be >= 1, got {edge_factor}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise TraceError(f"invalid RMAT probabilities a={a} b={b} c={c} (d={d})")
    rng = np.random.default_rng(seed)
    num_edges = edge_factor * (1 << scale)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(num_edges)
        # Quadrant choice: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1).
        right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        down = r >= a + b
        src = (src << 1) | down.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    return np.column_stack([src, dst])


def build_csr(edges: np.ndarray, num_vertices: int) -> CSRGraph:
    """Sort an edge list into CSR form (multi-edges kept, as Graph500 does)."""
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise TraceError(f"edges must be (E, 2), got shape {edges.shape}")
    if len(edges) and int(edges.max()) >= num_vertices:
        raise TraceError("edge endpoint out of range")
    order = np.argsort(edges[:, 0], kind="stable")
    sorted_edges = edges[order]
    counts = np.bincount(sorted_edges[:, 0], minlength=num_vertices)
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return CSRGraph(offsets=offsets, targets=sorted_edges[:, 1].astype(np.int32))


def rmat_csr(scale: int, edge_factor: int = 16, seed: int = 0) -> CSRGraph:
    """Convenience: RMAT edge list -> CSR with ``2**scale`` vertices."""
    edges = rmat_edges(scale, edge_factor, seed=seed)
    return build_csr(edges, num_vertices=1 << scale)


@dataclass(frozen=True)
class GraphPageMap:
    """Layout of CSR arrays over 64 KB pages.

    Address space: ``[0, num_property_arrays * vertex_pages)`` holds the
    per-vertex property arrays (ranks, distances, visited flags, ...) one
    after another, followed by the edge (CSR target) array.
    """

    num_vertices: int
    num_edges: int
    vertices_per_page: int
    edges_per_page: int
    num_property_arrays: int = 2

    def __post_init__(self) -> None:
        if self.vertices_per_page < 1 or self.edges_per_page < 1:
            raise TraceError("elements-per-page must be >= 1")
        if self.num_property_arrays < 1:
            raise TraceError("need at least one vertex property array")

    @property
    def vertex_array_pages(self) -> int:
        """Pages of ONE per-vertex property array."""
        return -(-self.num_vertices // self.vertices_per_page)

    @property
    def edge_pages(self) -> int:
        return -(-self.num_edges // self.edges_per_page)

    @property
    def total_pages(self) -> int:
        return self.num_property_arrays * self.vertex_array_pages + self.edge_pages

    def vertex_page(self, vertex: int, array: int = 0) -> int:
        """Page holding ``vertex``'s slot in property ``array``."""
        if not 0 <= array < self.num_property_arrays:
            raise TraceError(f"array index {array} out of range")
        return array * self.vertex_array_pages + vertex // self.vertices_per_page

    def edge_page(self, edge_index: int) -> int:
        """Page holding CSR target slot ``edge_index``."""
        return (
            self.num_property_arrays * self.vertex_array_pages
            + edge_index // self.edges_per_page
        )

    def vertex_pages_array(self, vertices: np.ndarray, array: int = 0) -> np.ndarray:
        """Vectorised :meth:`vertex_page` (unique, sorted)."""
        pages = array * self.vertex_array_pages + vertices // self.vertices_per_page
        return np.unique(pages)

    def edge_pages_for_ranges(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """Unique edge pages covering the CSR ranges [start, end) of a
        frontier's adjacency lists (vectorised)."""
        base = self.num_property_arrays * self.vertex_array_pages
        first = starts // self.edges_per_page
        last = np.maximum(first, (np.maximum(ends, starts + 1) - 1) // self.edges_per_page)
        spans = [np.arange(f, l + 1) for f, l in zip(first, last)]
        if not spans:
            return np.empty(0, dtype=np.int64)
        return base + np.unique(np.concatenate(spans))
