"""Shared machinery for the graph workloads (BFS, PageRank, SSSP).

All three run real algorithms over an RMAT graph (the GAP-Kron stand-in,
see :mod:`repro.workloads.kron`) laid out as CSR with two per-vertex
property arrays.  The graph is sized from the requested footprint: with
the default layout knobs, ``total_pages ~= 0.5625 * V``, so the vertex
count is the nearest power of two to ``footprint * 16/9``.

Traces are emitted at *page* granularity per algorithm step: each page a
level/iteration touches appears once per step (the GPU's L2 and per-level
coalescing absorb intra-step repeats), which keeps trace lengths tractable
while preserving the inter-step reuse structure that tiering sees.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import TraceError
from repro.workloads.kron import CSRGraph, GraphPageMap, rmat_csr
from repro.workloads.trace import Workload


class GraphWorkload(Workload):
    """Base class: owns the RMAT graph and its page layout.

    The graph is built lazily on first use and cached on the instance, so
    re-iterating a workload (to feed several runtimes) pays generation
    once.
    """

    #: Layout knobs (see DESIGN.md section 5 on element scaling).
    VERTICES_PER_PAGE = 32
    EDGES_PER_PAGE = 32
    EDGE_FACTOR = 16
    PROPERTY_ARRAYS = 2

    def __init__(
        self,
        footprint_pages: int,
        seed: int = 0,
        scale: int | None = None,
        graph: CSRGraph | None = None,
    ) -> None:
        """``graph`` injects an external CSR (e.g. from
        :mod:`repro.workloads.graphio`) instead of generating RMAT; the
        requested ``footprint_pages`` is then ignored in favour of the
        graph's actual page footprint."""
        if graph is not None:
            # Footprint follows from the injected graph's layout.
            probe = GraphPageMap(
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                vertices_per_page=self.VERTICES_PER_PAGE,
                edges_per_page=self.EDGES_PER_PAGE,
                num_property_arrays=self.PROPERTY_ARRAYS,
            )
            super().__init__(probe.total_pages, seed)
            self.scale = 0  # unused with an injected graph
            self._graph = graph
            self._page_map = probe
            return
        super().__init__(footprint_pages, seed)
        if scale is None:
            scale = self._scale_for_footprint(footprint_pages)
        if scale < 4:
            raise TraceError(f"graph scale too small: {scale} (footprint too tiny)")
        self.scale = scale
        self._graph = None
        self._page_map: GraphPageMap | None = None

    @classmethod
    def _scale_for_footprint(cls, footprint_pages: int) -> int:
        pages_per_vertex = (
            cls.PROPERTY_ARRAYS / cls.VERTICES_PER_PAGE
            + cls.EDGE_FACTOR / cls.EDGES_PER_PAGE
        )
        target_vertices = footprint_pages / pages_per_vertex
        return max(4, round(math.log2(max(2.0, target_vertices))))

    @property
    def graph(self) -> CSRGraph:
        if self._graph is None:
            self._graph = rmat_csr(self.scale, self.EDGE_FACTOR, seed=self.seed)
        return self._graph

    @property
    def page_map(self) -> GraphPageMap:
        if self._page_map is None:
            g = self.graph
            self._page_map = GraphPageMap(
                num_vertices=g.num_vertices,
                num_edges=g.num_edges,
                vertices_per_page=self.VERTICES_PER_PAGE,
                edges_per_page=self.EDGES_PER_PAGE,
                num_property_arrays=self.PROPERTY_ARRAYS,
            )
        return self._page_map

    @property
    def actual_footprint_pages(self) -> int:
        """Pages the graph actually occupies (power-of-two vertex counts
        make this approximate the requested footprint, not match it)."""
        return self.page_map.total_pages

    def highest_degree_vertex(self) -> int:
        """BFS/SSSP source: the biggest hub reaches most of the graph."""
        g = self.graph
        degrees = np.diff(g.offsets)
        return int(np.argmax(degrees))


def gather_neighbors(graph: CSRGraph, frontier: np.ndarray) -> np.ndarray:
    """All CSR targets of ``frontier``'s adjacency lists (vectorised)."""
    starts = graph.offsets[frontier]
    ends = graph.offsets[frontier + 1]
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=graph.targets.dtype)
    # flat[i] = starts[v] + (i - first_slot_of_v) for the owning vertex v.
    first_slot = np.zeros(len(frontier), dtype=np.int64)
    np.cumsum(lengths[:-1], out=first_slot[1:])
    owner = np.repeat(np.arange(len(frontier)), lengths)
    within = np.arange(total) - first_slot[owner]
    flat = starts[owner] + within
    return graph.targets[flat]
