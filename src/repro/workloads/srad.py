"""Srad: speckle-reducing anisotropic diffusion, 4-neighbor grid (Rodinia).

Table 2 shape: **83.38 % page reuse**, Tier-2-biased RRDs, and one of
GMT-Reuse's two biggest wins (133 % over BaM) via a 73 % SSD-I/O cut.

Srad runs two kernels per iteration (gradient/coefficient, then update)
over the image.  The GPU scheduler processes the image in large chunks;
within a chunk, kernel 2 re-reads what kernel 1 produced at a reuse
distance of one chunk — larger than GPU memory, comfortably inside
GPU+host memory.  Between iterations the whole image recurs at a long
distance, so per-page RRDs *alternate* between medium and long, exercising
the Markov predictor's 2-level history.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import TraceError
from repro.sim.gpu import WarpAccess
from repro.workloads.trace import Workload, stream_warps


class SradWorkload(Workload):
    """Iterated two-kernel stencil over a chunked image."""

    name = "Srad"
    description = "Image processing, 4 grid neighbor accesses (Rodinia)"

    def __init__(
        self,
        footprint_pages: int,
        iterations: int = 4,
        chunk_fraction: float = 0.30,
        image_fraction: float = 0.84,
        seed: int = 0,
    ) -> None:
        super().__init__(footprint_pages, seed)
        if iterations < 1:
            raise TraceError(f"iterations must be >= 1, got {iterations}")
        if not 0.0 < chunk_fraction <= 1.0:
            raise TraceError(f"chunk_fraction must be in (0, 1]: {chunk_fraction}")
        if not 0.0 < image_fraction <= 1.0:
            raise TraceError(f"image_fraction must be in (0, 1]: {image_fraction}")
        self.iterations = iterations
        self.image_pages = max(2, int(footprint_pages * image_fraction))
        self.chunk_pages = max(1, int(footprint_pages * chunk_fraction))
        self.cold_pages = footprint_pages - self.image_pages

    def generate(self) -> Iterator[WarpAccess]:
        image_base = self.cold_pages
        # One-time setup data (coefficients, borders): read once, never again.
        if self.cold_pages:
            yield from stream_warps(range(self.cold_pages), pages_per_warp=2)
        for _ in range(self.iterations):
            for chunk_start in range(0, self.image_pages, self.chunk_pages):
                chunk_end = min(chunk_start + self.chunk_pages, self.image_pages)
                chunk = range(image_base + chunk_start, image_base + chunk_end)
                # Kernel 1: statistics/reduction over the chunk (reads).
                yield from stream_warps(chunk, pages_per_warp=2)
                # Kernel 2: gradients/diffusion coefficients (reads).
                yield from stream_warps(chunk, pages_per_warp=2)
                # Kernel 3: image update (read-modify-write).
                yield from stream_warps(chunk, write=True, pages_per_warp=2)
