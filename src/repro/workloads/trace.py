"""Workload base class and warp-stream helpers.

A workload is a *re-iterable* source of :class:`~repro.sim.gpu.WarpAccess`
records: every ``iter()`` restarts generation from the same seed, so the
same trace can be replayed through several runtimes (Figure 8 compares
four of them) without materialising it in memory.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Iterator, Sequence

from repro.errors import TraceError
from repro.sim.gpu import WarpAccess
from repro.sim.transfer import WARP_SIZE


class Workload(abc.ABC):
    """A reproducible stream of warp accesses.

    Attributes:
        name: Table 2 name ("PageRank", ...).
        description: Table 2's one-line description.
        footprint_pages: number of distinct pages the trace touches.
        seed: RNG seed; generation is a pure function of constructor args.
    """

    name: str = "abstract"
    description: str = ""

    def __init__(self, footprint_pages: int, seed: int = 0) -> None:
        if footprint_pages <= 0:
            raise TraceError(f"footprint_pages must be positive, got {footprint_pages}")
        self.footprint_pages = footprint_pages
        self.seed = seed

    @abc.abstractmethod
    def generate(self) -> Iterator[WarpAccess]:
        """Fresh generator over the trace (deterministic in the seed)."""

    def __iter__(self) -> Iterator[WarpAccess]:
        return self.generate()

    def coalesced_pages(self) -> Iterator[int]:
        """The coalesced page-id stream (analysis convenience)."""
        from repro.sim.gpu import coalesce

        for warp in self:
            yield from coalesce(warp)


def stream_warps(
    pages: Iterable[int], write: bool = False, pages_per_warp: int = 2
) -> Iterator[WarpAccess]:
    """Group a page-id sequence into warp accesses.

    Models lanes striding through memory: consecutive lanes fall into the
    same or adjacent 64 KB pages, so one warp instruction touches a small
    number of distinct pages (``pages_per_warp``).
    """
    if not 1 <= pages_per_warp <= WARP_SIZE:
        raise TraceError(f"pages_per_warp must be in 1..{WARP_SIZE}")
    batch: list[int] = []
    for page in pages:
        batch.append(page)
        if len(batch) == pages_per_warp:
            yield WarpAccess(pages=tuple(batch), write=write)
            batch = []
    if batch:
        yield WarpAccess(pages=tuple(batch), write=write)


class JitteredWorkload(Workload):
    """Bounded reordering of another workload's warp stream.

    A GPU keeps thousands of warps in flight; the memory system sees their
    accesses in an order that only *approximates* program order, with
    reordering bounded by the number of resident warps.  This wrapper
    models that: warps pass through a shuffle buffer of ``window`` entries
    and leave in random order.  Policy-relevant consequence: reuse
    distances acquire +-window jitter, so a strict-demotion Tier-2 running
    exactly at capacity (GMT-TierOrder) loses marginal pages, while a
    selective policy's occupancy headroom absorbs the noise — the dynamics
    behind the paper's Figure 10(a) critique of TierOrder.
    """

    def __init__(self, inner: Workload, window: int, seed: int | None = None) -> None:
        if window < 1:
            raise TraceError(f"jitter window must be >= 1, got {window}")
        super().__init__(inner.footprint_pages, inner.seed if seed is None else seed)
        self.inner = inner
        self.window = window
        self.name = inner.name
        self.description = inner.description

    def generate(self) -> Iterator[WarpAccess]:
        import random

        rng = random.Random((self.seed << 8) ^ 0x5EED)
        buffer: list[WarpAccess] = []
        for warp in self.inner:
            buffer.append(warp)
            if len(buffer) >= self.window:
                idx = rng.randrange(len(buffer))
                buffer[idx], buffer[-1] = buffer[-1], buffer[idx]
                yield buffer.pop()
        while buffer:
            idx = rng.randrange(len(buffer))
            buffer[idx], buffer[-1] = buffer[-1], buffer[idx]
            yield buffer.pop()


def interleave_warps(streams: Sequence[Iterator[WarpAccess]]) -> Iterator[WarpAccess]:
    """Round-robin merge of several warp streams (concurrent thread blocks).

    Streams of different lengths are drained as they end.
    """
    live = [iter(s) for s in streams]
    while live:
        nxt: list[Iterator[WarpAccess]] = []
        for stream in live:
            try:
                yield next(stream)
            except StopIteration:
                continue
            nxt.append(stream)
        live = nxt
