"""Backprop: layer-by-layer forward pass and backward propagation (Rodinia).

Table 2 shape: **93.54 % page reuse** (the suite's highest), Tier-2-biased
RRDs, and the largest total I/O (6 823 GB — many epochs over the weights).
GMT-Reuse's best result (179 % over BaM, 81 % less SSD I/O) comes from
keeping the palindromically swept weight pages in host memory.

Each epoch sweeps the network's weight pages forward (inference) and then
backward (gradient update, dirtying them).  The palindrome gives every
page two characteristic reuse distances — short near the turnaround,
growing toward the far end — so a large share of Tier-1 evictions land in
the medium (host-memory) class.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import TraceError
from repro.sim.gpu import WarpAccess
from repro.workloads.trace import Workload, stream_warps


class BackpropWorkload(Workload):
    """Epochs of forward+backward palindromic sweeps over weight pages."""

    name = "Backprop"
    description = "ML training, forward pass + backward propagation (Rodinia)"

    def __init__(
        self,
        footprint_pages: int,
        epochs: int = 8,
        weight_fraction: float = 0.93,
        seed: int = 0,
    ) -> None:
        super().__init__(footprint_pages, seed)
        if epochs < 1:
            raise TraceError(f"epochs must be >= 1, got {epochs}")
        if not 0.0 < weight_fraction <= 1.0:
            raise TraceError(f"weight_fraction must be in (0, 1]: {weight_fraction}")
        self.epochs = epochs
        self.weight_pages = max(2, int(footprint_pages * weight_fraction))
        self.input_pages = footprint_pages - self.weight_pages

    def generate(self) -> Iterator[WarpAccess]:
        weight_base = self.input_pages
        weights = range(weight_base, weight_base + self.weight_pages)
        per_epoch_inputs = (
            max(1, self.input_pages // self.epochs) if self.input_pages else 0
        )
        for epoch in range(self.epochs):
            # This epoch's minibatch inputs: fresh pages, read once.
            if per_epoch_inputs:
                first = (epoch * per_epoch_inputs) % max(1, self.input_pages)
                last = min(first + per_epoch_inputs, self.input_pages)
                yield from stream_warps(range(first, last), pages_per_warp=2)
            # Forward pass: read weights layer by layer.
            yield from stream_warps(weights, pages_per_warp=2)
            # Backward pass: update weights in reverse layer order.
            yield from stream_warps(reversed(weights), write=True, pages_per_warp=2)
