"""SSSP: single-source shortest paths over an RMAT graph (BaM suite).

Table 2 shape: **79.96 % page reuse**, Tier-3-biased RRDs.  A
Bellman-Ford-style round structure is executed: each relaxation round
processes the vertices whose distance changed in the previous round.
Early rounds grow the active set to most of the graph, late rounds shrink
it; a vertex typically relaxes in several rounds, so vertex and edge
pages recur with round-scale (very long) reuse distances, while ~20 % of
pages (never-reached fringes plus single-round edges) see no reuse.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import TraceError
from repro.sim.gpu import WarpAccess
from repro.workloads.graph_common import GraphWorkload, gather_neighbors
from repro.workloads.trace import stream_warps


class SSSPWorkload(GraphWorkload):
    """Round-based relaxation with unit-ish random edge weights."""

    name = "SSSP"
    description = "Graph algorithm, data-dependent vertex/edge accesses (BaM)"

    def __init__(
        self,
        footprint_pages: int,
        max_rounds: int = 8,
        num_sources: int = 3,
        cold_fraction: float = 0.20,
        seed: int = 0,
        scale: int | None = None,
        graph=None,
    ) -> None:
        super().__init__(footprint_pages, seed, scale, graph=graph)
        if max_rounds < 1:
            raise TraceError(f"max_rounds must be >= 1, got {max_rounds}")
        if num_sources < 1:
            raise TraceError(f"num_sources must be >= 1, got {num_sources}")
        if not 0.0 <= cold_fraction < 1.0:
            raise TraceError(f"cold_fraction must be in [0, 1): {cold_fraction}")
        self.max_rounds = max_rounds
        self.num_sources = num_sources
        self.cold_fraction = cold_fraction

    def generate(self) -> Iterator[WarpAccess]:
        # A batch of single-source queries (as graph serving systems run):
        # each re-traverses the whole graph, so vertex and edge pages recur
        # at working-set-scale distances — Table 2's 80 % reuse with
        # Tier-3-biased RRDs.
        graph = self.graph
        pages = self.page_map
        # One-time loading/preprocessing data (weights parsing, query log):
        # read once, never reused (Table 2: ~80 % page reuse, not 100 %).
        cold_base = pages.total_pages
        cold = int(pages.total_pages * self.cold_fraction / (1 - self.cold_fraction))
        yield from stream_warps(range(cold_base, cold_base + cold), pages_per_warp=2)
        degrees = np.diff(graph.offsets)
        sources = np.argsort(degrees)[::-1][: self.num_sources]
        for query, source in enumerate(sources):
            yield from self._single_source(int(source), query)

    def _single_source(self, source: int, query: int) -> Iterator[WarpAccess]:
        graph = self.graph
        pages = self.page_map
        rng = np.random.default_rng(self.seed + 1 + query)
        # Small integer weights make vertices settle over several rounds.
        weights = rng.integers(1, 4, size=graph.num_edges, dtype=np.int32)
        dist = np.full(graph.num_vertices, np.iinfo(np.int32).max, dtype=np.int64)
        dist[source] = 0
        active = np.array([source], dtype=np.int64)

        for _ in range(self.max_rounds):
            if active.size == 0:
                break
            # Read the active vertices' distance pages.
            yield from stream_warps(
                pages.vertex_pages_array(active, array=0).tolist(), pages_per_warp=2
            )
            # Read the edge (target + weight) pages they span.
            starts = graph.offsets[active]
            ends = graph.offsets[active + 1]
            edge_pages = pages.edge_pages_for_ranges(starts, ends)
            yield from stream_warps(edge_pages.tolist(), pages_per_warp=2)
            # Relax: gather targets, compute tentative distances.
            targets = gather_neighbors(graph, active)
            if targets.size == 0:
                break
            lengths = (ends - starts).astype(np.int64)
            src_dist = np.repeat(dist[active], lengths)
            flat_weights = _gather_flat(graph, active, weights)
            tentative = src_dist + flat_weights
            improved = tentative < dist[targets]
            changed = np.unique(targets[improved].astype(np.int64))
            # Write the improved vertices' distance pages (array 1 mirrors
            # the updated-this-round flags BaM's SSSP keeps per vertex).
            touched = pages.vertex_pages_array(np.unique(targets), array=1)
            yield from stream_warps(touched.tolist(), write=True, pages_per_warp=2)
            if changed.size == 0:
                break
            np.minimum.at(dist, targets, tentative)
            active = changed


def _gather_flat(graph, frontier: np.ndarray, per_edge: np.ndarray) -> np.ndarray:
    """Per-edge values of ``frontier``'s adjacency slots, flattened in the
    same order as :func:`gather_neighbors`."""
    starts = graph.offsets[frontier]
    lengths = (graph.offsets[frontier + 1] - starts).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=per_edge.dtype)
    first_slot = np.zeros(len(frontier), dtype=np.int64)
    np.cumsum(lengths[:-1], out=first_slot[1:])
    owner = np.repeat(np.arange(len(frontier)), lengths)
    within = np.arange(total) - first_slot[owner]
    return per_edge[starts[owner] + within]
