"""Exception hierarchy for the GMT reproduction.

Every error raised by this package derives from :class:`GMTError`, so
callers embedding the simulator can catch one type.
"""

from __future__ import annotations


class GMTError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(GMTError):
    """An invalid or inconsistent configuration was supplied."""


class CapacityError(GMTError):
    """A tier or device was asked to hold more pages than it has frames."""


class PageStateError(GMTError):
    """A page was found in a state that the requested operation forbids
    (e.g. evicting a page that is not resident)."""


class TraceError(GMTError):
    """A workload trace is malformed (empty warps, negative page ids, ...)."""


class SimulationError(GMTError):
    """The simulated platform reached an inconsistent state."""


class ConformanceError(SimulationError):
    """A conformance audit found violated invariants or stats identities
    (see :mod:`repro.check`).  Carries the individual violations."""

    def __init__(self, violations) -> None:
        self.violations = list(violations)
        lines = "\n".join(f"  - {v}" for v in self.violations)
        super().__init__(
            f"{len(self.violations)} conformance violation(s):\n{lines}"
        )
