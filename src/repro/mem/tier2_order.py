"""Tier-2 eviction orders: FIFO (section 2.2) and clock (GMT-TierOrder).

Both classes present the same small protocol the runtime's eviction
pipeline drives — ``insert`` / ``remove`` / ``touch`` / ``select_victim``
— plus :meth:`select_victim_where`, a *filtered* victim selection used by
the multi-tenant serving layer (:mod:`repro.serve`) to restrict eviction
to one tenant's pages (quota enforcement, TierBPF-style admission).

These were private to :mod:`repro.core.runtime` originally; they are
public here so quota-aware wrappers can build on them without reaching
into runtime internals.
"""

from __future__ import annotations

from typing import Callable

from repro.mem.clock_replacement import ClockReplacement
from repro.mem.fifo import FifoQueue


class Tier2Fifo:
    """Tier-2 eviction order: simple FIFO (paper section 2.2)."""

    def __init__(self) -> None:
        self._queue = FifoQueue()

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, page: int) -> bool:
        return page in self._queue

    def insert(self, page: int, referenced: bool = False) -> None:
        """Queue a page; ``referenced`` is ignored (FIFO has no recency)."""
        self._queue.push(page)

    def remove(self, page: int) -> None:
        self._queue.remove(page)

    def select_victim(self) -> int:
        return self._queue.pop_oldest()

    def select_victim_where(self, predicate: Callable[[int], bool]) -> int | None:
        """Oldest queued page satisfying ``predicate`` (None if no match).

        Pages not matching the predicate keep their queue positions.
        """
        for page in self._queue.pages():
            if predicate(page):
                self._queue.remove(page)
                return page
        return None

    def touch(self, page: int) -> None:
        """FIFO ignores recency."""

    def pages(self) -> list[int]:
        """Snapshot in FIFO order (oldest first)."""
        return self._queue.pages()


class Tier2Clock:
    """Tier-2 eviction order: clock (GMT-TierOrder, section 2.1.1)."""

    def __init__(self, capacity: int) -> None:
        self._clock = ClockReplacement(capacity)

    def __len__(self) -> int:
        return len(self._clock)

    def __contains__(self, page: int) -> bool:
        return page in self._clock

    def insert(self, page: int, referenced: bool = False) -> None:
        """Track a page; demoted pages arrive cold (``referenced=False``)."""
        self._clock.insert(page, referenced=referenced)

    def remove(self, page: int) -> None:
        self._clock.remove(page)

    def select_victim(self) -> int:
        return self._clock.select_victim()

    def select_victim_where(self, predicate: Callable[[int], bool]) -> int | None:
        """Clock victim restricted to pages satisfying ``predicate``."""
        return self._clock.select_victim_where(predicate)

    def touch(self, page: int) -> None:
        self._clock.touch(page)

    def pages(self) -> list[int]:
        """Snapshot of tracked pages in frame order."""
        return self._clock.pages()
