"""Memory-management substrate shared by all runtimes (GMT, BaM, HMM).

This subpackage models the mechanical pieces the paper builds on:

- :mod:`repro.mem.page` — page identity, location, and dirty state;
- :mod:`repro.mem.page_table` — the page table mapping page id -> state;
- :mod:`repro.mem.tier` — a fixed-capacity pool of page frames;
- :mod:`repro.mem.clock_replacement` — the clock (second chance) algorithm
  used for Tier-1 (and Tier-2 under GMT-TierOrder), per paper section 2;
- :mod:`repro.mem.fifo` — the simple FIFO eviction queue used for Tier-2,
  per paper section 2.2;
- :mod:`repro.mem.tier2_order` — the two Tier-2 eviction orders
  (:class:`Tier2Fifo`, :class:`Tier2Clock`) the runtime drives and the
  serving layer's quota-aware victim selection wraps.
"""

from repro.mem.clock_replacement import ClockReplacement
from repro.mem.fifo import FifoQueue
from repro.mem.page import PageLocation, PageState
from repro.mem.page_table import PageTable
from repro.mem.tier import Tier
from repro.mem.tier2_order import Tier2Clock, Tier2Fifo

__all__ = [
    "ClockReplacement",
    "FifoQueue",
    "PageLocation",
    "PageState",
    "PageTable",
    "Tier",
    "Tier2Clock",
    "Tier2Fifo",
]
