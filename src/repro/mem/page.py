"""Page identity and state.

A *page* is the paper's 64 KB unit of placement and movement.  Pages are
identified by a non-negative integer id; the dataset is assumed to live on
the SSD (Tier-3), exactly as in BaM's model, so every page always has a
backing copy there.  The in-memory copy (Tier-1 or Tier-2) may be *dirty*,
i.e. newer than the SSD copy; a clean page may be discarded on eviction
while a dirty one must be written back (paper section 2.1.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import PageStateError


class PageLocation(enum.Enum):
    """Which tier currently holds the authoritative copy of a page.

    The paper's design never duplicates a page across Tiers 1 and 2
    (section 2.2), so a single location is sufficient.
    """

    TIER1 = 1  # GPU memory
    TIER2 = 2  # host (CPU) memory
    TIER3 = 3  # SSD (backing store only; no in-memory copy)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return {1: "Tier-1", 2: "Tier-2", 3: "Tier-3"}[self.value]


@dataclass
class PageState:
    """Mutable per-page bookkeeping kept by the page table.

    Attributes:
        page: the page id.
        location: tier holding the authoritative copy (TIER3 = on SSD only).
        dirty: whether the in-memory copy differs from the SSD copy.  Only
            meaningful while ``location`` is TIER1 or TIER2.
        last_access_ts: virtual timestamp of the most recent coalesced
            access (see :mod:`repro.reuse.vtd`); ``None`` until first access.
        last_eviction_ts: virtual timestamp at which the page was last
            evicted from Tier-1; used to compute the *actual* remaining VTD
            when the page returns (paper section 2.1.3, step 2).
        access_count: total coalesced accesses to this page.
        eviction_count: times this page has been evicted from Tier-1.
    """

    page: int
    location: PageLocation = PageLocation.TIER3
    dirty: bool = False
    last_access_ts: int | None = None
    last_eviction_ts: int | None = None
    access_count: int = 0
    eviction_count: int = 0
    #: True while the page sits in Tier-1 due to a prefetch and has not
    #: been demand-accessed yet (prefetch usefulness accounting).
    prefetched: bool = False
    # Scratch slot for policies (e.g. the Markov predictor's per-page
    # history); kept here so a policy does not need its own side table.
    policy_state: dict = field(default_factory=dict)

    @property
    def resident(self) -> bool:
        """True when an in-memory (Tier-1 or Tier-2) copy exists."""
        return self.location is not PageLocation.TIER3

    def mark_dirty(self) -> None:
        if not self.resident:
            raise PageStateError(f"page {self.page} is not resident; cannot dirty it")
        self.dirty = True

    def writeback(self) -> None:
        """Record that the in-memory copy was flushed to the SSD."""
        self.dirty = False
