"""Clock (second-chance) replacement, the Tier-1 victim selector.

The paper (section 2, "What to evict from GPU memory?") uses "the
traditional clock-based replacement algorithm [37] (used in [40] as well),
that offers an effective trade-off between approximating LRU and
implementation efficiency".  GMT-TierOrder additionally runs a second clock
instance over Tier-2 (section 2.1.1).

The implementation keeps a circular array of frames with one reference bit
per frame.  ``advance()`` sweeps the hand: a set bit is cleared (second
chance), a clear bit yields the victim.  Victim selection is O(frames) in
the worst case but amortised O(1), exactly like the real algorithm.
"""

from __future__ import annotations

from repro.errors import CapacityError, PageStateError


class ClockReplacement:
    """Clock replacement over a fixed number of frames.

    This structure tracks *membership and recency* only; the owning runtime
    is responsible for keeping it consistent with the :class:`~repro.mem.tier.Tier`
    it shadows.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise CapacityError(f"negative clock capacity {capacity}")
        self.capacity = capacity
        self._pages: list[int | None] = [None] * capacity
        self._refbits: list[bool] = [False] * capacity
        self._frame_of: dict[int, int] = {}
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._hand = 0

    def __len__(self) -> int:
        return len(self._frame_of)

    def __contains__(self, page: int) -> bool:
        return page in self._frame_of

    @property
    def full(self) -> bool:
        return not self._free

    def insert(self, page: int, referenced: bool = True) -> None:
        """Install ``page`` in a free frame (reference bit set by default,
        since insertion is itself an access)."""
        if page in self._frame_of:
            raise PageStateError(f"page {page} already tracked by clock")
        if not self._free:
            raise CapacityError("clock is full; call evict() first")
        frame = self._free.pop()
        self._pages[frame] = page
        self._refbits[frame] = referenced
        self._frame_of[page] = frame

    def touch(self, page: int) -> None:
        """Set the reference bit for ``page`` (called on every Tier hit)."""
        try:
            frame = self._frame_of[page]
        except KeyError:
            raise PageStateError(f"page {page} not tracked by clock") from None
        self._refbits[frame] = True

    def give_second_chance(self, page: int) -> None:
        """Re-arm ``page``'s reference bit without it being accessed.

        Used by GMT-Reuse when a clock victim is predicted *short-reuse* and
        retained in Tier-1 ("we will retain it in GPU memory and run another
        round of clock", section 2.1.3).
        """
        self.touch(page)

    def remove(self, page: int) -> None:
        """Drop ``page`` from the clock (promotion or external eviction)."""
        try:
            frame = self._frame_of.pop(page)
        except KeyError:
            raise PageStateError(f"page {page} not tracked by clock") from None
        self._pages[frame] = None
        self._refbits[frame] = False
        self._free.append(frame)

    def select_victim(self) -> int:
        """Sweep the hand and return (and remove) the next victim page.

        Raises:
            PageStateError: if the clock tracks no pages.
        """
        if not self._frame_of:
            raise PageStateError("clock is empty; nothing to evict")
        while True:
            page = self._pages[self._hand]
            if page is None:
                self._hand = (self._hand + 1) % self.capacity
                continue
            if self._refbits[self._hand]:
                self._refbits[self._hand] = False
                self._hand = (self._hand + 1) % self.capacity
                continue
            self._hand = (self._hand + 1) % self.capacity
            self.remove(page)
            return page

    def select_victim_where(self, predicate) -> int | None:
        """Filtered clock sweep: evict the next victim satisfying ``predicate``.

        Pages failing the predicate are skipped entirely — their reference
        bits are left untouched, so a tenant-restricted eviction (see
        :mod:`repro.serve`) does not erode other tenants' recency state.
        Returns ``None`` when no tracked page matches.
        """
        if not any(predicate(page) for page in self._frame_of):
            return None
        # Two sweeps bound the scan: the first clears matching pages'
        # reference bits, the second must then find a clear one.
        for _ in range(2 * self.capacity + 1):
            page = self._pages[self._hand]
            if page is None or not predicate(page):
                self._hand = (self._hand + 1) % self.capacity
                continue
            if self._refbits[self._hand]:
                self._refbits[self._hand] = False
                self._hand = (self._hand + 1) % self.capacity
                continue
            self._hand = (self._hand + 1) % self.capacity
            self.remove(page)
            return page
        raise PageStateError("filtered clock sweep failed to converge")  # pragma: no cover

    def peek_victim(self) -> int:
        """Like :meth:`select_victim` but leaves the victim installed.

        The hand still sweeps (clearing reference bits), matching a real
        clock whose scan is destructive of recency state, but the chosen
        page remains resident so the caller can decide its fate.
        """
        if not self._frame_of:
            raise PageStateError("clock is empty; nothing to evict")
        while True:
            page = self._pages[self._hand]
            if page is None:
                self._hand = (self._hand + 1) % self.capacity
                continue
            if self._refbits[self._hand]:
                self._refbits[self._hand] = False
                self._hand = (self._hand + 1) % self.capacity
                continue
            self._hand = (self._hand + 1) % self.capacity
            return page

    def pages(self) -> list[int]:
        """Snapshot of tracked pages in frame order (test helper)."""
        return [p for p in self._pages if p is not None]
