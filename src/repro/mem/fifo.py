"""FIFO eviction order for Tier-2.

Paper section 2.2: "If there is no such empty slot, then we evict a page
using a simple FIFO mechanism in Tier-2."  Pages can also leave the queue
out of order — a Tier-2 hit promotes the page to Tier-1 (no duplication
across tiers), so the queue supports arbitrary removal.
"""

from __future__ import annotations

from repro.errors import PageStateError


class FifoQueue:
    """Insertion-ordered set of pages with O(1) amortised pop-oldest.

    Backed by a Python dict, whose insertion order gives FIFO order, and
    which supports O(1) membership and deletion.
    """

    def __init__(self) -> None:
        self._order: dict[int, None] = {}

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, page: int) -> bool:
        return page in self._order

    def push(self, page: int) -> None:
        """Append ``page`` at the tail (newest position)."""
        if page in self._order:
            raise PageStateError(f"page {page} already queued")
        self._order[page] = None

    def pop_oldest(self) -> int:
        """Remove and return the page at the head (oldest position)."""
        try:
            page = next(iter(self._order))
        except StopIteration:
            raise PageStateError("FIFO queue is empty") from None
        del self._order[page]
        return page

    def remove(self, page: int) -> None:
        """Remove ``page`` from anywhere in the queue (Tier-2 hit path)."""
        try:
            del self._order[page]
        except KeyError:
            raise PageStateError(f"page {page} not queued") from None

    def pages(self) -> list[int]:
        """Snapshot in FIFO order (oldest first); test helper."""
        return list(self._order)
