"""Page table: page id -> :class:`~repro.mem.page.PageState`.

The table is lazily populated: looking up a page that has never been seen
creates a fresh TIER3 (on-SSD) entry, matching the BaM/GMT model in which
the whole dataset starts on the SSD.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.mem.page import PageLocation, PageState


class PageTable:
    """Sparse mapping from page id to per-page state."""

    def __init__(self) -> None:
        self._entries: dict[int, PageState] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, page: int) -> bool:
        return page in self._entries

    def __iter__(self) -> Iterator[PageState]:
        return iter(self._entries.values())

    def lookup(self, page: int) -> PageState:
        """Return the state for ``page``, creating a TIER3 entry if new."""
        if page < 0:
            raise ValueError(f"page ids must be non-negative, got {page}")
        state = self._entries.get(page)
        if state is None:
            state = PageState(page=page)
            self._entries[page] = state
        return state

    def peek(self, page: int) -> PageState | None:
        """Return the state for ``page`` without creating an entry."""
        return self._entries.get(page)

    def resident_in(self, location: PageLocation) -> list[int]:
        """All page ids currently resident in ``location`` (slow; for tests
        and invariant checks, not the hot path)."""
        return [s.page for s in self._entries.values() if s.location is location]

    def count_in(self, location: PageLocation) -> int:
        """Number of pages resident in ``location`` (slow; test helper)."""
        return sum(1 for s in self._entries.values() if s.location is location)
