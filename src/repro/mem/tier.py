"""A memory tier: a fixed-size pool of page frames.

Both Tier-1 (GPU memory) and Tier-2 (host memory) are instances of this
class; only their capacities and eviction machinery differ.  A tier tracks
*which* pages are resident, not their contents — the simulation is
trace-driven and never materialises page data.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import CapacityError, PageStateError


class Tier:
    """Fixed-capacity set of resident pages.

    Args:
        name: human-readable label ("Tier-1", "Tier-2", ...).
        capacity: number of 64 KB page frames in this tier.  A capacity of
            zero is legal and models the absence of the tier (BaM's missing
            Tier-2, for instance).
    """

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 0:
            raise CapacityError(f"{name}: negative capacity {capacity}")
        self.name = name
        self.capacity = capacity
        self._resident: set[int] = set()

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, page: int) -> bool:
        return page in self._resident

    def __iter__(self) -> Iterator[int]:
        return iter(self._resident)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tier({self.name!r}, {len(self)}/{self.capacity})"

    @property
    def full(self) -> bool:
        return len(self._resident) >= self.capacity

    @property
    def free_frames(self) -> int:
        return self.capacity - len(self._resident)

    def insert(self, page: int) -> None:
        """Place ``page`` into a free frame.

        Raises:
            CapacityError: if the tier is full — callers must evict first.
            PageStateError: if the page is already resident here.
        """
        if page in self._resident:
            raise PageStateError(f"page {page} already resident in {self.name}")
        if self.full:
            raise CapacityError(
                f"{self.name} is full ({self.capacity} frames); evict before insert"
            )
        self._resident.add(page)

    def remove(self, page: int) -> None:
        """Release the frame holding ``page``.

        Raises:
            PageStateError: if the page is not resident here.
        """
        try:
            self._resident.remove(page)
        except KeyError:
            raise PageStateError(f"page {page} not resident in {self.name}") from None
