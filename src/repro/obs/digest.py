"""Bounded-memory streaming quantile digests (DDSketch-style).

The always-on :class:`~repro.obs.metrics.Histogram` answers quantile
queries only to bucket granularity (factor-of-2 bounds — a "p99" can be
off by 2x).  Admission control against per-tenant SLOs (ROADMAP item 3)
needs real percentiles, streamed, without storing observations.

:class:`LatencyDigest` keeps geometric buckets of ratio ``gamma =
(1 + e) / (1 - e)``: every observation ``v`` lands in bucket
``ceil(log_gamma(v))``, and the reported quantile is the geometric
midpoint of the bucket holding the target rank, which is within
relative error ``e`` of the true order statistic — *guaranteed*, not
statistically (the DDSketch argument; see PAPERS.md on HM-Keeper for
why bounded-overhead instrumentation is the only kind a tiering system
can afford to leave enabled).

Memory is bounded two ways: buckets are a sparse dict (only populated
ranges cost anything), and the bucket count is capped at ``max_bins``
by collapsing the two lowest buckets — tail quantiles (the SLO end)
keep full accuracy.

The digest runs on whatever clock feeds ``observe``; in this repo that
is the *simulated* nanosecond latency of each demand miss, so digests
are deterministic for a given trace and config.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

#: Default accuracy: 0.5% relative error keeps p50/p90/p99 comfortably
#: inside the 1% the conformance tests assert, at ~2.4k bins across a
#: 1 ns..1 s latency span.
DEFAULT_RELATIVE_ERROR = 0.005

#: Observations at or below this are counted in the zero bucket (the
#: log mapping needs a positive floor; sub-nanosecond modelled latency
#: is indistinguishable from zero for SLO purposes).
MIN_TRACKABLE = 1e-9


class LatencyDigest:
    """Streaming quantile sketch with guaranteed relative error.

    Args:
        relative_error: accuracy bound ``e`` in (0, 1): ``quantile(q)``
            is within ``e * true_value`` of the true q-quantile.
        max_bins: cap on populated buckets; lowest buckets collapse
            first, preserving tail accuracy.
    """

    def __init__(
        self,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        max_bins: int = 4096,
    ) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ConfigError(
                f"relative_error must be in (0, 1), got {relative_error}"
            )
        if max_bins < 8:
            raise ConfigError(f"max_bins must be >= 8, got {max_bins}")
        self.relative_error = relative_error
        self.max_bins = max_bins
        self.gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self.gamma)
        self._bins: dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: Buckets merged away by the memory cap (diagnostic only).
        self.collapsed = 0

    # -- ingest ---------------------------------------------------------
    def observe(self, value: float) -> None:
        """Add one observation (non-negative)."""
        if value < 0:
            raise ConfigError(f"latency digest observations must be >= 0, got {value}")
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= MIN_TRACKABLE:
            self._zero += 1
            return
        key = math.ceil(math.log(value) / self._log_gamma)
        bins = self._bins
        bins[key] = bins.get(key, 0) + 1
        if len(bins) > self.max_bins:
            self._collapse_lowest()

    def observe_many(self, values) -> None:
        """Bulk-ingest an iterable of observations.

        The batch-aware telemetry pipeline (:mod:`repro.obs.batch`) feeds
        per-window aggregate deltas through this entry point instead of one
        ``observe`` call per access.  Semantics are *defined* as identical
        to ``for v in values: self.observe(v)`` — same sequential ``_sum``
        rounding, same bucket keys, same collapse points — because digest
        bucket equality between the scalar and vector engines is asserted
        by the ``gmt-check`` telemetry-parity column.
        """
        observe = self.observe
        for value in values:
            observe(value)

    def _collapse_lowest(self) -> None:
        low, second = sorted(self._bins)[:2]
        self._bins[second] += self._bins.pop(low)
        self.collapsed += 1

    def merge(self, other: "LatencyDigest") -> None:
        """Fold ``other`` into this digest (same accuracy required)."""
        if not math.isclose(other.gamma, self.gamma, rel_tol=1e-12):
            raise ConfigError(
                "cannot merge digests with different relative_error "
                f"({self.relative_error} vs {other.relative_error})"
            )
        for key, count in other._bins.items():
            self._bins[key] = self._bins.get(key, 0) + count
        while len(self._bins) > self.max_bins:
            self._collapse_lowest()
        self._zero += other._zero
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # -- queries --------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest observation (``inf`` when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Largest observation (``-inf`` when empty)."""
        return self._max

    def __len__(self) -> int:
        return self._count

    def quantile(self, q: float) -> float:
        """The q-quantile, within ``relative_error`` of the true order
        statistic (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * (self._count - 1)  # 0-based target order statistic
        if rank < self._zero:
            return 0.0
        cumulative = self._zero
        for key in sorted(self._bins):
            cumulative += self._bins[key]
            if cumulative > rank:
                # Geometric midpoint of (gamma^(k-1), gamma^k]: within
                # relative_error of every value the bucket can hold.
                estimate = 2.0 * self.gamma**key / (self.gamma + 1.0)
                return min(max(estimate, self._min), self._max)
        return self._max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    # -- (de)serialisation ---------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready state (ledger entries, snapshot sidecars)."""
        return {
            "relative_error": self.relative_error,
            "max_bins": self.max_bins,
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "zero": self._zero,
            "bins": {str(key): count for key, count in sorted(self._bins.items())},
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "LatencyDigest":
        digest = cls(
            relative_error=doc["relative_error"],
            max_bins=doc.get("max_bins", 4096),
        )
        digest._count = doc["count"]
        digest._sum = doc["sum"]
        digest._zero = doc.get("zero", 0)
        if doc.get("min") is not None:
            digest._min = doc["min"]
        if doc.get("max") is not None:
            digest._max = doc["max"]
        digest._bins = {int(key): count for key, count in doc.get("bins", {}).items()}
        return digest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyDigest(n={self._count}, p50={self.p50:.0f}, "
            f"p99={self.p99:.0f}, bins={len(self._bins)})"
        )
