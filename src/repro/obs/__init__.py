"""repro.obs — the GMT runtime's unified telemetry subsystem.

Three pillars (see docs/observability.md for the catalog and formats):

- :mod:`repro.obs.metrics` — typed counters, gauges and log-scale
  histograms in a :class:`MetricsRegistry`;
- :mod:`repro.obs.tracing` — :class:`SpanTracer` over the simulator's
  virtual clock, exportable as Chrome/Perfetto trace-event JSON;
- :mod:`repro.obs.export` / :mod:`repro.obs.snapshots` — Prometheus
  text, trace JSON and JSONL window streams.

:class:`Telemetry` bundles all three for one runtime; attach with
``runtime.attach_telemetry()``.
"""

from repro.obs.export import (
    chrome_trace_events,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    BoundCounter,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    linear_buckets,
    log_buckets,
)
from repro.obs.snapshots import WindowedSnapshotter
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import Span, SpanTracer

__all__ = [
    "BoundCounter",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "Telemetry",
    "WindowedSnapshotter",
    "chrome_trace_events",
    "linear_buckets",
    "log_buckets",
    "prometheus_text",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
