"""repro.obs — the GMT runtime's unified telemetry subsystem.

Three pillars (see docs/observability.md for the catalog and formats):

- :mod:`repro.obs.metrics` — typed counters, gauges and log-scale
  histograms in a :class:`MetricsRegistry`;
- :mod:`repro.obs.tracing` — :class:`SpanTracer` over the simulator's
  virtual clock, exportable as Chrome/Perfetto trace-event JSON;
- :mod:`repro.obs.export` / :mod:`repro.obs.snapshots` — Prometheus
  text, trace JSON and JSONL window streams;
- :mod:`repro.obs.lifecycle` — the page-lifecycle flight recorder and
  the causal query engine behind the ``gmt-why`` CLI;
- :mod:`repro.obs.anomaly` — thrash / bypass-storm / latency-spike
  detection over windowed snapshots;
- :mod:`repro.obs.batch` — the batch-aware instrumentation pipeline:
  the ``batch_capable`` capability negotiation, the per-batch observer
  chain the vector engine drives, and the sampled lifecycle recorder;
- :mod:`repro.obs.digest` — bounded-memory streaming quantile digests
  (:class:`LatencyDigest`) behind the latency-percentile gauges;
- :mod:`repro.obs.ledger` — the append-only JSONL run ledger and the
  rolling-median drift detection behind ``gmt-bench --trend``;
- :mod:`repro.obs.top` — the live ``gmt-top`` dashboard over window
  streams.

:class:`Telemetry` bundles them for one runtime; attach with
``runtime.attach_telemetry()`` (pass ``Telemetry(lifecycle=True)`` to
also record page lifecycles).
"""

from repro.obs.anomaly import Anomaly, AnomalyDetector
from repro.obs.batch import (
    BatchObserverChain,
    SampledLifecycleRecorder,
    WindowBatchObserver,
    is_batch_capable,
)
from repro.obs.digest import LatencyDigest
from repro.obs.export import (
    counter_track_events,
    chrome_trace_events,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.lifecycle import (
    LifecycleEvent,
    LifecycleKind,
    LifecycleQuery,
    LifecycleRecorder,
    lifecycle_trace_events,
    load_lifecycle_jsonl,
    write_lifecycle_jsonl,
)
from repro.obs.metrics import (
    BoundCounter,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    linear_buckets,
    log_buckets,
)
from repro.obs.ledger import (
    Drift,
    append_entry,
    detect_drift,
    read_ledger,
    record_run,
    scan_trend,
)
from repro.obs.snapshots import WindowedSnapshotter
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import Span, SpanTracer

__all__ = [
    "Anomaly",
    "AnomalyDetector",
    "BatchObserverChain",
    "BoundCounter",
    "Counter",
    "Drift",
    "Gauge",
    "Histogram",
    "LatencyDigest",
    "LifecycleEvent",
    "LifecycleKind",
    "LifecycleQuery",
    "LifecycleRecorder",
    "MetricsRegistry",
    "SampledLifecycleRecorder",
    "Span",
    "SpanTracer",
    "Telemetry",
    "WindowBatchObserver",
    "WindowedSnapshotter",
    "append_entry",
    "chrome_trace_events",
    "counter_track_events",
    "detect_drift",
    "is_batch_capable",
    "lifecycle_trace_events",
    "linear_buckets",
    "load_lifecycle_jsonl",
    "log_buckets",
    "prometheus_text",
    "read_ledger",
    "record_run",
    "scan_trend",
    "write_chrome_trace",
    "write_jsonl",
    "write_lifecycle_jsonl",
    "write_prometheus",
]
