"""Batch-aware instrumentation — observability that survives the vector
engine.

The SoA replay engine (:mod:`repro.core.vector`) retires runs of Tier-1
hits as a handful of array operations.  Per-access observer callbacks
would undo exactly the win being bought, so historically *any* attached
instrument demoted the whole run to the scalar loop — turning on SLO
digests cost 50x (HM-Keeper's argument in PAPERS.md: profiling a tiered
memory system must be cheap enough to stay on).  This module replaces
that cliff with a capability negotiation:

- every instrument declares :data:`batch_capable` (duck-typed attribute,
  default False via :func:`is_batch_capable`);
- a :class:`Telemetry <repro.obs.telemetry.Telemetry>` whose attached
  instruments are all batch-capable composes a
  :class:`BatchObserverChain` for the engine, built from per-batch
  observers such as :class:`WindowBatchObserver`;
- the engine consults ``chain.limit(position)`` before probing a hit run
  and calls ``chain.on_hits(count, position)`` after retiring one.

**Why this yields byte-identical telemetry.**  On the scalar path the
window clock ticks *after* an access's ``coalesced_accesses``/compute
contributions but *before* its hit-branch counters (``t1_hits``, clock
touch), so a window cut at boundary position ``b`` must capture the
``b``-th access half-applied.  A bulk-retired batch cannot reproduce
that intermediate state — so :class:`WindowBatchObserver` never lets a
batch reach a boundary: batches are capped to end at ``b - 1`` and the
boundary access itself replays through the inherited scalar ``access``,
inheriting the scalar tick ordering exactly.  Every other telemetry
interaction is already scalar-side: spans, latency histograms, and the
:class:`~repro.obs.digest.LatencyDigest` observe only on misses, and
misses always take the scalar pipeline inside the vector engine.
Counter tracks and anomaly findings are pure functions of the window
stream, so their parity follows from window parity.  The ``gmt-check``
telemetry-parity column asserts all four.

The genuinely per-access consumers — the full flight recorder ring
(`gmt-why`'s default), the event log, the profiler, ``--check-every`` —
keep forcing the scalar loop; :class:`SampledLifecycleRecorder` is the
batch-capable middle ground for ``gmt-why`` on sampled page journeys.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.obs.lifecycle import LifecycleKind, LifecycleRecorder
from repro.obs.snapshots import WindowedSnapshotter

__all__ = [
    "BatchObserverChain",
    "SampledLifecycleRecorder",
    "WindowBatchObserver",
    "is_batch_capable",
]


def is_batch_capable(instrument) -> bool:
    """Whether ``instrument`` declares it can observe bulk-retired
    batches (``batch_capable`` attribute; absent means per-access)."""
    return bool(getattr(instrument, "batch_capable", False))


class WindowBatchObserver:
    """Splits retired batches at windowed-snapshot boundaries.

    ``limit`` caps a prospective batch so it ends just *before* the next
    window boundary on the coalesced-access clock (the boundary access
    replays scalar — see the module docstring); ``on_hits`` advances the
    window clock through :meth:`WindowedSnapshotter.add_batch`, which in
    this regime never cuts (the cap guarantees no boundary is crossed)
    but keeps the bulk path honest if intervals shrink mid-run.
    """

    batch_capable = True

    def __init__(self, snapshotter: WindowedSnapshotter) -> None:
        self._snap = snapshotter

    def limit(self, position: int) -> int:
        """Max accesses retirable in bulk from ``position`` before the
        next window boundary (<= 0 means the very next access is the
        boundary access and must replay scalar)."""
        snap = self._snap
        return snap._last_position + snap.interval - 1 - position

    def on_hits(self, count: int, position: int) -> None:
        """One retired hit run ended at ``position``."""
        self._snap.add_batch(position)


class BatchObserverChain:
    """The engine-facing composition of per-batch observers.

    The vector engine holds exactly one of these per instrumented run:
    ``limit`` is the min over all observers (most restrictive boundary
    wins), ``on_hits`` fans out in attach order.
    """

    def __init__(self, observers) -> None:
        self.observers = [obs for obs in observers if obs is not None]

    def limit(self, position: int) -> int:
        return min(obs.limit(position) for obs in self.observers)

    def on_hits(self, count: int, position: int) -> None:
        for obs in self.observers:
            obs.on_hits(count, position)


class SampledLifecycleRecorder(LifecycleRecorder):
    """A page-sampled lifecycle stream that the vector engine tolerates.

    The full :class:`LifecycleRecorder` wants every page's every
    transition — a per-access contract, so it forces the scalar loop.
    This variant records only a deterministic pseudo-random subset of
    *pages* (not of events: a sampled page's journey is complete, which
    is what ``gmt-why``'s causal queries need).  Lifecycle emission
    sites all live on the scalar-side paths inside the vector engine
    (misses, evictions, writebacks, prefetches, policy resolutions), so
    the sampled stream is identical under either engine — and the
    recorder can declare :data:`batch_capable`.

    Sampling is a splitmix64-style hash of ``(page, seed)`` against
    ``sample_rate``: engine-independent, replay-stable, and unbiased
    across page-id patterns (unlike ``page % k``).
    """

    batch_capable = True

    def __init__(
        self,
        sample_rate: float,
        capacity: int | None = 100_000,
        seed: int = 0,
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ConfigError(
                f"sample_rate must be in (0, 1], got {sample_rate}"
            )
        super().__init__(capacity=capacity)
        self.sample_rate = sample_rate
        self.seed = seed
        #: Admission threshold on the 64-bit hash space.
        self._threshold = int(sample_rate * 2**64)
        #: Pages that cleared the hash (memoized; page counts are bounded
        #: by the footprint, far below event counts).
        self._admitted: dict[int, bool] = {}

    def sampled(self, page: int) -> bool:
        """Whether ``page``'s journey is recorded."""
        hit = self._admitted.get(page)
        if hit is None:
            hit = _mix64(page * 0x9E3779B97F4A7C15 + self.seed) < self._threshold
            self._admitted[page] = hit
        return hit

    def emit(self, kind: LifecycleKind, page: int, access: int, *args, **kwargs):
        """Record the transition iff ``page`` is in the sample."""
        if not self.sampled(page):
            return None
        return super().emit(kind, page, access, *args, **kwargs)


def _mix64(x: int) -> int:
    """Finalizer of splitmix64: avalanche a 64-bit value."""
    x &= 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x
